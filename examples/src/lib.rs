//! Example binaries live in examples/src/bin/.
