//! A Chubby-style distributed lock service built on speculative consensus.
//!
//! The paper motivates message-passing consensus with Google's Chubby lock
//! service. Here, contending nodes race to acquire a lease by *proposing
//! their own identifier* to the composed Quorum + Backup consensus object:
//! the decided identifier holds the lock. The fast path grants the lock in
//! two message delays when one node asks first; under contention or server
//! crashes the protocol falls back to Paxos and still elects exactly one
//! holder.
//!
//! Run with: `cargo run -p slin-examples --bin lock_service`

use slin_consensus::harness::{run_scenario, Scenario};
use slin_core::invariants;

fn banner(s: &str) {
    println!("\n=== {s} ===");
}

fn main() {
    banner("uncontended acquire (node 1 alone)");
    let out = run_scenario(&Scenario::fault_free(3, &[(1, 0)]));
    println!(
        "lock granted to node {} in {:?} message delays",
        out.decided_value().unwrap(),
        out.latencies[0].1.unwrap()
    );
    assert_eq!(out.latencies[0].1, Some(2));

    banner("three nodes race for the lock");
    let mut fast_grants = 0;
    let mut fallback_grants = 0;
    for seed in 0..20 {
        let out = run_scenario(&Scenario::contended(3, &[1, 2, 3], seed));
        assert!(out.agreement(), "two lock holders on seed {seed}!");
        assert!(invariants::consensus_linearizable(&out.trace));
        let holder = out.decided_value().unwrap();
        let fell_back = out.trace.iter().any(|a| a.is_switch());
        if fell_back {
            fallback_grants += 1;
        } else {
            fast_grants += 1;
        }
        println!(
            "seed {seed:2}: node {holder} holds the lock \
             ({})",
            if fell_back {
                "via Paxos fallback"
            } else {
                "fast path"
            }
        );
    }
    println!("fast grants: {fast_grants}, fallback grants: {fallback_grants}");

    banner("race during a server crash");
    for seed in 0..5 {
        let out =
            run_scenario(&Scenario::contended(5, &[1, 2], seed).with_crashes(&[(0, 2), (1, 4)]));
        assert!(out.agreement());
        println!(
            "seed {seed}: node {} holds the lock despite two crashed servers \
             (latencies {:?})",
            out.decided_value().unwrap(),
            out.latencies
                .iter()
                .map(|(_, l)| l.unwrap_or(u64::MAX))
                .collect::<Vec<_>>()
        );
    }

    banner("mutual exclusion is linearizability");
    println!(
        "every run's trace passed the consensus linearizability check —\n\
         at most one node ever holds the lease, no matter the faults."
    );
}
