//! Shared-memory speculation on real threads (paper Section 2.5).
//!
//! Demonstrates the composed RCons + CASCons object: contention-free
//! executions decide using **registers only** (zero CAS), contended
//! executions fall back to the CAS phase — and every recorded trace is
//! linearizable.
//!
//! Run with: `cargo run -p slin-examples --bin shmem_speculation`

use slin_adt::Consensus;
use slin_core::compose::project_object;
use slin_core::invariants;
use slin_core::lin::LinChecker;
use slin_core::session::Checker;
use slin_shmem::harness::{run_concurrent, Workload};

fn main() {
    println!("== sequential (contention-free) proposals ==");
    for threads in [1u32, 2, 4, 8] {
        let out = run_concurrent(&Workload::sequential(threads));
        println!(
            "{threads} threads sequential: decided {:?}, CAS operations: {}",
            out.decisions[0].1, out.cas_count
        );
        assert_eq!(out.cas_count, 0, "the fast path must not CAS");
    }

    println!("\n== concurrent proposals (chaotic interleaving) ==");
    let mut fast = 0;
    let mut fallback = 0;
    // Consensus is non-partitionable, so Strategy::Auto resolves to one
    // monolithic chain search per trace.
    let mut lin = Checker::builder(LinChecker::owned(Consensus)).build();
    for round in 0..200 {
        let out = run_concurrent(&Workload::concurrent(4));
        assert!(out.agreement(), "round {round}: split decision!");
        assert!(invariants::consensus_linearizable(&out.trace));
        if out.cas_count == 0 {
            fast += 1;
        } else {
            fallback += 1;
        }
        // Spot-check small traces with the generic checker.
        if round % 50 == 0 {
            let obj = project_object::<Consensus, _>(&out.trace);
            assert!(lin.check(&obj).is_ok(), "round {round}");
        }
    }
    println!("200 contended runs: {fast} register-only, {fallback} used the CAS backup");
    println!("agreement and linearizability held in every run ✓");

    println!("\n== why it matters ==");
    println!(
        "wait-free consensus is impossible from registers alone (Herlihy),\n\
         yet speculation gets register-only performance whenever the timing\n\
         is clean, while the CAS phase guarantees progress otherwise —\n\
         and the intra-object composition theorem says we may reason about\n\
         each phase in isolation."
    );
}
