//! A Gaios-style replicated key–value store: state-machine replication on
//! top of speculative consensus.
//!
//! The paper cites the Gaios data store as a consensus use case and, in
//! Section 6, shows that the *universal ADT* (whose outputs are input
//! histories) abstracts generic SMR: once a history is agreed on, any ADT's
//! output function can be applied to it. This example replicates a
//! [`KvStore`] by running one consensus instance per log slot: clients race
//! to have their command ordered at each slot, every replica applies the
//! common winner, and all replicas end in identical states.
//!
//! Run with: `cargo run -p slin-examples --bin replicated_kv`

use slin_adt::{Adt, KvInput, KvStore};
use slin_consensus::harness::{run_scenario, Scenario};

/// Commands are encoded into consensus values so they fit the `Value`
/// proposal type (a production system would propose serialized commands).
fn encode(cmd: &KvInput) -> u64 {
    match *cmd {
        KvInput::Put(k, v) => 1_000_000 + u64::from(k) * 1_000 + v,
        KvInput::Get(k) => 2_000_000 + u64::from(k),
        KvInput::Delete(k) => 3_000_000 + u64::from(k),
    }
}

fn decode(v: u64) -> KvInput {
    match v / 1_000_000 {
        1 => KvInput::Put(((v % 1_000_000) / 1_000) as u32, v % 1_000),
        2 => KvInput::Get((v % 1_000_000) as u32),
        _ => KvInput::Delete((v % 1_000_000) as u32),
    }
}

fn main() {
    // Two clients issue command streams; each log slot runs one consensus
    // instance among the commands contending for that slot.
    let client_a = [
        KvInput::Put(1, 10),
        KvInput::Put(2, 20),
        KvInput::Get(1),
        KvInput::Delete(2),
    ];
    let client_b = [
        KvInput::Put(1, 11),
        KvInput::Get(2),
        KvInput::Put(3, 30),
        KvInput::Get(3),
    ];

    println!(
        "replicating a log of {} slots over 3 servers…\n",
        client_a.len()
    );
    let mut log: Vec<KvInput> = Vec::new();
    let mut fast_slots = 0;
    for (slot, (a, b)) in client_a.iter().zip(&client_b).enumerate() {
        let out = run_scenario(&Scenario::contended(
            3,
            &[encode(a), encode(b)],
            slot as u64,
        ));
        assert!(out.agreement(), "slot {slot} diverged");
        let winner = decode(out.decided_value().unwrap().get());
        let fell_back = out.trace.iter().any(|x| x.is_switch());
        if !fell_back {
            fast_slots += 1;
        }
        println!(
            "slot {slot}: A proposed {a:?}, B proposed {b:?} → ordered {winner:?} \
             ({}, {} msgs)",
            if fell_back { "fallback" } else { "fast path" },
            out.messages
        );
        log.push(winner);
    }

    // Every replica applies the agreed log to its local state machine.
    let kv = KvStore::new();
    let replica_states: Vec<_> = (0..3).map(|_| kv.run(&log)).collect();
    println!("\nagreed log: {log:?}");
    println!("replica state: {:?}", replica_states[0]);
    assert!(replica_states.windows(2).all(|w| w[0] == w[1]));
    println!(
        "all 3 replicas identical ✓ ({fast_slots}/{} slots decided on the fast path)",
        log.len()
    );

    // The universal-ADT view: the log *is* the history that the universal
    // object would return; deriving the KV outputs from it answers reads.
    for (i, cmd) in log.iter().enumerate() {
        if matches!(cmd, KvInput::Get(_)) {
            let out = kv.output(&log[..=i]).unwrap();
            println!("derived output of {cmd:?} at slot {i}: {out:?}");
        }
    }
}
