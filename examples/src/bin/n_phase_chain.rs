//! Adding speculation phases without touching existing ones (Section 1).
//!
//! The paper's scalability argument: composing n phases ad hoc needs O(n²)
//! carefully-handled switching cases, and adding one more phase to an ad-hoc
//! protocol "would require a new ad-hoc composition … a Dantean effort".
//! With speculative linearizability, a phase only ever talks to its
//! neighbours through switch values, so a chain of any length is a client
//! *parameter* — this example runs the same workload over chains of 1 to 4
//! fast phases and shows that (a) nothing else changed, (b) the fault-free
//! fast path stays at 2 message delays, and (c) correctness is preserved at
//! every length.
//!
//! Run with: `cargo run -p slin-examples --bin n_phase_chain`

use slin_consensus::harness::{run_scenario, Scenario};
use slin_core::invariants;

fn main() {
    println!("fault-free single client — the common case must not pay for the chain:");
    for fast in 1..=4u32 {
        let out = run_scenario(&Scenario::fault_free(3, &[(5, 0)]).with_fast_phases(fast));
        println!(
            "  chain of {fast} fast phase(s) + paxos: decided in {:?} delays, {} msgs",
            out.latencies[0].1.unwrap(),
            out.messages
        );
        assert_eq!(out.latencies[0].1, Some(2));
    }

    println!("\ncontended (2 clients, racing) — aborts cascade down the chain:");
    for fast in 1..=4u32 {
        let mut decided_fast = 0;
        let mut decided_backup = 0;
        let mut worst = 0;
        for seed in 0..15 {
            let out = run_scenario(&Scenario::contended(3, &[1, 2], seed).with_fast_phases(fast));
            assert!(out.agreement(), "split decision at chain length {fast}");
            assert!(invariants::consensus_linearizable(&out.trace));
            let backup_label = fast + 1;
            for a in out.trace.iter() {
                if a.is_respond() {
                    if a.phase().value() == backup_label {
                        decided_backup += 1;
                    } else {
                        decided_fast += 1;
                    }
                }
            }
            worst = worst.max(
                out.latencies
                    .iter()
                    .filter_map(|(_, l)| *l)
                    .max()
                    .unwrap_or(0),
            );
        }
        println!(
            "  chain of {fast}: {decided_fast} fast decisions, {decided_backup} backup decisions, worst latency {worst}"
        );
    }

    println!("\nthe point: the Quorum code, the Paxos code and their proofs were");
    println!("not modified to go from 1 fast phase to 4 — the chain length is");
    println!("a parameter, and the composition theorem covers every length.");
}
