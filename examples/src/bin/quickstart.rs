//! Quickstart: the paper in five minutes.
//!
//! 1. Check the Section 2.2 example traces with the linearizability
//!    checkers (new definition and classical — Theorem 1 says they agree).
//! 2. Run the simulated Quorum + Backup consensus: fault-free it decides in
//!    two message delays; under a server crash it falls back to Paxos and
//!    still decides.
//! 3. Verify the intra-object composition theorem on the produced trace.
//!
//! Run with: `cargo run -p slin-examples --bin quickstart`

use slin_adt::{ConsInput, ConsOutput, Consensus};
use slin_consensus::harness::{run_scenario, Scenario};
use slin_core::classical::ClassicalChecker;
use slin_core::compose::{check_composition, CompositionOutcome};
use slin_core::initrel::ConsensusInit;
use slin_core::lin::LinChecker;
use slin_core::session::{Checker, Strategy, StrategyUsed};
use slin_trace::{Action, ClientId, PhaseId, Trace};

fn main() {
    let cons = Consensus::new();
    // The unified surface: one builder, strategy as configuration.
    let mut lin = Checker::builder(LinChecker::owned(cons)).build();
    let classical = ClassicalChecker::new(&cons);
    let (c1, c2) = (ClientId::new(1), ClientId::new(2));
    let ph = PhaseId::FIRST;
    let p = ConsInput::propose;
    let d = ConsOutput::decide;

    println!("== 1. The paper's Section 2.2 traces ==");
    let good: Trace<Action<ConsInput, ConsOutput, ()>> = Trace::from_actions(vec![
        Action::invoke(c1, ph, p(1)),
        Action::invoke(c2, ph, p(2)),
        Action::respond(c2, ph, p(2), d(2)),
        Action::respond(c1, ph, p(1), d(2)),
    ]);
    let w = lin.check(&good).outcome.expect("linearizable");
    println!("linearizable: {good:?}");
    println!("  witness linearization: {:?}", w.full_history());
    assert!(classical.check(&good).is_ok());

    let bad: Trace<Action<ConsInput, ConsOutput, ()>> = Trace::from_actions(vec![
        Action::invoke(c1, ph, p(1)),
        Action::invoke(c2, ph, p(2)),
        Action::respond(c1, ph, p(1), d(1)),
        Action::respond(c2, ph, p(2), d(2)),
    ]);
    println!(
        "split decision rejected: {:?}",
        lin.check(&bad).outcome.unwrap_err()
    );
    assert!(classical.check(&bad).is_err());

    // The same judgment, streamed one event at a time: a session built
    // with Strategy::Streaming ingests live and reports identically.
    let mut live = Checker::builder(LinChecker::owned(cons))
        .strategy(Strategy::Streaming { window: None })
        .build();
    for a in good.iter() {
        live.ingest(a.clone());
    }
    let streamed = live.check(&Trace::new());
    assert_eq!(streamed.strategy, StrategyUsed::Streaming);
    assert_eq!(
        streamed.outcome.expect("streamed verdict").full_history(),
        w.full_history(),
        "streaming report is byte-identical to the batch witness"
    );
    println!("  streaming session agrees, event by event ✓");

    println!("\n== 2. Quorum + Backup over the simulated network ==");
    let fast = run_scenario(&Scenario::fault_free(3, &[(7, 0)]));
    println!(
        "fault-free: decided {:?} in {:?} message delays ({} messages)",
        fast.decided_value().unwrap(),
        fast.latencies[0].1.unwrap(),
        fast.messages
    );
    assert_eq!(fast.latencies[0].1, Some(2));

    let crash = run_scenario(&Scenario::fault_free(3, &[(7, 0)]).with_crashes(&[(0, 0)]));
    println!(
        "one server crashed: decided {:?} after fallback, in {:?} delays",
        crash.decided_value().unwrap(),
        crash.latencies[0].1.unwrap()
    );
    assert!(crash.trace.iter().any(|a| a.is_switch()));
    println!("trace: {:?}", crash.trace);

    println!("\n== 3. The composition theorem on that trace ==");
    let out = check_composition(
        &cons,
        ConsensusInit::new(),
        &crash.trace,
        PhaseId::new(1),
        PhaseId::new(2),
        PhaseId::new(3),
    );
    println!("check_composition: {out:?}");
    assert_eq!(out, CompositionOutcome::Holds);

    println!("\n== 4. Engine verification of the whole run ==");
    // The harness drives the shared CheckerEngine over every phase (in
    // parallel across init interpretations) and reports search statistics.
    let v = crash.verify(1);
    println!(
        "phases: {:?}  object linearizable: {}",
        v.phases, v.object_linearizable
    );
    println!(
        "engine: {} interpretations, {} nodes, {} memo entries",
        v.stats.interpretations, v.stats.nodes, v.stats.memo_entries
    );
    assert!(v.all_ok());
    println!("\nOK: both phases are speculatively linearizable and their\ncomposition is a linearizable consensus.");
}
