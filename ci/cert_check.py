#!/usr/bin/env python3
"""Validate the committed partitioner certificates in analysis/certs/.

Two layers of defence, independent of the Rust toolchain:

1. Integrity: every committed certificate parses, matches the
   slin-cert/v1 schema, is named `<adt>__<partitioner>.json`, and its
   content_hash re-derives from the other fields (FNV-1a 64 over the
   canonical `|`-joined string — mirrored from crates/analysis/src/cert.rs,
   so a hand-edited certificate fails here without running cargo).
2. Coverage: the expected (adt, partitioner) pairs are all present and
   nothing unexpected is committed.

Freshness against the analyzer itself (certificates byte-identical to a
regeneration at the committed depth) is checked separately in CI by
`slin-analyze --all --check`; this script is the cheap, toolchain-free
gate that also protects local workflows.

Usage: python3 ci/cert_check.py [certs_dir]
Exit status: 0 clean, 1 on any violation.
"""

import json
import os
import sys

SCHEMA = "slin-cert/v1"

EXPECTED_PAIRS = {
    ("KvStore", "KvKeyPartitioner"),
    ("Set", "SetElemPartitioner"),
    ("RegisterArray", "RegArrayPartitioner"),
    ("CounterVector", "CounterVecPartitioner"),
}

FIELDS = [
    "schema",
    "adt",
    "partitioner",
    "depth",
    "alphabet",
    "classified",
    "keys",
    "states",
    "projection_checks",
    "commutation_checks",
    "content_hash",
]

INT_FIELDS = FIELDS[3:-1]

MIN_DEPTH = 4


def fnv1a64(data: bytes) -> int:
    h = 0xCBF29CE484222325
    for b in data:
        h ^= b
        h = (h * 0x00000100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


def content_hash(cert: dict) -> str:
    canon = "|".join(
        str(cert[f]) for f in FIELDS[:-1]
    )
    return f"fnv1a64:{fnv1a64(canon.encode()):016x}"


def check_cert(path: str, errors: list) -> tuple:
    name = os.path.basename(path)
    with open(path, encoding="utf-8") as fh:
        try:
            cert = json.load(fh)
        except json.JSONDecodeError as e:
            errors.append(f"{name}: invalid JSON: {e}")
            return None

    missing = [f for f in FIELDS if f not in cert]
    extra = [k for k in cert if k not in FIELDS]
    if missing:
        errors.append(f"{name}: missing fields {missing}")
        return None
    if extra:
        errors.append(f"{name}: unexpected fields {extra}")
    if cert["schema"] != SCHEMA:
        errors.append(f"{name}: schema {cert['schema']!r}, expected {SCHEMA!r}")
    for f in INT_FIELDS:
        if not isinstance(cert[f], int) or cert[f] < 0:
            errors.append(f"{name}: field {f!r} must be a non-negative integer")
            return None
    if cert["depth"] < MIN_DEPTH:
        errors.append(f"{name}: depth {cert['depth']} below the floor {MIN_DEPTH}")
    if cert["classified"] == 0 or cert["keys"] < 2:
        errors.append(
            f"{name}: degenerate domain (classified={cert['classified']}, "
            f"keys={cert['keys']}) certifies nothing"
        )
    want = f"{cert['adt']}__{cert['partitioner']}.json"
    if name != want:
        errors.append(f"{name}: filename should be {want}")
    derived = content_hash(cert)
    if cert["content_hash"] != derived:
        errors.append(
            f"{name}: content_hash {cert['content_hash']} does not re-derive "
            f"({derived}) — certificate was edited by hand or is stale"
        )
    return (cert["adt"], cert["partitioner"])


def main() -> int:
    certs_dir = sys.argv[1] if len(sys.argv) > 1 else os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "analysis",
        "certs",
    )
    if not os.path.isdir(certs_dir):
        print(f"cert_check: no such directory: {certs_dir}")
        return 1

    errors: list = []
    seen = set()
    for name in sorted(os.listdir(certs_dir)):
        if not name.endswith(".json"):
            errors.append(f"{name}: stray non-certificate file in {certs_dir}")
            continue
        pair = check_cert(os.path.join(certs_dir, name), errors)
        if pair is not None:
            seen.add(pair)

    for pair in sorted(EXPECTED_PAIRS - seen):
        errors.append(f"missing certificate for {pair[0]} / {pair[1]}")
    for pair in sorted(seen - EXPECTED_PAIRS):
        errors.append(
            f"unexpected certificate {pair[0]} / {pair[1]} — "
            "update EXPECTED_PAIRS in ci/cert_check.py if intentional"
        )

    if errors:
        print(f"cert_check: {len(errors)} problem(s):")
        for e in errors:
            print(f"  - {e}")
        return 1
    print(f"cert_check: {len(seen)} certificate(s) OK in {certs_dir}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
