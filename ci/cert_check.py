#!/usr/bin/env python3
"""Validate the committed partitioner certificates in analysis/certs/.

Two layers of defence, independent of the Rust toolchain:

1. Integrity: every committed certificate parses, matches its declared
   schema (slin-cert/v1 partitioner soundness, or slin-cert/v2
   switch-independence), carries the right filename
   (`<adt>__<partitioner>.json` for v1,
   `<adt>__<partitioner>__switch.json` for v2), and its content_hash
   re-derives from the other fields (FNV-1a 64 over the canonical
   `|`-joined string — mirrored from crates/analysis/src/cert.rs, so a
   hand-edited certificate fails here without running cargo). A
   certificate declaring any *other* schema version is an error, not a
   skip — unknown versions must never pass silently.
2. Coverage: the expected v1 (adt, partitioner) pairs and v2
   (adt, partitioner, rinit) triples are all present and nothing
   unexpected is committed.

Freshness against the analyzer itself (certificates byte-identical to a
regeneration at the committed depth) is checked separately in CI by
`slin-analyze --all --check`; this script is the cheap, toolchain-free
gate that also protects local workflows.

Usage: python3 ci/cert_check.py [certs_dir]
Exit status: 0 clean, 1 on any violation.
"""

import json
import os
import sys

SCHEMA_V1 = "slin-cert/v1"
SCHEMA_V2 = "slin-cert/v2"

EXPECTED_PAIRS = {
    ("KvStore", "KvKeyPartitioner"),
    ("Set", "SetElemPartitioner"),
    ("RegisterArray", "RegArrayPartitioner"),
    ("CounterVector", "CounterVecPartitioner"),
}

# Every shipped pair is certified switch-independent under the exact
# init relation — the keyed phase-trace checking path needs the triple.
EXPECTED_TRIPLES = {(adt, p, "ExactInit") for adt, p in EXPECTED_PAIRS}

FIELDS_V1 = [
    "schema",
    "adt",
    "partitioner",
    "depth",
    "alphabet",
    "classified",
    "keys",
    "states",
    "projection_checks",
    "commutation_checks",
    "content_hash",
]

FIELDS_V2 = [
    "schema",
    "adt",
    "partitioner",
    "rinit",
    "depth",
    "alphabet",
    "switch_values",
    "classified",
    "keys",
    "states",
    "projection_checks",
    "commutation_checks",
    "content_hash",
]

INT_FIELDS_V1 = FIELDS_V1[3:-1]
INT_FIELDS_V2 = FIELDS_V2[4:-1]

MIN_DEPTH = 4


def fnv1a64(data: bytes) -> int:
    h = 0xCBF29CE484222325
    for b in data:
        h ^= b
        h = (h * 0x00000100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


def content_hash(cert: dict, fields: list) -> str:
    canon = "|".join(str(cert[f]) for f in fields[:-1])
    return f"fnv1a64:{fnv1a64(canon.encode()):016x}"


def check_common(name: str, cert: dict, fields: list, int_fields: list,
                 want_name: str, errors: list) -> bool:
    """Field shape, integer ranges, filename, and hash re-derivation
    shared by both schemas. Returns False if the cert is unusable."""
    missing = [f for f in fields if f not in cert]
    extra = [k for k in cert if k not in fields]
    if missing:
        errors.append(f"{name}: missing fields {missing}")
        return False
    if extra:
        errors.append(f"{name}: unexpected fields {extra}")
    for f in int_fields:
        if not isinstance(cert[f], int) or cert[f] < 0:
            errors.append(f"{name}: field {f!r} must be a non-negative integer")
            return False
    if cert["depth"] < MIN_DEPTH:
        errors.append(f"{name}: depth {cert['depth']} below the floor {MIN_DEPTH}")
    if cert["classified"] == 0 or cert["keys"] < 2:
        errors.append(
            f"{name}: degenerate domain (classified={cert['classified']}, "
            f"keys={cert['keys']}) certifies nothing"
        )
    if name != want_name:
        errors.append(f"{name}: filename should be {want_name}")
    derived = content_hash(cert, fields)
    if cert["content_hash"] != derived:
        errors.append(
            f"{name}: content_hash {cert['content_hash']} does not re-derive "
            f"({derived}) — certificate was edited by hand or is stale"
        )
    return True


def check_cert(path: str, errors: list, pairs: set, triples: set) -> None:
    name = os.path.basename(path)
    with open(path, encoding="utf-8") as fh:
        try:
            cert = json.load(fh)
        except json.JSONDecodeError as e:
            errors.append(f"{name}: invalid JSON: {e}")
            return

    schema = cert.get("schema")
    if schema == SCHEMA_V1:
        want = f"{cert.get('adt')}__{cert.get('partitioner')}.json"
        if check_common(name, cert, FIELDS_V1, INT_FIELDS_V1, want, errors):
            pairs.add((cert["adt"], cert["partitioner"]))
    elif schema == SCHEMA_V2:
        want = f"{cert.get('adt')}__{cert.get('partitioner')}__switch.json"
        if check_common(name, cert, FIELDS_V2, INT_FIELDS_V2, want, errors):
            if cert["switch_values"] == 0:
                errors.append(
                    f"{name}: empty switch domain certifies no decomposition"
                )
            triples.add((cert["adt"], cert["partitioner"], cert["rinit"]))
    else:
        errors.append(
            f"{name}: unknown schema {schema!r} — this checker accepts only "
            f"{SCHEMA_V1!r} and {SCHEMA_V2!r}; teach it new versions "
            "explicitly, never skip them"
        )


def main() -> int:
    certs_dir = sys.argv[1] if len(sys.argv) > 1 else os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "analysis",
        "certs",
    )
    if not os.path.isdir(certs_dir):
        print(f"cert_check: no such directory: {certs_dir}")
        return 1

    errors: list = []
    pairs: set = set()
    triples: set = set()
    for name in sorted(os.listdir(certs_dir)):
        if not name.endswith(".json"):
            errors.append(f"{name}: stray non-certificate file in {certs_dir}")
            continue
        check_cert(os.path.join(certs_dir, name), errors, pairs, triples)

    for pair in sorted(EXPECTED_PAIRS - pairs):
        errors.append(f"missing v1 certificate for {pair[0]} / {pair[1]}")
    for pair in sorted(pairs - EXPECTED_PAIRS):
        errors.append(
            f"unexpected v1 certificate {pair[0]} / {pair[1]} — "
            "update EXPECTED_PAIRS in ci/cert_check.py if intentional"
        )
    for t in sorted(EXPECTED_TRIPLES - triples):
        errors.append(
            f"missing v2 switch certificate for {t[0]} / {t[1]} under {t[2]}"
        )
    for t in sorted(triples - EXPECTED_TRIPLES):
        errors.append(
            f"unexpected v2 switch certificate {t[0]} / {t[1]} / {t[2]} — "
            "update EXPECTED_TRIPLES in ci/cert_check.py if intentional"
        )

    if errors:
        print(f"cert_check: {len(errors)} problem(s):")
        for e in errors:
            print(f"  - {e}")
        return 1
    print(
        f"cert_check: {len(pairs)} v1 + {len(triples)} v2 certificate(s) "
        f"OK in {certs_dir}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
