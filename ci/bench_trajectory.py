#!/usr/bin/env python3
"""Print the cross-PR bench trajectory from the committed snapshots.

Usage: bench_trajectory.py [snapshot.json ...]

With no arguments, globs `BENCH_PR*.json` in the repository root (the
directory above this script). Each snapshot is one committed
machine-readable bench report (`cargo bench -p slin-bench --bench report
-- --json`); snapshots are ordered by their PR number.

Unlike `bench_threshold.py` — which *gates* a build against the latest
committed baseline — this report is **non-gating**: it exists to make the
across-PR trend visible (did the partition speedups keep their ratio as
the engine grew? did memoisation keep firing? how did the streaming
throughput *shape* move?). Five tables are printed:

* **B5** — partitioned/monolithic node-count ratios per scenario per PR
  (pinned seeds, deterministic);
* **B4c** — engine counters (nodes, memo_hits) per scenario per PR
  (deterministic);
* **B6** — streaming throughput per scenario per PR, normalised to each
  report's own fastest row (the machine-independent shape), plus the
  deterministic fallback/GC columns;
* **B6h** — the epoch-GC monitor on hostile never-quiescent streams:
  the retained-memory proxy (peak multiset nodes / peak live configs,
  deterministic) and p99 ingest latency (wall-clock, indicative) per
  window size per PR, from PR 6 onward;
* **B8** — the multi-tenant daemon pipeline: throughput share per
  scenario per PR (normalised to each report's fastest B8 row), plus the
  latest queue-depth peak vs the configured bound and shed counters,
  from PR 7 onward.

Exit status is 0 unless a snapshot cannot be parsed.
"""

import glob
import json
import os
import re
import sys


def pr_number(path):
    m = re.search(r"BENCH_PR(\d+)\.json$", os.path.basename(path))
    return int(m.group(1)) if m else -1


def load_snapshots(paths):
    snaps = []
    for path in sorted(paths, key=pr_number):
        with open(path) as f:
            snaps.append((f"PR{pr_number(path)}", json.load(f)))
    return snaps


def table(title, header, rows):
    print(f"\n{title}")
    widths = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(f"  {line}")
    print(f"  {'-' * len(line)}")
    for r in rows:
        print("  " + "  ".join(str(c).ljust(w) for c, w in zip(r, widths)))


def fmt(value, spec):
    return format(value, spec) if value is not None else "-"


def scenario_sweep(snaps, section):
    """All scenario names of `section`, in first-appearance order."""
    seen = []
    for _, snap in snaps:
        for row in snap.get(section, []):
            if row["scenario"] not in seen:
                seen.append(row["scenario"])
    return seen


def by_scenario(snap, section):
    return {row["scenario"]: row for row in snap.get(section, [])}


def b5_table(snaps):
    names = [name for name, _ in snaps]
    rows = []
    for scenario in scenario_sweep(snaps, "b5_partition"):
        cells = [scenario]
        for _, snap in snaps:
            row = by_scenario(snap, "b5_partition").get(scenario)
            cells.append(fmt(row and row["node_ratio"], ".2f"))
        latest = by_scenario(snaps[-1][1], "b5_partition").get(scenario)
        agree = "yes" if latest and latest.get("verdicts_agree") else ("-" if not latest else "NO")
        cells.append(agree)
        rows.append(cells)
    table(
        "B5 — partition node-ratio trajectory (mono nodes / partitioned nodes; higher is better)",
        ["scenario"] + [f"{n} ratio" for n in names] + ["verdicts agree (latest)"],
        rows,
    )


def b4c_table(snaps):
    names = [name for name, _ in snaps]
    rows = []
    for scenario in scenario_sweep(snaps, "b4c_checker_stats"):
        cells = [scenario]
        for _, snap in snaps:
            row = by_scenario(snap, "b4c_checker_stats").get(scenario)
            if row is None:
                cells.append("-")
            else:
                stats = row["stats"]
                cells.append(f"{stats['nodes']}/{stats['memo_hits']}")
        rows.append(cells)
    table(
        "B4c — engine counter trajectory (nodes/memo_hits per scenario)",
        ["scenario"] + [f"{n} n/hits" for n in names],
        rows,
    )


def b6_table(snaps):
    withb6 = [(n, s) for n, s in snaps if s.get("b6_streaming")]
    if not withb6:
        print("\nB6 — no streaming rows in any snapshot yet")
        return
    names = [name for name, _ in withb6]
    rows = []
    for scenario in scenario_sweep(withb6, "b6_streaming"):
        cells = [scenario]
        for _, snap in withb6:
            b6 = snap["b6_streaming"]
            top = max((r["events_per_sec"] for r in b6), default=0.0)
            row = by_scenario(snap, "b6_streaming").get(scenario)
            if row is None or top <= 0.0:
                cells.append("-")
            else:
                share = row["events_per_sec"] / top
                cells.append(f"{share:.3f}")
        latest = by_scenario(withb6[-1][1], "b6_streaming").get(scenario)
        cells.append(fmt(latest and latest["fallback_searches"], "d"))
        cells.append(fmt(latest and latest["retired_events"], "d"))
        rows.append(cells)
    table(
        "B6 — streaming throughput-share trajectory (events/sec normalised to each "
        "report's fastest row)",
        ["scenario"]
        + [f"{n} share" for n in names]
        + ["fallbacks (latest)", "retired (latest)"],
        rows,
    )


def b6h_table(snaps):
    withb6h = [(n, s) for n, s in snaps if s.get("b6h_hostile")]
    if not withb6h:
        print("\nB6h — no hostile-stream rows in any snapshot yet")
        return
    names = [name for name, _ in withb6h]
    rows = []
    for scenario in scenario_sweep(withb6h, "b6h_hostile"):
        cells = [scenario]
        for _, snap in withb6h:
            row = by_scenario(snap, "b6h_hostile").get(scenario)
            if row is None:
                cells.extend(["-", "-"])
            else:
                cells.append(f"{row['peak_multiset_nodes']}/{row['peak_live_configs']}")
                cells.append(f"{row['p99_ingest_us'] / 1000:.1f}")
        latest = by_scenario(withb6h[-1][1], "b6h_hostile").get(scenario)
        cells.append(fmt(latest and latest["epoch_cuts"], "d"))
        cells.append(fmt(latest and latest["lossy_cuts"], "d"))
        rows.append(cells)
    header = ["scenario"]
    for n in names:
        header.extend([f"{n} mem (ms/cfg)", f"{n} p99 ms"])
    header.extend(["cuts (latest)", "lossy (latest)"])
    table(
        "B6h — hostile never-quiescent stream trajectory (memory proxy is "
        "deterministic; p99 is wall-clock)",
        header,
        rows,
    )


def b8_table(snaps):
    withb8 = [(n, s) for n, s in snaps if s.get("b8_multitenant")]
    if not withb8:
        print("\nB8 — no multi-tenant daemon rows in any snapshot yet")
        return
    names = [name for name, _ in withb8]
    rows = []
    for scenario in scenario_sweep(withb8, "b8_multitenant"):
        cells = [scenario]
        for _, snap in withb8:
            b8 = snap["b8_multitenant"]
            top = max((r["events_per_sec"] for r in b8), default=0.0)
            row = by_scenario(snap, "b8_multitenant").get(scenario)
            if row is None or top <= 0.0:
                cells.append("-")
            else:
                share = row["events_per_sec"] / top
                cells.append(f"{share:.3f}")
        latest = by_scenario(withb8[-1][1], "b8_multitenant").get(scenario)
        if latest is None:
            cells.extend(["-", "-", "-"])
        else:
            cells.append(f"{latest['queue_depth_peak']}/{latest['queue_capacity']}")
            cells.append(fmt(latest["sheds"], "d"))
            ok = "yes" if latest.get("ok") else "NO"
            cells.append(ok)
        rows.append(cells)
    table(
        "B8 — multi-tenant daemon throughput-share trajectory (events/sec "
        "normalised to each report's fastest row)",
        ["scenario"]
        + [f"{n} share" for n in names]
        + ["peak q/cap (latest)", "sheds (latest)", "ok (latest)"],
        rows,
    )


def main() -> int:
    paths = sys.argv[1:]
    if not paths:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        paths = glob.glob(os.path.join(root, "BENCH_PR*.json"))
    if not paths:
        print("no BENCH_PR*.json snapshots found")
        return 0
    try:
        snaps = load_snapshots(paths)
    except (OSError, json.JSONDecodeError) as e:
        print(f"failed to load snapshots: {e}")
        return 2
    print(
        "bench trajectory across committed snapshots: "
        + ", ".join(name for name, _ in snaps)
    )
    b5_table(snaps)
    b4c_table(snaps)
    b6_table(snaps)
    b6h_table(snaps)
    b8_table(snaps)
    print("\n(non-gating report; regression gating lives in ci/bench_threshold.py)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
