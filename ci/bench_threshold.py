#!/usr/bin/env python3
"""Fail CI when partitioned checking regresses against the committed baseline.

Usage: bench_threshold.py <baseline.json> <current.json>

Both files are `slin-bench/v1` reports (see `cargo bench -p slin-bench
--bench report -- --json`). The B5 rows are a pure function of the code
under measurement (pinned seeds, node counts — no timing), so regressions
are deterministic, not flaky:

  * every B5 row must keep byte-identical partitioned/monolithic verdicts;
  * every B5 row present in the baseline must keep at least 80% of its
    baseline node-count reduction ratio (i.e. fail on a >20% regression);
  * rows new to the current report are allowed (they become the baseline
    once committed).
"""

import json
import sys

ALLOWED_REGRESSION = 0.20


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip())
        return 2
    with open(sys.argv[1]) as f:
        baseline = json.load(f)
    with open(sys.argv[2]) as f:
        current = json.load(f)

    failures = []
    base_rows = {row["scenario"]: row for row in baseline.get("b5_partition", [])}
    cur_rows = current.get("b5_partition", [])
    if not cur_rows:
        failures.append("current report has no b5_partition rows")

    for row in cur_rows:
        name = row["scenario"]
        if not row.get("verdicts_agree", False):
            failures.append(f"{name}: partitioned verdicts diverged from monolithic")
        base = base_rows.get(name)
        if base is None:
            print(f"  new row (no baseline): {name}: ratio {row['node_ratio']:.2f}")
            continue
        floor = (1.0 - ALLOWED_REGRESSION) * base["node_ratio"]
        status = "ok" if row["node_ratio"] >= floor else "REGRESSED"
        print(
            f"  {name}: ratio {row['node_ratio']:.2f} "
            f"(baseline {base['node_ratio']:.2f}, floor {floor:.2f}) {status}"
        )
        if row["node_ratio"] < floor:
            failures.append(
                f"{name}: node ratio {row['node_ratio']:.2f} fell below "
                f"{floor:.2f} (baseline {base['node_ratio']:.2f}, "
                f">{ALLOWED_REGRESSION:.0%} regression)"
            )

    dropped = sorted(set(base_rows) - {row["scenario"] for row in cur_rows})
    for name in dropped:
        failures.append(f"baseline row disappeared: {name}")

    if failures:
        print("\nbench threshold check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nbench threshold check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
