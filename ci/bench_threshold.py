#!/usr/bin/env python3
"""Fail CI when the bench report regresses against the committed baseline.

Usage: bench_threshold.py <baseline.json> <current.json>

Both files are `slin-bench/v2` reports (see `cargo bench -p slin-bench
--bench report -- --json`, which writes BENCH_PR10.json). The sections
checked:

B5 (partition speedups) — pure node counts (pinned seeds, no timing), so
regressions are deterministic, not flaky:
  * every row must keep byte-identical partitioned/monolithic verdicts;
  * every baseline row must keep at least 80% of its baseline node-count
    reduction ratio (fail on a >20% regression);
  * rows new to the current report are allowed.

B4c (engine counters) — memoisation effectiveness is tracked per scenario:
  memo_hits / memo_entries deltas are printed, and a scenario whose
  memo_hits fall below 80% of a non-zero baseline fails the build (the
  memo stopped firing).

B6 (streaming monitor throughput) — events/sec is wall-clock and varies
across machines, so rows are compared *normalised by the report's own
fastest row*: the keys × skew shape of the throughput curve is
machine-independent to first order. A row fails the build only when BOTH
its normalised share AND its absolute events/sec fall below 80% of the
baseline (the second condition keeps a genuine speedup in the fastest row
— which lowers every other row's share — from reading as a regression),
and whenever its streams stopped verifying (`ok = false`). The
deterministic B6 columns (fallback_searches, retired_events) are printed
for trend visibility.

B6h (epoch-GC monitor on hostile never-quiescent streams) — the window
sweep's work and memory columns are deterministic under the pinned seeds,
so they are gated hard:
  * every row must verify (`ok`), with zero lossy cuts and a non-zero
    epoch-cut / retirement count (the never-quiescent GC actually ran);
  * amortised work must stay bounded: search_nodes per event is capped
    absolutely, and the largest window's per-event work may exceed the
    smallest's by at most a fixed factor (the flat-in-window-size check —
    a stalled GC shows up as runaway nodes at the big windows);
  * the retained-memory proxy (peak_multiset_nodes) must stay linear in
    the window across the sweep (O(window + alphabet) memory);
  * against a baseline that has B6h rows, search_nodes and
    peak_multiset_nodes may regress by at most 20% per row;
  * p99 ingest latency is wall-clock, so it is only sanity-capped, far
    above normal jitter.

B8 (multi-tenant daemon pipeline) — end-to-end throughput is wall-clock,
so it uses the same dual-condition gate as B6 (a row fails only when both
its normalised share and its absolute events/sec fall >20% below the
baseline). The health columns are gated hard:
  * every row must verify (`ok` — no violations/ill-formed streams, no
    events lost, queue bound held during the run);
  * queue_depth_peak must never exceed the row's queue_capacity (the
    bounded-queue invariant);
  * the under-provisioned `daemon shed` scenario must report sheds > 0
    (backpressure stays observable), and the provisioned scenarios must
    report sheds == 0 (no spurious shedding).

B10 (switch-certified keyed checking on phase traces) — pure node counts
under pinned seeds, gated hard:
  * every row must keep byte-identical keyed/monolithic verdicts, in both
    the batch-partitioned and the sharded-streaming form;
  * every row must report **zero fallbacks** — the `slin-cert/v2`
    switch-independence certificate is statically proven, so the runtime
    must never abandon the keyed decomposition on a classifiable phase
    trace (a non-zero count means the certificate plumbing broke);
  * every multi-key `faulty` row must keep an absolute node-count
    reduction ratio above 2x (refutation localized to the violating
    class), plus the same 80%-of-baseline ratio floor as B5.

B9 (observability tax + witness-archive bound) — each row reports the
wall-clock ratio of an instrumented (full StackObserver) ingest loop to a
no-op-observer loop over identical pinned streams, as the median of
adjacently-paired per-rep ratios (pairing cancels clock drift, the median
kills scheduler outliers), so the ratio is machine-independent to first
order:
  * overhead_frac must stay at or below the 5% zero-cost budget on every
    row (the observer hooks must stay out of the hot path's way);
  * rows with archival off must report no archived events and no
    reconstruction (archival really is opt-in);
  * the archival row must reconstruct (the deep archive held every
    retired window) while keeping archived_events inside the
    O(shards · depth · window) event bound.
"""

import json
import sys

ALLOWED_REGRESSION = 0.20


def check_b5(baseline, current, failures):
    base_rows = {row["scenario"]: row for row in baseline.get("b5_partition", [])}
    cur_rows = current.get("b5_partition", [])
    if not cur_rows:
        failures.append("current report has no b5_partition rows")

    print("B5 — partition node-ratio check")
    for row in cur_rows:
        name = row["scenario"]
        if not row.get("verdicts_agree", False):
            failures.append(f"{name}: partitioned verdicts diverged from monolithic")
        base = base_rows.get(name)
        if base is None:
            print(f"  new row (no baseline): {name}: ratio {row['node_ratio']:.2f}")
            continue
        floor = (1.0 - ALLOWED_REGRESSION) * base["node_ratio"]
        status = "ok" if row["node_ratio"] >= floor else "REGRESSED"
        print(
            f"  {name}: ratio {row['node_ratio']:.2f} "
            f"(baseline {base['node_ratio']:.2f}, floor {floor:.2f}) {status}"
        )
        if row["node_ratio"] < floor:
            failures.append(
                f"{name}: node ratio {row['node_ratio']:.2f} fell below "
                f"{floor:.2f} (baseline {base['node_ratio']:.2f}, "
                f">{ALLOWED_REGRESSION:.0%} regression)"
            )

    dropped = sorted(set(base_rows) - {row["scenario"] for row in cur_rows})
    for name in dropped:
        failures.append(f"b5 baseline row disappeared: {name}")


# The absolute B10 acceptance bar: multi-key faulty phase workloads must
# refute at least 2x cheaper keyed than monolithic, independent of any
# baseline drift.
B10_MIN_FAULTY_RATIO = 2.0


def check_b10(baseline, current, failures):
    base_rows = {row["scenario"]: row for row in baseline.get("b10_phase_partition", [])}
    cur_rows = current.get("b10_phase_partition", [])
    if not cur_rows:
        failures.append("current report has no b10_phase_partition rows")

    print("B10 — switch-certified phase-trace check (node ratios + zero fallbacks)")
    for row in cur_rows:
        name = row["scenario"]
        if not row.get("verdicts_agree", False):
            failures.append(f"{name}: keyed batch verdicts diverged from monolithic")
        if not row.get("stream_agrees", False):
            failures.append(f"{name}: keyed streaming verdicts diverged from monolithic")
        if row.get("fallbacks", 1) != 0:
            failures.append(
                f"{name}: {row['fallbacks']} fallback(s) — the certified keyed "
                f"path abandoned a statically-proven decomposition"
            )
        faulty_multikey = "faulty" in name and row.get("keys", 0) > 1
        if faulty_multikey and row["node_ratio"] <= B10_MIN_FAULTY_RATIO:
            failures.append(
                f"{name}: node ratio {row['node_ratio']:.2f} at or below the "
                f"absolute {B10_MIN_FAULTY_RATIO:.0f}x refutation-speedup floor"
            )
        base = base_rows.get(name)
        if base is None:
            print(
                f"  new row (no baseline): {name}: ratio {row['node_ratio']:.2f}, "
                f"fallbacks {row['fallbacks']}"
            )
            continue
        floor = (1.0 - ALLOWED_REGRESSION) * base["node_ratio"]
        status = "ok" if row["node_ratio"] >= floor else "REGRESSED"
        print(
            f"  {name}: ratio {row['node_ratio']:.2f} "
            f"(baseline {base['node_ratio']:.2f}, floor {floor:.2f}) "
            f"fallbacks {row['fallbacks']} {status}"
        )
        if row["node_ratio"] < floor:
            failures.append(
                f"{name}: node ratio {row['node_ratio']:.2f} fell below "
                f"{floor:.2f} (baseline {base['node_ratio']:.2f}, "
                f">{ALLOWED_REGRESSION:.0%} regression)"
            )

    dropped = sorted(set(base_rows) - {row["scenario"] for row in cur_rows})
    for name in dropped:
        failures.append(f"b10 baseline row disappeared: {name}")


def check_b4c(baseline, current, failures):
    base_rows = {row["scenario"]: row for row in baseline.get("b4c_checker_stats", [])}
    cur_rows = current.get("b4c_checker_stats", [])
    print("B4c — engine counter tracking (memo_hits / memo_entries / nodes)")
    for row in cur_rows:
        name = row["scenario"]
        stats = row["stats"]
        base = base_rows.get(name)
        if base is None:
            print(
                f"  new row (no baseline): {name}: "
                f"hits {stats['memo_hits']} entries {stats['memo_entries']}"
            )
            continue
        bstats = base["stats"]
        print(
            f"  {name}: hits {bstats['memo_hits']} -> {stats['memo_hits']}, "
            f"entries {bstats['memo_entries']} -> {stats['memo_entries']}, "
            f"nodes {bstats['nodes']} -> {stats['nodes']}"
        )
        if not row.get("ok", False):
            failures.append(f"{name}: b4c scenario no longer verifies")
        if bstats["memo_hits"] > 0:
            floor = (1.0 - ALLOWED_REGRESSION) * bstats["memo_hits"]
            if stats["memo_hits"] < floor:
                failures.append(
                    f"{name}: memo_hits {stats['memo_hits']} fell below "
                    f"{floor:.0f} (baseline {bstats['memo_hits']}, "
                    f">{ALLOWED_REGRESSION:.0%} memoisation regression)"
                )
    dropped = sorted(set(base_rows) - {row["scenario"] for row in cur_rows})
    for name in dropped:
        failures.append(f"b4c baseline row disappeared: {name}")


def normalised_throughput(rows):
    top = max((row["events_per_sec"] for row in rows), default=0.0)
    if top <= 0.0:
        return {}
    return {row["scenario"]: row["events_per_sec"] / top for row in rows}


def check_b6(baseline, current, failures):
    base_rows = baseline.get("b6_streaming", [])
    cur_rows = current.get("b6_streaming", [])
    if not cur_rows:
        failures.append("current report has no b6_streaming rows")
        return
    base_norm = normalised_throughput(base_rows)
    cur_norm = normalised_throughput(cur_rows)
    base_abs = {row["scenario"]: row["events_per_sec"] for row in base_rows}

    print("B6 — streaming sustained-throughput check (normalised to fastest row)")
    for row in cur_rows:
        name = row["scenario"]
        if not row.get("ok", False):
            failures.append(f"{name}: streaming verdicts stopped verifying")
        cur = cur_norm.get(name, 0.0)
        base = base_norm.get(name)
        det = f"fallbacks {row['fallback_searches']}, retired {row['retired_events']}"
        if base is None:
            print(f"  new row (no baseline): {name}: share {cur:.3f} ({det})")
            continue
        floor = (1.0 - ALLOWED_REGRESSION) * base
        abs_floor = (1.0 - ALLOWED_REGRESSION) * base_abs[name]
        # Both signals must drop: the share alone also falls when a
        # *different* row genuinely speeds up, and the absolute number
        # alone also falls on a uniformly slower machine.
        regressed = cur < floor and row["events_per_sec"] < abs_floor
        status = "REGRESSED" if regressed else "ok"
        print(
            f"  {name}: share {cur:.3f} (baseline {base:.3f}, floor {floor:.3f}) "
            f"{status} ({det})"
        )
        if regressed:
            failures.append(
                f"{name}: sustained throughput fell >{ALLOWED_REGRESSION:.0%} in "
                f"both normalised share ({cur:.3f} < {floor:.3f}) and absolute "
                f"events/sec ({row['events_per_sec']:.0f} < {abs_floor:.0f})"
            )
    dropped = sorted(
        {row["scenario"] for row in base_rows} - {row["scenario"] for row in cur_rows}
    )
    for name in dropped:
        failures.append(f"b6 baseline row disappeared: {name}")


# B6h bounds, calibrated on the committed BENCH_PR6.json (max observed:
# ~830 nodes/event, 7.6x small->large window work growth, 1.1x memory
# growth, 63ms p99): generous enough for machine jitter and bench
# retuning, tight enough that a stalled epoch GC (which showed up as
# ~19k nodes/event and multi-second p99s during development) fails.
B6H_MAX_NODES_PER_EVENT = 2500.0
B6H_FLATNESS_FACTOR = 12.0
B6H_MEMORY_SLACK = 1.5
B6H_ALPHABET_SLACK = 16.0
B6H_MAX_P99_US = 500_000.0


def check_b6h(baseline, current, failures):
    base_rows = {row["scenario"]: row for row in baseline.get("b6h_hostile", [])}
    cur_rows = current.get("b6h_hostile", [])
    if not cur_rows:
        failures.append("current report has no b6h_hostile rows")
        return

    print("B6h — hostile-stream epoch-GC check (deterministic work/memory columns)")
    families = {}
    for row in cur_rows:
        name = row["scenario"]
        events = max(row["events"], 1)
        per_event = row["search_nodes"] / events
        families.setdefault(name.rsplit(" w=", 1)[0], []).append(row)
        print(
            f"  {name}: {per_event:.0f} nodes/event, cuts {row['epoch_cuts']}, "
            f"retired {row['retired_events']}/{row['events']}, "
            f"ms_nodes {row['peak_multiset_nodes']}, "
            f"p99 {row['p99_ingest_us'] / 1000:.1f}ms"
        )
        if not row.get("ok", False):
            failures.append(f"{name}: hostile stream stopped verifying")
        if row["lossy_cuts"] != 0:
            failures.append(f"{name}: exact mode took {row['lossy_cuts']} lossy cuts")
        if row["epoch_cuts"] == 0 or row["retired_events"] == 0:
            failures.append(f"{name}: epoch GC never fired (vacuous hostile row)")
        if per_event > B6H_MAX_NODES_PER_EVENT:
            failures.append(
                f"{name}: {per_event:.0f} search nodes/event exceeds the "
                f"{B6H_MAX_NODES_PER_EVENT:.0f} amortised-ingest cap"
            )
        if row["p99_ingest_us"] > B6H_MAX_P99_US:
            failures.append(
                f"{name}: p99 ingest {row['p99_ingest_us'] / 1000:.0f}ms exceeds "
                f"the {B6H_MAX_P99_US / 1000:.0f}ms sanity cap"
            )
        base = base_rows.get(name)
        if base is not None:
            for col in ("search_nodes", "peak_multiset_nodes"):
                ceiling = (1.0 + ALLOWED_REGRESSION) * base[col]
                if base[col] > 0 and row[col] > ceiling:
                    failures.append(
                        f"{name}: {col} {row[col]} exceeds {ceiling:.0f} "
                        f"(baseline {base[col]}, >{ALLOWED_REGRESSION:.0%} "
                        f"regression)"
                    )

    # Flatness in window size, per workload family: amortised work and the
    # memory proxy at the largest window vs the smallest.
    for family, rows in families.items():
        rows = sorted(rows, key=lambda r: r["window"])
        small, large = rows[0], rows[-1]
        if small is large:
            continue
        work = lambda r: r["search_nodes"] / max(r["events"], 1)  # noqa: E731
        if work(small) > 0 and work(large) > B6H_FLATNESS_FACTOR * work(small):
            failures.append(
                f"{family}: per-event work grew {work(large) / work(small):.1f}x "
                f"from w={small['window']} to w={large['window']} "
                f"(flatness cap {B6H_FLATNESS_FACTOR:.0f}x)"
            )
        linear = (large["window"] + B6H_ALPHABET_SLACK) / (
            small["window"] + B6H_ALPHABET_SLACK
        )
        growth = large["peak_multiset_nodes"] / max(small["peak_multiset_nodes"], 1)
        if growth > linear * B6H_MEMORY_SLACK:
            failures.append(
                f"{family}: retained memory grew {growth:.2f}x across the window "
                f"sweep vs a linear {linear:.2f}x (O(window + alphabet) violated)"
            )

    dropped = sorted(set(base_rows) - {row["scenario"] for row in cur_rows})
    for name in dropped:
        failures.append(f"b6h baseline row disappeared: {name}")


def check_b8(baseline, current, failures):
    base_rows = baseline.get("b8_multitenant", [])
    cur_rows = current.get("b8_multitenant", [])
    if not cur_rows:
        failures.append("current report has no b8_multitenant rows")
        return
    base_norm = normalised_throughput(base_rows)
    cur_norm = normalised_throughput(cur_rows)
    base_abs = {row["scenario"]: row["events_per_sec"] for row in base_rows}

    print("B8 — multi-tenant daemon check (normalised throughput + queue/shed health)")
    for row in cur_rows:
        name = row["scenario"]
        if not row.get("ok", False):
            failures.append(f"{name}: daemon run stopped verifying")
        if row["queue_depth_peak"] > row["queue_capacity"]:
            failures.append(
                f"{name}: queue depth peaked at {row['queue_depth_peak']} "
                f"over the {row['queue_capacity']}-event bound"
            )
        if "shed" in name:
            if row["sheds"] == 0:
                failures.append(
                    f"{name}: saturating scenario never shed "
                    f"(backpressure no longer observable)"
                )
        elif row["sheds"] != 0:
            failures.append(
                f"{name}: provisioned scenario shed {row['sheds']} times "
                f"(spurious backpressure)"
            )
        cur = cur_norm.get(name, 0.0)
        base = base_norm.get(name)
        det = (
            f"peak_q {row['queue_depth_peak']}/{row['queue_capacity']}, "
            f"sheds {row['sheds']}, shed_tenants {row['shed_tenants']}"
        )
        if base is None:
            print(f"  new row (no baseline): {name}: share {cur:.3f} ({det})")
            continue
        floor = (1.0 - ALLOWED_REGRESSION) * base
        abs_floor = (1.0 - ALLOWED_REGRESSION) * base_abs[name]
        regressed = cur < floor and row["events_per_sec"] < abs_floor
        status = "REGRESSED" if regressed else "ok"
        print(
            f"  {name}: share {cur:.3f} (baseline {base:.3f}, floor {floor:.3f}) "
            f"{status} ({det})"
        )
        if regressed:
            failures.append(
                f"{name}: daemon throughput fell >{ALLOWED_REGRESSION:.0%} in "
                f"both normalised share ({cur:.3f} < {floor:.3f}) and absolute "
                f"events/sec ({row['events_per_sec']:.0f} < {abs_floor:.0f})"
            )
    dropped = sorted(
        {row["scenario"] for row in base_rows} - {row["scenario"] for row in cur_rows}
    )
    for name in dropped:
        failures.append(f"b8 baseline row disappeared: {name}")


# The observer-overhead budget: instrumented ingest may cost at most 5%
# over the no-op loop. The rows report the median of paired per-rep
# ratios, which filters drift and scheduler noise; anything past 5%
# means the hooks left the cold path.
B9_MAX_OVERHEAD = 0.05


def check_b9(baseline, current, failures):
    cur_rows = current.get("b9_observability", [])
    if not cur_rows:
        failures.append("current report has no b9_observability rows")
        return

    print("B9 — observer overhead (median paired ratio) + witness-archive bound")
    for row in cur_rows:
        name = row["scenario"]
        print(
            f"  {name}: overhead {row['overhead_frac']:+.2%}, "
            f"archived {row['archived_events']}/{row['archive_event_bound']} "
            f"(depth {row['archive_windows']}), "
            f"reconstructed {row['reconstructed']}"
        )
        if not row.get("ok", False):
            failures.append(f"{name}: instrumented streams stopped verifying")
        if row["overhead_frac"] > B9_MAX_OVERHEAD:
            failures.append(
                f"{name}: observer overhead {row['overhead_frac']:.2%} exceeds "
                f"the {B9_MAX_OVERHEAD:.0%} zero-cost budget"
            )
        if row["archive_windows"] == 0:
            if row["reconstructed"] or row["archived_events"] != 0:
                failures.append(
                    f"{name}: archival activity without archive_windows "
                    f"(archived {row['archived_events']}, "
                    f"reconstructed {row['reconstructed']})"
                )
        else:
            if not row["reconstructed"]:
                failures.append(f"{name}: deep archive failed to reconstruct")
            if row["archived_events"] == 0:
                failures.append(f"{name}: archive never captured a retired window")
            if row["archived_events"] > row["archive_event_bound"]:
                failures.append(
                    f"{name}: archived {row['archived_events']} events over the "
                    f"O(shards·depth·window) bound {row['archive_event_bound']}"
                )

    base_names = {row["scenario"] for row in baseline.get("b9_observability", [])}
    dropped = sorted(base_names - {row["scenario"] for row in cur_rows})
    for name in dropped:
        failures.append(f"b9 baseline row disappeared: {name}")


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip())
        return 2
    with open(sys.argv[1]) as f:
        baseline = json.load(f)
    with open(sys.argv[2]) as f:
        current = json.load(f)

    failures = []
    check_b5(baseline, current, failures)
    check_b10(baseline, current, failures)
    check_b4c(baseline, current, failures)
    check_b6(baseline, current, failures)
    check_b6h(baseline, current, failures)
    check_b8(baseline, current, failures)
    check_b9(baseline, current, failures)

    if failures:
        print("\nbench threshold check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nbench threshold check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
