//! The intra-object composition theorem (Theorems 3 and 5, experiment E6):
//! whenever both phase projections of a trace are speculatively
//! linearizable, the whole trace is.
//!
//! Exercised two ways:
//!
//! 1. **Specification-driven**: random walks of the composition of two ALM
//!    specification automata (universal ADT, exact `rinit`) produce traces
//!    whose projections satisfy `SLin(1,2)` and `SLin(2,3)` *by
//!    construction*; the composed trace must satisfy `SLin(1,3)`.
//! 2. **Implementation-driven**: simulated Quorum+Backup executions under
//!    contention, crashes and loss; every outcome class of
//!    [`slin_core::compose::check_composition`] except `TheoremViolated` is
//!    acceptable, and `Holds` must occur.

use slin_adt::{Consensus, Universal};
use slin_consensus::harness::{run_scenario, Scenario};
use slin_core::compose::{check_composition, CompositionOutcome};
use slin_core::initrel::{ConsensusInit, ExactInit};
use slin_ioa::alm::{external_trace, AlmAutomaton, AlmParams};
use slin_ioa::compose::Composition;
use slin_ioa::explore::random_walk;
use slin_trace::PhaseId;

fn ph(n: u32) -> PhaseId {
    PhaseId::new(n)
}

#[test]
fn alm_composition_traces_satisfy_the_theorem() {
    let adt: Universal<u8> = Universal::new();
    let mk = |first, last| AlmParams {
        first,
        last,
        clients: 2,
        inputs: vec![1u8, 2],
    };
    let comp = Composition::new(AlmAutomaton::new(mk(1, 2)), AlmAutomaton::new(mk(2, 3)));
    let mut holds = 0;
    for seed in 0..60 {
        let actions = random_walk(&comp, 18, seed);
        let t = external_trace(&actions);
        let out = check_composition(&adt, ExactInit::new(), &t, ph(1), ph(2), ph(3));
        assert!(
            out.is_consistent(),
            "seed {seed}: THEOREM VIOLATED on {t:?}\n{out:?}"
        );
        // Spec-generated traces must in fact satisfy both premises.
        match out {
            CompositionOutcome::Holds => holds += 1,
            CompositionOutcome::PremiseFailed { phase, ref error } => panic!(
                "seed {seed}: spec automaton produced a non-SLin phase-{phase} trace: {error}\n{t:?}"
            ),
            CompositionOutcome::TheoremViolated(_) => unreachable!("checked above"),
        }
    }
    assert_eq!(holds, 60);
}

#[test]
fn quorum_backup_simulation_traces_satisfy_the_theorem() {
    let mut holds = 0;
    let mut checked = 0;
    for seed in 0..40 {
        let scenarios = [
            Scenario::contended(3, &[1, 2], seed),
            Scenario::fault_free(3, &[(4, 0)])
                .with_crashes(&[(0, 0)])
                .with_seed(seed),
            Scenario::fault_free(3, &[(1, 0), (2, 0)]).with_loss(0.15, seed),
        ];
        for (k, s) in scenarios.iter().enumerate() {
            let out = run_scenario(s);
            if out.trace.len() > 10 {
                continue; // keep the exhaustive checker fast
            }
            checked += 1;
            let comp = check_composition(
                &Consensus,
                ConsensusInit::new(),
                &out.trace,
                ph(1),
                ph(2),
                ph(3),
            );
            assert!(
                comp.is_consistent(),
                "seed {seed} scenario {k}: THEOREM VIOLATED on {:?}\n{comp:?}",
                out.trace
            );
            if comp == CompositionOutcome::Holds {
                holds += 1;
            }
        }
    }
    assert!(checked > 20, "too few checkable traces ({checked})");
    assert!(holds > 0, "no scenario satisfied both premises");
}

#[test]
fn theorem_2_composed_traces_project_to_linearizable_object_traces() {
    // Theorem 2: SLin(1, m) restricted to the object signature is Lin — the
    // composed protocol's object projection must be linearizable.
    use slin_core::compose::project_object;
    use slin_core::lin::LinChecker;

    for seed in 0..30 {
        let out = run_scenario(&Scenario::contended(3, &[1, 2], seed));
        let obj = project_object::<Consensus, _>(&out.trace);
        if obj.len() <= 10 {
            let lin = LinChecker::owned(Consensus);
            assert!(lin.check(&obj).is_ok(), "seed {seed}: {obj:?}");
        }
        assert!(slin_core::invariants::consensus_linearizable(&out.trace));
    }
}

#[test]
fn definition_2_composition_operator_matches_premise_evaluation() {
    // The generic trace-property composition (Definition 2, `Compose`)
    // instantiated with the two phase properties must agree with the
    // premise evaluation done by `check_composition`: t ∈ P12 ‖ P23 iff
    // both projections satisfy their phase property.
    use slin_core::slin::SlinChecker;
    use slin_trace::prop::{Compose, TraceProperty};
    use slin_trace::PhaseSignature;

    let q = SlinChecker::owned(Consensus, ConsensusInit::new(), ph(1), ph(2));
    let b = SlinChecker::owned(Consensus, ConsensusInit::new(), ph(2), ph(3));
    let p12 = |t: &slin_trace::Trace<slin_consensus::ConsAction>| q.check(t).is_ok();
    let p23 = |t: &slin_trace::Trace<slin_consensus::ConsAction>| b.check(t).is_ok();
    let composed_property = Compose::new(
        PhaseSignature::new(ph(1), ph(2)),
        p12,
        PhaseSignature::new(ph(2), ph(3)),
        p23,
    );

    let mut agreements = 0;
    for seed in 0..20 {
        let out = run_scenario(&Scenario::contended(3, &[1, 2], seed));
        if out.trace.len() > 10 {
            continue;
        }
        let by_operator = composed_property.holds(&out.trace);
        let by_projection = !matches!(
            check_composition(
                &Consensus,
                ConsensusInit::new(),
                &out.trace,
                ph(1),
                ph(2),
                ph(3)
            ),
            CompositionOutcome::PremiseFailed { .. }
        );
        assert_eq!(by_operator, by_projection, "seed {seed}");
        agreements += 1;
    }
    assert!(agreements > 5, "too few comparisons: {agreements}");
}

#[test]
fn property_1_satisfaction_lifts_through_composition() {
    // Property 1 of the paper: Q1 ⊨ P1 ∧ Q2 ⊨ P2 ⇒ Q1 ‖ Q2 ⊨ P1 ‖ P2 —
    // exercised with finite trace sets drawn from the ALM automata.
    use slin_adt::Universal;
    use slin_core::slin::SlinChecker;
    use slin_ioa::alm::external_trace;
    use slin_trace::prop::satisfies;

    let adt: Universal<u8> = Universal::new();
    let q = SlinChecker::owned(adt, ExactInit::new(), ph(1), ph(2));
    let mk = |first, last| AlmParams {
        first,
        last,
        clients: 2,
        inputs: vec![1u8, 2],
    };
    // Q1: traces of the first-phase automaton; they satisfy P1 = SLin(1,2).
    let alm12 = AlmAutomaton::new(mk(1, 2));
    let q1: Vec<_> = (0..15)
        .map(|s| external_trace(&random_walk(&alm12, 12, s)))
        .collect();
    let p1 = |t: &slin_trace::Trace<_>| q.check(t).is_ok();
    assert_eq!(satisfies(&q1, &p1), Ok(()));
}
