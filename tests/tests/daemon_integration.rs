//! End-to-end daemon checks: many tenants' hostile streams over the wire
//! transport, verdicts differential against per-tenant batch checking,
//! and observable backpressure shedding under saturating load.

use slin_adt::{KvInput, KvKeyPartitioner, KvStore};
use slin_core::initrel::ExactInit;
use slin_core::session::Checker;
use slin_core::slin::SlinChecker;
use slin_core::stream::MonitorStatus;
use slin_daemon::{generate, transport, Daemon, DaemonConfig, LoadConfig, TenantPolicy};
use slin_trace::PhaseId;

/// The daemon's own tenant model, rebuilt for the batch oracle: the
/// speculative checker over the `(1, 2)` phase pair under the exact init
/// relation (switch-free tenant streams coincide with linearizability).
fn tenant_model() -> slin_daemon::TenantChecker {
    SlinChecker::owned(KvStore, ExactInit::new(), PhaseId::FIRST, PhaseId::new(2))
}

/// 1000 tenants of hostile, Zipf-interleaved streams through the full
/// pipeline — wire encode, bounded transport, decode, route, lane pump —
/// must yield, for every tenant, a final verdict byte-identical to a
/// batch [`Checker`] session over that tenant's reference trace. The
/// exactness-preserving configuration is explicit: no GC window, shed
/// disabled (large queues, lossless policy).
#[test]
fn thousand_tenant_verdicts_match_per_tenant_batch_checking() {
    let cfg = LoadConfig {
        tenants: 1000,
        steps_per_tenant: 30,
        clients: 3,
        keys: 3,
        tenant_skew: 1.0,
        error_prob: 0.08, // some tenants violate, most stay clean
        chunk_frames: 256,
        seed: 42,
    };
    let workload = generate(&cfg);
    assert!(
        workload.frames > 10_000,
        "workload too small to be interesting"
    );

    let lossless = TenantPolicy {
        queue_capacity: usize::MAX,
        window: None,
        shed_lossy: false,
        ..TenantPolicy::default()
    };
    let mut daemon = Daemon::new(DaemonConfig {
        workers: 4,
        default_policy: lossless,
    });
    let (rx, producer) = transport(workload.chunks, 4);
    for chunk in rx.iter() {
        daemon.ingest_bytes(&chunk).unwrap();
        daemon.pump();
    }
    producer.join().unwrap();
    daemon.pump();

    assert_eq!(daemon.tenants(), 1000);
    let counts = daemon.poll_verdicts();
    assert_eq!(counts.unknown, 0, "lossless run must never report Unknown");
    assert!(counts.violation > 0, "error_prob should trip some tenants");
    assert!(counts.ok > counts.violation, "most tenants stay clean");

    let mut mismatches = 0;
    for tenant in daemon.tenant_ids() {
        let reference = &workload.reference[&tenant];
        let mut batch = Checker::builder(tenant_model())
            .partitioner(KvKeyPartitioner)
            .build::<Vec<KvInput>>();
        let expected = batch.check(reference);
        let session = daemon.tenant_session_mut(tenant).unwrap();
        let report = session.report().expect("streamed tenants report");
        assert_eq!(
            report.events,
            reference.len(),
            "tenant {tenant} event count"
        );
        if report.verdict != expected.outcome {
            eprintln!(
                "tenant {tenant}: streaming {:?} != batch {:?}",
                report.verdict, expected.outcome
            );
            mismatches += 1;
        }
    }
    assert_eq!(mismatches, 0, "streaming and batch verdicts must agree");
}

/// Saturating load against tiny queues: the daemon must shed (lossy
/// epoch forcing), the shed must be visible in the metrics surface, and
/// the per-tenant queue bound must hold throughout.
#[test]
fn saturating_load_sheds_observably_and_keeps_queues_bounded() {
    let cfg = LoadConfig {
        tenants: 16,
        steps_per_tenant: 400,
        clients: 4,
        keys: 2,
        tenant_skew: 1.5, // hot tenants saturate first
        error_prob: 0.0,
        chunk_frames: 512,
        seed: 9,
    };
    let workload = generate(&cfg);
    let tight = TenantPolicy {
        queue_capacity: 8,
        window: Some(16),
        shed_lossy: true,
        ..TenantPolicy::default()
    };
    let mut daemon = Daemon::new(DaemonConfig {
        workers: 2,
        default_policy: tight,
    });
    // No pump between chunks: the ingest path alone must keep up, which
    // forces the high-water shed on every busy tenant.
    let (rx, producer) = transport(workload.chunks, 2);
    for chunk in rx.iter() {
        daemon.ingest_bytes(&chunk).unwrap();
    }
    producer.join().unwrap();
    daemon.pump();
    daemon.poll_verdicts();

    let metrics = daemon.metrics();
    assert!(metrics.sheds > 0, "saturation must shed: {metrics:?}");
    assert!(metrics.shed_tenants > 0);
    assert!(
        metrics.queue_depth_peak <= 8,
        "queue bound violated: peak {}",
        metrics.queue_depth_peak
    );
    assert_eq!(
        metrics.events, workload.frames as u64,
        "nothing lost, only degraded"
    );
    // Shedding degrades verdicts at most to Unknown — never to a false
    // violation on these linearizable-by-construction streams.
    let counts = metrics.verdicts;
    assert_eq!(counts.violation, 0);
    assert_eq!(counts.ill_formed, 0);
    assert_eq!(counts.ok + counts.unknown, 16);
}

/// Per-tenant policy overrides: a lossless tenant next to lossy ones
/// keeps its exact verdict under the same saturating load.
#[test]
fn policy_overrides_isolate_lossless_tenants_from_the_shed() {
    let cfg = LoadConfig {
        tenants: 4,
        steps_per_tenant: 300,
        clients: 4,
        keys: 2,
        tenant_skew: 0.0,
        error_prob: 0.0,
        chunk_frames: 256,
        seed: 17,
    };
    let workload = generate(&cfg);
    let mut daemon = Daemon::new(DaemonConfig {
        workers: 2,
        default_policy: TenantPolicy {
            queue_capacity: 4,
            window: Some(8),
            shed_lossy: true,
            ..TenantPolicy::default()
        },
    });
    // Tenant 2 opts out of the lossy shed via the parsed policy surface.
    daemon.set_policy(
        2,
        TenantPolicy::parse("queue=4,window=none,lossy=false").unwrap(),
    );
    for chunk in &workload.chunks {
        daemon.ingest_bytes(chunk).unwrap();
    }
    daemon.pump();
    daemon.poll_verdicts();
    assert!(!daemon.is_shedding(2), "lossless tenant must not shed");
    assert!(daemon.metrics().sheds > 0, "the lossy neighbours do shed");
    let session = daemon.tenant_session_mut(2).unwrap();
    assert_eq!(session.status(), Some(MonitorStatus::Ok));
    let report = session.report().unwrap();
    assert_eq!(report.events, workload.reference[&2].len());
    assert!(report.verdict.is_ok());
}
