//! Witness-archival differential suite.
//!
//! The archival contract: a bounded-window (GC'd) monitor whose witness
//! archive is **deep enough** (no ring eviction) produces reports —
//! verdict *and* witness/error, byte for byte — identical to an
//! **unbounded** monitor on the same stream, because `report()`
//! reconstructs the closed trace from the archived `(index, action)`
//! pairs and re-runs the very same deterministic split check. When the
//! archive is **too shallow** (ring evicted) or **disabled**, the report
//! degrades to the plain window-relative GC verdict — also checked
//! differentially, against a no-archive monitor with the same GC policy.
//!
//! Corpora: the pinned-seed friendly/perturbed multi-key sweep (violations
//! included via `error_prob`) and the hostile never-quiescent generator.

use proptest::prelude::*;
use slin_adt::{KvInput, KvOutput};
use slin_adt::{KvKeyPartitioner, KvStore};
use slin_core::gen::{
    random_hostile_kv_trace, random_multikey_kv_trace, HostileConfig, MultiKeyConfig,
};
use slin_core::lin::LinChecker;
use slin_monitor::{LinMonitor, MonitorConfig};
use slin_trace::{Action, ClientId, PhaseId};

/// A bounded-window monitor with an archive of `depth` retired windows
/// (`0` disables archival — the plain GC monitor).
fn gc_monitor(window: usize, depth: usize) -> LinMonitor<KvStore, KvKeyPartitioner> {
    LinMonitor::owned_with_config(
        KvStore,
        KvKeyPartitioner,
        MonitorConfig {
            window: Some(window),
            archive_windows: depth,
            ..Default::default()
        },
    )
}

/// An unbounded monitor — the byte-identity oracle.
fn unbounded_monitor() -> LinMonitor<KvStore, KvKeyPartitioner> {
    LinMonitor::owned(KvStore, KvKeyPartitioner)
}

fn configs() -> impl Strategy<Value = MultiKeyConfig> {
    (
        1..=4u32,     // keys
        2..=4u32,     // clients
        30..=90usize, // steps — long enough that small windows really retire
        0..=1u8,      // perturbation tier (violations included)
        0..=6_000u64, // seed
    )
        .prop_map(|(keys, clients, steps, error, seed)| MultiKeyConfig {
            clients,
            steps,
            keys,
            skew: 0.7,
            contention: 0.3,
            error_prob: [0.0, 0.3][error as usize],
            seed,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// Deep archive ⇒ the GC'd monitor's report is byte-identical to the
    /// unbounded monitor's (and hence to the batch checker's), violations
    /// and witnesses included; the report says so via `reconstructed`.
    #[test]
    fn deep_archive_reconstructs_unbounded_report(cfg in configs()) {
        let t = random_multikey_kv_trace(&cfg);
        let mut archived = gc_monitor(8, 1024); // never evicts at this size
        let mut oracle = unbounded_monitor();
        for a in t.iter() {
            archived.ingest(a.clone());
            oracle.ingest(a.clone());
        }
        let got = archived.report();
        let want = oracle.report();
        prop_assert_eq!(
            format!("{:?}", got.verdict),
            format!("{:?}", want.verdict),
            "cfg {:?}", cfg
        );
        prop_assert_eq!(
            format!("{:?}", got.verdict),
            format!("{:?}", LinChecker::owned(KvStore).check(&t)),
            "cfg {:?}", cfg
        );
        // Reconstruction fires exactly when GC retired something.
        prop_assert_eq!(got.reconstructed, got.prefix_committed, "cfg {:?}", cfg);
        // Memory bound: everything retired is archived, nothing more.
        prop_assert_eq!(
            got.shard.archived_events,
            got.shard.retired_events,
            "cfg {:?}", cfg
        );
    }

    /// Shallow archive (ring evicts) ⇒ reconstruction refuses and the
    /// report degrades to exactly the plain GC'd (no-archive) monitor's
    /// window-relative verdict.
    #[test]
    fn shallow_archive_degrades_to_window_relative(cfg in configs()) {
        let t = random_multikey_kv_trace(&cfg);
        let mut shallow = gc_monitor(4, 1);
        let mut plain = gc_monitor(4, 0);
        for a in t.iter() {
            shallow.ingest(a.clone());
            plain.ingest(a.clone());
        }
        let got = shallow.report();
        let want = plain.report();
        // Degradation happens only when a second window actually retired;
        // either way the two reports must agree whenever `shallow` did not
        // manage a reconstruction.
        if !got.reconstructed {
            prop_assert_eq!(
                format!("{:?}", got.verdict),
                format!("{:?}", want.verdict),
                "cfg {:?}", cfg
            );
        }
        // The ring bound holds: at most one retired window per shard stays
        // archived.
        prop_assert!(
            got.shard.archived_events <= got.shard.retired_events,
            "cfg {:?}", cfg
        );
    }
}

/// Hostile never-quiescent streams: whichever path `report()` takes, it
/// must match the matching oracle — the unbounded monitor when it
/// reconstructed, the plain GC monitor when it did not.
fn hostile_configs() -> impl Strategy<Value = HostileConfig> {
    (
        1..=2u32,     // keys
        0..=1u8,      // never-responding tier
        0..=1u8,      // perturbation tier
        0..=3_000u64, // seed
    )
        .prop_map(|(keys, never, error, seed)| HostileConfig {
            clients: 3,
            steps: 60,
            keys,
            skew: 0.7,
            never_frac: [0.08, 0.2][never as usize],
            stuck_applies: true,
            delay_zipf: 1.1,
            max_delay: 8,
            error_prob: [0.0, 0.25][error as usize],
            seed,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    #[test]
    fn hostile_streams_match_their_oracle(cfg in hostile_configs()) {
        let t = random_hostile_kv_trace(&cfg);
        let mut archived = gc_monitor(6, 1024);
        let mut plain = gc_monitor(6, 0);
        let mut oracle = unbounded_monitor();
        for a in t.iter() {
            archived.ingest(a.clone());
            plain.ingest(a.clone());
            oracle.ingest(a.clone());
        }
        let got = archived.report();
        let want = if got.reconstructed {
            oracle.report()
        } else {
            plain.report()
        };
        prop_assert_eq!(
            format!("{:?}", got.verdict),
            format!("{:?}", want.verdict),
            "cfg {:?} (reconstructed: {})", cfg, got.reconstructed
        );
    }
}

/// A long linearizable run on one key, so a small window retires many
/// times before the trailing violation arrives.
fn violating_single_key_actions(rounds: u64) -> Vec<slin_core::ObjAction<KvStore, ()>> {
    let (c, p) = (ClientId::new(1), PhaseId::FIRST);
    let mut actions = Vec::new();
    for round in 0..rounds {
        let input = KvInput::Put(1, round);
        actions.push(Action::invoke(c, p, input));
        actions.push(Action::respond(c, p, input, KvOutput::Ack));
    }
    // The forensic event: a read of a value nobody ever wrote.
    actions.push(Action::invoke(c, p, KvInput::Get(1)));
    actions.push(Action::respond(
        c,
        p,
        KvInput::Get(1),
        KvOutput::Found(Some(9999)),
    ));
    actions
}

/// The acceptance case spelled out: a violation arriving long after GC
/// retired the history is reported with the **full** forensic error of an
/// unGC'd monitor — byte-identical — because the archive still holds every
/// retired window.
#[test]
fn violation_after_gc_reconstructs_full_forensics() {
    let actions = violating_single_key_actions(40);
    let mut archived = gc_monitor(8, 64);
    let mut plain = gc_monitor(8, 0);
    let mut oracle = unbounded_monitor();
    for a in &actions {
        archived.ingest(a.clone());
        plain.ingest(a.clone());
        oracle.ingest(a.clone());
    }
    let got = archived.report();
    let want = oracle.report();
    assert!(got.prefix_committed, "GC never retired — widen the run");
    assert!(got.reconstructed);
    assert!(got.verdict.is_err());
    assert_eq!(
        format!("{:?}", got.verdict),
        format!("{:?}", want.verdict),
        "archived forensics must equal the unGC'd monitor's"
    );
    // And the plain GC monitor genuinely lost the early history: its
    // window-relative report has no access to the retired events.
    let degraded = plain.report();
    assert!(degraded.verdict.is_err());
    assert_eq!(degraded.shard.archived_events, 0);
}

/// With archival off (the default), nothing is retained beyond the live
/// window and reports never claim reconstruction.
#[test]
fn archival_off_is_the_default_and_archives_nothing() {
    assert_eq!(MonitorConfig::default().archive_windows, 0);
    let actions = violating_single_key_actions(40);
    let mut mon = gc_monitor(8, 0);
    for a in &actions {
        mon.ingest(a.clone());
    }
    let report = mon.report();
    assert!(!report.reconstructed);
    assert_eq!(report.shard.archived_events, 0);
}

/// Determinism: two identically-configured archived monitors over the same
/// stream render byte-identical reports (pinned end-to-end).
#[test]
fn archived_reports_are_deterministic() {
    let cfg = MultiKeyConfig {
        clients: 3,
        steps: 80,
        keys: 3,
        skew: 0.7,
        contention: 0.3,
        error_prob: 0.25,
        seed: 1729,
    };
    let t = random_multikey_kv_trace(&cfg);
    let render = || {
        let mut mon = gc_monitor(8, 256);
        for a in t.iter() {
            mon.ingest(a.clone());
        }
        let r = mon.report();
        format!(
            "{:?} {} {}",
            r.verdict, r.reconstructed, r.shard.archived_events
        )
    };
    assert_eq!(render(), render());
}
