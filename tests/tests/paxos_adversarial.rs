//! Adversarial safety sweeps for the Backup phase: Paxos must never violate
//! agreement or validity, whatever the network and crash schedule does.
//! (Liveness is explicitly out of scope — FLP — so undecided runs are
//! acceptable; split decisions never are.)

use slin_consensus::harness::{run_scenario, Scenario};
use slin_core::invariants;

#[test]
fn heavy_loss_never_splits_decisions() {
    for seed in 0..60 {
        let out = run_scenario(&Scenario::pure_paxos(3, &[(1, 0), (2, 0)]).with_loss(0.35, seed));
        assert!(out.agreement(), "seed {seed}: {:?}", out.decisions);
        assert!(
            invariants::consensus_linearizable(&out.trace),
            "seed {seed}"
        );
    }
}

#[test]
fn staggered_crashes_never_split_decisions() {
    for seed in 0..40 {
        // Crash two of five acceptors at awkward times mid-protocol.
        let out = run_scenario(
            &Scenario::pure_paxos(5, &[(1, 0), (2, 0), (3, 0)])
                .with_crashes(&[(0, 2), (4, 5)])
                .with_seed(seed),
        );
        assert!(out.agreement(), "seed {seed}: {:?}", out.decisions);
    }
}

#[test]
fn decided_values_were_proposed() {
    for seed in 0..40 {
        let out =
            run_scenario(&Scenario::pure_paxos(3, &[(11, 0), (22, 0), (33, 0)]).with_seed(seed));
        if let Some(v) = out.decided_value() {
            assert!(
                [11, 22, 33].contains(&v.get()),
                "seed {seed}: invented value {v:?}"
            );
        }
    }
}

#[test]
fn composed_protocol_is_safe_under_combined_adversity() {
    // Loss + crash + contention, composed protocol: the hardest sweep.
    for seed in 0..40 {
        let out = run_scenario(
            &Scenario::contended(5, &[1, 2, 3], seed)
                .with_crashes(&[(0, 1), (1, 6)])
                .with_loss(0.15, seed),
        );
        assert!(out.agreement(), "seed {seed}: {:?}", out.decisions);
        assert!(
            invariants::consensus_linearizable(&out.trace),
            "seed {seed}: {:?}",
            out.trace
        );
        // Phase projections keep their invariants even when nobody decides.
        use slin_adt::Consensus;
        use slin_core::compose::project_phase;
        use slin_trace::PhaseId;
        let t12 = project_phase::<Consensus, _>(&out.trace, PhaseId::new(1), PhaseId::new(2));
        assert!(invariants::i1(&t12) && invariants::i2(&t12) && invariants::i3(&t12));
        let t23 = project_phase::<Consensus, _>(&out.trace, PhaseId::new(2), PhaseId::new(3));
        assert!(invariants::i4(&t23) && invariants::i5(&t23), "seed {seed}");
    }
}

#[test]
fn dueling_proposers_eventually_settle_or_stay_safe() {
    // Ballot duels: many clients, tight timeouts. Safety must hold even if
    // the run exhausts its ballot budget without deciding.
    for seed in 0..30 {
        let mut s = Scenario::pure_paxos(3, &[(1, 0), (2, 0), (3, 0), (4, 0)]);
        s.timeout = 4;
        s.seed = seed;
        s.delay = (1, 3);
        let out = run_scenario(&s);
        assert!(out.agreement(), "seed {seed}: {:?}", out.decisions);
    }
}

#[test]
fn quiescent_runs_are_reproducible_bit_for_bit() {
    for seed in [0u64, 3, 11] {
        let s = Scenario::contended(5, &[1, 2, 3], seed).with_loss(0.1, seed);
        let a = run_scenario(&s);
        let b = run_scenario(&s);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.sim_time, b.sim_time);
        assert_eq!(a.steps, b.steps);
    }
}
