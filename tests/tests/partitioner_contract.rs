//! Generic `Partitioner` soundness proptests.
//!
//! The partitioned checkers and the streaming monitor are only exact when
//! every `Partitioner` upholds the product-ADT contract documented in
//! `slin_adt::partition`: an input's output must be invariant under
//! removing *other-key* inputs anywhere in the history. This suite
//! validates that contract generically — one property, instantiated for
//! **every shipped ADT + partitioner pair** — so a future partitioner that
//! silently violates it fails here, not in a checker divergence.

use proptest::prelude::*;
use slin_adt::{
    Adt, CounterVecInput, CounterVecPartitioner, CounterVector, KvInput, KvKeyPartitioner, KvStore,
    Partitioner, RegArrayInput, RegArrayPartitioner, RegisterArray, Set, SetElemPartitioner,
    SetInput,
};

/// The contract, checked at every cut of the history: for the input at the
/// cut, replaying only same-key inputs yields the same output as replaying
/// the whole prefix — and therefore the same output under removal of *any*
/// other-key inputs (projection is the maximal removal; intermediate
/// removals factor through it on a product ADT).
fn projection_invariant<T, P>(adt: &T, partitioner: &P, history: &[T::Input]) -> Result<(), String>
where
    T: Adt,
    P: Partitioner<T>,
{
    for cut in 0..history.len() {
        let input = &history[cut];
        let Some(key) = partitioner.key_of(input) else {
            return Err(format!("unclassifiable input at {cut}"));
        };
        let mut full: Vec<T::Input> = history[..cut].to_vec();
        full.push(input.clone());
        let projected: Vec<T::Input> = full
            .iter()
            .filter(|i| partitioner.key_of(i) == Some(key.clone()))
            .cloned()
            .collect();
        if adt.output(&full) != adt.output(&projected) {
            return Err(format!(
                "output at cut {cut} changed under other-key projection"
            ));
        }
    }
    Ok(())
}

fn kv_inputs() -> impl Strategy<Value = Vec<KvInput>> {
    prop::collection::vec(
        (0..4u8, 1..5u32, 1..6u64).prop_map(|(op, key, val)| match op {
            0 => KvInput::Put(key, val),
            1 | 2 => KvInput::Get(key),
            _ => KvInput::Delete(key),
        }),
        0..18,
    )
}

fn set_inputs() -> impl Strategy<Value = Vec<SetInput>> {
    prop::collection::vec(
        (0..5u8, 1..5u64).prop_map(|(op, elem)| match op {
            0 | 1 => SetInput::Add(elem),
            2 | 3 => SetInput::Contains(elem),
            _ => SetInput::Remove(elem),
        }),
        0..18,
    )
}

fn reg_array_inputs() -> impl Strategy<Value = Vec<RegArrayInput>> {
    prop::collection::vec(
        (0..2u8, 1..5u32, 1..6u64).prop_map(|(op, cell, val)| match op {
            0 => RegArrayInput::Write(cell, val),
            _ => RegArrayInput::Read(cell),
        }),
        0..18,
    )
}

fn counter_vec_inputs() -> impl Strategy<Value = Vec<CounterVecInput>> {
    prop::collection::vec(
        (0..2u8, 1..5u32).prop_map(|(op, slot)| match op {
            0 => CounterVecInput::Increment(slot),
            _ => CounterVecInput::Read(slot),
        }),
        0..18,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    #[test]
    fn kv_partitioner_upholds_the_contract(h in kv_inputs()) {
        prop_assert_eq!(projection_invariant(&KvStore, &KvKeyPartitioner, &h), Ok(()));
    }

    #[test]
    fn set_partitioner_upholds_the_contract(h in set_inputs()) {
        prop_assert_eq!(projection_invariant(&Set, &SetElemPartitioner, &h), Ok(()));
    }

    #[test]
    fn reg_array_partitioner_upholds_the_contract(h in reg_array_inputs()) {
        prop_assert_eq!(
            projection_invariant(&RegisterArray, &RegArrayPartitioner, &h),
            Ok(())
        );
    }

    #[test]
    fn counter_vec_partitioner_upholds_the_contract(h in counter_vec_inputs()) {
        prop_assert_eq!(
            projection_invariant(&CounterVector, &CounterVecPartitioner, &h),
            Ok(())
        );
    }
}

/// A deliberately unsound partitioner fails the property — the test
/// actually discriminates (guards against a vacuously-true contract
/// checker). The discriminator is the shared `slin_analysis::fixtures`
/// one, which the static analyzer must also reject (see
/// `tests/tests/static_certification.rs`).
#[test]
fn contract_checker_rejects_an_unsound_partitioner() {
    use slin_analysis::fixtures::BogusCounterPartitioner;
    let h = [
        slin_adt::CounterInput::Increment,
        slin_adt::CounterInput::Read,
    ];
    assert!(projection_invariant(&slin_adt::Counter, &BogusCounterPartitioner, &h).is_err());
}
