//! Streaming-vs-batch differential proptests (pinned seeds).
//!
//! The acceptance contract of the online monitor: feeding a trace's events
//! **one at a time** into `slin-monitor` and then asking for the report
//! yields the *same verdict and witness* as the batch checker on the
//! closed trace — for both checkers, across the multi-key workload
//! generators from friendly to hostile, linearizable and perturbed, and
//! including traces with **more than 64 commits** (which the batch path
//! must now also accept, the former `MAX_TRACKED_COMMITS` ceiling being
//! gone). Together the suites below drain well over 1000 generated
//! streams per `cargo test` run, all derived from the pinned proptest
//! seed.
//!
//! This is a **compat suite**: one oracle below is the deprecated
//! `check_partitioned` wrapper, so the deprecation lint is allowed
//! file-wide.

#![allow(deprecated)]

use proptest::prelude::*;
use slin_adt::{ConsInput, ConsOutput, Consensus, Value};
use slin_adt::{
    CounterVecPartitioner, CounterVector, KvInput, KvKeyPartitioner, KvStore, RegArrayPartitioner,
    RegisterArray, Set, SetElemPartitioner,
};
use slin_core::gen::{
    random_multikey_counter_vec_trace, random_multikey_kv_trace, random_multikey_reg_array_trace,
    random_multikey_set_trace, MultiKeyConfig,
};
use slin_core::initrel::{ConsensusInit, ExactInit};
use slin_core::lin::{witness_is_valid, LinChecker};
use slin_core::slin::SlinChecker;
use slin_core::ObjAction;
use slin_monitor::{LinMonitor, MonitorConfig, SlinMonitor};
use slin_trace::{Action, ClientId, PhaseId, Trace};

/// Generator parameters swept by the differential suites (mirrors the
/// partition_differential sweep: friendly through hostile, linearizable
/// and perturbed).
fn configs() -> impl Strategy<Value = MultiKeyConfig> {
    (
        1..=6u32,      // keys
        2..=4u32,      // clients
        8..=26usize,   // steps
        0..=2u8,       // contention tier
        0..=1u8,       // perturbation tier
        0..=10_000u64, // seed
    )
        .prop_map(
            |(keys, clients, steps, contention, error, seed)| MultiKeyConfig {
                clients,
                steps,
                keys,
                skew: 0.7,
                contention: [0.0, 0.3, 1.0][contention as usize],
                error_prob: [0.0, 0.35][error as usize],
                seed,
            },
        )
}

/// Wide multi-key configurations whose traces carry more than 64 commits.
fn big_configs() -> impl Strategy<Value = MultiKeyConfig> {
    (6..=10u32, 3..=5u32, 230..=280usize, 0..=4_000u64).prop_map(|(keys, clients, steps, seed)| {
        MultiKeyConfig {
            clients,
            steps,
            keys,
            skew: 0.2,
            contention: 0.0,
            error_prob: 0.0,
            seed,
        }
    })
}

fn retag<V: Clone + PartialEq>(t: &Trace<ObjAction<KvStore, ()>>) -> Trace<ObjAction<KvStore, V>> {
    Trace::from_actions(
        t.iter()
            .map(|a| match a {
                Action::Invoke {
                    client,
                    phase,
                    input,
                } => Action::invoke(*client, *phase, *input),
                Action::Respond {
                    client,
                    phase,
                    input,
                    output,
                } => Action::respond(*client, *phase, *input, *output),
                Action::Switch { .. } => unreachable!("generated traces are switch-free"),
            })
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(250))]

    /// Plain checker, `KvStore`: the drained monitor's verdict and witness
    /// are byte-identical to `check()` on the closed trace.
    #[test]
    fn kv_stream_matches_batch(cfg in configs()) {
        let t = random_multikey_kv_trace(&cfg);
        let mut mon: LinMonitor<'_, KvStore, KvKeyPartitioner> =
            LinMonitor::new(&KvStore, KvKeyPartitioner);
        for a in t.iter() {
            mon.ingest(a.clone());
        }
        let report = mon.report();
        let batch = LinChecker::new(&KvStore).check(&t);
        prop_assert_eq!(&report.verdict, &batch, "cfg {:?}", cfg);
        prop_assert_eq!(format!("{:?}", report.verdict), format!("{batch:?}"));
        if let Ok(w) = &report.verdict {
            prop_assert!(witness_is_valid(&KvStore, &t, w), "cfg {:?}", cfg);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Plain checker, `Set`: same contract on the commuting-element ADT.
    #[test]
    fn set_stream_matches_batch(cfg in configs()) {
        let t = random_multikey_set_trace(&cfg);
        let mut mon: LinMonitor<'_, Set, SetElemPartitioner> =
            LinMonitor::new(&Set, SetElemPartitioner);
        for a in t.iter() {
            mon.ingest(a.clone());
        }
        prop_assert_eq!(
            mon.report().verdict,
            LinChecker::new(&Set).check(&t),
            "cfg {:?}", cfg
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(130))]

    /// Composite ADTs stream through their per-cell partitioners.
    #[test]
    fn reg_array_stream_matches_batch(cfg in configs()) {
        let t = random_multikey_reg_array_trace(&cfg);
        let mut mon: LinMonitor<'_, RegisterArray, RegArrayPartitioner> =
            LinMonitor::new(&RegisterArray, RegArrayPartitioner);
        for a in t.iter() {
            mon.ingest(a.clone());
        }
        prop_assert_eq!(
            mon.report().verdict,
            LinChecker::new(&RegisterArray).check(&t),
            "cfg {:?}", cfg
        );
    }

    #[test]
    fn counter_vector_stream_matches_batch(cfg in configs()) {
        let t = random_multikey_counter_vec_trace(&cfg);
        let mut mon: LinMonitor<'_, CounterVector, CounterVecPartitioner> =
            LinMonitor::new(&CounterVector, CounterVecPartitioner);
        for a in t.iter() {
            mon.ingest(a.clone());
        }
        prop_assert_eq!(
            mon.report().verdict,
            LinChecker::new(&CounterVector).check(&t),
            "cfg {:?}", cfg
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(250))]

    /// Speculative checker on switch-free phase streams: witness and error
    /// byte-identical to the partitioned batch path, and (per Theorem 2 /
    /// the PR 2 differential contract) to `check()` on witness and error.
    #[test]
    fn slin_stream_matches_batch_on_switch_free_traces(cfg in configs()) {
        let t: Trace<ObjAction<KvStore, Vec<KvInput>>> =
            retag(&random_multikey_kv_trace(&cfg));
        let chk = SlinChecker::new(&KvStore, ExactInit::new(), PhaseId::new(1), PhaseId::new(2));
        let mut mon = SlinMonitor::new(
            chk.clone(),
            &KvStore,
            PhaseId::new(1),
            PhaseId::new(2),
            KvKeyPartitioner,
            MonitorConfig::default(),
        );
        for a in t.iter() {
            mon.ingest(a.clone());
        }
        let report = mon.report();
        let partitioned = chk.check_partitioned(&KvKeyPartitioner, &t);
        prop_assert_eq!(&report.verdict, &partitioned, "cfg {:?}", cfg);
        let mono = chk.check(&t);
        prop_assert_eq!(
            report.verdict.as_ref().map(|r| &r.witness),
            mono.as_ref().map(|r| &r.witness),
            "cfg {:?}", cfg
        );
        prop_assert_eq!(report.verdict.as_ref().err(), mono.as_ref().err(), "cfg {:?}", cfg);
    }
}

/// Random consensus speculation-phase streams (switch actions included):
/// the monitor's speculative mode must reproduce `check()` byte for byte.
fn phase_trace_strategy() -> impl Strategy<Value = Trace<ObjAction<Consensus, Value>>> {
    (
        1..=3u32, // clients
        0..=2u8,  // decider tier: which client (if any) decides
        1..=3u64, // decided/switched value
        0..=1u8,  // switch value matches decision?
        0..=1u8,  // trailing pending proposal?
    )
        .prop_map(|(clients, decider, value, matches, pending)| {
            let ph1 = PhaseId::new(1);
            let mut actions: Vec<ObjAction<Consensus, Value>> = Vec::new();
            for k in 1..=clients {
                actions.push(Action::invoke(
                    ClientId::new(k),
                    ph1,
                    ConsInput::propose(k as u64),
                ));
            }
            if decider > 0 && decider <= clients as u8 {
                let d = ClientId::new(decider as u32);
                actions.push(Action::respond(
                    d,
                    ph1,
                    ConsInput::propose(decider as u64),
                    ConsOutput::decide(value),
                ));
            }
            // Every other client switches; one may stay pending.
            for k in 1..=clients {
                if decider as u32 == k {
                    continue;
                }
                if pending == 1 && k == clients {
                    continue;
                }
                let v = if matches == 1 { value } else { (value % 3) + 1 };
                actions.push(Action::switch(
                    ClientId::new(k),
                    PhaseId::new(2),
                    ConsInput::propose(k as u64),
                    Value::new(v),
                ));
            }
            Trace::from_actions(actions)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    #[test]
    fn speculative_stream_matches_batch_on_phase_traces(t in phase_trace_strategy()) {
        let chk = SlinChecker::new(&Consensus, ConsensusInit::new(), PhaseId::new(1), PhaseId::new(2));
        let mut mon = SlinMonitor::new(
            chk.clone(),
            &Consensus,
            PhaseId::new(1),
            PhaseId::new(2),
            slin_adt::IdentityPartitioner,
            MonitorConfig::default(),
        );
        for a in t.iter() {
            mon.ingest(a.clone());
        }
        prop_assert_eq!(mon.report().verdict, chk.check(&t), "{:?}", t);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The >64-commit acceptance case: wide linearizable streams whose
    /// commit count exceeds the old engine ceiling, checked by both the
    /// monitor and the (now unbounded) batch path.
    #[test]
    fn streams_with_more_than_64_commits_match_batch(cfg in big_configs()) {
        let t = random_multikey_kv_trace(&cfg);
        let commits = t.iter().filter(|a| a.is_respond()).count();
        let mut mon: LinMonitor<'_, KvStore, KvKeyPartitioner> =
            LinMonitor::new(&KvStore, KvKeyPartitioner);
        for a in t.iter() {
            mon.ingest(a.clone());
        }
        let report = mon.report();
        let batch = LinChecker::new(&KvStore).check(&t);
        prop_assert_eq!(&report.verdict, &batch, "cfg {:?} ({commits} commits)", cfg);
        if let Ok(w) = &report.verdict {
            prop_assert!(witness_is_valid(&KvStore, &t, w));
        }
    }
}

/// At least one generated big stream really does exceed 64 commits (the
/// proptest above would be vacuous otherwise), and the batch path accepts
/// it.
#[test]
fn big_streams_do_exceed_64_commits() {
    let cfg = MultiKeyConfig {
        clients: 4,
        steps: 260,
        keys: 8,
        skew: 0.2,
        contention: 0.0,
        error_prob: 0.0,
        seed: 12,
    };
    let t = random_multikey_kv_trace(&cfg);
    let commits = t.iter().filter(|a| a.is_respond()).count();
    assert!(commits > 64, "only {commits} commits — widen the config");
    let batch = LinChecker::new(&KvStore).check(&t);
    assert!(batch.is_ok(), "{batch:?}");
    let mut mon: LinMonitor<'_, KvStore, KvKeyPartitioner> =
        LinMonitor::new(&KvStore, KvKeyPartitioner);
    for a in t.iter() {
        mon.ingest(a.clone());
    }
    assert_eq!(mon.report().verdict, batch);
}

/// Perturbed wide streams: violations past the old ceiling are detected
/// identically by both paths.
#[test]
fn perturbed_big_streams_match_batch() {
    for seed in [3u64, 31] {
        let cfg = MultiKeyConfig {
            clients: 4,
            steps: 240,
            keys: 8,
            skew: 0.2,
            contention: 0.0,
            error_prob: 0.2,
            seed,
        };
        let t = random_multikey_kv_trace(&cfg);
        let mut mon: LinMonitor<'_, KvStore, KvKeyPartitioner> =
            LinMonitor::new(&KvStore, KvKeyPartitioner);
        for a in t.iter() {
            mon.ingest(a.clone());
        }
        assert_eq!(
            mon.report().verdict,
            LinChecker::new(&KvStore).check(&t),
            "seed {seed}"
        );
    }
}
