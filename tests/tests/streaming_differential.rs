//! Streaming-vs-batch differential proptests (pinned seeds).
//!
//! The acceptance contract of the online monitor: feeding a trace's events
//! **one at a time** into `slin-monitor` and then asking for the report
//! yields the *same verdict and witness* as the batch checker on the
//! closed trace — for both checkers, across the multi-key workload
//! generators from friendly to hostile, linearizable and perturbed, and
//! including traces with **more than 64 commits** (which the batch path
//! must now also accept, the former `MAX_TRACKED_COMMITS` ceiling being
//! gone). Together the suites below drain well over 1000 generated
//! streams per `cargo test` run, all derived from the pinned proptest
//! seed.
//!
//! This is a **compat suite**: one oracle below is the deprecated
//! `check_partitioned` wrapper, so the deprecation lint is allowed
//! file-wide.

#![allow(deprecated)]

use proptest::prelude::*;
use slin_adt::{ConsInput, ConsOutput, Consensus, Value};
use slin_adt::{
    CounterVecPartitioner, CounterVector, KvInput, KvKeyPartitioner, KvOutput, KvStore,
    RegArrayPartitioner, RegisterArray, Set, SetElemPartitioner,
};
use slin_core::gen::{
    random_hostile_kv_trace, random_multikey_counter_vec_trace, random_multikey_kv_trace,
    random_multikey_reg_array_trace, random_multikey_set_trace, HostileConfig, MultiKeyConfig,
};
use slin_core::initrel::{ConsensusInit, ExactInit};
use slin_core::lin::{witness_is_valid, LinChecker};
use slin_core::slin::SlinChecker;
use slin_core::ObjAction;
use slin_monitor::{LinMonitor, MonitorConfig, MonitorStatus, SlinMonitor};
use slin_trace::{Action, ClientId, PhaseId, Trace};

/// Generator parameters swept by the differential suites (mirrors the
/// partition_differential sweep: friendly through hostile, linearizable
/// and perturbed).
fn configs() -> impl Strategy<Value = MultiKeyConfig> {
    (
        1..=6u32,      // keys
        2..=4u32,      // clients
        8..=26usize,   // steps
        0..=2u8,       // contention tier
        0..=1u8,       // perturbation tier
        0..=10_000u64, // seed
    )
        .prop_map(
            |(keys, clients, steps, contention, error, seed)| MultiKeyConfig {
                clients,
                steps,
                keys,
                skew: 0.7,
                contention: [0.0, 0.3, 1.0][contention as usize],
                error_prob: [0.0, 0.35][error as usize],
                seed,
            },
        )
}

/// Wide multi-key configurations whose traces carry more than 64 commits.
fn big_configs() -> impl Strategy<Value = MultiKeyConfig> {
    (6..=10u32, 3..=5u32, 230..=280usize, 0..=4_000u64).prop_map(|(keys, clients, steps, seed)| {
        MultiKeyConfig {
            clients,
            steps,
            keys,
            skew: 0.2,
            contention: 0.0,
            error_prob: 0.0,
            seed,
        }
    })
}

fn retag<V: Clone + PartialEq>(t: &Trace<ObjAction<KvStore, ()>>) -> Trace<ObjAction<KvStore, V>> {
    Trace::from_actions(
        t.iter()
            .map(|a| match a {
                Action::Invoke {
                    client,
                    phase,
                    input,
                } => Action::invoke(*client, *phase, *input),
                Action::Respond {
                    client,
                    phase,
                    input,
                    output,
                } => Action::respond(*client, *phase, *input, *output),
                Action::Switch { .. } => unreachable!("generated traces are switch-free"),
            })
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(250))]

    /// Plain checker, `KvStore`: the drained monitor's verdict and witness
    /// are byte-identical to `check()` on the closed trace.
    #[test]
    fn kv_stream_matches_batch(cfg in configs()) {
        let t = random_multikey_kv_trace(&cfg);
        let mut mon: LinMonitor<KvStore, KvKeyPartitioner> =
            LinMonitor::new(&KvStore, KvKeyPartitioner);
        for a in t.iter() {
            mon.ingest(a.clone());
        }
        let report = mon.report();
        let batch = LinChecker::new(&KvStore).check(&t);
        prop_assert_eq!(&report.verdict, &batch, "cfg {:?}", cfg);
        prop_assert_eq!(format!("{:?}", report.verdict), format!("{batch:?}"));
        if let Ok(w) = &report.verdict {
            prop_assert!(witness_is_valid(&KvStore, &t, w), "cfg {:?}", cfg);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Plain checker, `Set`: same contract on the commuting-element ADT.
    #[test]
    fn set_stream_matches_batch(cfg in configs()) {
        let t = random_multikey_set_trace(&cfg);
        let mut mon: LinMonitor<Set, SetElemPartitioner> =
            LinMonitor::new(&Set, SetElemPartitioner);
        for a in t.iter() {
            mon.ingest(a.clone());
        }
        prop_assert_eq!(
            mon.report().verdict,
            LinChecker::new(&Set).check(&t),
            "cfg {:?}", cfg
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(130))]

    /// Composite ADTs stream through their per-cell partitioners.
    #[test]
    fn reg_array_stream_matches_batch(cfg in configs()) {
        let t = random_multikey_reg_array_trace(&cfg);
        let mut mon: LinMonitor<RegisterArray, RegArrayPartitioner> =
            LinMonitor::new(&RegisterArray, RegArrayPartitioner);
        for a in t.iter() {
            mon.ingest(a.clone());
        }
        prop_assert_eq!(
            mon.report().verdict,
            LinChecker::new(&RegisterArray).check(&t),
            "cfg {:?}", cfg
        );
    }

    #[test]
    fn counter_vector_stream_matches_batch(cfg in configs()) {
        let t = random_multikey_counter_vec_trace(&cfg);
        let mut mon: LinMonitor<CounterVector, CounterVecPartitioner> =
            LinMonitor::new(&CounterVector, CounterVecPartitioner);
        for a in t.iter() {
            mon.ingest(a.clone());
        }
        prop_assert_eq!(
            mon.report().verdict,
            LinChecker::new(&CounterVector).check(&t),
            "cfg {:?}", cfg
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(250))]

    /// Speculative checker on switch-free phase streams: witness and error
    /// byte-identical to the partitioned batch path, and (per Theorem 2 /
    /// the PR 2 differential contract) to `check()` on witness and error.
    #[test]
    fn slin_stream_matches_batch_on_switch_free_traces(cfg in configs()) {
        let t: Trace<ObjAction<KvStore, Vec<KvInput>>> =
            retag(&random_multikey_kv_trace(&cfg));
        let chk = SlinChecker::new(&KvStore, ExactInit::new(), PhaseId::new(1), PhaseId::new(2));
        let mut mon = SlinMonitor::new(
            chk.clone(),
            &KvStore,
            PhaseId::new(1),
            PhaseId::new(2),
            KvKeyPartitioner,
            MonitorConfig::default(),
        );
        for a in t.iter() {
            mon.ingest(a.clone());
        }
        let report = mon.report();
        let partitioned = chk.check_partitioned(&KvKeyPartitioner, &t);
        prop_assert_eq!(&report.verdict, &partitioned, "cfg {:?}", cfg);
        let mono = chk.check(&t);
        prop_assert_eq!(
            report.verdict.as_ref().map(|r| &r.witness),
            mono.as_ref().map(|r| &r.witness),
            "cfg {:?}", cfg
        );
        prop_assert_eq!(report.verdict.as_ref().err(), mono.as_ref().err(), "cfg {:?}", cfg);
    }
}

/// Random consensus speculation-phase streams (switch actions included):
/// the monitor's speculative mode must reproduce `check()` byte for byte.
fn phase_trace_strategy() -> impl Strategy<Value = Trace<ObjAction<Consensus, Value>>> {
    (
        1..=3u32, // clients
        0..=2u8,  // decider tier: which client (if any) decides
        1..=3u64, // decided/switched value
        0..=1u8,  // switch value matches decision?
        0..=1u8,  // trailing pending proposal?
    )
        .prop_map(|(clients, decider, value, matches, pending)| {
            let ph1 = PhaseId::new(1);
            let mut actions: Vec<ObjAction<Consensus, Value>> = Vec::new();
            for k in 1..=clients {
                actions.push(Action::invoke(
                    ClientId::new(k),
                    ph1,
                    ConsInput::propose(k as u64),
                ));
            }
            if decider > 0 && decider <= clients as u8 {
                let d = ClientId::new(decider as u32);
                actions.push(Action::respond(
                    d,
                    ph1,
                    ConsInput::propose(decider as u64),
                    ConsOutput::decide(value),
                ));
            }
            // Every other client switches; one may stay pending.
            for k in 1..=clients {
                if decider as u32 == k {
                    continue;
                }
                if pending == 1 && k == clients {
                    continue;
                }
                let v = if matches == 1 { value } else { (value % 3) + 1 };
                actions.push(Action::switch(
                    ClientId::new(k),
                    PhaseId::new(2),
                    ConsInput::propose(k as u64),
                    Value::new(v),
                ));
            }
            Trace::from_actions(actions)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    #[test]
    fn speculative_stream_matches_batch_on_phase_traces(t in phase_trace_strategy()) {
        let chk = SlinChecker::new(&Consensus, ConsensusInit::new(), PhaseId::new(1), PhaseId::new(2));
        let mut mon = SlinMonitor::new(
            chk.clone(),
            &Consensus,
            PhaseId::new(1),
            PhaseId::new(2),
            slin_adt::IdentityPartitioner,
            MonitorConfig::default(),
        );
        for a in t.iter() {
            mon.ingest(a.clone());
        }
        prop_assert_eq!(mon.report().verdict, chk.check(&t), "{:?}", t);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The >64-commit acceptance case: wide linearizable streams whose
    /// commit count exceeds the old engine ceiling, checked by both the
    /// monitor and the (now unbounded) batch path.
    #[test]
    fn streams_with_more_than_64_commits_match_batch(cfg in big_configs()) {
        let t = random_multikey_kv_trace(&cfg);
        let commits = t.iter().filter(|a| a.is_respond()).count();
        let mut mon: LinMonitor<KvStore, KvKeyPartitioner> =
            LinMonitor::new(&KvStore, KvKeyPartitioner);
        for a in t.iter() {
            mon.ingest(a.clone());
        }
        let report = mon.report();
        let batch = LinChecker::new(&KvStore).check(&t);
        prop_assert_eq!(&report.verdict, &batch, "cfg {:?} ({commits} commits)", cfg);
        if let Ok(w) = &report.verdict {
            prop_assert!(witness_is_valid(&KvStore, &t, w));
        }
    }
}

/// At least one generated big stream really does exceed 64 commits (the
/// proptest above would be vacuous otherwise), and the batch path accepts
/// it.
#[test]
fn big_streams_do_exceed_64_commits() {
    let cfg = MultiKeyConfig {
        clients: 4,
        steps: 260,
        keys: 8,
        skew: 0.2,
        contention: 0.0,
        error_prob: 0.0,
        seed: 12,
    };
    let t = random_multikey_kv_trace(&cfg);
    let commits = t.iter().filter(|a| a.is_respond()).count();
    assert!(commits > 64, "only {commits} commits — widen the config");
    let batch = LinChecker::new(&KvStore).check(&t);
    assert!(batch.is_ok(), "{batch:?}");
    let mut mon: LinMonitor<KvStore, KvKeyPartitioner> =
        LinMonitor::new(&KvStore, KvKeyPartitioner);
    for a in t.iter() {
        mon.ingest(a.clone());
    }
    assert_eq!(mon.report().verdict, batch);
}

// ---- hostile never-quiescent streams (epoch GC differential) ----

/// A windowed monitor with epoch cuts enabled (the default) over the
/// hostile generator's single-shard-heavy key space.
fn epoch_monitor(window: usize) -> LinMonitor<KvStore, KvKeyPartitioner> {
    LinMonitor::with_config(
        &KvStore,
        KvKeyPartitioner,
        MonitorConfig {
            window: Some(window),
            ..Default::default()
        },
    )
}

/// Hostile sweep parameters kept small enough that the *batch* oracle
/// stays tractable (the whole trace is one dense concurrency window).
fn hostile_configs() -> impl Strategy<Value = HostileConfig> {
    (
        1..=2u32,     // keys
        0..=1u8,      // never-responding tier
        0..=1u8,      // perturbation tier
        0..=4_000u64, // seed
    )
        .prop_map(|(keys, never, error, seed)| HostileConfig {
            clients: 3,
            steps: 60,
            keys,
            skew: 0.7,
            never_frac: [0.08, 0.2][never as usize],
            stuck_applies: true,
            delay_zipf: 1.1,
            max_delay: 8,
            error_prob: [0.0, 0.25][error as usize],
            seed,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// Epoch-GC'd monitors keep exact (window-relative) verdicts on
    /// never-quiescent streams: the rolling status agrees with the batch
    /// checker on the same closed trace, violation for violation.
    #[test]
    fn hostile_stream_status_matches_batch(cfg in hostile_configs()) {
        let t = random_hostile_kv_trace(&cfg);
        let mut mon = epoch_monitor(6);
        for a in t.iter() {
            mon.ingest(a.clone());
        }
        let status = mon.status();
        let batch = LinChecker::new(&KvStore).check(&t);
        match &batch {
            Ok(_) => prop_assert_eq!(status, MonitorStatus::Ok, "cfg {:?}", cfg),
            Err(_) => prop_assert_eq!(status, MonitorStatus::Violation, "cfg {:?}", cfg),
        }
    }
}

/// The hostile differential above is not vacuous: across a pinned seed
/// sweep the epoch-GC machinery really does cut non-quiescent windows,
/// retire events, and record symbolic completions — while every verdict
/// still matches the batch oracle exactly.
#[test]
fn hostile_streams_exercise_epoch_cuts_non_vacuously() {
    let mut total_retired = 0;
    let mut total_epoch_cuts = 0;
    for seed in 0..24 {
        let cfg = HostileConfig {
            clients: 3,
            steps: 70,
            keys: 1,
            never_frac: 0.12,
            max_delay: 8,
            seed,
            ..Default::default()
        };
        let t = random_hostile_kv_trace(&cfg);
        let mut mon = epoch_monitor(6);
        for a in t.iter() {
            let out = mon.ingest(a.clone());
            assert_eq!(
                out.status,
                MonitorStatus::Ok,
                "seed {seed}: linearizable by construction"
            );
        }
        let report = mon.report();
        assert!(report.verdict.is_ok(), "seed {seed}: {:?}", report.verdict);
        total_retired += report.shard.retired_events;
        total_epoch_cuts += report.shard.epoch_cuts;
        assert!(
            LinChecker::new(&KvStore).check(&t).is_ok(),
            "seed {seed}: batch oracle disagrees"
        );
    }
    assert!(total_retired > 0, "no events were ever retired");
    assert!(
        total_epoch_cuts > 0,
        "every cut was quiescent — the streams are not hostile enough"
    );
}

/// Straggler absorption, positive case: an invocation left pending across
/// several epoch cuts is later completed with an output the symbolic
/// completion recorded — the late response is absorbed and the stream
/// stays `Ok`.
#[test]
fn late_straggler_response_is_absorbed_after_epoch_cuts() {
    let c = |k: u32| ClientId::new(k);
    let ph = PhaseId::FIRST;
    let mut mon = epoch_monitor(4);
    // A committed write, so later reads are pinned to real values.
    mon.ingest(Action::invoke(c(2), ph, KvInput::Put(1, 1)));
    mon.ingest(Action::respond(c(2), ph, KvInput::Put(1, 1), KvOutput::Ack));
    // The straggler: a Get that stays pending across many windows.
    mon.ingest(Action::invoke(c(1), ph, KvInput::Get(1)));
    // Enough committed writes to force several non-quiescent epoch cuts.
    for v in 2..=20u64 {
        mon.ingest(Action::invoke(c(2), ph, KvInput::Put(1, v)));
        let out = mon.ingest(Action::respond(c(2), ph, KvInput::Put(1, v), KvOutput::Ack));
        assert_eq!(out.status, MonitorStatus::Ok, "round {v}");
    }
    // The straggler finally responds with a value it could have read at
    // some linearization point inside its (huge) pending interval.
    let out = mon.ingest(Action::respond(
        c(1),
        ph,
        KvInput::Get(1),
        KvOutput::Found(Some(7)),
    ));
    assert_eq!(out.status, MonitorStatus::Ok, "absorbable straggler");
    let report = mon.report();
    assert!(report.verdict.is_ok());
    assert!(report.shard.epoch_cuts > 0, "no epoch cut ever happened");
    assert!(report.shard.retired_events > 0);
}

/// Straggler absorption, negative case: the same shape, but the late
/// response carries an output no linearization of its pending interval
/// allows — the epoch-GC'd monitor must still flag the violation.
#[test]
fn impossible_late_straggler_response_is_still_a_violation() {
    let c = |k: u32| ClientId::new(k);
    let ph = PhaseId::FIRST;
    let mut mon = epoch_monitor(4);
    mon.ingest(Action::invoke(c(2), ph, KvInput::Put(1, 1)));
    mon.ingest(Action::respond(c(2), ph, KvInput::Put(1, 1), KvOutput::Ack));
    // Invoked strictly after the first write committed: every possible
    // linearization point sees *some* written value (there are no deletes).
    mon.ingest(Action::invoke(c(1), ph, KvInput::Get(1)));
    for v in 2..=20u64 {
        let out = mon.ingest(Action::invoke(c(2), ph, KvInput::Put(1, v)));
        assert_eq!(out.status, MonitorStatus::Ok);
        mon.ingest(Action::respond(c(2), ph, KvInput::Put(1, v), KvOutput::Ack));
    }
    let out = mon.ingest(Action::respond(
        c(1),
        ph,
        KvInput::Get(1),
        KvOutput::Found(None), // impossible: the key was never absent
    ));
    assert_eq!(out.status, MonitorStatus::Violation);
    assert!(mon.report().verdict.is_err());
}

/// Perturbed wide streams: violations past the old ceiling are detected
/// identically by both paths.
#[test]
fn perturbed_big_streams_match_batch() {
    for seed in [3u64, 31] {
        let cfg = MultiKeyConfig {
            clients: 4,
            steps: 240,
            keys: 8,
            skew: 0.2,
            contention: 0.0,
            error_prob: 0.2,
            seed,
        };
        let t = random_multikey_kv_trace(&cfg);
        let mut mon: LinMonitor<KvStore, KvKeyPartitioner> =
            LinMonitor::new(&KvStore, KvKeyPartitioner);
        for a in t.iter() {
            mon.ingest(a.clone());
        }
        assert_eq!(
            mon.report().verdict,
            LinChecker::new(&KvStore).check(&t),
            "seed {seed}"
        );
    }
}
