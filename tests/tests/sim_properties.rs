//! Cross-crate properties of the simulation substrate: the asynchronous
//! model assumptions the paper's algorithms rely on must actually hold in
//! `slin-sim` as driven by `slin-consensus`.

use slin_consensus::harness::{run_scenario, Scenario};

#[test]
fn latency_is_delay_scale_invariant() {
    // Message *delays* are the latency unit: scaling the per-hop delay by k
    // scales fault-free decision latency by exactly k (2 hops).
    for k in [1u64, 3, 10] {
        let mut s = Scenario::fault_free(3, &[(5, 0)]);
        s.delay = (k, k);
        s.timeout = 12 * k;
        let out = run_scenario(&s);
        assert_eq!(out.latencies[0].1, Some(2 * k), "k={k}");
    }
}

#[test]
fn asynchrony_reorders_but_never_corrupts() {
    // Wildly variable delays (1..20) reorder deliveries arbitrarily;
    // agreement and validity must be untouched.
    for seed in 0..30 {
        let mut s = Scenario::contended(3, &[1, 2, 3], seed);
        s.delay = (1, 20);
        s.timeout = 25;
        let out = run_scenario(&s);
        assert!(out.agreement(), "seed {seed}: {:?}", out.decisions);
        if let Some(v) = out.decided_value() {
            assert!((1..=3).contains(&v.get()), "seed {seed}");
        }
    }
}

#[test]
fn crashes_are_permanent() {
    // A crashed server never participates again: with all servers crashed
    // before start, no client can ever decide, and no server sends a byte.
    let out =
        run_scenario(&Scenario::fault_free(3, &[(5, 0)]).with_crashes(&[(0, 0), (1, 0), (2, 0)]));
    assert!(out.decisions.is_empty());
    // Only client traffic (repeated proposal broadcasts / prepares) exists.
    assert!(out.messages > 0);
}

#[test]
fn seeds_partition_behaviours() {
    // Different seeds genuinely explore different executions: across 30
    // seeds of a lossy contended scenario we must observe at least two
    // different decision latencies (the scheduler is not degenerate).
    let mut latencies = std::collections::BTreeSet::new();
    for seed in 0..30 {
        let out = run_scenario(&Scenario::contended(3, &[1, 2], seed).with_loss(0.1, seed));
        for (_, l) in &out.latencies {
            if let Some(l) = l {
                latencies.insert(*l);
            }
        }
    }
    assert!(latencies.len() >= 2, "degenerate scheduler: {latencies:?}");
}

#[test]
fn step_bound_is_a_hard_stop() {
    let mut s = Scenario::contended(3, &[1, 2], 0).with_loss(0.6, 1);
    s.max_steps = 50;
    let out = run_scenario(&s);
    assert!(out.steps <= 50);
    // Safety still intact on the truncated run.
    assert!(out.agreement());
}

#[test]
fn invocation_times_are_honoured() {
    // The second client invokes at t=40, long after the first decided;
    // its fast path sees a quiescent system and also takes exactly 2 hops.
    let out = run_scenario(&Scenario::fault_free(3, &[(1, 0), (2, 40)]));
    assert_eq!(out.latencies[0].1, Some(2));
    assert_eq!(out.latencies[1].1, Some(2));
    // And the decisions agree across the time gap (the servers remember).
    assert!(out.agreement());
}
