//! The ALM specification automaton (Section 6; experiments E8 and E9).
//!
//! E8: every trace of the ALM automaton is speculatively linearizable for
//! the universal ADT with the exact (singleton) `rinit` — exhaustively for
//! small bounds and by random walks for longer runs; both for the strict
//! automaton and the relaxed (multi-append) specification variant.
//!
//! E9: the composition of two ALM automata, with the interior switch
//! actions hidden, is trace-included in a single ALM specification — the
//! executable counterpart of the paper's machine-checked refinement proof.

use slin_adt::Universal;
use slin_core::initrel::ExactInit;
use slin_core::slin::SlinChecker;
use slin_ioa::alm::{external_trace, AlmAction, AlmAutomaton, AlmParams};
use slin_ioa::compose::{Composition, Hidden};
use slin_ioa::explore::{bounded_traces, random_walk};
use slin_ioa::refine::{check_trace_inclusion, InclusionReport};
use slin_trace::{Action, PhaseId};

fn params(first: u32, last: u32, clients: u32, inputs: Vec<u8>) -> AlmParams<u8> {
    AlmParams {
        first,
        last,
        clients,
        inputs,
    }
}

fn checker(adt: &Universal<u8>, m: u32, n: u32) -> SlinChecker<Universal<u8>, ExactInit> {
    SlinChecker::owned(*adt, ExactInit::new(), PhaseId::new(m), PhaseId::new(n))
}

#[test]
fn alm_first_phase_traces_are_slin_exhaustively() {
    let alm = AlmAutomaton::new(params(1, 2, 2, vec![1]));
    let adt = Universal::new();
    let chk = checker(&adt, 1, 2);
    let traces = bounded_traces(&alm, 6);
    assert!(traces.len() > 10);
    for t in traces {
        let ext = external_trace(&t);
        assert!(chk.check(&ext).is_ok(), "{ext:?}");
    }
}

#[test]
fn alm_second_phase_traces_are_slin_exhaustively() {
    let alm = AlmAutomaton::new(params(2, 3, 1, vec![1, 2]));
    let adt = Universal::new();
    let chk = checker(&adt, 2, 3);
    let traces = bounded_traces(&alm, 5);
    assert!(traces.len() > 10);
    for t in traces {
        let ext = external_trace(&t);
        assert!(chk.check(&ext).is_ok(), "{ext:?}");
    }
}

#[test]
fn alm_random_walks_are_slin() {
    let alm = AlmAutomaton::new(params(1, 2, 3, vec![1, 2]));
    let adt = Universal::new();
    let chk = checker(&adt, 1, 2);
    for seed in 0..60 {
        let t = external_trace(&random_walk(&alm, 20, seed));
        assert!(chk.check(&t).is_ok(), "seed {seed}: {t:?}");
    }
}

#[test]
fn relaxed_spec_walks_are_slin() {
    let alm = AlmAutomaton::spec(params(1, 3, 2, vec![1, 2]));
    let adt = Universal::new();
    let chk = checker(&adt, 1, 3);
    for seed in 0..60 {
        let t = external_trace(&random_walk(&alm, 16, seed));
        assert!(chk.check(&t).is_ok(), "seed {seed}: {t:?}");
    }
}

#[test]
fn alm_second_phase_walks_are_slin() {
    let alm = AlmAutomaton::new(params(2, 3, 2, vec![1, 2]));
    let adt = Universal::new();
    let chk = checker(&adt, 2, 3);
    for seed in 0..60 {
        let t = external_trace(&random_walk(&alm, 16, seed));
        assert!(chk.check(&t).is_ok(), "seed {seed}: {t:?}");
    }
}

fn interior_switch(a: &AlmAction<u8>) -> bool {
    matches!(
        a,
        AlmAction::Ext(Action::Switch { phase, .. }) if phase.value() == 2
    )
}

#[test]
fn composition_refines_single_alm_spec() {
    // E9: Hide(ALM(1,2) ‖ ALM(2,3), switches@2) ⊑ ALM_spec(1,3).
    let comp = Composition::new(
        AlmAutomaton::new(params(1, 2, 2, vec![1, 2])),
        AlmAutomaton::new(params(2, 3, 2, vec![1, 2])),
    );
    let imp = Hidden::new(comp, interior_switch);
    let spec = AlmAutomaton::spec(params(1, 3, 2, vec![1, 2]));
    let report = check_trace_inclusion(&imp, &spec, 7, 400_000).unwrap();
    match report {
        InclusionReport::HoldsWithinBounds { pairs_explored }
        | InclusionReport::CapReached { pairs_explored } => {
            assert!(pairs_explored > 100, "exploration too shallow");
        }
    }
}

#[test]
fn composition_does_not_refine_strict_alm() {
    // The *strict* single automaton is not a valid spec for the hidden
    // composition: a hidden abort value can carry *another client's*
    // pending input into the second phase's hist, producing a response the
    // strict automaton cannot emit in one step. This is exactly why the
    // relaxed (multi-append) variant exists. Two distinct input values are
    // needed to exhibit it — with a single value the pending-input clause
    // masks the discrepancy.
    let comp = Composition::new(
        AlmAutomaton::new(params(1, 2, 2, vec![1, 2])),
        AlmAutomaton::new(params(2, 3, 2, vec![1, 2])),
    );
    let imp = Hidden::new(comp, interior_switch);
    let strict_spec = AlmAutomaton::new(params(1, 3, 2, vec![1, 2]));
    let r = check_trace_inclusion(&imp, &strict_spec, 8, 2_000_000);
    assert!(r.is_err(), "strict spec unexpectedly simulates: {r:?}");
}

#[test]
fn composed_walk_traces_check_out_as_slin_1_3() {
    let comp = Composition::new(
        AlmAutomaton::new(params(1, 2, 2, vec![1, 2])),
        AlmAutomaton::new(params(2, 3, 2, vec![1, 2])),
    );
    let adt = Universal::new();
    let chk = checker(&adt, 1, 3);
    for seed in 0..40 {
        let t = external_trace(&random_walk(&comp, 16, seed));
        assert!(chk.check(&t).is_ok(), "seed {seed}: {t:?}");
    }
}
