//! Theorem 1 (E3): the paper's new definition of linearizability versus the
//! classical `linearizable*` definition.
//!
//! **Reproduction finding.** The two definitions coincide under the
//! *unique inputs* assumption (which the paper's equivalence proof tacitly
//! uses when translating between occurrence permutations and input
//! multisets), and we verify that equivalence exhaustively on stamped
//! traces, across four ADTs. On traces with **repeated input values** the
//! definitions genuinely diverge: the new definition is strictly weaker,
//! because multiset validity lets a commit history account one client's
//! response against a *pending duplicate invocation of another client*.
//! [`repeated_events_divergence`] pins the smallest counterexample we
//! found; [`classical_implies_new_definition`] checks the direction that
//! does survive repeated events.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use slin_adt::{
    Adt, ConsInput, Consensus, Counter, CounterInput, CounterOutput, Queue, QueueInput, RegInput,
    Register, Stamped,
};
use slin_core::classical::ClassicalChecker;
use slin_core::gen::{random_linearizable_trace, random_perturbed_trace, GenConfig};
use slin_core::lin::{witness_is_valid, LinChecker, LinError};
use slin_core::ObjAction;
use slin_trace::{Action, ClientId, PhaseId, Trace};

/// Both checkers agree exactly (used on unique-input traces).
fn agree<T: Adt + Clone>(adt: &T, t: &Trace<ObjAction<T, ()>>) -> bool
where
    T::Input: Ord,
{
    let new_def = LinChecker::owned(adt.clone()).check(t);
    let classical = ClassicalChecker::new(adt).check(t);
    match (&new_def, &classical) {
        (Ok(w), Ok(())) => witness_is_valid(adt, t, w),
        (Err(LinError::NotLinearizable), Err(LinError::NotLinearizable)) => true,
        (Err(a), Err(b)) => a == b,
        _ => false,
    }
}

/// classical-linearizable ⇒ new-definition-linearizable (holds even with
/// repeated events).
fn classical_implies_new<T: Adt + Clone>(adt: &T, t: &Trace<ObjAction<T, ()>>) -> bool
where
    T::Input: Ord,
{
    match ClassicalChecker::new(adt).check(t) {
        Ok(()) => LinChecker::owned(adt.clone()).check(t).is_ok(),
        Err(_) => true,
    }
}

/// Stamps every generated input uniquely, restoring the unique-inputs
/// assumption without changing the sequential semantics.
fn stamper<I>(mut inner: impl FnMut(&mut StdRng) -> I) -> impl FnMut(&mut StdRng) -> (u32, I) {
    let mut next = 0u32;
    move |rng| {
        next += 1;
        (next, inner(rng))
    }
}

fn cons_input(rng: &mut StdRng) -> ConsInput {
    ConsInput::propose(rng.gen_range(1..4u64))
}

fn counter_input(rng: &mut StdRng) -> CounterInput {
    if rng.gen_bool(0.5) {
        CounterInput::Increment
    } else {
        CounterInput::Read
    }
}

fn queue_input(rng: &mut StdRng) -> QueueInput {
    if rng.gen_bool(0.5) {
        QueueInput::Enqueue(rng.gen_range(1..3u64))
    } else {
        QueueInput::Dequeue
    }
}

fn reg_input(rng: &mut StdRng) -> RegInput {
    if rng.gen_bool(0.5) {
        RegInput::Write(rng.gen_range(1..3u64))
    } else {
        RegInput::Read
    }
}

macro_rules! stamped_equivalence_test {
    ($name:ident, $adt:expr, $input:expr, $steps:expr, $seeds:expr) => {
        #[test]
        fn $name() {
            let adt = Stamped::new($adt);
            for seed in 0..$seeds {
                let cfg = GenConfig {
                    clients: 3,
                    steps: $steps,
                    seed,
                };
                let t = random_linearizable_trace(&adt, cfg, stamper($input));
                assert!(agree(&adt, &t), "lin gen, seed {seed}: {t:?}");
                let t = random_perturbed_trace(&adt, cfg, 0.4, stamper($input));
                assert!(agree(&adt, &t), "perturbed gen, seed {seed}: {t:?}");
            }
        }
    };
}

stamped_equivalence_test!(
    stamped_equivalence_consensus,
    Consensus,
    cons_input,
    15,
    100
);
stamped_equivalence_test!(stamped_equivalence_counter, Counter, counter_input, 14, 100);
stamped_equivalence_test!(stamped_equivalence_queue, Queue, queue_input, 12, 80);
stamped_equivalence_test!(stamped_equivalence_register, Register, reg_input, 14, 80);

#[test]
fn classical_implies_new_definition() {
    // The robust direction on raw (duplicate-value) traces.
    for seed in 0..120 {
        let cfg = GenConfig {
            clients: 3,
            steps: 14,
            seed,
        };
        let t = random_perturbed_trace(&Counter, cfg, 0.35, counter_input);
        assert!(classical_implies_new(&Counter, &t), "seed {seed}: {t:?}");
        let t = random_perturbed_trace(&Register, cfg, 0.35, reg_input);
        assert!(classical_implies_new(&Register, &t), "seed {seed}: {t:?}");
        let t = random_linearizable_trace(&Counter, cfg, counter_input);
        assert!(classical_implies_new(&Counter, &t), "seed {seed}: {t:?}");
    }
}

#[test]
fn repeated_events_divergence() {
    // Minimal counterexample to the literal Theorem 1 under repeated input
    // values: c1's *pending* `get` lends its occurrence to c2's `get`
    // response, so the new definition explains `=0` by the chain
    //   [get] ⊂ [get, inc] ⊂ [get, inc, inc]
    // even though c2's own `inc` completed before c2 invoked `get` — which
    // the classical definition (preserving per-client operation identity)
    // rightly rejects.
    let c1 = ClientId::new(1);
    let c2 = ClientId::new(2);
    let c3 = ClientId::new(3);
    let ph = PhaseId::FIRST;
    let inc = CounterInput::Increment;
    let get = CounterInput::Read;
    let ok = CounterOutput::Ack;
    let t: Trace<ObjAction<Counter, ()>> = Trace::from_actions(vec![
        Action::invoke(c1, ph, get), // pending forever
        Action::invoke(c2, ph, inc),
        Action::invoke(c3, ph, inc),
        Action::respond(c2, ph, inc, ok),
        Action::invoke(c2, ph, get),
        Action::respond(c3, ph, inc, ok),
        Action::respond(c2, ph, get, CounterOutput::Count(0)),
    ]);
    let new_def = LinChecker::owned(Counter).check(&t);
    let classical = ClassicalChecker::new(&Counter).check(&t);
    assert!(new_def.is_ok(), "new definition should accept: {new_def:?}");
    assert_eq!(classical, Err(LinError::NotLinearizable));

    // Stamping the same trace restores agreement: both reject.
    let s = Stamped::new(Counter);
    let ts: Trace<ObjAction<Stamped<Counter>, ()>> = Trace::from_actions(vec![
        Action::invoke(c1, ph, (0, get)),
        Action::invoke(c2, ph, (1, inc)),
        Action::invoke(c3, ph, (2, inc)),
        Action::respond(c2, ph, (1, inc), ok),
        Action::invoke(c2, ph, (3, get)),
        Action::respond(c3, ph, (2, inc), ok),
        Action::respond(c2, ph, (3, get), CounterOutput::Count(0)),
    ]);
    assert_eq!(
        LinChecker::owned(s).check(&ts).map(|_| ()),
        Err(LinError::NotLinearizable)
    );
    assert_eq!(
        ClassicalChecker::new(&s).check(&ts),
        Err(LinError::NotLinearizable)
    );
}

/// Fully random small traces built event by event (not necessarily
/// well-formed): the checkers must also agree on the error classification
/// once inputs are stamped.
fn arb_stamped_trace() -> impl Strategy<Value = Trace<ObjAction<Stamped<Consensus>, ()>>> {
    let event = (0..3u32, 0..3u64, 0..6u32, prop::bool::ANY).prop_map(|(c, v, stamp, is_inv)| {
        let client = ClientId::new(c + 1);
        let input = (stamp, ConsInput::propose(v + 1));
        if is_inv {
            Action::invoke(client, PhaseId::FIRST, input)
        } else {
            Action::respond(
                client,
                PhaseId::FIRST,
                input,
                slin_adt::ConsOutput::decide(v + 1),
            )
        }
    });
    prop::collection::vec(event, 0..8).prop_map(Trace::from_actions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]
    #[test]
    fn arbitrary_event_sequences_agree_or_imply(t in arb_stamped_trace()) {
        // Arbitrary sequences may still repeat stamped inputs (stamps are
        // drawn from a small pool), so assert the one-sided implication
        // plus full agreement whenever all inputs are distinct.
        let s = Stamped::new(Consensus);
        prop_assert!(classical_implies_new(&s, &t), "{t:?}");
        let inputs: Vec<_> = t.iter().filter(|a| a.is_invoke()).map(|a| *a.input()).collect();
        let mut dedup = inputs.clone();
        dedup.sort();
        dedup.dedup();
        if dedup.len() == inputs.len() {
            prop_assert!(agree(&s, &t), "{t:?}");
        }
    }
}
