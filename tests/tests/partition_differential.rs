//! Partitioned-vs-monolithic differential tests.
//!
//! The P-compositional path (`check_partitioned`) promises **byte-identical
//! verdicts and witnesses** to the monolithic chain search, while expanding
//! fewer nodes. These suites pin that promise over the multi-key workload
//! generators (pinned proptest seeds — see `PINNED_SEED`), for both the
//! plain and the speculative checker, and prove the identity fallback
//! engages on partition-hostile traces (switch actions, unclassifiable
//! inputs).
//!
//! This is a **compat suite**: the deprecated `check_*` wrappers are the
//! differential oracles here (the `session_differential` suite covers the
//! builder facade), so the deprecation lint is allowed file-wide.

#![allow(deprecated)]

use proptest::prelude::*;
use slin_adt::{
    ConsInput, ConsOutput, Consensus, IdentityPartitioner, KvInput, KvKeyPartitioner, KvOutput,
    KvStore, SetElemPartitioner, Value,
};
use slin_core::gen::{random_multikey_kv_trace, random_multikey_set_trace, MultiKeyConfig};
use slin_core::initrel::{ConsensusInit, ExactInit};
use slin_core::lin::{witness_is_valid, LinChecker};
use slin_core::partition::FallbackReason;
use slin_core::slin::SlinChecker;
use slin_core::ObjAction;
use slin_trace::{Action, ClientId, PhaseId, Trace};

fn c(n: u32) -> ClientId {
    ClientId::new(n)
}

/// Generator parameters swept by the differential suites: friendly
/// (many keys, spread) through hostile (one key, or full contention),
/// linearizable and perturbed.
fn configs() -> impl Strategy<Value = MultiKeyConfig> {
    (
        1..=6u32,      // keys
        2..=4u32,      // clients
        8..=26usize,   // steps
        0..=2u8,       // contention tier
        0..=1u8,       // perturbation tier
        0..=10_000u64, // seed
    )
        .prop_map(
            |(keys, clients, steps, contention, error, seed)| MultiKeyConfig {
                clients,
                steps,
                keys,
                skew: 0.7,
                contention: [0.0, 0.3, 1.0][contention as usize],
                error_prob: [0.0, 0.35][error as usize],
                seed,
            },
        )
}

/// Relabels a switch-free object trace's value type (the speculative
/// checker's trace type carries the `rinit` value even when no switch
/// occurs).
fn retag<V: Clone + PartialEq>(t: &Trace<ObjAction<KvStore, ()>>) -> Trace<ObjAction<KvStore, V>> {
    Trace::from_actions(
        t.iter()
            .map(|a| match a {
                Action::Invoke {
                    client,
                    phase,
                    input,
                } => Action::invoke(*client, *phase, *input),
                Action::Respond {
                    client,
                    phase,
                    input,
                    output,
                } => Action::respond(*client, *phase, *input, *output),
                Action::Switch { .. } => unreachable!("generated traces are switch-free"),
            })
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// Plain checker, `KvStore`: the partitioned verdict and witness are
    /// byte-identical to the monolithic ones on every generated workload.
    #[test]
    fn kv_partitioned_matches_monolithic(cfg in configs()) {
        let t = random_multikey_kv_trace(&cfg);
        let chk = LinChecker::new(&KvStore).with_threads(4);
        let (mono, mono_stats) = chk.check_with_stats(&t);
        let (part, report) = chk.check_partitioned_with_report(&KvKeyPartitioner, &t);
        prop_assert_eq!(&part, &mono, "cfg {:?}", cfg);
        prop_assert_eq!(format!("{part:?}"), format!("{mono:?}"));
        if let Ok(w) = &part {
            prop_assert!(witness_is_valid(&KvStore, &t, w), "cfg {:?}", cfg);
        }
        // Multi-partition traces must never expand more nodes than the
        // monolithic search unless the merge had to re-run it.
        if report.partitions > 1 && !report.remerged {
            prop_assert!(report.stats.nodes <= mono_stats.nodes, "cfg {:?}", cfg);
        }
    }

    /// Plain checker, `Set`: same contract on the commuting-element ADT.
    #[test]
    fn set_partitioned_matches_monolithic(cfg in configs()) {
        let t = random_multikey_set_trace(&cfg);
        let chk = LinChecker::new(&slin_adt::Set).with_threads(3);
        let mono = chk.check(&t);
        let part = chk.check_partitioned(&SetElemPartitioner, &t);
        prop_assert_eq!(&part, &mono, "cfg {:?}", cfg);
        if let Ok(w) = &part {
            prop_assert!(witness_is_valid(&slin_adt::Set, &t, w), "cfg {:?}", cfg);
        }
    }

    /// Speculative checker on switch-free phase traces (where SLin
    /// coincides with Lin, Theorem 2): partitioned witnesses and verdict
    /// variants match the monolithic ones.
    #[test]
    fn slin_partitioned_matches_monolithic_on_switch_free_traces(cfg in configs()) {
        let t: Trace<ObjAction<KvStore, Vec<KvInput>>> =
            retag(&random_multikey_kv_trace(&cfg));
        let chk = SlinChecker::new(&KvStore, ExactInit::new(), PhaseId::new(1), PhaseId::new(2));
        let mono = chk.check(&t);
        let part = chk.check_partitioned(&KvKeyPartitioner, &t);
        // Witnesses byte-identical; `interpretations_checked`/`stats`
        // measure work, which partitioning reduces by design.
        prop_assert_eq!(
            part.as_ref().map(|r| &r.witness),
            mono.as_ref().map(|r| &r.witness),
            "cfg {:?}", cfg
        );
        prop_assert_eq!(
            part.as_ref().err(),
            mono.as_ref().err(),
            "cfg {:?}", cfg
        );
    }
}

/// The identity partitioner engages the fallback: one partition, and the
/// whole result — including the engine statistics — is byte-identical to
/// the monolithic path.
#[test]
fn identity_partitioner_falls_back_to_the_monolithic_path() {
    let cfg = MultiKeyConfig {
        keys: 5,
        seed: 42,
        ..Default::default()
    };
    let t = random_multikey_kv_trace(&cfg);
    let chk = LinChecker::new(&KvStore);
    let (mono, mono_stats) = chk.check_with_stats(&t);
    let (part, report) = chk.check_partitioned_with_report(&IdentityPartitioner, &t);
    assert_eq!(
        report.fallback,
        Some(FallbackReason::UnclassifiableInput),
        "identity fallback must engage"
    );
    assert_eq!(report.partitions, 1);
    assert!(!report.remerged);
    assert_eq!(part, mono);
    assert_eq!(
        report.stats, mono_stats,
        "fallback is the monolithic search"
    );
}

/// A partition-hostile speculative trace — switch actions couple the
/// classes through `rinit` — engages the identity fallback even under a
/// keyed partitioner, and the verdict is byte-identical to the monolithic
/// check.
#[test]
fn switch_actions_engage_the_identity_fallback() {
    let ph1 = PhaseId::new(1);
    let t: Trace<ObjAction<KvStore, Vec<KvInput>>> = Trace::from_actions(vec![
        Action::invoke(c(1), ph1, KvInput::Put(1, 5)),
        Action::respond(c(1), ph1, KvInput::Put(1, 5), KvOutput::Ack),
        Action::invoke(c(2), ph1, KvInput::Get(2)),
        Action::switch(
            c(2),
            PhaseId::new(2),
            KvInput::Get(2),
            vec![KvInput::Put(1, 5)],
        ),
    ]);
    let chk = SlinChecker::new(&KvStore, ExactInit::new(), ph1, PhaseId::new(2));
    let (part, report) = chk.check_partitioned_with_report(&KvKeyPartitioner, &t);
    assert_eq!(
        report.fallback,
        Some(FallbackReason::SwitchUncertified),
        "an uncertified switch action must force the fallback"
    );
    assert_eq!(report.partitions, 1);
    assert_eq!(part, chk.check(&t));
}

/// The consensus protocol traces are inherently non-partitionable (every
/// proposal contends on one decision): the identity partitioner routes
/// them through the monolithic speculative check unchanged, violations
/// included.
#[test]
fn consensus_phase_traces_fall_back_and_agree() {
    let ph1 = PhaseId::new(1);
    let traces: Vec<Trace<ObjAction<Consensus, Value>>> = vec![
        // Speculatively linearizable: decide 1, switch with 1.
        Trace::from_actions(vec![
            Action::invoke(c(1), ph1, ConsInput::propose(1)),
            Action::invoke(c(2), ph1, ConsInput::propose(2)),
            Action::respond(c(1), ph1, ConsInput::propose(1), ConsOutput::decide(1)),
            Action::switch(c(2), PhaseId::new(2), ConsInput::propose(2), Value::new(1)),
        ]),
        // Violation: decide 1 but switch with 2.
        Trace::from_actions(vec![
            Action::invoke(c(1), ph1, ConsInput::propose(1)),
            Action::invoke(c(2), ph1, ConsInput::propose(2)),
            Action::respond(c(1), ph1, ConsInput::propose(1), ConsOutput::decide(1)),
            Action::switch(c(2), PhaseId::new(2), ConsInput::propose(2), Value::new(2)),
        ]),
    ];
    let chk = SlinChecker::new(&Consensus, ConsensusInit::new(), ph1, PhaseId::new(2));
    for t in &traces {
        let (part, report) = chk.check_partitioned_with_report(&IdentityPartitioner, t);
        assert!(report.fallback.is_some());
        assert_eq!(part, chk.check(t), "{t:?}");
    }
}

/// The acceptance-criterion speedup, end to end: on a partition-friendly
/// multi-key workload the partitioned search expands at most half the
/// nodes of the monolithic one, with an identical witness.
#[test]
fn partitioning_halves_the_node_count_on_multikey_workloads() {
    let cfg = MultiKeyConfig {
        clients: 5,
        steps: 48,
        keys: 8,
        skew: 0.3,
        contention: 0.0,
        error_prob: 0.0,
        seed: 7,
    };
    let t = random_multikey_kv_trace(&cfg);
    let chk = LinChecker::new(&KvStore);
    let (mono, mono_stats) = chk.check_with_stats(&t);
    let (part, report) = chk.check_partitioned_with_report(&KvKeyPartitioner, &t);
    assert_eq!(part, mono);
    assert!(report.partitions > 1);
    assert!(
        mono_stats.nodes >= 2 * report.stats.nodes,
        "expected >= 2x node reduction: mono {} vs partitioned {}",
        mono_stats.nodes,
        report.stats.nodes
    );
}
