//! Cross-ADT exercises of the checkers: the framework is claimed to work
//! for *arbitrary* abstract data types (the paper contrasts itself with
//! prior work restricted to specific objects), so the checkers are run over
//! every ADT in the workspace, including the universal ADT that abstracts
//! state-machine replication.

use slin_adt::{
    derive_output, ConsInput, Consensus, Counter, CounterInput, CounterOutput, KvInput, KvOutput,
    KvStore, Queue, QueueInput, QueueOutput, RegInput, RegOutput, Register, Universal,
};
use slin_core::classical::ClassicalChecker;
use slin_core::gen::{random_linearizable_trace, GenConfig};
use slin_core::lin::{witness_is_valid, LinChecker};
use slin_core::ObjAction;
use slin_trace::{Action, ClientId, PhaseId, Trace};

fn c(n: u32) -> ClientId {
    ClientId::new(n)
}
fn ph() -> PhaseId {
    PhaseId::FIRST
}

#[test]
fn kv_store_concurrent_put_get() {
    let kv = KvStore::new();
    let chk = LinChecker::owned(kv);
    // get(1) overlaps put(1, 5): both =∅ and =5 are linearizable.
    for seen in [None, Some(5)] {
        let t: Trace<ObjAction<KvStore, ()>> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(), KvInput::Put(1, 5)),
            Action::invoke(c(2), ph(), KvInput::Get(1)),
            Action::respond(c(2), ph(), KvInput::Get(1), KvOutput::Found(seen)),
            Action::respond(c(1), ph(), KvInput::Put(1, 5), KvOutput::Ack),
        ]);
        assert!(chk.check(&t).is_ok(), "seen={seen:?}");
    }
    // But =7 is not: 7 was never bound to key 1.
    let t: Trace<ObjAction<KvStore, ()>> = Trace::from_actions(vec![
        Action::invoke(c(1), ph(), KvInput::Put(1, 5)),
        Action::invoke(c(2), ph(), KvInput::Get(1)),
        Action::respond(c(2), ph(), KvInput::Get(1), KvOutput::Found(Some(7))),
        Action::respond(c(1), ph(), KvInput::Put(1, 5), KvOutput::Ack),
    ]);
    assert!(chk.check(&t).is_err());
}

#[test]
fn kv_store_generated_traces() {
    use rand::Rng;
    for seed in 0..40 {
        let cfg = GenConfig {
            clients: 3,
            steps: 12,
            seed,
        };
        let t = random_linearizable_trace(&KvStore, cfg, |rng| match rng.gen_range(0..3u8) {
            0 => KvInput::Put(rng.gen_range(1..3), rng.gen_range(1..4)),
            1 => KvInput::Get(rng.gen_range(1..3)),
            _ => KvInput::Delete(rng.gen_range(1..3)),
        });
        let w = LinChecker::owned(KvStore).check(&t).unwrap();
        assert!(witness_is_valid(&KvStore, &t, &w), "seed {seed}");
        assert!(ClassicalChecker::new(&KvStore).check(&t).is_ok());
    }
}

#[test]
fn universal_adt_traces_check_against_any_derived_adt() {
    // Run the universal object, then derive consensus outputs from its
    // histories (the Section 6 construction).
    let u: Universal<ConsInput> = Universal::new();
    let t: Trace<ObjAction<Universal<ConsInput>, ()>> = Trace::from_actions(vec![
        Action::invoke(c(1), ph(), ConsInput::propose(4)),
        Action::respond(
            c(1),
            ph(),
            ConsInput::propose(4),
            vec![ConsInput::propose(4)],
        ),
        Action::invoke(c(2), ph(), ConsInput::propose(9)),
        Action::respond(
            c(2),
            ph(),
            ConsInput::propose(9),
            vec![ConsInput::propose(4), ConsInput::propose(9)],
        ),
    ]);
    assert!(LinChecker::owned(u).check(&t).is_ok());
    // Deriving consensus from the returned histories gives the consensus
    // outputs that a directly-implemented consensus object would return.
    for a in t.iter() {
        if let Action::Respond { output, .. } = a {
            let derived = derive_output(&Consensus::new(), output).unwrap();
            assert_eq!(derived.value().get(), 4);
        }
    }
}

#[test]
fn universal_adt_rejects_history_reordering() {
    // Outputs of the universal ADT pin the linearization exactly: returning
    // histories that disagree on a prefix is non-linearizable.
    let u: Universal<u8> = Universal::new();
    let t: Trace<ObjAction<Universal<u8>, ()>> = Trace::from_actions(vec![
        Action::invoke(c(1), ph(), 1u8),
        Action::invoke(c(2), ph(), 2u8),
        Action::respond(c(1), ph(), 1u8, vec![1u8]),
        Action::respond(c(2), ph(), 2u8, vec![2u8]),
    ]);
    assert!(LinChecker::owned(u).check(&t).is_err());
    assert!(ClassicalChecker::new(&u).check(&t).is_err());
}

#[test]
fn counter_reads_bound_increment_counts() {
    let chk = LinChecker::owned(Counter);
    // get=2 with only one completed inc and one pending inc is fine (the
    // pending inc may have taken effect) …
    let t: Trace<ObjAction<Counter, ()>> = Trace::from_actions(vec![
        Action::invoke(c(1), ph(), CounterInput::Increment),
        Action::respond(c(1), ph(), CounterInput::Increment, CounterOutput::Ack),
        Action::invoke(c(2), ph(), CounterInput::Increment),
        Action::invoke(c(3), ph(), CounterInput::Read),
        Action::respond(c(3), ph(), CounterInput::Read, CounterOutput::Count(2)),
    ]);
    assert!(chk.check(&t).is_ok());
    // … but get=3 is impossible: only two incs were ever invoked.
    let t: Trace<ObjAction<Counter, ()>> = Trace::from_actions(vec![
        Action::invoke(c(1), ph(), CounterInput::Increment),
        Action::respond(c(1), ph(), CounterInput::Increment, CounterOutput::Ack),
        Action::invoke(c(2), ph(), CounterInput::Increment),
        Action::invoke(c(3), ph(), CounterInput::Read),
        Action::respond(c(3), ph(), CounterInput::Read, CounterOutput::Count(3)),
    ]);
    assert!(chk.check(&t).is_err());
}

#[test]
fn queue_elements_are_not_duplicated() {
    let chk = LinChecker::owned(Queue);
    // A single enqueued element cannot be dequeued twice.
    let t: Trace<ObjAction<Queue, ()>> = Trace::from_actions(vec![
        Action::invoke(c(1), ph(), QueueInput::Enqueue(5)),
        Action::respond(c(1), ph(), QueueInput::Enqueue(5), QueueOutput::Ack),
        Action::invoke(c(1), ph(), QueueInput::Dequeue),
        Action::respond(
            c(1),
            ph(),
            QueueInput::Dequeue,
            QueueOutput::Dequeued(Some(5)),
        ),
        Action::invoke(c(2), ph(), QueueInput::Dequeue),
        Action::respond(
            c(2),
            ph(),
            QueueInput::Dequeue,
            QueueOutput::Dequeued(Some(5)),
        ),
    ]);
    assert!(chk.check(&t).is_err());
}

#[test]
fn register_new_old_inversion_rejected() {
    // The classic "new-old inversion": r1 reads the new value, then r2
    // (invoked after r1 completed) reads the old one — not linearizable.
    let chk = LinChecker::owned(Register);
    let t: Trace<ObjAction<Register, ()>> = Trace::from_actions(vec![
        Action::invoke(c(1), ph(), RegInput::Write(1)),
        Action::respond(c(1), ph(), RegInput::Write(1), RegOutput::Ack),
        Action::invoke(c(1), ph(), RegInput::Write(2)),
        Action::invoke(c(2), ph(), RegInput::Read),
        Action::respond(c(2), ph(), RegInput::Read, RegOutput::Value(Some(2))),
        Action::invoke(c(3), ph(), RegInput::Read),
        Action::respond(c(3), ph(), RegInput::Read, RegOutput::Value(Some(1))),
        Action::respond(c(1), ph(), RegInput::Write(2), RegOutput::Ack),
    ]);
    assert!(chk.check(&t).is_err());
    assert!(ClassicalChecker::new(&Register).check(&t).is_err());
}

#[test]
fn checker_verdicts_depend_on_the_adt() {
    // The same event structure can be linearizable for one ADT and not
    // another — the checkers are genuinely ADT-parametric.
    let t_cons: Trace<ObjAction<Consensus, ()>> = Trace::from_actions(vec![
        Action::invoke(c(1), ph(), ConsInput::propose(1)),
        Action::respond(
            c(1),
            ph(),
            ConsInput::propose(1),
            slin_adt::ConsOutput::decide(1),
        ),
        Action::invoke(c(2), ph(), ConsInput::propose(2)),
        Action::respond(
            c(2),
            ph(),
            ConsInput::propose(2),
            slin_adt::ConsOutput::decide(1),
        ),
    ]);
    assert!(LinChecker::owned(Consensus).check(&t_cons).is_ok());
    // A register would have to return the latest write instead.
    let t_reg: Trace<ObjAction<Register, ()>> = Trace::from_actions(vec![
        Action::invoke(c(1), ph(), RegInput::Write(1)),
        Action::respond(c(1), ph(), RegInput::Write(1), RegOutput::Ack),
        Action::invoke(c(2), ph(), RegInput::Read),
        Action::respond(c(2), ph(), RegInput::Read, RegOutput::Value(None)),
    ]);
    assert!(LinChecker::owned(Register).check(&t_reg).is_err());
}

#[test]
fn stack_lifo_constraints() {
    use slin_adt::{Stack, StackInput, StackOutput};
    let chk = LinChecker::owned(Stack);
    // Sequential push(1); push(2); pop must return 2, not 1.
    let bad: Trace<ObjAction<Stack, ()>> = Trace::from_actions(vec![
        Action::invoke(c(1), ph(), StackInput::Push(1)),
        Action::respond(c(1), ph(), StackInput::Push(1), StackOutput::Ack),
        Action::invoke(c(1), ph(), StackInput::Push(2)),
        Action::respond(c(1), ph(), StackInput::Push(2), StackOutput::Ack),
        Action::invoke(c(1), ph(), StackInput::Pop),
        Action::respond(c(1), ph(), StackInput::Pop, StackOutput::Popped(Some(1))),
    ]);
    assert!(chk.check(&bad).is_err());
    // With the pushes overlapping, pop=1 becomes linearizable.
    let ok: Trace<ObjAction<Stack, ()>> = Trace::from_actions(vec![
        Action::invoke(c(1), ph(), StackInput::Push(1)),
        Action::invoke(c(2), ph(), StackInput::Push(2)),
        Action::respond(c(1), ph(), StackInput::Push(1), StackOutput::Ack),
        Action::respond(c(2), ph(), StackInput::Push(2), StackOutput::Ack),
        Action::invoke(c(1), ph(), StackInput::Pop),
        Action::respond(c(1), ph(), StackInput::Pop, StackOutput::Popped(Some(1))),
    ]);
    assert!(chk.check(&ok).is_ok());
}

#[test]
fn set_membership_constraints() {
    use slin_adt::{Set, SetInput, SetOutput};
    let chk = LinChecker::owned(Set);
    // add(1)=true; a concurrent add(1) by another client may see false or
    // true depending on linearization order…
    for second_saw in [true, false] {
        let t: Trace<ObjAction<Set, ()>> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(), SetInput::Add(1)),
            Action::invoke(c(2), ph(), SetInput::Add(1)),
            Action::respond(c(1), ph(), SetInput::Add(1), SetOutput(true)),
            Action::respond(c(2), ph(), SetInput::Add(1), SetOutput(second_saw)),
        ]);
        // Exactly one of the adds can report "new" — both true is invalid.
        assert_eq!(
            chk.check(&t).is_ok(),
            !second_saw,
            "second_saw={second_saw}"
        );
    }
    // …and a completed remove separates two adds: both report true.
    let t: Trace<ObjAction<Set, ()>> = Trace::from_actions(vec![
        Action::invoke(c(1), ph(), SetInput::Add(1)),
        Action::respond(c(1), ph(), SetInput::Add(1), SetOutput(true)),
        Action::invoke(c(1), ph(), SetInput::Remove(1)),
        Action::respond(c(1), ph(), SetInput::Remove(1), SetOutput(true)),
        Action::invoke(c(2), ph(), SetInput::Add(1)),
        Action::respond(c(2), ph(), SetInput::Add(1), SetOutput(true)),
    ]);
    assert!(chk.check(&t).is_ok());
}

#[test]
fn stack_and_set_generated_traces_pass_both_checkers() {
    use rand::Rng;
    use slin_adt::{Set, SetInput, Stack, StackInput};
    for seed in 0..30 {
        let cfg = GenConfig {
            clients: 3,
            steps: 12,
            seed,
        };
        let t = random_linearizable_trace(&Stack, cfg, |rng| {
            if rng.gen_bool(0.6) {
                StackInput::Push(rng.gen_range(1..4))
            } else {
                StackInput::Pop
            }
        });
        assert!(LinChecker::owned(Stack).check(&t).is_ok(), "seed {seed}");
        assert!(
            ClassicalChecker::new(&Stack).check(&t).is_ok(),
            "seed {seed}"
        );
        let t = random_linearizable_trace(&Set, cfg, |rng| match rng.gen_range(0..3u8) {
            0 => SetInput::Add(rng.gen_range(1..3)),
            1 => SetInput::Remove(rng.gen_range(1..3)),
            _ => SetInput::Contains(rng.gen_range(1..3)),
        });
        assert!(LinChecker::owned(Set).check(&t).is_ok(), "seed {seed}");
        assert!(ClassicalChecker::new(&Set).check(&t).is_ok(), "seed {seed}");
    }
}
