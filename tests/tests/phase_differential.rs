//! Phase-trace differential corpora: the **keyed** speculative paths
//! (certified batch partitioning and sharded streaming across switch
//! actions) against the monolithic chain search.
//!
//! With a valid switch-independence certificate (`slin-cert/v2`) the keyed
//! checker classifies switch actions per independence class instead of
//! engaging the identity fallback; verdicts **and witnesses** must stay
//! byte-identical to the monolithic path with zero fallbacks. The negative
//! fixture pins the other side of the contract: a partitioner the analyzer
//! rejects yields a ≤4-input counterexample whose replay *diverges*
//! keyed-vs-monolithic — exactly the unsoundness the certificate refusal
//! predicts.

use slin_adt::{Counter, KvInput, KvKeyPartitioner, KvStore};
use slin_analysis::fixtures::BogusCounterPartitioner;
use slin_analysis::{certify_switch, AnalyzeConfig, SwitchFailure};
use slin_core::gen::{phase_trace_bounds, random_phase_kv_trace, PhaseConfig};
use slin_core::initrel::ExactInit;
use slin_core::session::{Checker, StrategyUsed};
use slin_core::slin::SlinChecker;
use slin_core::stream::{MonitorConfig, SlinMonitor};
use slin_core::ConsistencyModel;
use slin_trace::PhaseId;

fn phase_checker() -> SlinChecker<KvStore, ExactInit> {
    let (m, n) = phase_trace_bounds();
    SlinChecker::owned(KvStore, ExactInit::new(), m, n)
}

/// The certified-partitioned corpus: linearizable and perturbed phase
/// traces over several seeds. Keyed batch verdicts and witnesses are
/// byte-identical to the monolithic ones; on the well-formed corpus the
/// keyed path never falls back to the monolithic search.
#[test]
fn keyed_batch_is_byte_identical_to_monolithic_on_phase_traces() {
    let chk = phase_checker();
    for error_prob in [0.0, 0.5] {
        for seed in 0..8u64 {
            let cfg = PhaseConfig {
                error_prob,
                seed,
                ..Default::default()
            };
            let t = random_phase_kv_trace(&cfg);
            assert!(t.iter().any(|a| a.is_switch()), "corpus must cross phases");
            let mono = chk.check(&t);
            let sv = chk
                .check_keyed(&KvKeyPartitioner, &t)
                .expect("the speculative checker has a keyed path");
            // Witnesses and error variants byte-identical; the `stats` /
            // `interpretations_checked` fields measure work, which the
            // keyed path reshapes by design.
            assert_eq!(
                sv.verdict.as_ref().map(|r| &r.witness),
                mono.as_ref().map(|r| &r.witness),
                "seed {seed} error {error_prob}"
            );
            assert_eq!(
                sv.verdict.as_ref().err(),
                mono.as_ref().err(),
                "seed {seed} error {error_prob}"
            );
            assert_eq!(
                format!("{:?}", sv.verdict.as_ref().map(|r| &r.witness)),
                format!("{:?}", mono.as_ref().map(|r| &r.witness)),
                "witness bytes must match: seed {seed} error {error_prob}"
            );
            if error_prob == 0.0 {
                assert_eq!(
                    sv.report.fallback, None,
                    "certified corpus must never fall back: seed {seed}"
                );
                assert!(mono.is_ok(), "corpus is slin by construction: seed {seed}");
            }
        }
    }
}

/// Sharded streaming across switches: a keyed monitor keeps its per-class
/// shards through phase changes and reports byte-identically to the batch
/// check, with no fallback engaged.
#[test]
fn keyed_streaming_across_switches_matches_batch() {
    let chk = phase_checker();
    for error_prob in [0.0, 0.5] {
        for seed in 0..6u64 {
            let cfg = PhaseConfig {
                error_prob,
                seed,
                ..Default::default()
            };
            let t = random_phase_kv_trace(&cfg);
            let mut mon = SlinMonitor::from_checker(
                chk.clone(),
                KvKeyPartitioner,
                MonitorConfig {
                    keyed: true,
                    ..Default::default()
                },
            );
            for a in t.iter() {
                mon.ingest(a.clone());
            }
            let report = mon.report();
            let batch = chk.check(&t);
            assert_eq!(
                report.verdict.as_ref().map(|r| &r.witness),
                batch.as_ref().map(|r| &r.witness),
                "seed {seed} error {error_prob}"
            );
            assert_eq!(
                report.verdict.as_ref().err(),
                batch.as_ref().err(),
                "seed {seed} error {error_prob}"
            );
            assert_eq!(
                format!("{:?}", report.verdict.as_ref().map(|r| &r.witness)),
                format!("{:?}", batch.as_ref().map(|r| &r.witness)),
                "streamed witness bytes must match: seed {seed} error {error_prob}"
            );
            if error_prob == 0.0 {
                assert_eq!(
                    report.fallback, None,
                    "keyed stream must stay sharded across switches: seed {seed}"
                );
            }
        }
    }
}

/// Without the keyed flag the same stream collapses to the identity route
/// on its first switch — the fallback reason the keyed mode removes.
#[test]
fn unkeyed_streaming_falls_back_on_the_first_switch() {
    let chk = phase_checker();
    let t = random_phase_kv_trace(&PhaseConfig::default());
    let mut mon =
        SlinMonitor::from_checker(chk.clone(), KvKeyPartitioner, MonitorConfig::default());
    for a in t.iter() {
        mon.ingest(a.clone());
    }
    let report = mon.report();
    assert!(
        report.fallback.is_some(),
        "uncertified switches must fall back"
    );
    assert_eq!(report.verdict, chk.check(&t), "fallback is still exact");
}

/// The session facade end to end: installing the analyzer's switch
/// certificate unlocks the partitioned strategy on phase traces, with the
/// monolithic verdict reproduced byte for byte and zero fallbacks.
#[test]
fn session_with_switch_cert_partitions_phase_traces() {
    let cert = certify_switch(&KvStore, &KvKeyPartitioner, &AnalyzeConfig::default())
        .expect("the shipped kv partitioner is switch-independent");
    let chk = phase_checker();
    for seed in [0u64, 3, 5] {
        let cfg = PhaseConfig {
            seed,
            ..Default::default()
        };
        let t = random_phase_kv_trace(&cfg);
        let mut session = Checker::builder(phase_checker())
            .partitioner(KvKeyPartitioner)
            .switch_certified(&cert)
            .expect("certificate covers (KvStore, KvKeyPartitioner, ExactInit)")
            .build::<Vec<KvInput>>();
        let verdict = session.check(&t);
        assert_eq!(
            verdict.strategy,
            StrategyUsed::Partitioned,
            "a certified session must keep the fast path across switches"
        );
        let mono = chk.check(&t);
        assert_eq!(
            verdict.outcome.as_ref().map(|r| &r.witness),
            mono.as_ref().map(|r| &r.witness),
            "seed {seed}"
        );
        assert_eq!(
            verdict.outcome.as_ref().err(),
            mono.as_ref().err(),
            "seed {seed}"
        );
        let report = verdict.partition.expect("partitioned runs report");
        assert_eq!(report.fallback, None, "seed {seed}");
    }
}

/// The negative fixture: the analyzer rejects the bogus Counter
/// partitioner with a ≤4-input counterexample, and replaying that
/// counterexample as a phase trace exhibits the predicted divergence —
/// the monolithic check accepts it, the keyed decomposition refutes it.
#[test]
fn bogus_init_partitioner_is_rejected_and_the_replay_diverges() {
    let failure = certify_switch(
        &Counter,
        &BogusCounterPartitioner,
        &AnalyzeConfig::default(),
    )
    .expect_err("reads depend on increments across the claimed classes");
    let SwitchFailure::Unsound(cex) = failure else {
        panic!("expected a counterexample, not a resource bailout");
    };
    assert!(cex.len() <= 4, "counterexample too long: {}", cex.len());
    let t = cex.to_trace(&Counter);
    assert!(t.iter().any(|a| a.is_switch()), "replay is a phase trace");
    let chk = SlinChecker::owned(Counter, ExactInit::new(), PhaseId::new(2), PhaseId::new(3));
    let mono = chk.check(&t);
    assert!(
        mono.is_ok(),
        "the monolithic interpretation explains the replay: {mono:?}"
    );
    let sv = chk
        .check_keyed(&BogusCounterPartitioner, &t)
        .expect("the speculative checker has a keyed path");
    assert!(
        sv.verdict.is_err(),
        "the keyed decomposition must refute what the monolithic path \
         accepts — the divergence the certificate refusal predicts"
    );
}
