//! End-to-end experiments E4/E5: the simulated Quorum + Backup protocol
//! across fault, loss, contention and chain-length sweeps.
//!
//! Checks, per run: agreement; the paper's invariants I1–I3 (first phase)
//! and I4–I5 (backup) on the phase projections; linearizability of the
//! object projection (fast specialized checker on every run, generic
//! checker on small traces); and speculative linearizability of the phase
//! projections when the exhaustive checker is applicable.

use slin_adt::Consensus;
use slin_consensus::harness::{run_scenario, verify_run, Scenario};
use slin_core::compose::{project_object, project_phase};
use slin_core::initrel::ConsensusInit;
use slin_core::invariants::{self, has_late_decide};
use slin_core::lin::LinChecker;
use slin_core::slin::SlinChecker;
use slin_trace::PhaseId;

fn ph(n: u32) -> PhaseId {
    PhaseId::new(n)
}

fn scenarios(seed: u64) -> Vec<(&'static str, Scenario)> {
    vec![
        (
            "fault_free",
            Scenario::fault_free(3, &[(1, 0), (2, 30)]).with_seed(seed),
        ),
        ("contended2", Scenario::contended(3, &[1, 2], seed)),
        ("contended3", Scenario::contended(5, &[1, 2, 3], seed)),
        (
            "one_crash",
            Scenario::fault_free(3, &[(4, 0), (5, 0)])
                .with_crashes(&[(0, 0)])
                .with_seed(seed),
        ),
        (
            "lossy",
            Scenario::fault_free(3, &[(1, 0), (2, 0)]).with_loss(0.2, seed),
        ),
        (
            "crash_mid_run",
            Scenario::contended(5, &[7, 8], seed).with_crashes(&[(1, 3)]),
        ),
    ]
}

#[test]
fn agreement_and_invariants_across_sweeps() {
    for seed in 0..25 {
        for (name, s) in scenarios(seed) {
            let out = run_scenario(&s);
            assert!(out.agreement(), "{name} seed {seed}: {:?}", out.decisions);
            assert!(
                invariants::consensus_linearizable(&out.trace),
                "{name} seed {seed}: {:?}",
                out.trace
            );
            // First-phase invariants on the (1, 2) projection.
            let t12 = project_phase::<Consensus, _>(&out.trace, ph(1), ph(2));
            assert!(invariants::i2(&t12), "{name} seed {seed} I2");
            assert!(invariants::i3(&t12), "{name} seed {seed} I3: {t12:?}");
            // Backup invariants on the (2, 3) projection.
            let t23 = project_phase::<Consensus, _>(&out.trace, ph(2), ph(3));
            assert!(invariants::i4(&t23), "{name} seed {seed} I4");
            assert!(invariants::i5(&t23), "{name} seed {seed} I5: {t23:?}");
        }
    }
}

#[test]
fn quorum_invariant_i1_holds_on_first_phase() {
    for seed in 0..25 {
        for (name, s) in scenarios(seed) {
            let out = run_scenario(&s);
            let t12 = project_phase::<Consensus, _>(&out.trace, ph(1), ph(2));
            assert!(invariants::i1(&t12), "{name} seed {seed}: {t12:?}");
        }
    }
}

#[test]
fn object_projection_is_linearizable_generic_checker() {
    let lin = LinChecker::owned(Consensus);
    let mut checked = 0;
    for seed in 0..25 {
        for (name, s) in scenarios(seed) {
            let out = run_scenario(&s);
            let obj = project_object::<Consensus, _>(&out.trace);
            if obj.len() <= 10 {
                checked += 1;
                assert!(lin.check(&obj).is_ok(), "{name} seed {seed}: {obj:?}");
            }
        }
    }
    assert!(checked > 50, "too few generically-checked runs: {checked}");
}

#[test]
fn phase_projections_are_speculatively_linearizable() {
    let q = SlinChecker::owned(Consensus, ConsensusInit::new(), ph(1), ph(2));
    let b = SlinChecker::owned(Consensus, ConsensusInit::new(), ph(2), ph(3));
    let mut checked = 0;
    let mut skipped_late = 0;
    for seed in 0..25 {
        for (name, s) in scenarios(seed) {
            let out = run_scenario(&s);
            if out.trace.len() > 10 {
                continue;
            }
            let t12 = project_phase::<Consensus, _>(&out.trace, ph(1), ph(2));
            if has_late_decide(&t12) {
                skipped_late += 1;
            } else {
                assert!(q.check(&t12).is_ok(), "{name} seed {seed}: {t12:?}");
            }
            let t23 = project_phase::<Consensus, _>(&out.trace, ph(2), ph(3));
            assert!(b.check(&t23).is_ok(), "{name} seed {seed}: {t23:?}");
            checked += 1;
        }
    }
    assert!(checked > 40, "too few checked runs: {checked}");
    // The late-decide corner is rare but real; log-level visibility only.
    let _ = skipped_late;
}

#[test]
fn longer_fast_chains_preserve_everything() {
    for fast in [2u32, 3] {
        for seed in 0..10 {
            let out = run_scenario(&Scenario::contended(3, &[1, 2], seed).with_fast_phases(fast));
            assert!(out.agreement(), "fast={fast} seed {seed}");
            assert_eq!(out.decisions.len(), 2, "fast={fast} seed {seed}");
            assert!(
                invariants::consensus_linearizable(&out.trace),
                "fast={fast} seed {seed}"
            );
            // Phase labels stay within the chain's signature (m, o):
            // invocations/responses in [1..o-1], switches in [2..o-1]
            // (the final Paxos phase never aborts).
            let o = fast + 2;
            assert!(out.trace.iter().all(|a| a.phase().value() < o));
        }
    }
}

#[test]
#[allow(deprecated)] // compat: the deprecated sequential wrapper is the differential oracle
fn harness_engine_verification_matches_direct_checks() {
    // The harness-level engine API agrees with constructing the checkers by
    // hand, and the parallel enumeration inside it agrees with a
    // single-threaded run, on real protocol traces.
    let q = SlinChecker::owned(Consensus, ConsensusInit::new(), ph(1), ph(2));
    let b = SlinChecker::owned(Consensus, ConsensusInit::new(), ph(2), ph(3));
    for seed in 0..10 {
        for (name, s) in scenarios(seed) {
            let out = run_scenario(&s);
            let v = verify_run(&s, &out);
            let t12 = project_phase::<Consensus, _>(&out.trace, ph(1), ph(2));
            let t23 = project_phase::<Consensus, _>(&out.trace, ph(2), ph(3));
            assert_eq!(v.phases[0].2, q.check(&t12).is_ok(), "{name} seed {seed}");
            assert_eq!(v.phases[1].2, b.check(&t23).is_ok(), "{name} seed {seed}");
            for (t, chk) in [(&t12, &q), (&t23, &b)] {
                let par = chk.clone().with_threads(4).check(t);
                let seq = chk.check_sequential(t);
                assert_eq!(format!("{par:?}"), format!("{seq:?}"), "{name} seed {seed}");
            }
        }
    }
}

#[test]
fn fast_path_latency_is_two_message_delays() {
    // The headline number: 2 delays for Quorum vs 4 for Paxos (the paper
    // counts 3 for Paxos by merging the learn step; our client-driven Paxos
    // has two full round trips — the *relation* fast < backup is the claim).
    let fast = run_scenario(&Scenario::fault_free(3, &[(5, 0)]));
    let slow = run_scenario(&Scenario::pure_paxos(3, &[(5, 0)]));
    assert_eq!(fast.latencies[0].1, Some(2));
    assert_eq!(slow.latencies[0].1, Some(4));
}

#[test]
fn message_complexity_fast_path_is_linear_in_servers() {
    for n in [3usize, 5, 7, 9] {
        let out = run_scenario(&Scenario::fault_free(n, &[(5, 0)]));
        // One proposal + one accept per server.
        assert_eq!(out.messages, 2 * n, "n={n}");
    }
}
