//! End-to-end checks of the `slin-analyze` certification pipeline: the
//! analyzer's verdicts, the replayability of its counterexamples as real
//! checker divergences, and the session/daemon layers that consume
//! certificates ([`CertPolicy`], `require_cert`).
//!
//! Positive half: every shipped per-key partitioner certifies at the
//! default depth (≥ 4) and its certificate is byte-stable across runs —
//! the determinism pin that lets CI commit `analysis/certs/*.json` and
//! fail on drift. Negative half: every fixture in
//! `slin_analysis::fixtures` is rejected with a counterexample of length
//! ≤ 4, and the [`BogusCounterPartitioner`] one replays as an actual
//! partitioned-vs-monolithic verdict divergence — the analyzer's
//! rejections are about real unsoundness, not artifacts of its encoding.

use slin_adt::{
    Consensus, Counter, CounterInput, CounterVecPartitioner, CounterVector, KvInput,
    KvKeyPartitioner, KvOutput, KvStore, Partitioner, Queue, RegArrayPartitioner, RegisterArray,
    Set, SetElemPartitioner, Stack,
};
use slin_analysis::fixtures::{
    BogusCounterPartitioner, ConsProposalPartitioner, QueueValuePartitioner, StackValuePartitioner,
};
use slin_analysis::{certify, AnalyzeConfig, AnalyzeFailure, CertError, CertStore, Counterexample};
use slin_core::lin::LinChecker;
use slin_core::session::{CertPolicy, Checker, Strategy, StrategyUsed};
use slin_trace::{Action, ClientId, PhaseId};

fn rejection<T, P>(adt: &T, p: &P) -> Counterexample<T>
where
    T: slin_adt::DomainSpec + std::fmt::Debug,
    P: Partitioner<T>,
{
    match certify(adt, p, &AnalyzeConfig::default()) {
        Err(AnalyzeFailure::Unsound(cex)) => cex,
        other => panic!("expected a counterexample, got {other:?}"),
    }
}

/// All four shipped per-key partitioners certify at depth ≥ 4, and
/// re-running the analyzer reproduces the certificate byte-for-byte —
/// JSON rendering included. This is the pin behind `ci/cert_check.py`.
#[test]
fn shipped_partitioners_certify_deterministically() {
    let cfg = AnalyzeConfig::default();
    assert!(cfg.depth >= 4, "default depth regressed below 4");

    macro_rules! pin {
        ($adt:expr, $p:expr) => {{
            let a = certify(&$adt, &$p, &cfg).expect("shipped partitioner must certify");
            let b = certify(&$adt, &$p, &cfg).expect("shipped partitioner must certify");
            assert_eq!(a.depth, cfg.depth);
            assert!(a.verify(), "certificate hash does not verify");
            assert_eq!(a.to_json(), b.to_json(), "certificate is not byte-stable");
        }};
    }
    pin!(KvStore, KvKeyPartitioner);
    pin!(Set, SetElemPartitioner);
    pin!(RegisterArray, RegArrayPartitioner);
    pin!(CounterVector, CounterVecPartitioner);
}

/// The unsound-partitioner discriminator shared with
/// `tests/tests/partitioner_contract.rs` is rejected with a
/// counterexample of ≤ 4 inputs whose replay *actually diverges*: the
/// sequential trace it builds passes the monolithic checker and fails the
/// partitioned one under the bogus partitioner.
#[test]
fn bogus_counter_rejection_replays_as_a_checker_divergence() {
    let cex = rejection(&Counter, &BogusCounterPartitioner);
    assert!(cex.len() <= 4, "counterexample too long: {}", cex.len());
    // The counterexample must actually exercise the cross-key interaction.
    let inputs = cex.inputs();
    assert!(inputs.contains(&CounterInput::Increment));
    assert!(inputs.contains(&CounterInput::Read));

    let trace = cex.to_trace(&Counter);
    assert_eq!(trace.len(), cex.len() * 2);

    let mono = Checker::builder(LinChecker::owned(Counter))
        .strategy(Strategy::Monolithic)
        .build::<()>()
        .check(&trace);
    assert!(mono.is_ok(), "replay must be monolithically linearizable");
    assert_eq!(mono.strategy, StrategyUsed::Monolithic);

    let split = Checker::builder(LinChecker::owned(Counter))
        .partitioner(BogusCounterPartitioner)
        .strategy(Strategy::Partitioned)
        .build::<()>()
        .check(&trace);
    assert!(
        !split.is_ok(),
        "partitioned checking under the unsound partitioner must diverge"
    );
    assert_eq!(split.strategy, StrategyUsed::Partitioned);
}

/// Every negative fixture — one per coupled ADT family — is rejected
/// with a short, shrunk counterexample.
#[test]
fn every_unsound_fixture_is_rejected() {
    assert!(rejection(&Counter, &BogusCounterPartitioner).len() <= 4);
    assert!(rejection(&Queue, &QueueValuePartitioner).len() <= 4);
    assert!(rejection(&Stack, &StackValuePartitioner).len() <= 4);
    assert!(rejection(&Consensus, &ConsProposalPartitioner).len() <= 4);
}

/// A certificate installed via `partitioner_certified` builds a session
/// that really uses the partitioned path, with no downgrade flag.
#[test]
fn certified_partitioner_builds_and_runs_partitioned() {
    let cert = certify(&KvStore, &KvKeyPartitioner, &AnalyzeConfig::default()).unwrap();
    let mut session = Checker::builder(LinChecker::owned(KvStore))
        .partitioner_certified(KvKeyPartitioner, &cert)
        .expect("matching certificate must install")
        .cert_policy(CertPolicy::Require)
        .strategy(Strategy::Partitioned)
        .build::<()>();
    let (c, p) = (ClientId::new(1), PhaseId::FIRST);
    let trace = slin_trace::Trace::from_actions(vec![
        Action::invoke(c, p, KvInput::Put(1, 7)),
        Action::respond(c, p, KvInput::Put(1, 7), KvOutput::Ack),
        Action::invoke(c, p, KvInput::Get(1)),
        Action::respond(c, p, KvInput::Get(1), KvOutput::Found(Some(7))),
    ]);
    let verdict = session.check(&trace);
    assert!(verdict.is_ok());
    assert_eq!(verdict.strategy, StrategyUsed::Partitioned);
    assert!(!verdict.cert_downgraded);
}

/// [`CertPolicy::WarnMonolithic`] drops an uncertified partitioner: the
/// session builds and answers, but monolithically, and every verdict
/// carries the downgrade flag.
#[test]
fn warn_monolithic_downgrades_an_uncertified_partitioner() {
    let mut session = Checker::builder(LinChecker::owned(KvStore))
        .partitioner(KvKeyPartitioner)
        .cert_policy(CertPolicy::WarnMonolithic)
        .build::<()>();
    let (c, p) = (ClientId::new(1), PhaseId::FIRST);
    let trace = slin_trace::Trace::from_actions(vec![
        Action::invoke(c, p, KvInput::Put(1, 7)),
        Action::respond(c, p, KvInput::Put(1, 7), KvOutput::Ack),
    ]);
    let verdict = session.check(&trace);
    assert!(verdict.is_ok());
    assert_eq!(verdict.strategy, StrategyUsed::Monolithic);
    assert!(verdict.cert_downgraded);
}

/// [`CertPolicy::Require`] refuses to build around an uncertified
/// partitioner, and a [`CertStore`] holding the right certificate lifts
/// the refusal.
#[test]
fn require_policy_demands_a_store_or_explicit_certificate() {
    let refused = Checker::builder(LinChecker::owned(KvStore))
        .partitioner(KvKeyPartitioner)
        .cert_policy(CertPolicy::Require)
        .try_build::<()>();
    assert!(matches!(
        refused,
        Err(CertError::Uncertified { ref adt, ref partitioner })
            if adt == "KvStore" && partitioner == "KvKeyPartitioner"
    ));

    let mut store = CertStore::new();
    store
        .register(certify(&KvStore, &KvKeyPartitioner, &AnalyzeConfig::default()).unwrap())
        .unwrap();
    let session = Checker::builder(LinChecker::owned(KvStore))
        .partitioner(KvKeyPartitioner)
        .cert_store(store)
        .cert_policy(CertPolicy::Require)
        .try_build::<()>();
    assert!(session.is_ok());
}

/// Certificate misuse is caught: a tampered certificate fails the hash
/// check, a certificate for the wrong partitioner fails at install, and
/// a certificate for the wrong ADT fails at build.
#[test]
fn mismatched_certificates_are_rejected() {
    let cert = certify(&KvStore, &KvKeyPartitioner, &AnalyzeConfig::default()).unwrap();

    // Tampered content → BadHash at install.
    let mut forged = cert.clone();
    forged.states += 1;
    assert!(matches!(
        Checker::builder(LinChecker::owned(KvStore))
            .partitioner_certified(KvKeyPartitioner, &forged),
        Err(CertError::BadHash)
    ));

    // Wrong partitioner type → PartitionerMismatch at install.
    assert!(matches!(
        Checker::builder(LinChecker::owned(Set)).partitioner_certified(SetElemPartitioner, &cert),
        Err(CertError::PartitionerMismatch { .. })
    ));

    // Right partitioner *name*, wrong ADT → AdtMismatch at build. The
    // impostor shares the shipped partitioner's short type name (the last
    // path segment), so the install-time name check passes and only the
    // ADT check can save us.
    mod impostor {
        use slin_adt::{Counter, CounterInput, Partitioner};
        #[derive(Debug, Clone, Copy)]
        pub struct KvKeyPartitioner;
        impl Partitioner<Counter> for KvKeyPartitioner {
            type Key = u8;
            fn key_of(&self, _input: &CounterInput) -> Option<u8> {
                Some(0)
            }
        }
    }
    let built = Checker::builder(LinChecker::owned(Counter))
        .partitioner_certified(impostor::KvKeyPartitioner, &cert)
        .expect("name matches, so install succeeds")
        .try_build::<()>();
    assert!(matches!(
        built,
        Err(CertError::AdtMismatch { ref expected, ref found })
            if expected == "Counter" && found == "KvStore"
    ));
}

/// The repository's own source tree satisfies the concurrency lint — the
/// in-tree pin of what `slin-analyze --lint-src` enforces blocking in CI.
#[test]
fn the_workspace_passes_the_source_lint() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("tests crate lives one level under the workspace root");
    let hits = slin_analysis::lint_workspace(root).expect("workspace sources must be readable");
    assert!(
        hits.is_empty(),
        "srclint violations:\n{}",
        hits.iter()
            .map(|h| h.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The daemon's `require_cert` tenant policy parses from the spec string
/// and admits traffic — the shipped KvKeyPartitioner certificate is
/// generated in-process, so certified sessions build and verdicts flow.
#[test]
fn daemon_require_cert_policy_parses_and_serves() {
    use slin_daemon::{encode_frames, Daemon, DaemonConfig, Frame, TenantPolicy};

    let policy = TenantPolicy::parse("require_cert=true,window=none").unwrap();
    assert!(policy.require_cert);
    assert!(!TenantPolicy::default().require_cert);

    let mut daemon = Daemon::new(DaemonConfig {
        workers: 2,
        default_policy: policy,
    });
    let (c, p) = (ClientId::new(1), PhaseId::FIRST);
    let mut frames = Vec::new();
    for tenant in 0..3u64 {
        frames.push(Frame {
            tenant,
            action: Action::invoke(c, p, KvInput::Put(1, tenant + 1)),
        });
        frames.push(Frame {
            tenant,
            action: Action::respond(c, p, KvInput::Put(1, tenant + 1), KvOutput::Ack),
        });
        frames.push(Frame {
            tenant,
            action: Action::invoke(c, p, KvInput::Get(1)),
        });
        frames.push(Frame {
            tenant,
            action: Action::respond(c, p, KvInput::Get(1), KvOutput::Found(Some(tenant + 1))),
        });
    }
    daemon.ingest_bytes(&encode_frames(&frames)).unwrap();
    daemon.pump();
    let counts = daemon.poll_verdicts();
    assert_eq!(counts.ok, 3);
    assert_eq!(counts.violation, 0);
}
