//! Daemon observability end-to-end: the deprecated `slin-daemon/v1` shim
//! stays byte-compatible, the `slin-obs/v1` registry snapshot subsumes it,
//! and an instrumented 1000-tenant run exports a Prometheus page and a
//! Perfetto-loadable Chrome trace while GC-retired violation witnesses
//! round-trip byte-identical to batch checking through the archive.

#![allow(deprecated)] // the v1 shim under test is deprecated by design

use slin_adt::{KvInput, KvKeyPartitioner, KvStore};
use slin_core::initrel::ExactInit;
use slin_core::session::Checker;
use slin_core::slin::SlinChecker;
use slin_core::stream::GcPolicy;
use slin_daemon::{generate, transport, Daemon, DaemonConfig, LoadConfig, TenantPolicy};
use slin_obs::StackObserver;
use slin_trace::PhaseId;
use std::sync::Arc;

/// The daemon's own tenant model, rebuilt for batch oracles.
fn tenant_model() -> slin_daemon::TenantChecker {
    SlinChecker::owned(KvStore, ExactInit::new(), PhaseId::FIRST, PhaseId::new(2))
}

fn run_workload(daemon: &mut Daemon, cfg: &LoadConfig) -> slin_daemon::Workload {
    let workload = generate(cfg);
    let (rx, producer) = transport(workload.chunks.clone(), 4);
    for chunk in rx.iter() {
        daemon.ingest_bytes(&chunk).unwrap();
        daemon.pump();
    }
    producer.join().unwrap();
    daemon.pump();
    daemon.poll_verdicts();
    workload
}

/// The deprecated shim renders byte-for-byte what `metrics().to_json()`
/// renders, in the exact legacy `slin-daemon/v1` shape.
#[test]
fn v1_shim_is_byte_compatible() {
    let cfg = LoadConfig {
        tenants: 32,
        steps_per_tenant: 20,
        seed: 7,
        ..LoadConfig::default()
    };
    let mut daemon = Daemon::new(DaemonConfig::default());
    run_workload(&mut daemon, &cfg);

    let shim = daemon.metrics_json();
    // Wall-clock fields (elapsed, rate) move between the two renders;
    // everything else must agree byte for byte, line for line.
    let stable = |s: &str| -> Vec<String> {
        s.lines()
            .filter(|l| !l.contains("elapsed_secs") && !l.contains("events_per_sec"))
            .map(String::from)
            .collect()
    };
    assert_eq!(stable(&shim), stable(&daemon.metrics().to_json()));
    // The legacy schema, key for key, in order.
    let keys = [
        "\"schema\": \"slin-daemon/v1\"",
        "\"tenants\":",
        "\"frames\":",
        "\"bytes\":",
        "\"events\":",
        "\"elapsed_secs\":",
        "\"events_per_sec\":",
        "\"p50_ingest_us\":",
        "\"p99_ingest_us\":",
        "\"queue_depth_peak\":",
        "\"shed_tenants\":",
        "\"sheds\":",
        "\"verdicts\":",
        "\"ok\":",
        "\"violation\":",
        "\"ill_formed\":",
        "\"switch_seen\":",
        "\"unknown\":",
        "\"deferred\":",
        "\"changed\":",
        "\"fallbacks\":",
        "\"switch_uncertified\":",
        "\"unclassifiable_input\":",
        "\"cross_bound_coupled\":",
    ];
    let mut at = 0;
    for key in keys {
        let pos = shim[at..]
            .find(key)
            .unwrap_or_else(|| panic!("v1 shim lost key {key}:\n{shim}"));
        at += pos;
    }
}

/// The registry snapshot subsumes the v1 surface: every deterministic v1
/// quantity is present in `slin-obs/v1` with the same value.
#[test]
fn obs_snapshot_subsumes_v1_metrics() {
    let cfg = LoadConfig {
        tenants: 32,
        steps_per_tenant: 20,
        seed: 11,
        ..LoadConfig::default()
    };
    let mut daemon = Daemon::new(DaemonConfig::default());
    run_workload(&mut daemon, &cfg);

    let m = daemon.metrics();
    let snap = daemon.obs_snapshot_json();
    assert!(snap.contains("\"schema\": \"slin-obs/v1\""));
    let entry_for = |name: &str| -> &str {
        snap.lines()
            .find(|l| l.contains(&format!("\"name\": \"{name}\"")))
            .unwrap_or_else(|| panic!("snapshot lost {name}:\n{snap}"))
    };
    for (name, value) in [
        ("slin_daemon_frames_total", m.frames),
        ("slin_daemon_bytes_total", m.bytes),
        ("slin_daemon_sheds_total", m.sheds),
        ("slin_daemon_tenants", m.tenants as u64),
        ("slin_daemon_queue_depth_peak", m.queue_depth_peak as u64),
    ] {
        let entry = entry_for(name);
        assert!(
            entry.contains(&format!("\"value\": {value}")),
            "{name}: want {value} in `{entry}`"
        );
    }
    // The latency histogram replaced the unbounded Vec: same quantile
    // surface, fixed memory.
    let entry = entry_for("slin_daemon_ingest_us");
    assert!(
        entry.contains(&format!("\"p50\": {}", m.p50_ingest_us)),
        "{entry}"
    );
    assert!(
        entry.contains(&format!("\"p99\": {}", m.p99_ingest_us)),
        "{entry}"
    );
    // Per-tenant labelled counters cover every checked event.
    let per_tenant: u64 = snap
        .lines()
        .filter(|l| l.contains("slin_daemon_tenant_events_total"))
        .map(|l| {
            let at = l.find("\"value\": ").unwrap() + "\"value\": ".len();
            l[at..]
                .trim_end_matches([' ', '}', ','])
                .parse::<u64>()
                .unwrap()
        })
        .sum();
    assert_eq!(per_tenant, m.events);
}

/// The acceptance run: 1000 instrumented tenants under GC with deep
/// witness archives. The daemon must export a Prometheus page and a
/// Chrome trace, and every tenant whose report reconstructed from the
/// archive — violations included — must match its batch verdict byte for
/// byte despite the GC having retired the history.
#[test]
fn instrumented_thousand_tenant_run_exports_and_round_trips_witnesses() {
    let cfg = LoadConfig {
        tenants: 1000,
        steps_per_tenant: 30,
        clients: 3,
        keys: 3,
        tenant_skew: 1.0,
        error_prob: 0.08,
        chunk_frames: 256,
        seed: 42,
    };
    let policy = TenantPolicy {
        queue_capacity: usize::MAX,
        window: Some(8),
        gc: GcPolicy {
            archive_windows: 1024,
            ..GcPolicy::default()
        },
        shed_lossy: false,
        require_cert: false,
        keyed: false,
    };
    let stack = Arc::new(StackObserver::with_tracing(1 << 14));
    let mut daemon = Daemon::with_observer(
        DaemonConfig {
            workers: 4,
            default_policy: policy,
        },
        stack,
    );
    let workload = run_workload(&mut daemon, &cfg);
    assert_eq!(daemon.tenants(), 1000);

    // Prometheus exposition: engine, monitor, GC, archive, and daemon
    // series all present on one page.
    let page = daemon.render_prometheus();
    for series in [
        "# TYPE slin_monitor_ingest_events_total counter",
        "# TYPE slin_gc_cuts_total counter",
        "# TYPE slin_archive_windows_total counter",
        "# TYPE slin_daemon_ingest_us histogram",
        "slin_daemon_tenant_events_total{tenant=\"1\"}",
        "slin_daemon_lane_pumps_total",
    ] {
        assert!(page.contains(series), "missing `{series}` in:\n{page}");
    }

    // Perfetto export: a Chrome trace-event document with monitor spans.
    let trace = daemon.chrome_trace_json().expect("tracing enabled");
    assert!(
        trace.starts_with("{\n  \"traceEvents\": ["),
        "{}",
        &trace[..60]
    );
    assert!(trace.contains("\"monitor.ingest\""));
    assert!(trace.contains("\"ph\": \"X\""));
    assert!(trace.trim_end().ends_with('}'));

    // Witness round-trip: every reconstructed tenant matches batch.
    let mut reconstructed = 0usize;
    let mut reconstructed_violations = 0usize;
    for tenant in daemon.tenant_ids() {
        let reference = workload.reference[&tenant].clone();
        let session = daemon.tenant_session_mut(tenant).unwrap();
        let report = session.report().expect("streamed tenants report");
        if !report.reconstructed {
            continue;
        }
        reconstructed += 1;
        let mut batch = Checker::builder(tenant_model())
            .partitioner(KvKeyPartitioner)
            .build::<Vec<KvInput>>();
        let expected = batch.check(&reference);
        assert_eq!(
            format!("{:?}", report.verdict),
            format!("{:?}", expected.outcome),
            "tenant {tenant}: reconstructed report must equal batch"
        );
        if report.verdict.is_err() {
            reconstructed_violations += 1;
        }
    }
    assert!(
        reconstructed > 100,
        "GC retired windows on only {reconstructed} tenants"
    );
    assert!(
        reconstructed_violations > 0,
        "no violation survived GC via the archive"
    );

    // Archive accounting made it to the registry.
    assert!(page.contains("slin_archive_windows_total"));
    let m = daemon.metrics();
    assert!(m.events > 0 && m.frames > 0);
}
