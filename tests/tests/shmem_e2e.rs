//! End-to-end experiment E7: the shared-memory RCons + CASCons composition
//! on real threads (Figures 2 and 3).

use slin_adt::Consensus;
use slin_core::compose::{project_object, project_phase};
use slin_core::initrel::ConsensusInit;
use slin_core::invariants::{self, has_late_decide};
use slin_core::lin::LinChecker;
use slin_core::slin::SlinChecker;
use slin_shmem::harness::{run_concurrent, Workload};
use slin_trace::PhaseId;

fn ph(n: u32) -> PhaseId {
    PhaseId::new(n)
}

#[test]
fn sequential_executions_use_registers_only_and_linearize() {
    let lin = LinChecker::owned(Consensus);
    for threads in 1..=5 {
        let out = run_concurrent(&Workload::sequential(threads));
        assert!(out.agreement());
        assert_eq!(out.cas_count, 0, "threads={threads}: CAS in sequential run");
        let obj = project_object::<Consensus, _>(&out.trace);
        assert!(lin.check(&obj).is_ok(), "threads={threads}: {obj:?}");
    }
}

#[test]
fn concurrent_executions_agree_and_linearize() {
    let lin = LinChecker::owned(Consensus);
    for round in 0..150 {
        let out = run_concurrent(&Workload::concurrent(3));
        assert!(out.agreement(), "round {round}: {:?}", out.decisions);
        assert!(
            invariants::consensus_linearizable(&out.trace),
            "round {round}: {:?}",
            out.trace
        );
        let obj = project_object::<Consensus, _>(&out.trace);
        if obj.len() <= 10 {
            assert!(lin.check(&obj).is_ok(), "round {round}: {obj:?}");
        }
    }
}

#[test]
fn rcons_phase_satisfies_invariants_i1_to_i3() {
    for round in 0..150 {
        let out = run_concurrent(&Workload::concurrent(4));
        let t12 = project_phase::<Consensus, _>(&out.trace, ph(1), ph(2));
        assert!(invariants::i1(&t12), "round {round}: {t12:?}");
        assert!(invariants::i2(&t12), "round {round}: {t12:?}");
        assert!(invariants::i3(&t12), "round {round}: {t12:?}");
    }
}

#[test]
fn cascons_phase_satisfies_invariants_i4_i5() {
    for round in 0..150 {
        let out = run_concurrent(&Workload::concurrent(4));
        let t23 = project_phase::<Consensus, _>(&out.trace, ph(2), ph(3));
        assert!(invariants::i4(&t23), "round {round}: {t23:?}");
        assert!(invariants::i5(&t23), "round {round}: {t23:?}");
    }
}

#[test]
fn phase_projections_pass_the_slin_checker() {
    let q = SlinChecker::owned(Consensus, ConsensusInit::new(), ph(1), ph(2));
    let b = SlinChecker::owned(Consensus, ConsensusInit::new(), ph(2), ph(3));
    let mut switched_runs = 0;
    for round in 0..120 {
        let out = run_concurrent(&Workload::concurrent(3));
        if out.trace.iter().any(|a| a.is_switch()) {
            switched_runs += 1;
        }
        let t12 = project_phase::<Consensus, _>(&out.trace, ph(1), ph(2));
        if !has_late_decide(&t12) {
            assert!(q.check(&t12).is_ok(), "round {round}: {t12:?}");
        }
        let t23 = project_phase::<Consensus, _>(&out.trace, ph(2), ph(3));
        assert!(b.check(&t23).is_ok(), "round {round}: {t23:?}");
    }
    assert!(switched_runs > 0, "chaotic runs should exercise the backup");
}

#[test]
fn contention_exercises_cas_backup() {
    let mut cas_runs = 0;
    for _ in 0..150 {
        let out = run_concurrent(&Workload::concurrent(4));
        if out.cas_count > 0 {
            cas_runs += 1;
        }
    }
    assert!(cas_runs > 0, "no run ever reached the CAS phase");
}
