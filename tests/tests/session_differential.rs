//! Session-facade differential tests (pinned seeds).
//!
//! The API-unification contract: a [`slin_core::session::Session`] built
//! with **every** [`SessionStrategy`] returns byte-identical verdicts AND
//! witnesses to the corresponding legacy `check_*` entry point — across
//! the kv / set / composite (register-array, counter-vector) / slin /
//! phase corpora — plus a unit check that [`SessionStrategy::Auto`] selects the
//! partitioned path exactly when a partitioner is present and the trace is
//! switch-free.
//!
//! This is a **compat suite**: the deprecated `check_*` wrappers are the
//! oracles, so the deprecation lint is allowed file-wide.

#![allow(deprecated)]

use proptest::prelude::*;
use slin_adt::{
    Adt, ConsInput, ConsOutput, Consensus, CounterVecPartitioner, CounterVector, KvInput,
    KvKeyPartitioner, KvOutput, KvStore, Partitioner, RegArrayPartitioner, RegisterArray, Set,
    SetElemPartitioner, Value,
};
use slin_core::gen::{
    random_multikey_counter_vec_trace, random_multikey_kv_trace, random_multikey_reg_array_trace,
    random_multikey_set_trace, MultiKeyConfig,
};
use slin_core::initrel::{ConsensusInit, ExactInit};
use slin_core::lin::LinChecker;
use slin_core::session::{Checker, Strategy as SessionStrategy, StrategyUsed};
use slin_core::slin::SlinChecker;
use slin_core::ObjAction;
use slin_trace::{Action, ClientId, PhaseId, Trace};

fn c(n: u32) -> ClientId {
    ClientId::new(n)
}

/// Generator parameters swept by the differential suites: friendly
/// (many keys, spread) through hostile (one key, or full contention),
/// linearizable and perturbed.
fn configs() -> impl Strategy<Value = MultiKeyConfig> {
    (
        1..=6u32,      // keys
        2..=4u32,      // clients
        8..=24usize,   // steps
        0..=2u8,       // contention tier
        0..=1u8,       // perturbation tier
        0..=10_000u64, // seed
    )
        .prop_map(
            |(keys, clients, steps, contention, error, seed)| MultiKeyConfig {
                clients,
                steps,
                keys,
                skew: 0.7,
                contention: [0.0, 0.3, 1.0][contention as usize],
                error_prob: [0.0, 0.35][error as usize],
                seed,
            },
        )
}

/// Runs the full strategy sweep for one plain-linearizability workload:
/// every batch strategy plus the unbounded-window streaming session must
/// reproduce the legacy verdicts (and witnesses) byte for byte.
fn assert_lin_session_parity<T, P>(
    adt: &'static T,
    partitioner: P,
    t: &Trace<ObjAction<T, ()>>,
    ctx: &MultiKeyConfig,
) -> Result<(), TestCaseError>
where
    T: Adt + Clone + Send + Sync,
    T::Input: Ord + Send + Sync,
    T::Output: Sync,
    P: Partitioner<T> + Copy,
{
    let chk = LinChecker::new(adt).with_threads(4);
    let (legacy_mono, legacy_stats) = chk.check_with_stats(t);
    let (legacy_part, legacy_report) = chk.check_partitioned_with_report(&partitioner, t);

    let mut mono = Checker::builder(LinChecker::new(adt).with_threads(4))
        .strategy(SessionStrategy::Monolithic)
        .build();
    let vm = mono.check(t);
    prop_assert_eq!(vm.strategy, StrategyUsed::Monolithic);
    prop_assert_eq!(&vm.outcome, &legacy_mono, "monolithic, cfg {:?}", ctx);
    prop_assert_eq!(vm.stats, legacy_stats, "monolithic stats, cfg {:?}", ctx);
    prop_assert_eq!(vm.partition, None);

    let mut part = Checker::builder(LinChecker::new(adt).with_threads(4))
        .partitioner(partitioner)
        .strategy(SessionStrategy::Partitioned)
        .build();
    let vp = part.check(t);
    prop_assert_eq!(vp.strategy, StrategyUsed::Partitioned);
    prop_assert_eq!(&vp.outcome, &legacy_part, "partitioned, cfg {:?}", ctx);
    prop_assert_eq!(vp.partition, Some(legacy_report), "report, cfg {:?}", ctx);
    prop_assert_eq!(vp.stats, legacy_report.stats);

    // Auto resolves to partitioned here (partitioner + switch-free traces).
    let mut auto = Checker::builder(LinChecker::new(adt).with_threads(4))
        .partitioner(partitioner)
        .build();
    let va = auto.check(t);
    prop_assert_eq!(va.strategy, StrategyUsed::Partitioned);
    prop_assert_eq!(&va.outcome, &legacy_part, "auto, cfg {:?}", ctx);

    // Streaming, unbounded window: ingest event by event, report at the
    // end — the monitor contract makes this byte-identical too.
    let mut live = Checker::builder(LinChecker::new(adt).with_threads(4))
        .partitioner(partitioner)
        .strategy(SessionStrategy::Streaming { window: None })
        .build();
    for a in t.iter() {
        live.ingest(a.clone());
    }
    let vs = live.check(&Trace::new());
    prop_assert_eq!(vs.strategy, StrategyUsed::Streaming);
    prop_assert_eq!(&vs.outcome, &legacy_part, "streaming, cfg {:?}", ctx);
    Ok(())
}

/// Relabels a switch-free object trace's value type (the speculative
/// checker's trace type carries the `rinit` value even when no switch
/// occurs).
fn retag<V: Clone + PartialEq>(t: &Trace<ObjAction<KvStore, ()>>) -> Trace<ObjAction<KvStore, V>> {
    Trace::from_actions(
        t.iter()
            .map(|a| match a {
                Action::Invoke {
                    client,
                    phase,
                    input,
                } => Action::invoke(*client, *phase, *input),
                Action::Respond {
                    client,
                    phase,
                    input,
                    output,
                } => Action::respond(*client, *phase, *input, *output),
                Action::Switch { .. } => unreachable!("generated traces are switch-free"),
            })
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// KV corpus: all four strategies against the legacy entry points.
    #[test]
    fn kv_session_strategies_match_legacy(cfg in configs()) {
        let t = random_multikey_kv_trace(&cfg);
        assert_lin_session_parity(&KvStore, KvKeyPartitioner, &t, &cfg)?;
    }

    /// Set corpus: the commuting-element ADT.
    #[test]
    fn set_session_strategies_match_legacy(cfg in configs()) {
        let t = random_multikey_set_trace(&cfg);
        assert_lin_session_parity(&Set, SetElemPartitioner, &t, &cfg)?;
    }

    /// Composite corpora: per-cell register arrays and per-slot counter
    /// vectors.
    #[test]
    fn composite_session_strategies_match_legacy(cfg in configs()) {
        let ra = random_multikey_reg_array_trace(&cfg);
        assert_lin_session_parity(&RegisterArray, RegArrayPartitioner, &ra, &cfg)?;
        let cv = random_multikey_counter_vec_trace(&cfg);
        assert_lin_session_parity(&CounterVector, CounterVecPartitioner, &cv, &cfg)?;
    }

    /// Slin corpus (switch-free phase traces, where SLin coincides with
    /// Lin): every strategy matches the legacy speculative entry points,
    /// witness included.
    #[test]
    fn slin_session_strategies_match_legacy(cfg in configs()) {
        let t: Trace<ObjAction<KvStore, Vec<KvInput>>> =
            retag(&random_multikey_kv_trace(&cfg));
        let model = || SlinChecker::new(
            &KvStore, ExactInit::new(), PhaseId::new(1), PhaseId::new(2),
        ).with_threads(4);
        let chk = model();
        let legacy_mono = chk.check(&t);
        let (legacy_part, legacy_report) =
            chk.check_partitioned_with_report(&KvKeyPartitioner, &t);

        let mut mono = Checker::builder(model()).strategy(SessionStrategy::Monolithic).build();
        let vm = mono.check(&t);
        prop_assert_eq!(&vm.outcome, &legacy_mono, "monolithic, cfg {:?}", cfg);

        let mut part = Checker::builder(model())
            .partitioner(KvKeyPartitioner)
            .strategy(SessionStrategy::Partitioned)
            .build();
        let vp = part.check(&t);
        prop_assert_eq!(&vp.outcome, &legacy_part, "partitioned, cfg {:?}", cfg);
        prop_assert_eq!(vp.partition, Some(legacy_report), "report, cfg {:?}", cfg);

        let mut auto = Checker::builder(model()).partitioner(KvKeyPartitioner).build();
        let va = auto.check(&t);
        prop_assert_eq!(va.strategy, StrategyUsed::Partitioned);
        prop_assert_eq!(&va.outcome, &legacy_part, "auto, cfg {:?}", cfg);

        let mut live = Checker::builder(model())
            .partitioner(KvKeyPartitioner)
            .strategy(SessionStrategy::Streaming { window: None })
            .build();
        for a in t.iter() {
            live.ingest(a.clone());
        }
        let vs = live.check(&Trace::new());
        prop_assert_eq!(&vs.outcome, &legacy_part, "streaming, cfg {:?}", cfg);
    }
}

/// The hand-built consensus phase corpus: init/abort switch actions,
/// satisfied and violated, quorum and backup phases.
fn phase_corpus() -> Vec<Trace<ObjAction<Consensus, Value>>> {
    let p = ConsInput::propose;
    let d = ConsOutput::decide;
    vec![
        // Quorum phase: decide 1, switch with 1 (satisfied).
        Trace::from_actions(vec![
            Action::invoke(c(1), PhaseId::new(1), p(1)),
            Action::invoke(c(2), PhaseId::new(1), p(2)),
            Action::respond(c(1), PhaseId::new(1), p(1), d(1)),
            Action::switch(c(2), PhaseId::new(2), p(2), Value::new(1)),
        ]),
        // Quorum phase: decide 1, switch with 2 (violated).
        Trace::from_actions(vec![
            Action::invoke(c(1), PhaseId::new(1), p(1)),
            Action::invoke(c(2), PhaseId::new(1), p(2)),
            Action::respond(c(1), PhaseId::new(1), p(1), d(1)),
            Action::switch(c(2), PhaseId::new(2), p(2), Value::new(2)),
        ]),
        // No decisions: diverging switches are allowed.
        Trace::from_actions(vec![
            Action::invoke(c(1), PhaseId::new(1), p(1)),
            Action::invoke(c(2), PhaseId::new(1), p(2)),
            Action::switch(c(1), PhaseId::new(2), p(1), Value::new(2)),
            Action::switch(c(2), PhaseId::new(2), p(2), Value::new(1)),
        ]),
    ]
}

/// Phase corpus (switch actions present): every strategy agrees with the
/// legacy monolithic check — Auto must resolve to monolithic, and the
/// streaming session must go speculative and still report identically.
#[test]
fn phase_corpus_session_strategies_match_legacy() {
    let model = || {
        SlinChecker::new(
            &Consensus,
            ConsensusInit::new(),
            PhaseId::new(1),
            PhaseId::new(2),
        )
        .with_threads(4)
    };
    for t in &phase_corpus() {
        let legacy = model().check(t);
        let (legacy_part, legacy_report) =
            model().check_partitioned_with_report(&slin_adt::IdentityPartitioner, t);
        assert_eq!(
            legacy_part, legacy,
            "the identity fallback is the monolithic path"
        );

        let mut auto = Checker::builder(model()).build();
        let va = auto.check(t);
        assert_eq!(va.strategy, StrategyUsed::Monolithic, "{t:?}");
        assert_eq!(va.outcome, legacy, "{t:?}");

        let mut part = Checker::builder(model())
            .strategy(SessionStrategy::Partitioned)
            .build();
        let vp = part.check(t);
        assert_eq!(vp.outcome, legacy, "{t:?}");
        assert_eq!(vp.partition, Some(legacy_report), "{t:?}");

        let mut live = Checker::builder(model())
            .strategy(SessionStrategy::Streaming { window: None })
            .build();
        for a in t.iter() {
            live.ingest(a.clone());
        }
        let vs = live.check(&Trace::new());
        assert_eq!(vs.outcome, legacy, "{t:?}");
    }
}

/// The [`SessionStrategy::Auto`] selection rule, pinned: partitioned exactly when
/// a partitioner is present AND the trace is switch-free.
#[test]
fn auto_selects_partitioned_exactly_when_partitioner_and_switch_free() {
    let ph1 = PhaseId::FIRST;
    let switch_free: Trace<ObjAction<KvStore, ()>> = Trace::from_actions(vec![
        Action::invoke(c(1), ph1, KvInput::Put(1, 5)),
        Action::respond(c(1), ph1, KvInput::Put(1, 5), KvOutput::Ack),
    ]);
    let with_switch: Trace<ObjAction<KvStore, ()>> = Trace::from_actions(vec![
        Action::invoke(c(1), ph1, KvInput::Put(1, 5)),
        Action::switch(c(1), PhaseId::new(2), KvInput::Put(1, 5), ()),
    ]);

    // Partitioner + switch-free => partitioned.
    let mut s = Checker::builder(LinChecker::new(&KvStore))
        .partitioner(KvKeyPartitioner)
        .build();
    assert_eq!(s.check(&switch_free).strategy, StrategyUsed::Partitioned);

    // Partitioner + switch action => monolithic.
    assert_eq!(s.check(&with_switch).strategy, StrategyUsed::Monolithic);

    // No partitioner => monolithic, even on switch-free traces.
    let mut bare = Checker::builder(LinChecker::new(&KvStore)).build();
    assert_eq!(bare.check(&switch_free).strategy, StrategyUsed::Monolithic);

    // Explicit strategies are never overridden by Auto's rule.
    let mut forced = Checker::builder(LinChecker::new(&KvStore))
        .strategy(SessionStrategy::Partitioned)
        .build();
    assert_eq!(
        forced.check(&with_switch).strategy,
        StrategyUsed::Partitioned
    );
}

/// Builder knobs reach the model: a one-node budget trips exactly like the
/// legacy `with_budget` path, and `threads(1)` matches the deprecated
/// sequential entry point byte for byte.
#[test]
fn builder_budget_and_threads_reach_the_model() {
    let t: Trace<ObjAction<Consensus, Value>> = Trace::from_actions(vec![
        Action::invoke(c(1), PhaseId::new(1), ConsInput::propose(1)),
        Action::invoke(c(2), PhaseId::new(1), ConsInput::propose(2)),
        Action::respond(
            c(1),
            PhaseId::new(1),
            ConsInput::propose(1),
            ConsOutput::decide(1),
        ),
        Action::respond(
            c(2),
            PhaseId::new(1),
            ConsInput::propose(2),
            ConsOutput::decide(1),
        ),
    ]);
    let model = || {
        SlinChecker::new(
            &Consensus,
            ConsensusInit::new(),
            PhaseId::new(1),
            PhaseId::new(2),
        )
    };

    let legacy_budget = model().with_budget(1).check(&t);
    let mut tight = Checker::builder(model()).budget(1).build();
    assert_eq!(tight.check(&t).outcome, legacy_budget);

    let legacy_seq = model().check_sequential(&t);
    let mut seq = Checker::builder(model()).threads(1).build();
    assert_eq!(seq.check(&t).outcome, legacy_seq);
}

/// Owned-model parity: the deprecated borrow constructors (`new(&T)`)
/// and the canonical owned/shared constructors produce byte-identical
/// verdicts, witnesses, and stats across all strategies — the owned
/// redesign changed ownership, never behaviour.
#[test]
fn owned_and_borrowed_constructors_are_byte_identical() {
    use std::sync::Arc;
    for seed in [0u64, 11, 23, 47] {
        for error_prob in [0.0, 0.35] {
            let cfg = MultiKeyConfig {
                keys: 4,
                clients: 3,
                steps: 22,
                error_prob,
                seed,
                ..Default::default()
            };
            let t = random_multikey_kv_trace(&cfg);
            for strategy in [
                SessionStrategy::Auto,
                SessionStrategy::Monolithic,
                SessionStrategy::Partitioned,
                SessionStrategy::Streaming { window: None },
            ] {
                let run = |chk: LinChecker<KvStore>| {
                    let mut s = Checker::builder(chk)
                        .partitioner(KvKeyPartitioner)
                        .strategy(strategy)
                        .build();
                    s.check(&t)
                };
                let borrowed = run(LinChecker::new(&KvStore));
                let owned = run(LinChecker::owned(KvStore));
                let shared = run(LinChecker::shared(Arc::new(KvStore)));
                assert_eq!(
                    borrowed.outcome, owned.outcome,
                    "seed {seed} error {error_prob} {strategy:?}"
                );
                assert_eq!(borrowed.stats, owned.stats);
                assert_eq!(borrowed.partition, owned.partition);
                assert_eq!(owned.outcome, shared.outcome);
                assert_eq!(owned.stats, shared.stats);
            }
            // The speculative checker, same contract.
            let t2: Trace<ObjAction<KvStore, Vec<KvInput>>> = retag(&t);
            let borrowed =
                SlinChecker::new(&KvStore, ExactInit::new(), PhaseId::new(1), PhaseId::new(2))
                    .check(&t2);
            let owned =
                SlinChecker::owned(KvStore, ExactInit::new(), PhaseId::new(1), PhaseId::new(2))
                    .check(&t2);
            assert_eq!(borrowed, owned, "slin seed {seed} error {error_prob}");
        }
    }
}

/// The poll/lossy session surface: `poll_verdict` tracks the rolling
/// status without consuming state (and baselines at `Ok`), and the
/// builder's `window`/`gc_policy` knobs reach the monitor.
#[test]
fn poll_verdict_tracks_status_without_consuming() {
    use slin_core::stream::{GcPolicy, MonitorStatus};
    let ph1 = PhaseId::FIRST;
    let mut s = Checker::builder(LinChecker::owned(KvStore))
        .partitioner(KvKeyPartitioner)
        .strategy(SessionStrategy::Streaming { window: None })
        .build::<()>();

    // Fresh session: Ok, unchanged, zero events.
    let d0 = s.poll_verdict();
    assert_eq!(d0.status, MonitorStatus::Ok);
    assert!(!d0.changed);
    assert_eq!(d0.events, 0);

    s.ingest(Action::invoke(c(1), ph1, KvInput::Put(1, 5)));
    s.ingest(Action::respond(
        c(1),
        ph1,
        KvInput::Put(1, 5),
        KvOutput::Ack,
    ));
    let d1 = s.poll_verdict();
    assert_eq!(d1.status, MonitorStatus::Ok);
    assert!(!d1.changed, "healthy streams never report a change");
    assert_eq!(d1.events, 2);

    // A stale read flips the status exactly once.
    s.ingest(Action::invoke(c(1), ph1, KvInput::Get(1)));
    s.ingest(Action::respond(
        c(1),
        ph1,
        KvInput::Get(1),
        KvOutput::Found(None),
    ));
    let d2 = s.poll_verdict();
    assert_eq!(d2.status, MonitorStatus::Violation);
    assert!(d2.changed);
    let d3 = s.poll_verdict();
    assert_eq!(d3.status, MonitorStatus::Violation);
    assert!(!d3.changed, "no edge on a steady status");

    // Polling consumed nothing: the full report is still available and
    // matches the batch verdict.
    let report = s.report().expect("streaming session");
    assert_eq!(report.events, 4);
    assert!(report.verdict.is_err());

    // Builder knobs: a windowed session with a lossy GC policy still
    // accepts a clean stream, and `window` engages the GC.
    let mut windowed = Checker::builder(LinChecker::owned(KvStore))
        .partitioner(KvKeyPartitioner)
        .window(4)
        .gc_policy(GcPolicy::lossy())
        .build::<()>();
    for round in 0..40u64 {
        windowed.ingest(Action::invoke(c(1), ph1, KvInput::Put(1, round)));
        windowed.ingest(Action::respond(
            c(1),
            ph1,
            KvInput::Put(1, round),
            KvOutput::Ack,
        ));
    }
    let delta = windowed.poll_verdict();
    assert_eq!(delta.status, MonitorStatus::Ok);
    assert_eq!(delta.events, 80);
    let report = windowed.report().unwrap();
    assert!(report.prefix_committed, "window knob reached the monitor");
}
