//! Fuzz-style wire-format properties: arbitrary frame sequences
//! roundtrip byte-exactly under arbitrary stream chunkings, and corrupt
//! streams produce errors rather than bogus frames or panics.
//!
//! Seeds are pinned by the proptest shim (`PINNED_SEED`; set
//! `PROPTEST_RNG_SEED` to explore a different corpus).

use proptest::prelude::*;
use slin_adt::{KvInput, KvOutput};
use slin_daemon::wire::{
    decode_frames, encode_frames, Decoder, Frame, KvAction, MAX_BODY_LEN, MAX_SWITCH_VALUE,
};
use slin_trace::{Action, ClientId, PhaseId};

/// A strategy for arbitrary KV inputs, boundary-heavy keys and values.
fn input() -> impl Strategy<Value = KvInput> {
    (0..3u8, any::<u32>(), any::<u64>()).prop_map(|(op, key, value)| match op {
        0 => KvInput::Put(key, value),
        1 => KvInput::Get(key),
        _ => KvInput::Delete(key),
    })
}

/// A strategy for arbitrary well-formed frames: any tenant id, any
/// action kind, any opcode, switch values up to the wire cap.
fn frame() -> impl Strategy<Value = Frame> {
    let ids = (1..5u32, 1..5u32);
    let tenant = any::<u64>();
    let output = (0..3u8, any::<u64>()).prop_map(|(tag, value)| match tag {
        0 => KvOutput::Ack,
        1 => KvOutput::Found(None),
        _ => KvOutput::Found(Some(value)),
    });
    let value = prop::collection::vec(input(), 0..=MAX_SWITCH_VALUE);
    (tenant, ids, 0..3u8, input(), output, value).prop_map(
        |(tenant, (c, p), kind, input, output, value)| {
            let (client, phase) = (ClientId::new(c), PhaseId::new(p));
            let action: KvAction = match kind {
                0 => Action::invoke(client, phase, input),
                1 => Action::respond(client, phase, input, output),
                _ => Action::switch(client, phase, input, value),
            };
            Frame { tenant, action }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn encode_decode_roundtrips(frames in prop::collection::vec(frame(), 0..40)) {
        let bytes = encode_frames(&frames);
        prop_assert_eq!(decode_frames(&bytes).unwrap(), frames);
    }

    #[test]
    fn roundtrips_under_arbitrary_chunking(
        frames in prop::collection::vec(frame(), 1..25),
        cuts in prop::collection::vec(1..64usize, 0..20),
    ) {
        let bytes = encode_frames(&frames);
        let mut dec = Decoder::new();
        let mut got = Vec::new();
        let mut pos = 0;
        // Feed at the derived cut points, then the remainder.
        for cut in cuts {
            let end = (pos + cut).min(bytes.len());
            dec.feed(&bytes[pos..end]);
            got.extend(dec.drain_frames().unwrap());
            pos = end;
        }
        dec.feed(&bytes[pos..]);
        got.extend(dec.drain_frames().unwrap());
        prop_assert_eq!(got, frames);
        prop_assert_eq!(dec.pending_bytes(), 0);
    }

    #[test]
    fn every_frame_is_within_the_body_cap(f in frame()) {
        let mut bytes = Vec::new();
        slin_daemon::wire::encode_frame(&mut bytes, &f);
        let body = bytes.len() - 4;
        prop_assert!(body <= MAX_BODY_LEN, "body {} > cap {}", body, MAX_BODY_LEN);
    }

    #[test]
    fn single_byte_corruption_never_panics_or_misparses_silently(
        frames in prop::collection::vec(frame(), 1..6),
        flip_at in any::<u32>(),
        flip_bits in 1..=255u8,
    ) {
        let bytes = encode_frames(&frames);
        let mut corrupt = bytes.clone();
        let at = flip_at as usize % corrupt.len();
        corrupt[at] ^= flip_bits;
        // Decoding must terminate with frames or an error — never panic.
        // (A flipped payload byte can still decode; equality with the
        // original is only guaranteed for untouched bytes.)
        let _ = decode_frames(&corrupt);
        prop_assert_eq!(decode_frames(&bytes).unwrap(), frames);
    }

    #[test]
    fn truncated_streams_decode_a_prefix_and_hold_the_rest(
        frames in prop::collection::vec(frame(), 1..10),
        cut_back in 1..20usize,
    ) {
        let bytes = encode_frames(&frames);
        let keep = bytes.len().saturating_sub(cut_back);
        let mut dec = Decoder::new();
        dec.feed(&bytes[..keep]);
        let got = dec.drain_frames().unwrap();
        prop_assert!(got.len() < frames.len());
        prop_assert_eq!(&frames[..got.len()], &got[..]);
        // Feeding the tail completes the stream.
        dec.feed(&bytes[keep..]);
        let rest = dec.drain_frames().unwrap();
        prop_assert_eq!(&frames[got.len()..], &rest[..]);
    }
}
