//! Deterministic multi-tenant load generation and an in-process
//! transport, for the daemon's bench (B8) and integration tests.
//!
//! Each tenant gets its own hostile never-quiescent KV stream (the
//! checker's own [`random_hostile_kv_trace`] generator); the generator
//! then interleaves tenants under a Zipf skew — a few hot tenants carry
//! most of the traffic, the tail trickles — encodes the interleaving into
//! wire chunks, and keeps the per-tenant traces as reference oracles for
//! differential testing. The transport is a bounded
//! [`std::sync::mpsc::sync_channel`] of byte chunks: a producer thread
//! replays the workload, the daemon consumes — saturating the channel
//! exercises the real backpressure path without sockets.

use crate::wire::{encode_frame, Frame, KvAction};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slin_adt::KvStore;
use slin_core::gen::{random_hostile_kv_trace, HostileConfig};
use slin_core::ObjAction;
use slin_trace::{Action, Trace};
use std::collections::BTreeMap;
use std::sync::mpsc::{sync_channel, Receiver};
use std::thread::JoinHandle;

/// Shape of one generated multi-tenant workload.
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Number of tenants, with ids `0..tenants`.
    pub tenants: u64,
    /// Generation steps per tenant stream (events per tenant is slightly
    /// below this; see [`HostileConfig::steps`]).
    pub steps_per_tenant: usize,
    /// Concurrent clients within each tenant stream.
    pub clients: u32,
    /// Distinct keys within each tenant's key-space.
    pub keys: u32,
    /// Zipf exponent of the tenant interleave: 0.0 is uniform, larger
    /// values concentrate traffic on low-numbered tenants.
    pub tenant_skew: f64,
    /// Per-operation output perturbation probability (0.0 generates
    /// linearizable-by-construction streams).
    pub error_prob: f64,
    /// Frames per transport chunk.
    pub chunk_frames: usize,
    /// Workload seed; equal seeds give byte-equal workloads.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            tenants: 8,
            steps_per_tenant: 200,
            clients: 4,
            keys: 4,
            tenant_skew: 1.0,
            error_prob: 0.0,
            chunk_frames: 64,
            seed: 0,
        }
    }
}

/// A generated workload: the wire chunks to replay, plus the per-tenant
/// reference traces (each tenant's actions in stream order — the daemon
/// preserves per-tenant order, so these are the differential oracles).
pub struct Workload {
    /// Encoded transport chunks, in replay order.
    pub chunks: Vec<Vec<u8>>,
    /// Per-tenant reference traces.
    pub reference: BTreeMap<u64, Trace<KvAction>>,
    /// Total frames across all chunks.
    pub frames: usize,
}

/// Retags the checker generator's unit-valued actions to the wire's
/// `Vec<KvInput>` switch-value type. Hostile streams are switch-free, so
/// only the phantom value parameter changes; a switch would retag to the
/// empty candidate set.
fn retag(a: ObjAction<KvStore, ()>) -> KvAction {
    match a {
        Action::Invoke {
            client,
            phase,
            input,
        } => Action::invoke(client, phase, input),
        Action::Respond {
            client,
            phase,
            input,
            output,
        } => Action::respond(client, phase, input, output),
        Action::Switch {
            client,
            phase,
            input,
            ..
        } => Action::switch(client, phase, input, Vec::new()),
    }
}

/// The cumulative Zipf weights `sum_{j<=k} j^-exponent` for `k` in `1..=n`.
fn zipf_cumulative(n: usize, exponent: f64) -> Vec<f64> {
    let mut acc = 0.0;
    (1..=n.max(1))
        .map(|k| {
            acc += f64::powf(k as f64, -exponent);
            acc
        })
        .collect()
}

/// Draws an index under cumulative weights.
fn sample_cumulative(rng: &mut StdRng, cumulative: &[f64]) -> usize {
    let total = *cumulative.last().expect("nonempty weights");
    let r = (rng.gen_range(0..1u64 << 53) as f64) / (1u64 << 53) as f64 * total;
    cumulative.partition_point(|&c| c <= r)
}

/// Generates a multi-tenant workload (deterministic in the seed).
pub fn generate(cfg: &LoadConfig) -> Workload {
    let tenants = cfg.tenants.max(1);
    // Per-tenant hostile streams, each on its own derived seed.
    let mut streams: Vec<Vec<KvAction>> = (0..tenants)
        .map(|tenant| {
            let hostile = HostileConfig {
                clients: cfg.clients,
                steps: cfg.steps_per_tenant,
                keys: cfg.keys,
                error_prob: cfg.error_prob,
                seed: cfg
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(tenant),
                ..HostileConfig::default()
            };
            random_hostile_kv_trace(&hostile)
                .iter()
                .cloned()
                .map(retag)
                .collect()
        })
        .collect();

    // Zipf interleave: sample a tenant, emit its next action; exhausted
    // tenants pass to the next live one so every stream drains fully.
    let weights = zipf_cumulative(tenants as usize, cfg.tenant_skew);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xD6E8_FEB8_6659_FD93);
    let mut cursors = vec![0usize; tenants as usize];
    let mut remaining: usize = streams.iter().map(|s| s.len()).sum();
    let mut reference: BTreeMap<u64, Trace<KvAction>> = BTreeMap::new();
    let mut chunks = Vec::new();
    let mut chunk = Vec::new();
    let mut frames_in_chunk = 0usize;
    let frames = remaining;
    while remaining > 0 {
        let mut tenant = sample_cumulative(&mut rng, &weights);
        while cursors[tenant] >= streams[tenant].len() {
            tenant = (tenant + 1) % tenants as usize;
        }
        let action = streams[tenant][cursors[tenant]].clone();
        cursors[tenant] += 1;
        remaining -= 1;
        encode_frame(
            &mut chunk,
            &Frame {
                tenant: tenant as u64,
                action: action.clone(),
            },
        );
        frames_in_chunk += 1;
        reference.entry(tenant as u64).or_default().push(action);
        if frames_in_chunk >= cfg.chunk_frames.max(1) {
            chunks.push(std::mem::take(&mut chunk));
            frames_in_chunk = 0;
        }
    }
    if !chunk.is_empty() {
        chunks.push(chunk);
    }
    for stream in streams.iter_mut() {
        stream.clear();
    }
    Workload {
        chunks,
        reference,
        frames,
    }
}

/// Replays `chunks` over a bounded in-process transport. The producer
/// thread blocks when the consumer lags `capacity` chunks behind —
/// transport-level backpressure, upstream of the daemon's per-tenant
/// queues. Join the handle after draining the receiver.
pub fn transport(chunks: Vec<Vec<u8>>, capacity: usize) -> (Receiver<Vec<u8>>, JoinHandle<()>) {
    let (tx, rx) = sync_channel(capacity.max(1));
    let handle = std::thread::spawn(move || {
        for chunk in chunks {
            // The consumer hanging up is a normal shutdown, not a fault.
            if tx.send(chunk).is_err() {
                break;
            }
        }
    });
    (rx, handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::decode_frames;

    #[test]
    fn workload_is_deterministic_and_reference_matches_chunks() {
        let cfg = LoadConfig {
            tenants: 4,
            steps_per_tenant: 60,
            chunk_frames: 16,
            seed: 7,
            ..LoadConfig::default()
        };
        let w1 = generate(&cfg);
        let w2 = generate(&cfg);
        assert_eq!(w1.chunks, w2.chunks, "same seed, same bytes");
        assert_eq!(w1.frames, w2.frames);

        // Decoding the chunks and regrouping by tenant reproduces the
        // reference traces exactly (order preserved within each tenant).
        let mut regrouped: BTreeMap<u64, Vec<KvAction>> = BTreeMap::new();
        for chunk in &w1.chunks {
            for frame in decode_frames(chunk).unwrap() {
                regrouped
                    .entry(frame.tenant)
                    .or_default()
                    .push(frame.action);
            }
        }
        assert_eq!(regrouped.len(), w1.reference.len());
        for (tenant, actions) in regrouped {
            let reference: Vec<KvAction> = w1.reference[&tenant].iter().cloned().collect();
            assert_eq!(actions, reference, "tenant {tenant}");
        }
    }

    #[test]
    fn skew_concentrates_traffic_on_hot_tenants() {
        let cfg = LoadConfig {
            tenants: 16,
            steps_per_tenant: 40,
            tenant_skew: 1.5,
            chunk_frames: 1024,
            seed: 3,
            ..LoadConfig::default()
        };
        let w = generate(&cfg);
        // All tenants drain fully regardless of skew…
        let total: usize = w.reference.values().map(|t| t.len()).sum();
        assert_eq!(total, w.frames);
        assert_eq!(w.reference.len(), 16);
    }

    #[test]
    fn transport_replays_all_chunks_through_a_bounded_channel() {
        let cfg = LoadConfig {
            tenants: 3,
            steps_per_tenant: 50,
            chunk_frames: 8,
            ..LoadConfig::default()
        };
        let w = generate(&cfg);
        let expected = w.chunks.clone();
        let (rx, handle) = transport(w.chunks, 2);
        let got: Vec<Vec<u8>> = rx.iter().collect();
        handle.join().unwrap();
        assert_eq!(got, expected);
    }
}
