//! The daemon's wire format: length-prefixed frames carrying one tenant's
//! [`KvAction`] each.
//!
//! The format is deliberately hand-rolled (the build environment has no
//! crates.io access, and the paper's action alphabet is tiny): every
//! multi-byte integer is little-endian, every frame is self-delimiting,
//! and a [`Decoder`] consumes arbitrary chunkings of the byte stream —
//! frames may be split across reads or packed many to a chunk.
//!
//! # Frame layout
//!
//! | field    | size | meaning                                         |
//! |----------|------|-------------------------------------------------|
//! | `len`    | u32  | byte length of the body that follows            |
//! | `tenant` | u64  | tenant id (key-space / session selector)        |
//! | `kind`   | u8   | 0 = invoke, 1 = respond, 2 = switch             |
//! | `client` | u32  | client id (≥ 1)                                 |
//! | `phase`  | u32  | phase id (≥ 1)                                  |
//! | input    | var  | `op: u8` (0 put, 1 get, 2 delete), `key: u32`, and for put `value: u64` |
//! | output   | var  | respond only: `tag: u8` (0 ack, 1 not-found, 2 found), and for found `value: u64` |
//! | value    | var  | switch only: `count: u8` (≤ [`MAX_SWITCH_VALUE`]) then `count` encoded inputs — the `rinit` candidate history the switch carries |
//!
//! Switch frames carry the candidate init history as a bounded input
//! list, so tenants can close a stream with an abort switch and the
//! daemon's speculative sessions can interpret it (keyed, under a
//! switch-independence certificate, or via the monolithic re-check).

use slin_adt::{KvInput, KvOutput, KvStore};
use slin_core::ObjAction;
use slin_trace::{Action, ClientId, PhaseId};
use std::fmt;

/// One object action of the daemon's KV alphabet. The switch annotation
/// is the exact-init candidate history (what [`slin_core::initrel::ExactInit`]
/// interprets).
pub type KvAction = ObjAction<KvStore, Vec<KvInput>>;

/// Most inputs a switch frame's candidate value may carry — bounds both
/// the frame size and the speculative checker's interpretation work per
/// switch.
pub const MAX_SWITCH_VALUE: usize = 16;

/// One decoded unit of ingress: a tenant id and its action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The tenant (independent key-space / session) this action belongs to.
    pub tenant: u64,
    /// The action itself.
    pub action: KvAction,
}

/// The largest body any well-formed frame can have (`tenant + kind +
/// client + phase + put-input`, plus the larger of a found-output and a
/// full-length switch value of put-inputs). Larger length prefixes are
/// rejected before buffering, so a corrupt stream cannot make the decoder
/// allocate unboundedly.
pub const MAX_BODY_LEN: usize = 8 + 1 + 4 + 4 + 13 + 1 + MAX_SWITCH_VALUE * 13;

/// Why a byte stream failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The length prefix exceeds [`MAX_BODY_LEN`].
    FrameTooLarge {
        /// The advertised body length.
        len: usize,
    },
    /// The frame kind byte is not 0/1/2.
    BadKind(u8),
    /// The input opcode byte is not 0/1/2.
    BadOpcode(u8),
    /// The output tag byte is not 0/1/2.
    BadOutputTag(u8),
    /// The body ended before its fields did.
    Truncated,
    /// The body is longer than its fields.
    TrailingBytes {
        /// Bytes left over after the last field.
        extra: usize,
    },
    /// A client or phase id of 0 (both are 1-based on the wire).
    ZeroId,
    /// A switch frame's value count exceeds [`MAX_SWITCH_VALUE`].
    SwitchValueTooLong {
        /// The advertised input count.
        len: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::FrameTooLarge { len } => {
                write!(
                    f,
                    "frame body of {len} bytes exceeds the {MAX_BODY_LEN}-byte cap"
                )
            }
            WireError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::BadOpcode(op) => write!(f, "unknown input opcode {op}"),
            WireError::BadOutputTag(t) => write!(f, "unknown output tag {t}"),
            WireError::Truncated => write!(f, "frame body truncated"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the last frame field")
            }
            WireError::ZeroId => write!(f, "client and phase ids are 1-based; got 0"),
            WireError::SwitchValueTooLong { len } => {
                write!(
                    f,
                    "switch value of {len} inputs exceeds the {MAX_SWITCH_VALUE}-input cap"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

fn encode_input(out: &mut Vec<u8>, input: &KvInput) {
    match *input {
        KvInput::Put(k, v) => {
            out.push(0);
            out.extend_from_slice(&k.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
        }
        KvInput::Get(k) => {
            out.push(1);
            out.extend_from_slice(&k.to_le_bytes());
        }
        KvInput::Delete(k) => {
            out.push(2);
            out.extend_from_slice(&k.to_le_bytes());
        }
    }
}

/// Appends one encoded frame to `out`.
///
/// # Panics
///
/// If a switch frame's candidate value exceeds [`MAX_SWITCH_VALUE`]
/// inputs — such an action is not representable on the wire.
pub fn encode_frame(out: &mut Vec<u8>, frame: &Frame) {
    let len_at = out.len();
    out.extend_from_slice(&[0; 4]);
    out.extend_from_slice(&frame.tenant.to_le_bytes());
    let (kind, client, phase, input) = match &frame.action {
        Action::Invoke {
            client,
            phase,
            input,
        } => (0u8, client, phase, input),
        Action::Respond {
            client,
            phase,
            input,
            ..
        } => (1, client, phase, input),
        Action::Switch {
            client,
            phase,
            input,
            ..
        } => (2, client, phase, input),
    };
    out.push(kind);
    out.extend_from_slice(&client.value().to_le_bytes());
    out.extend_from_slice(&phase.value().to_le_bytes());
    encode_input(out, input);
    match &frame.action {
        Action::Respond { output, .. } => match output {
            KvOutput::Ack => out.push(0),
            KvOutput::Found(None) => out.push(1),
            KvOutput::Found(Some(v)) => {
                out.push(2);
                out.extend_from_slice(&v.to_le_bytes());
            }
        },
        Action::Switch { value, .. } => {
            assert!(
                value.len() <= MAX_SWITCH_VALUE,
                "switch value of {} inputs exceeds the wire cap of {MAX_SWITCH_VALUE}",
                value.len()
            );
            out.push(value.len() as u8);
            for input in value {
                encode_input(out, input);
            }
        }
        Action::Invoke { .. } => {}
    }
    let body_len = (out.len() - len_at - 4) as u32;
    out[len_at..len_at + 4].copy_from_slice(&body_len.to_le_bytes());
}

/// Encodes a whole frame sequence into one contiguous byte stream.
pub fn encode_frames<'a>(frames: impl IntoIterator<Item = &'a Frame>) -> Vec<u8> {
    let mut out = Vec::new();
    for frame in frames {
        encode_frame(&mut out, frame);
    }
    out
}

/// A little-endian field reader over one frame body.
struct Body<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Body<'a> {
    fn take<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let end = self.pos + N;
        if end > self.bytes.len() {
            return Err(WireError::Truncated);
        }
        let mut out = [0u8; N];
        out.copy_from_slice(&self.bytes[self.pos..end]);
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take::<1>()?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take()?))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take()?))
    }
}

fn decode_input(body: &mut Body<'_>) -> Result<KvInput, WireError> {
    Ok(match body.u8()? {
        0 => KvInput::Put(body.u32()?, body.u64()?),
        1 => KvInput::Get(body.u32()?),
        2 => KvInput::Delete(body.u32()?),
        op => return Err(WireError::BadOpcode(op)),
    })
}

/// Decodes one complete frame body (everything after the length prefix).
fn decode_body(bytes: &[u8]) -> Result<Frame, WireError> {
    let mut body = Body { bytes, pos: 0 };
    let tenant = body.u64()?;
    let kind = body.u8()?;
    let client = body.u32()?;
    let phase = body.u32()?;
    if client == 0 || phase == 0 {
        return Err(WireError::ZeroId);
    }
    let (client, phase) = (ClientId::new(client), PhaseId::new(phase));
    let input = decode_input(&mut body)?;
    let action = match kind {
        0 => Action::invoke(client, phase, input),
        1 => {
            let output = match body.u8()? {
                0 => KvOutput::Ack,
                1 => KvOutput::Found(None),
                2 => KvOutput::Found(Some(body.u64()?)),
                tag => return Err(WireError::BadOutputTag(tag)),
            };
            Action::respond(client, phase, input, output)
        }
        2 => {
            let count = body.u8()? as usize;
            if count > MAX_SWITCH_VALUE {
                return Err(WireError::SwitchValueTooLong { len: count });
            }
            let mut value = Vec::with_capacity(count);
            for _ in 0..count {
                value.push(decode_input(&mut body)?);
            }
            Action::switch(client, phase, input, value)
        }
        k => return Err(WireError::BadKind(k)),
    };
    if body.pos != bytes.len() {
        return Err(WireError::TrailingBytes {
            extra: bytes.len() - body.pos,
        });
    }
    Ok(Frame { tenant, action })
}

/// An incremental frame decoder: [`feed`](Decoder::feed) arbitrary byte
/// chunks, [`next_frame`](Decoder::next_frame) complete frames as they
/// become available. Partial frames stay buffered across feeds; the
/// buffer is compacted as frames drain, so steady-state memory is one
/// frame plus the unconsumed tail of the last chunk.
#[derive(Debug, Default)]
pub struct Decoder {
    buf: Vec<u8>,
    pos: usize,
}

impl Decoder {
    /// A decoder with an empty buffer.
    pub fn new() -> Self {
        Decoder::default()
    }

    /// Appends a chunk of the byte stream.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact before growing: everything before `pos` is consumed.
        if self.pos > 0 && self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > 4096 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded into frames.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Decodes the next complete frame, `Ok(None)` when the buffer holds
    /// only a partial frame (feed more bytes), or an error on a corrupt
    /// stream. After an error the decoder is poisoned-by-construction:
    /// the offending bytes stay at the front, so retrying returns the
    /// same error (a transport should drop the connection).
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        let avail = self.buf.len() - self.pos;
        if avail < 4 {
            return Ok(None);
        }
        let len_bytes: [u8; 4] = self.buf[self.pos..self.pos + 4]
            .try_into()
            .expect("4 bytes");
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len > MAX_BODY_LEN {
            return Err(WireError::FrameTooLarge { len });
        }
        if avail < 4 + len {
            return Ok(None);
        }
        let body = &self.buf[self.pos + 4..self.pos + 4 + len];
        let frame = decode_body(body)?;
        self.pos += 4 + len;
        Ok(Some(frame))
    }

    /// Drains every complete frame currently buffered.
    pub fn drain_frames(&mut self) -> Result<Vec<Frame>, WireError> {
        let mut out = Vec::new();
        while let Some(frame) = self.next_frame()? {
            out.push(frame);
        }
        Ok(out)
    }
}

/// Decodes a fully-buffered byte stream into its frame sequence.
pub fn decode_frames(bytes: &[u8]) -> Result<Vec<Frame>, WireError> {
    let mut dec = Decoder::new();
    dec.feed(bytes);
    let frames = dec.drain_frames()?;
    if dec.pending_bytes() > 0 {
        return Err(WireError::Truncated);
    }
    Ok(frames)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(tenant: u64, action: KvAction) -> Frame {
        Frame { tenant, action }
    }

    fn corpus() -> Vec<Frame> {
        let (c, p) = (ClientId::new(3), PhaseId::new(2));
        vec![
            frame(0, Action::invoke(c, p, KvInput::Put(7, u64::MAX))),
            frame(
                u64::MAX,
                Action::respond(c, p, KvInput::Get(0), KvOutput::Found(None)),
            ),
            frame(
                42,
                Action::respond(c, p, KvInput::Get(9), KvOutput::Found(Some(11))),
            ),
            frame(1, Action::respond(c, p, KvInput::Delete(1), KvOutput::Ack)),
            frame(9, Action::switch(c, p, KvInput::Put(1, 2), vec![])),
            frame(
                9,
                Action::switch(
                    c,
                    p,
                    KvInput::Get(3),
                    vec![KvInput::Put(1, 2), KvInput::Delete(1), KvInput::Get(1)],
                ),
            ),
        ]
    }

    #[test]
    fn roundtrips_one_contiguous_stream() {
        let frames = corpus();
        let bytes = encode_frames(&frames);
        assert_eq!(decode_frames(&bytes).unwrap(), frames);
    }

    #[test]
    fn roundtrips_under_every_chunking() {
        let frames = corpus();
        let bytes = encode_frames(&frames);
        for chunk in 1..=bytes.len() {
            let mut dec = Decoder::new();
            let mut got = Vec::new();
            for part in bytes.chunks(chunk) {
                dec.feed(part);
                got.extend(dec.drain_frames().unwrap());
            }
            assert_eq!(got, frames, "chunk size {chunk}");
            assert_eq!(dec.pending_bytes(), 0);
        }
    }

    #[test]
    fn rejects_oversized_length_prefix() {
        let mut dec = Decoder::new();
        dec.feed(&(MAX_BODY_LEN as u32 + 1).to_le_bytes());
        assert_eq!(
            dec.next_frame(),
            Err(WireError::FrameTooLarge {
                len: MAX_BODY_LEN + 1
            })
        );
    }

    #[test]
    fn rejects_corrupt_bytes() {
        let mut bytes = encode_frames(&corpus()[..1]);
        bytes[12] = 9; // kind byte
        assert_eq!(decode_frames(&bytes), Err(WireError::BadKind(9)));

        let mut bytes = encode_frames(&corpus()[..1]);
        bytes[21] = 7; // input opcode
        assert_eq!(decode_frames(&bytes), Err(WireError::BadOpcode(7)));

        // A body longer than its fields is trailing garbage, not padding.
        let mut bytes = encode_frames(&corpus()[..1]);
        let len = u32::from_le_bytes(bytes[..4].try_into().unwrap());
        bytes[..4].copy_from_slice(&(len + 1).to_le_bytes());
        bytes.push(0xFF);
        assert_eq!(
            decode_frames(&bytes),
            Err(WireError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn oversized_switch_values_are_rejected_both_ways() {
        let (c, p) = (ClientId::new(1), PhaseId::new(2));
        // Decoder side: a forged count above the cap is a wire error.
        let mut bytes = encode_frames(&[frame(
            0,
            Action::switch(c, p, KvInput::Get(1), vec![KvInput::Get(1)]),
        )]);
        let count_at = bytes.len() - 1 - 5; // count byte precedes one get-input
        bytes[count_at] = MAX_SWITCH_VALUE as u8 + 1;
        assert_eq!(
            decode_frames(&bytes),
            Err(WireError::SwitchValueTooLong {
                len: MAX_SWITCH_VALUE + 1
            })
        );
        // Encoder side: unrepresentable values panic rather than truncate.
        let long = vec![KvInput::Get(1); MAX_SWITCH_VALUE + 1];
        let oversized = frame(0, Action::switch(c, p, KvInput::Get(1), long));
        assert!(std::panic::catch_unwind(|| encode_frames(&[oversized])).is_err());
    }

    #[test]
    fn zero_ids_are_rejected_not_panicked() {
        let mut bytes = encode_frames(&corpus()[..1]);
        bytes[13..17].copy_from_slice(&0u32.to_le_bytes()); // client id
        assert_eq!(decode_frames(&bytes), Err(WireError::ZeroId));
    }
}
