//! `slin-daemon` — a long-running, multi-tenant trace-ingestion daemon
//! over the streaming (speculative-)linearizability checker.
//!
//! The paper's monitor checks one object's stream; a deployment has
//! thousands of them. This crate multiplexes many tenants — independent
//! key-spaces, each with its own verdict — over one process:
//!
//! ```text
//!   wire bytes ──▶ Decoder ──▶ per-tenant bounded queues ──▶ worker lanes
//!   (frames)       (wire.rs)      │ high-water: shed          │ one owned
//!                                 ▼ (lossy epoch_force)       ▼ Session each
//!                              metrics  ◀─────────────  verdict snapshots
//! ```
//!
//! * [`wire`] — the compact length-prefixed frame format and its
//!   incremental, chunking-agnostic [`wire::Decoder`];
//! * [`daemon`] — the tenant table ([`daemon::Daemon`]), per-tenant
//!   [`daemon::TenantPolicy`] (queue bound + the checker's own
//!   [`slin_core::stream::GcPolicy`]), backpressure shedding, the
//!   lane-sharded worker pool, and the [`daemon::DaemonMetrics`] surface;
//! * [`loadgen`] — deterministic Zipf-skewed multi-tenant workloads and a
//!   bounded in-process transport, for the B8 bench and the integration
//!   tests.
//!
//! The binary (`slin-daemon`) wires the three together: generate or
//! accept a workload, ingest, pump, snapshot verdicts, print metrics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod daemon;
pub mod loadgen;
pub mod wire;

pub use daemon::{
    Daemon, DaemonConfig, DaemonMetrics, FallbackCounts, TenantChecker, TenantPolicy,
    TenantSession, VerdictCounts,
};
pub use loadgen::{generate, transport, LoadConfig, Workload};
pub use wire::{
    decode_frames, encode_frame, encode_frames, Decoder, Frame, KvAction, WireError,
    MAX_SWITCH_VALUE,
};
