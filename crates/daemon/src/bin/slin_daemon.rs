//! The `slin-daemon` binary: replays a generated multi-tenant workload
//! through the daemon over the bounded in-process transport and prints
//! the metrics surface as JSON.
//!
//! ```text
//! slin-daemon [--tenants N] [--steps N] [--clients N] [--keys N]
//!             [--skew F] [--error-prob F] [--chunk-frames N] [--seed N]
//!             [--workers N] [--policy SPEC] [--snapshot-every N]
//!             [--metrics v1|json|prom] [--trace PATH]
//! ```
//!
//! `--policy` takes the `key=value` comma list of
//! [`slin_daemon::TenantPolicy::parse`], e.g.
//! `--policy queue=64,window=16,lossy=true`.
//!
//! `--metrics` picks the final exposition format: `v1` (the legacy
//! `slin-daemon/v1` JSON, the default), `json` (the registry's
//! `slin-obs/v1` snapshot), or `prom` (Prometheus text format).
//! `--trace PATH` enables span tracing and writes a Chrome trace-event
//! file loadable in Perfetto / `chrome://tracing`.

use slin_daemon::{generate, transport, Daemon, DaemonConfig, LoadConfig, TenantPolicy};
use slin_obs::StackObserver;
use std::sync::Arc;

enum MetricsFormat {
    V1,
    Json,
    Prom,
}

struct Args {
    load: LoadConfig,
    workers: usize,
    policy: TenantPolicy,
    snapshot_every: usize,
    metrics: MetricsFormat,
    trace: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        load: LoadConfig {
            tenants: 64,
            steps_per_tenant: 200,
            ..LoadConfig::default()
        },
        workers: 4,
        policy: TenantPolicy::default(),
        snapshot_every: 16,
        metrics: MetricsFormat::V1,
        trace: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--tenants" => args.load.tenants = num(&flag, &value(&flag)?)?,
            "--steps" => args.load.steps_per_tenant = num(&flag, &value(&flag)?)?,
            "--clients" => args.load.clients = num(&flag, &value(&flag)?)?,
            "--keys" => args.load.keys = num(&flag, &value(&flag)?)?,
            "--skew" => args.load.tenant_skew = num(&flag, &value(&flag)?)?,
            "--error-prob" => args.load.error_prob = num(&flag, &value(&flag)?)?,
            "--chunk-frames" => args.load.chunk_frames = num(&flag, &value(&flag)?)?,
            "--seed" => args.load.seed = num(&flag, &value(&flag)?)?,
            "--workers" => args.workers = num(&flag, &value(&flag)?)?,
            "--snapshot-every" => args.snapshot_every = num(&flag, &value(&flag)?)?,
            "--policy" => args.policy = TenantPolicy::parse(&value(&flag)?)?,
            "--metrics" => {
                args.metrics = match value(&flag)?.as_str() {
                    "v1" => MetricsFormat::V1,
                    "json" => MetricsFormat::Json,
                    "prom" => MetricsFormat::Prom,
                    other => return Err(format!("bad value for --metrics: {other}")),
                }
            }
            "--trace" => args.trace = Some(value(&flag)?),
            "--help" | "-h" => {
                println!("{}", HELP);
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    Ok(args)
}

fn num<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    value
        .parse()
        .map_err(|e| format!("bad value for {flag}: {e}"))
}

const HELP: &str = "slin-daemon: multi-tenant streaming linearizability monitor

  --tenants N         tenants in the generated workload (default 64)
  --steps N           generation steps per tenant (default 200)
  --clients N         clients per tenant stream (default 4)
  --keys N            keys per tenant key-space (default 4)
  --skew F            Zipf exponent of the tenant interleave (default 1.0)
  --error-prob F      output-perturbation probability (default 0.0)
  --chunk-frames N    frames per transport chunk (default 64)
  --seed N            workload seed (default 0)
  --workers N         worker lanes (default 4)
  --policy SPEC       default tenant policy, key=value comma list
                      (queue, window, lossy, epoch_cuts, epoch_force,
                       frontier_cap, extension_budget, retire_budget,
                       archive)
  --snapshot-every N  verdict-snapshot period, in chunks (default 16)
  --metrics FORMAT    final metrics exposition: v1 (legacy slin-daemon/v1
                      JSON, default), json (slin-obs/v1 registry
                      snapshot), prom (Prometheus text format)
  --trace PATH        collect spans and write a Chrome trace-event file
                      (open in Perfetto or chrome://tracing)";

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("slin-daemon: {e}");
            std::process::exit(2);
        }
    };
    let workload = generate(&args.load);
    eprintln!(
        "slin-daemon: {} tenants, {} frames over {} chunks",
        args.load.tenants,
        workload.frames,
        workload.chunks.len()
    );
    let (rx, producer) = transport(workload.chunks, 8);
    let config = DaemonConfig {
        workers: args.workers,
        default_policy: args.policy,
    };
    let mut daemon = if args.trace.is_some() {
        Daemon::with_observer(config, Arc::new(StackObserver::with_tracing(1 << 16)))
    } else {
        Daemon::new(config)
    };
    let mut chunks = 0usize;
    for chunk in rx.iter() {
        if let Err(e) = daemon.ingest_bytes(&chunk) {
            eprintln!("slin-daemon: wire error, dropping stream: {e}");
            break;
        }
        chunks += 1;
        if chunks.is_multiple_of(args.snapshot_every.max(1)) {
            daemon.pump();
            let counts = daemon.poll_verdicts();
            eprintln!(
                "slin-daemon: chunk {chunks}: {} ok, {} violation, {} unknown ({} changed)",
                counts.ok, counts.violation, counts.unknown, counts.changed
            );
        }
    }
    producer.join().expect("producer thread");
    daemon.pump();
    daemon.poll_verdicts();
    if let Some(path) = &args.trace {
        let trace = daemon.chrome_trace_json().expect("tracing enabled");
        if let Err(e) = std::fs::write(path, trace) {
            eprintln!("slin-daemon: cannot write trace to {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("slin-daemon: wrote Chrome trace to {path}");
    }
    match args.metrics {
        MetricsFormat::V1 => print!("{}", daemon.metrics().to_json()),
        MetricsFormat::Json => print!("{}", daemon.obs_snapshot_json()),
        MetricsFormat::Prom => print!("{}", daemon.render_prometheus()),
    }
}
