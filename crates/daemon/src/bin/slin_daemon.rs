//! The `slin-daemon` binary: replays a generated multi-tenant workload
//! through the daemon over the bounded in-process transport and prints
//! the metrics surface as JSON.
//!
//! ```text
//! slin-daemon [--tenants N] [--steps N] [--clients N] [--keys N]
//!             [--skew F] [--error-prob F] [--chunk-frames N] [--seed N]
//!             [--workers N] [--policy SPEC] [--snapshot-every N]
//! ```
//!
//! `--policy` takes the `key=value` comma list of
//! [`slin_daemon::TenantPolicy::parse`], e.g.
//! `--policy queue=64,window=16,lossy=true`.

use slin_daemon::{generate, transport, Daemon, DaemonConfig, LoadConfig, TenantPolicy};

struct Args {
    load: LoadConfig,
    workers: usize,
    policy: TenantPolicy,
    snapshot_every: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        load: LoadConfig {
            tenants: 64,
            steps_per_tenant: 200,
            ..LoadConfig::default()
        },
        workers: 4,
        policy: TenantPolicy::default(),
        snapshot_every: 16,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--tenants" => args.load.tenants = num(&flag, &value(&flag)?)?,
            "--steps" => args.load.steps_per_tenant = num(&flag, &value(&flag)?)?,
            "--clients" => args.load.clients = num(&flag, &value(&flag)?)?,
            "--keys" => args.load.keys = num(&flag, &value(&flag)?)?,
            "--skew" => args.load.tenant_skew = num(&flag, &value(&flag)?)?,
            "--error-prob" => args.load.error_prob = num(&flag, &value(&flag)?)?,
            "--chunk-frames" => args.load.chunk_frames = num(&flag, &value(&flag)?)?,
            "--seed" => args.load.seed = num(&flag, &value(&flag)?)?,
            "--workers" => args.workers = num(&flag, &value(&flag)?)?,
            "--snapshot-every" => args.snapshot_every = num(&flag, &value(&flag)?)?,
            "--policy" => args.policy = TenantPolicy::parse(&value(&flag)?)?,
            "--help" | "-h" => {
                println!("{}", HELP);
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    Ok(args)
}

fn num<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    value
        .parse()
        .map_err(|e| format!("bad value for {flag}: {e}"))
}

const HELP: &str = "slin-daemon: multi-tenant streaming linearizability monitor

  --tenants N         tenants in the generated workload (default 64)
  --steps N           generation steps per tenant (default 200)
  --clients N         clients per tenant stream (default 4)
  --keys N            keys per tenant key-space (default 4)
  --skew F            Zipf exponent of the tenant interleave (default 1.0)
  --error-prob F      output-perturbation probability (default 0.0)
  --chunk-frames N    frames per transport chunk (default 64)
  --seed N            workload seed (default 0)
  --workers N         worker lanes (default 4)
  --policy SPEC       default tenant policy, key=value comma list
                      (queue, window, lossy, epoch_cuts, epoch_force,
                       frontier_cap, extension_budget, retire_budget)
  --snapshot-every N  verdict-snapshot period, in chunks (default 16)";

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("slin-daemon: {e}");
            std::process::exit(2);
        }
    };
    let workload = generate(&args.load);
    eprintln!(
        "slin-daemon: {} tenants, {} frames over {} chunks",
        args.load.tenants,
        workload.frames,
        workload.chunks.len()
    );
    let (rx, producer) = transport(workload.chunks, 8);
    let mut daemon = Daemon::new(DaemonConfig {
        workers: args.workers,
        default_policy: args.policy,
    });
    let mut chunks = 0usize;
    for chunk in rx.iter() {
        if let Err(e) = daemon.ingest_bytes(&chunk) {
            eprintln!("slin-daemon: wire error, dropping stream: {e}");
            break;
        }
        chunks += 1;
        if chunks.is_multiple_of(args.snapshot_every.max(1)) {
            daemon.pump();
            let counts = daemon.poll_verdicts();
            eprintln!(
                "slin-daemon: chunk {chunks}: {} ok, {} violation, {} unknown ({} changed)",
                counts.ok, counts.violation, counts.unknown, counts.changed
            );
        }
    }
    producer.join().expect("producer thread");
    daemon.pump();
    daemon.poll_verdicts();
    print!("{}", daemon.metrics().to_json());
}
