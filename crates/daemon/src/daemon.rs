//! The daemon proper: a tenant table of owned [`Session`]s, bounded
//! per-tenant ingress queues with a lossy-shed high-water mark, a
//! lane-sharded worker pool, and a metrics surface.
//!
//! One [`Daemon`] multiplexes many tenants — independent key-spaces, each
//! monitored by its own streaming [`Session`] (possible precisely because
//! sessions own their model and are `'static`). Tenants are sharded into
//! `workers` *lanes* by `tenant_id % workers`; [`Daemon::pump`] drains
//! every lane on its own scoped thread, so checking work parallelises
//! across tenants while each tenant's stream stays strictly ordered.
//!
//! Backpressure: each tenant has a bounded ingress queue. When a decoded
//! frame finds the queue at its high-water mark, the daemon *sheds* — it
//! flips the tenant's session to lossy epoch forcing
//! ([`Session::set_lossy`], i.e. [`GcPolicy::epoch_force`]) and drains the
//! queue inline on the ingest thread. Memory stays bounded on both sides
//! (queue depth never exceeds the capacity; the lossy monitor retires
//! windows it could not complete), at the documented cost: a shed tenant's
//! later would-be violations may downgrade to
//! [`MonitorStatus::Unknown`]. Tenants whose policy disables the lossy
//! shed still drain inline — blocking backpressure without the verdict
//! downgrade.

use crate::wire::{Decoder, Frame, KvAction, WireError};
use slin_adt::{KvInput, KvKeyPartitioner, KvStore};
use slin_analysis::{certify, certify_switch, AnalyzeConfig, Certificate, SwitchCert};
use slin_core::initrel::ExactInit;
use slin_core::model::ConsistencyModel;
use slin_core::partition::FallbackReason;
use slin_core::session::{CertPolicy, Checker, Session, Strategy, VerdictDelta};
use slin_core::slin::SlinChecker;
use slin_core::stream::{GcPolicy, MonitorStatus};
use slin_obs::{Counter, Gauge, Histogram, LanePumpEvent, Obs, StackObserver};
use slin_trace::PhaseId;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// The per-tenant checker model: speculative linearizability over the KV
/// alphabet for phase pair `(1, 2)` under the exact init relation.
/// Switch-free tenant streams coincide with plain linearizability
/// (Theorem 2); a tenant may close its stream with an abort switch frame,
/// which the session interprets speculatively — sharded, when the keyed
/// policy installs the switch-independence certificate.
pub type TenantChecker = SlinChecker<KvStore, ExactInit>;

/// The per-tenant session type: an owned streaming monitor over
/// [`TenantChecker`], sharded by key.
pub type TenantSession = Session<TenantChecker, Vec<KvInput>, KvKeyPartitioner>;

/// The per-tenant witness type (what a successful check returns).
pub type TenantWitness = <TenantChecker as ConsistencyModel<Vec<KvInput>>>::Witness;

/// The per-tenant error type (why a check fails).
pub type TenantError = <TenantChecker as ConsistencyModel<Vec<KvInput>>>::Error;

/// Per-tenant ingestion policy. The GC half is the checker's own
/// [`GcPolicy`] — the daemon adds only the queue bound and the shed
/// decision on top.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantPolicy {
    /// High-water mark of the tenant's ingress queue: reaching it triggers
    /// the shed (inline drain, plus lossy forcing when
    /// [`shed_lossy`](TenantPolicy::shed_lossy) is set).
    pub queue_capacity: usize,
    /// Bounded GC window per shard (`None`: retain everything — verdicts
    /// byte-identical to batch checking).
    pub window: Option<usize>,
    /// The streaming GC policy, verbatim from the checker.
    pub gc: GcPolicy,
    /// Whether saturation flips the session to lossy epoch forcing
    /// (verdict-downgrade shed). `false` keeps verdicts exact and sheds
    /// only by draining inline (blocking backpressure).
    pub shed_lossy: bool,
    /// Build the tenant's session under [`CertPolicy::Require`], against
    /// the daemon's own `slin-analyze` certificate for the shipped
    /// `(KvStore, KvKeyPartitioner)` pair. Costs one lazy certification
    /// run per process; guarantees the per-key sharding this daemon
    /// relies on is machine-proven sound, not just documented.
    pub require_cert: bool,
    /// Install the process-wide **switch-independence certificate**
    /// (`slin-cert/v2`, certified once per process) on the tenant's
    /// session: switch frames are then classified per independence class
    /// and the per-key shards stay incremental across them. Without it a
    /// switch frame drops the tenant to monolithic re-checks, reported as
    /// [`FallbackReason::SwitchUncertified`] in the fallback metrics.
    pub keyed: bool,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        TenantPolicy {
            queue_capacity: 256,
            window: None,
            gc: GcPolicy::default(),
            shed_lossy: true,
            require_cert: false,
            keyed: false,
        }
    }
}

impl TenantPolicy {
    /// Parses a policy from a `key=value` comma list, e.g.
    /// `queue=64,window=16,lossy=true,epoch_force=false,frontier_cap=32`.
    /// Keys: `queue`, `window` (`none` allowed), `lossy`, `require_cert`,
    /// `keyed`,
    /// `epoch_cuts`, `epoch_force`, `frontier_cap`, `extension_budget`,
    /// `retire_budget` (`none` allowed), `archive` (witness-archive depth
    /// in retired windows; `0` disables). Unset keys keep their defaults;
    /// the GC keys write straight into the embedded [`GcPolicy`].
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut policy = TenantPolicy::default();
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got `{part}`"))?;
            let bad = |e: &dyn std::fmt::Display| format!("bad value for `{key}`: {e}");
            match key {
                "queue" => policy.queue_capacity = value.parse().map_err(|e| bad(&e))?,
                "window" => {
                    policy.window = match value {
                        "none" => None,
                        v => Some(v.parse().map_err(|e| bad(&e))?),
                    }
                }
                "lossy" => policy.shed_lossy = value.parse().map_err(|e| bad(&e))?,
                "require_cert" => policy.require_cert = value.parse().map_err(|e| bad(&e))?,
                "keyed" => policy.keyed = value.parse().map_err(|e| bad(&e))?,
                "epoch_cuts" => policy.gc.epoch_cuts = value.parse().map_err(|e| bad(&e))?,
                "epoch_force" => policy.gc.epoch_force = value.parse().map_err(|e| bad(&e))?,
                "frontier_cap" => policy.gc.frontier_cap = value.parse().map_err(|e| bad(&e))?,
                "extension_budget" => {
                    policy.gc.extension_budget = value.parse().map_err(|e| bad(&e))?
                }
                "retire_budget" => {
                    policy.gc.retire_budget = match value {
                        "none" => None,
                        v => Some(v.parse().map_err(|e| bad(&e))?),
                    }
                }
                "archive" => policy.gc.archive_windows = value.parse().map_err(|e| bad(&e))?,
                other => return Err(format!("unknown policy key `{other}`")),
            }
        }
        Ok(policy)
    }
}

/// Daemon-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct DaemonConfig {
    /// Worker lanes: tenants are sharded `tenant_id % workers` and each
    /// lane drains on its own thread in [`Daemon::pump`].
    pub workers: usize,
    /// Policy applied to tenants first seen on the wire (override per
    /// tenant with [`Daemon::set_policy`]).
    pub default_policy: TenantPolicy,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            workers: 4,
            default_policy: TenantPolicy::default(),
        }
    }
}

/// One tenant: its owned session, bounded ingress queue, and counters.
struct Tenant {
    session: TenantSession,
    queue: VecDeque<KvAction>,
    policy: TenantPolicy,
    shedding: bool,
    sheds: u64,
    events: u64,
    /// Registry mirror of `events`, labelled `{tenant="<id>"}`.
    events_metric: Counter,
    queue_peak: usize,
    last_status: MonitorStatus,
}

/// The process-wide `slin-analyze` certificate for the daemon's shipped
/// `(KvStore, KvKeyPartitioner)` pair, certified once on first use.
fn shipped_cert() -> &'static Certificate {
    static CERT: std::sync::OnceLock<Certificate> = std::sync::OnceLock::new();
    CERT.get_or_init(|| {
        certify(&KvStore, &KvKeyPartitioner, &AnalyzeConfig::default())
            .expect("KvKeyPartitioner is sound over KvStore")
    })
}

/// The process-wide switch-independence certificate (`slin-cert/v2`) for
/// the daemon's `(KvStore, KvKeyPartitioner, ExactInit)` triple, certified
/// once on the first keyed tenant.
fn shipped_switch_cert() -> &'static SwitchCert {
    static CERT: std::sync::OnceLock<SwitchCert> = std::sync::OnceLock::new();
    CERT.get_or_init(|| {
        certify_switch(&KvStore, &KvKeyPartitioner, &AnalyzeConfig::default())
            .expect("ExactInit decomposes over KvKeyPartitioner's classes")
    })
}

impl Tenant {
    fn new(policy: TenantPolicy, obs: Obs, events_metric: Counter) -> Self {
        let model = SlinChecker::owned(KvStore, ExactInit::new(), PhaseId::FIRST, PhaseId::new(2));
        let base = Checker::builder(model);
        let builder = if policy.require_cert {
            base.partitioner_certified(KvKeyPartitioner, shipped_cert())
                .expect("shipped certificate names KvKeyPartitioner")
                .cert_policy(CertPolicy::Require)
        } else {
            base.partitioner(KvKeyPartitioner)
        };
        let mut builder = if policy.keyed {
            builder
                .switch_certified(shipped_switch_cert())
                .expect("shipped switch certificate covers the tenant triple")
        } else {
            builder
        }
        .strategy(Strategy::Streaming { window: None })
        .gc_policy(policy.gc)
        .observer(obs);
        if let Some(window) = policy.window {
            builder = builder.window(window);
        }
        Tenant {
            session: builder.build(),
            queue: VecDeque::new(),
            policy,
            shedding: false,
            sheds: 0,
            events: 0,
            events_metric,
            queue_peak: 0,
            last_status: MonitorStatus::Ok,
        }
    }

    /// Drains the ingress queue through the session, in order. Returns the
    /// number of events checked.
    fn drain(&mut self) -> u64 {
        let mut drained = 0u64;
        while let Some(action) = self.queue.pop_front() {
            let outcome = self.session.ingest(action);
            self.last_status = outcome.status;
            self.events += 1;
            drained += 1;
        }
        self.events_metric.add(drained);
        drained
    }
}

/// Rolled-up verdict counters from one [`Daemon::poll_verdicts`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerdictCounts {
    /// Tenants whose rolling status is [`MonitorStatus::Ok`].
    pub ok: usize,
    /// Tenants at [`MonitorStatus::Violation`].
    pub violation: usize,
    /// Tenants at [`MonitorStatus::IllFormed`].
    pub ill_formed: usize,
    /// Tenants at [`MonitorStatus::SwitchSeen`].
    pub switch_seen: usize,
    /// Tenants at [`MonitorStatus::Unknown`] (budget or lossy shed).
    pub unknown: usize,
    /// Tenants at [`MonitorStatus::Deferred`].
    pub deferred: usize,
    /// Tenants whose status moved since the previous poll.
    pub changed: usize,
}

impl VerdictCounts {
    fn add(&mut self, delta: &VerdictDelta) {
        match delta.status {
            MonitorStatus::Ok => self.ok += 1,
            MonitorStatus::Violation => self.violation += 1,
            MonitorStatus::IllFormed => self.ill_formed += 1,
            MonitorStatus::SwitchSeen => self.switch_seen += 1,
            MonitorStatus::Unknown => self.unknown += 1,
            MonitorStatus::Deferred => self.deferred += 1,
        }
        if delta.changed {
            self.changed += 1;
        }
    }
}

/// Rolled-up fallback counters from one [`Daemon::poll_verdicts`] pass:
/// how many tenants' streaming monitors are currently off the sharded
/// fast path, by [`FallbackReason`]. A keyed tenant (with the switch
/// certificate installed) contributes nothing here even after a switch
/// frame; an unkeyed tenant that saw a switch shows up as
/// `switch_uncertified`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FallbackCounts {
    /// Tenants monolithic because a switch arrived with no
    /// switch-independence certificate installed
    /// ([`FallbackReason::SwitchUncertified`]).
    pub switch_uncertified: usize,
    /// Tenants monolithic because the partitioner could not classify an
    /// input ([`FallbackReason::UnclassifiableInput`]).
    pub unclassifiable_input: usize,
    /// Tenants monolithic because cross-class coupling was detected
    /// ([`FallbackReason::CrossBoundCoupled`]).
    pub cross_bound_coupled: usize,
}

impl FallbackCounts {
    fn add(&mut self, reason: Option<FallbackReason>) {
        match reason {
            Some(FallbackReason::SwitchUncertified) => self.switch_uncertified += 1,
            Some(FallbackReason::UnclassifiableInput) => self.unclassifiable_input += 1,
            Some(FallbackReason::CrossBoundCoupled) => self.cross_bound_coupled += 1,
            None => {}
        }
    }

    /// Total tenants off the sharded fast path, any reason.
    pub fn total(&self) -> usize {
        self.switch_uncertified + self.unclassifiable_input + self.cross_bound_coupled
    }
}

/// The daemon's metrics surface (see [`Daemon::metrics`]); serialises to
/// the repo's bench-JSON shape via [`DaemonMetrics::to_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonMetrics {
    /// Live tenants.
    pub tenants: usize,
    /// Frames decoded off the wire.
    pub frames: u64,
    /// Bytes ingested off the wire.
    pub bytes: u64,
    /// Events checked (frames that have passed through a session).
    pub events: u64,
    /// Wall-clock seconds since the daemon started.
    pub elapsed_secs: f64,
    /// Checked events per second of wall clock.
    pub events_per_sec: f64,
    /// 50th-percentile [`Daemon::ingest_bytes`] latency in microseconds,
    /// read from a fixed-memory log-scale histogram (the value is the
    /// upper bound of the bucket holding the quantile).
    pub p50_ingest_us: u64,
    /// 99th-percentile [`Daemon::ingest_bytes`] latency, microseconds
    /// (same log-bucket resolution as `p50_ingest_us`).
    pub p99_ingest_us: u64,
    /// Deepest ingress queue ever observed, across all tenants.
    pub queue_depth_peak: usize,
    /// Tenants currently in the lossy-shed state.
    pub shed_tenants: usize,
    /// Total shed activations (a tenant saturating repeatedly counts each
    /// time it crosses the high-water mark from below).
    pub sheds: u64,
    /// Verdict counters from the most recent [`Daemon::poll_verdicts`].
    pub verdicts: VerdictCounts,
    /// Fallback counters from the most recent [`Daemon::poll_verdicts`]:
    /// tenants whose streams are currently monolithic, by reason.
    pub fallbacks: FallbackCounts,
}

impl DaemonMetrics {
    /// Renders the metrics in the legacy `slin-daemon/v1` bench-JSON shape
    /// (2-space indent, stable key order; the trailing `fallbacks` block
    /// is the one additive extension — existing keys are byte-stable).
    /// New consumers should read the richer
    /// [`Daemon::obs_snapshot_json`] (`slin-obs/v1`), which subsumes every
    /// field here.
    pub fn to_json(&self) -> String {
        let v = &self.verdicts;
        let f = &self.fallbacks;
        format!(
            "{{\n  \"schema\": \"slin-daemon/v1\",\n  \"tenants\": {},\n  \"frames\": {},\n  \"bytes\": {},\n  \"events\": {},\n  \"elapsed_secs\": {:.6},\n  \"events_per_sec\": {:.1},\n  \"p50_ingest_us\": {},\n  \"p99_ingest_us\": {},\n  \"queue_depth_peak\": {},\n  \"shed_tenants\": {},\n  \"sheds\": {},\n  \"verdicts\": {{\n    \"ok\": {},\n    \"violation\": {},\n    \"ill_formed\": {},\n    \"switch_seen\": {},\n    \"unknown\": {},\n    \"deferred\": {},\n    \"changed\": {}\n  }},\n  \"fallbacks\": {{\n    \"switch_uncertified\": {},\n    \"unclassifiable_input\": {},\n    \"cross_bound_coupled\": {}\n  }}\n}}\n",
            self.tenants,
            self.frames,
            self.bytes,
            self.events,
            self.elapsed_secs,
            self.events_per_sec,
            self.p50_ingest_us,
            self.p99_ingest_us,
            self.queue_depth_peak,
            self.shed_tenants,
            self.sheds,
            v.ok,
            v.violation,
            v.ill_formed,
            v.switch_seen,
            v.unknown,
            v.deferred,
            v.changed,
            f.switch_uncertified,
            f.unclassifiable_input,
            f.cross_bound_coupled,
        )
    }
}

/// Registry handles for the daemon's own series, resolved once at
/// construction (the per-tenant labelled counters resolve lazily, as
/// tenants materialise).
struct DaemonStats {
    frames: Counter,
    bytes: Counter,
    ingest_us: Histogram,
    queue_depth_peak: Gauge,
    tenants: Gauge,
    verdicts: [(&'static str, Gauge); 7],
    fallbacks: [(&'static str, Gauge); 3],
}

impl DaemonStats {
    fn resolve(stack: &StackObserver) -> Self {
        let r = stack.registry();
        let verdict = |status: &'static str| {
            (
                status,
                r.gauge("slin_daemon_verdicts", &[("status", status.to_string())]),
            )
        };
        let fallback = |reason: &'static str| {
            (
                reason,
                r.gauge("slin_daemon_fallback", &[("reason", reason.to_string())]),
            )
        };
        DaemonStats {
            frames: r.counter("slin_daemon_frames_total", &[]),
            bytes: r.counter("slin_daemon_bytes_total", &[]),
            ingest_us: r.histogram("slin_daemon_ingest_us", &[]),
            queue_depth_peak: r.gauge("slin_daemon_queue_depth_peak", &[]),
            tenants: r.gauge("slin_daemon_tenants", &[]),
            verdicts: [
                verdict("ok"),
                verdict("violation"),
                verdict("ill_formed"),
                verdict("switch_seen"),
                verdict("unknown"),
                verdict("deferred"),
                verdict("changed"),
            ],
            fallbacks: [
                fallback("switch_uncertified"),
                fallback("unclassifiable_input"),
                fallback("cross_bound_coupled"),
            ],
        }
    }
}

/// A multi-tenant trace-ingestion daemon: decode, route, check, report.
/// See the [module docs](self) for the architecture.
///
/// Every daemon owns a [`StackObserver`]: its own counters (frames, bytes,
/// sheds, per-tenant events), the fixed-memory ingest-latency histogram,
/// and all engine/monitor/GC metrics from the tenant sessions land in one
/// [`slin_obs::Registry`], exposed via [`Daemon::render_prometheus`] and
/// [`Daemon::obs_snapshot_json`].
pub struct Daemon {
    config: DaemonConfig,
    lanes: Vec<BTreeMap<u64, Tenant>>,
    overrides: BTreeMap<u64, TenantPolicy>,
    decoder: Decoder,
    frames: u64,
    bytes: u64,
    stack: Arc<StackObserver>,
    obs: Obs,
    stats: DaemonStats,
    queue_depth_peak: usize,
    last_verdicts: VerdictCounts,
    last_fallbacks: FallbackCounts,
    started: Instant,
}

impl Daemon {
    /// A daemon with no tenants yet; tenants materialise as their ids
    /// first appear on the wire. Owns a metrics-only [`StackObserver`];
    /// use [`Daemon::with_observer`] to enable span tracing.
    pub fn new(config: DaemonConfig) -> Self {
        Self::with_observer(config, Arc::new(StackObserver::new()))
    }

    /// A daemon reporting into a caller-supplied [`StackObserver`] —
    /// construct it [`StackObserver::with_tracing`] to collect Perfetto
    /// spans alongside the metrics.
    pub fn with_observer(config: DaemonConfig, stack: Arc<StackObserver>) -> Self {
        let workers = config.workers.max(1);
        let stats = DaemonStats::resolve(&stack);
        let obs = Obs::new(stack.clone());
        Daemon {
            config: DaemonConfig { workers, ..config },
            lanes: (0..workers).map(|_| BTreeMap::new()).collect(),
            overrides: BTreeMap::new(),
            decoder: Decoder::new(),
            frames: 0,
            bytes: 0,
            stack,
            obs,
            stats,
            queue_depth_peak: 0,
            last_verdicts: VerdictCounts::default(),
            last_fallbacks: FallbackCounts::default(),
            started: Instant::now(),
        }
    }

    /// The daemon's observer — registry exposition and, when constructed
    /// with tracing, the span collector.
    pub fn observer(&self) -> &Arc<StackObserver> {
        &self.stack
    }

    /// Renders the full metrics registry as a Prometheus text-format page.
    pub fn render_prometheus(&self) -> String {
        self.stack.registry().render_prometheus()
    }

    /// Renders the full metrics registry as a versioned `slin-obs/v1` JSON
    /// snapshot. Subsumes the legacy `slin-daemon/v1` surface.
    pub fn obs_snapshot_json(&self) -> String {
        self.stack.registry().snapshot_json()
    }

    /// Renders the collected spans as Chrome trace-event JSON (loadable in
    /// Perfetto / `chrome://tracing`), or `None` when the daemon's observer
    /// was built without tracing.
    pub fn chrome_trace_json(&self) -> Option<String> {
        self.stack.chrome_trace_json()
    }

    /// The legacy `slin-daemon/v1` metrics JSON, byte-compatible with what
    /// pre-registry daemons printed.
    #[deprecated(
        since = "0.1.0",
        note = "superseded by `obs_snapshot_json` (schema slin-obs/v1); this shim keeps the \
                slin-daemon/v1 byte format for existing scrapers"
    )]
    pub fn metrics_json(&self) -> String {
        self.metrics().to_json()
    }

    /// Sets (or replaces, for a not-yet-seen tenant) the policy one tenant
    /// gets when it materialises. Existing tenants keep their session but
    /// adopt the new queue bound and shed mode.
    pub fn set_policy(&mut self, tenant: u64, policy: TenantPolicy) {
        self.overrides.insert(tenant, policy);
        let lane = (tenant % self.config.workers as u64) as usize;
        if let Some(t) = self.lanes[lane].get_mut(&tenant) {
            t.policy = policy;
        }
    }

    /// Ingests one chunk of the wire byte stream: decodes every complete
    /// frame, routes it to its tenant's queue, and sheds saturated tenants
    /// inline. Returns the number of frames decoded from this chunk.
    /// Partial frames stay buffered for the next chunk; a corrupt stream
    /// returns the wire error (the daemon stays usable, but the byte
    /// stream cannot be resynchronised — drop the connection).
    pub fn ingest_bytes(&mut self, chunk: &[u8]) -> Result<usize, WireError> {
        let t0 = Instant::now();
        self.bytes += chunk.len() as u64;
        self.stats.bytes.add(chunk.len() as u64);
        self.decoder.feed(chunk);
        let mut decoded = 0;
        while let Some(frame) = self.decoder.next_frame()? {
            decoded += 1;
            self.route(frame);
        }
        self.frames += decoded as u64;
        self.stats.frames.add(decoded as u64);
        // Fixed-memory latency record: the histogram's 520 bytes replace
        // the old unbounded `Vec<u64>` of per-chunk samples, which grew
        // without bound on long-lived daemons.
        self.stats
            .ingest_us
            .record(t0.elapsed().as_micros().min(u64::MAX as u128) as u64);
        Ok(decoded)
    }

    fn route(&mut self, frame: Frame) {
        let workers = self.config.workers as u64;
        let lane = (frame.tenant % workers) as usize;
        let (overrides, config, stack, obs) =
            (&self.overrides, &self.config, &self.stack, &self.obs);
        let tenant = self.lanes[lane].entry(frame.tenant).or_insert_with(|| {
            let policy = overrides
                .get(&frame.tenant)
                .copied()
                .unwrap_or(config.default_policy);
            let events_metric = stack.registry().counter(
                "slin_daemon_tenant_events_total",
                &[("tenant", frame.tenant.to_string())],
            );
            Tenant::new(policy, obs.clone(), events_metric)
        });
        tenant.queue.push_back(frame.action);
        tenant.queue_peak = tenant.queue_peak.max(tenant.queue.len());
        self.queue_depth_peak = self.queue_depth_peak.max(tenant.queue.len());
        self.stats
            .queue_depth_peak
            .set_max(self.queue_depth_peak as i64);
        if tenant.queue.len() >= tenant.policy.queue_capacity {
            // High-water: shed. Lossy tenants downgrade their monitor to
            // forced epoch cuts (bounded memory, possible Unknown);
            // everyone drains inline, which is the backpressure — the
            // ingest thread pays for the checking it queued.
            if tenant.policy.shed_lossy && !tenant.shedding {
                tenant.session.set_lossy(true);
                tenant.shedding = true;
            }
            if tenant.policy.shed_lossy {
                tenant.sheds += 1;
                self.obs.shed(frame.tenant);
            }
            tenant.drain();
        }
    }

    /// Drains every tenant queue, one scoped worker thread per lane.
    /// Returns the number of events checked by this pump pass.
    pub fn pump(&mut self) -> u64 {
        let obs = &self.obs;
        let drained = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            for (lane_idx, lane) in self.lanes.iter_mut().enumerate() {
                let drained = &drained;
                scope.spawn(move || {
                    let t0 = obs.t0();
                    let queue_depth = lane.values().map(|t| t.queue.len()).max().unwrap_or(0);
                    let mut lane_drained = 0u64;
                    for tenant in lane.values_mut() {
                        lane_drained += tenant.drain();
                    }
                    obs.lane_pump(LanePumpEvent {
                        lane: lane_idx as u64,
                        drained: lane_drained,
                        queue_depth: queue_depth as u64,
                        t0,
                    });
                    drained.fetch_add(lane_drained, std::sync::atomic::Ordering::Relaxed);
                });
            }
        });
        drained.into_inner()
    }

    /// Polls every tenant's rolling verdict ([`Session::poll_verdict`] —
    /// cheap, nothing is consumed) and rolls the counts up. The result is
    /// also cached for [`Daemon::metrics`].
    pub fn poll_verdicts(&mut self) -> VerdictCounts {
        let mut counts = VerdictCounts::default();
        let mut fallbacks = FallbackCounts::default();
        for tenant in self.lanes.iter_mut().flat_map(|l| l.values_mut()) {
            counts.add(&tenant.session.poll_verdict());
            fallbacks.add(tenant.session.fallback());
        }
        self.last_verdicts = counts;
        self.last_fallbacks = fallbacks;
        self.stats.tenants.set(self.tenants() as i64);
        for (status, gauge) in &self.stats.verdicts {
            let v = match *status {
                "ok" => counts.ok,
                "violation" => counts.violation,
                "ill_formed" => counts.ill_formed,
                "switch_seen" => counts.switch_seen,
                "unknown" => counts.unknown,
                "deferred" => counts.deferred,
                _ => counts.changed,
            };
            gauge.set(v as i64);
        }
        for (reason, gauge) in &self.stats.fallbacks {
            let v = match *reason {
                "switch_uncertified" => fallbacks.switch_uncertified,
                "unclassifiable_input" => fallbacks.unclassifiable_input,
                _ => fallbacks.cross_bound_coupled,
            };
            gauge.set(v as i64);
        }
        counts
    }

    /// Fallback counters from the most recent [`Daemon::poll_verdicts`].
    pub fn fallbacks(&self) -> FallbackCounts {
        self.last_fallbacks
    }

    /// Live tenant count.
    pub fn tenants(&self) -> usize {
        self.lanes.iter().map(|l| l.len()).sum()
    }

    /// Mutable access to one tenant's session (for final reports and
    /// differential testing). Queued events are drained first so the
    /// session reflects everything ingested for the tenant.
    pub fn tenant_session_mut(&mut self, tenant: u64) -> Option<&mut TenantSession> {
        let lane = (tenant % self.config.workers as u64) as usize;
        let t = self.lanes[lane].get_mut(&tenant)?;
        t.drain();
        Some(&mut t.session)
    }

    /// Every live tenant id, ascending.
    pub fn tenant_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.lanes.iter().flat_map(|l| l.keys().copied()).collect();
        ids.sort_unstable();
        ids
    }

    /// Whether a tenant is currently in the lossy-shed state.
    pub fn is_shedding(&self, tenant: u64) -> bool {
        let lane = (tenant % self.config.workers as u64) as usize;
        self.lanes[lane].get(&tenant).is_some_and(|t| t.shedding)
    }

    /// The current metrics snapshot.
    pub fn metrics(&self) -> DaemonMetrics {
        let hist = self.stats.ingest_us.inner();
        let pct = |p: f64| -> u64 {
            if hist.count() == 0 {
                return 0;
            }
            hist.quantile(p)
        };
        let events: u64 = self
            .lanes
            .iter()
            .flat_map(|l| l.values())
            .map(|t| t.events)
            .sum();
        let elapsed = self.started.elapsed().as_secs_f64();
        DaemonMetrics {
            tenants: self.tenants(),
            frames: self.frames,
            bytes: self.bytes,
            events,
            elapsed_secs: elapsed,
            events_per_sec: if elapsed > 0.0 {
                events as f64 / elapsed
            } else {
                0.0
            },
            p50_ingest_us: pct(0.50),
            p99_ingest_us: pct(0.99),
            queue_depth_peak: self.queue_depth_peak,
            shed_tenants: self
                .lanes
                .iter()
                .flat_map(|l| l.values())
                .filter(|t| t.shedding)
                .count(),
            sheds: self
                .lanes
                .iter()
                .flat_map(|l| l.values())
                .map(|t| t.sheds)
                .sum(),
            verdicts: self.last_verdicts,
            fallbacks: self.last_fallbacks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{encode_frames, Frame};
    use slin_adt::{KvInput, KvOutput};
    use slin_trace::{Action, ClientId, PhaseId};

    fn put_round(tenant: u64, round: u64) -> [Frame; 2] {
        let (c, p) = (ClientId::new(1), PhaseId::FIRST);
        let input = KvInput::Put(1, round);
        [
            Frame {
                tenant,
                action: Action::invoke(c, p, input),
            },
            Frame {
                tenant,
                action: Action::respond(c, p, input, KvOutput::Ack),
            },
        ]
    }

    #[test]
    fn routes_frames_to_per_tenant_sessions() {
        let mut daemon = Daemon::new(DaemonConfig::default());
        let mut frames = Vec::new();
        for tenant in 0..10u64 {
            frames.extend(put_round(tenant, tenant + 1));
        }
        let bytes = encode_frames(&frames);
        assert_eq!(daemon.ingest_bytes(&bytes).unwrap(), 20);
        assert_eq!(daemon.tenants(), 10);
        assert_eq!(daemon.pump(), 20);
        let counts = daemon.poll_verdicts();
        assert_eq!(counts.ok, 10);
        assert_eq!(counts.violation, 0);
        let m = daemon.metrics();
        assert_eq!(m.events, 20);
        assert_eq!(m.frames, 20);
    }

    #[test]
    fn a_violating_tenant_does_not_taint_its_neighbours() {
        let (c, p) = (ClientId::new(1), PhaseId::FIRST);
        let mut daemon = Daemon::new(DaemonConfig::default());
        let mut frames: Vec<Frame> = put_round(0, 7).into();
        // Tenant 1 reads a value nobody wrote.
        frames.push(Frame {
            tenant: 1,
            action: Action::invoke(c, p, KvInput::Get(1)),
        });
        frames.push(Frame {
            tenant: 1,
            action: Action::respond(c, p, KvInput::Get(1), KvOutput::Found(Some(99))),
        });
        daemon.ingest_bytes(&encode_frames(&frames)).unwrap();
        daemon.pump();
        let counts = daemon.poll_verdicts();
        assert_eq!(counts.ok, 1);
        assert_eq!(counts.violation, 1);
    }

    #[test]
    fn saturation_sheds_and_is_observable_in_metrics() {
        let policy = TenantPolicy {
            queue_capacity: 4,
            window: Some(8),
            ..TenantPolicy::default()
        };
        let mut daemon = Daemon::new(DaemonConfig {
            workers: 2,
            default_policy: policy,
        });
        let mut frames = Vec::new();
        for round in 0..64u64 {
            frames.extend(put_round(5, round + 1));
        }
        daemon.ingest_bytes(&encode_frames(&frames)).unwrap();
        assert!(daemon.is_shedding(5));
        let m = daemon.metrics();
        assert!(m.sheds > 0, "sheds: {}", m.sheds);
        assert_eq!(m.shed_tenants, 1);
        // The queue bound held: depth never exceeded the high-water mark.
        assert!(m.queue_depth_peak <= 4, "peak {}", m.queue_depth_peak);
        daemon.pump();
        assert_eq!(daemon.metrics().events, 128);
    }

    #[test]
    fn policy_spec_parses_into_gc_policy() {
        let p = TenantPolicy::parse(
            "queue=64,window=16,lossy=false,epoch_force=true,frontier_cap=8,retire_budget=none,keyed=true",
        )
        .unwrap();
        assert_eq!(p.queue_capacity, 64);
        assert_eq!(p.window, Some(16));
        assert!(!p.shed_lossy);
        assert!(p.gc.epoch_force);
        assert_eq!(p.gc.frontier_cap, 8);
        assert_eq!(p.gc.retire_budget, None);
        assert!(p.keyed);
        assert!(!TenantPolicy::default().keyed);
        assert!(TenantPolicy::parse("windows=1").is_err());
        assert!(TenantPolicy::parse("queue").is_err());
        assert_eq!(TenantPolicy::parse("").unwrap(), TenantPolicy::default());
    }

    /// A stream closing with an abort switch: the same frames reach a
    /// keyed tenant (switch certificate installed, stays sharded) and an
    /// unkeyed one (drops to the monolithic route, reported as
    /// `switch_uncertified` in the fallback metrics and the v1 JSON).
    #[test]
    fn keyed_policy_keeps_switch_streams_sharded_and_fallbacks_are_metered() {
        let mut daemon = Daemon::new(DaemonConfig::default());
        daemon.set_policy(
            1,
            TenantPolicy {
                keyed: true,
                ..TenantPolicy::default()
            },
        );
        let (c, p) = (ClientId::new(1), PhaseId::FIRST);
        let mut frames = Vec::new();
        for tenant in [0u64, 1] {
            frames.extend(put_round(tenant, 7));
            frames.push(Frame {
                tenant,
                action: Action::invoke(c, p, KvInput::Put(2, 9)),
            });
            // Abort out of phase 1 carrying the committed history — the
            // exact init value the next phase would start from.
            frames.push(Frame {
                tenant,
                action: Action::switch(
                    c,
                    PhaseId::new(2),
                    KvInput::Put(2, 9),
                    vec![KvInput::Put(1, 7)],
                ),
            });
        }
        daemon.ingest_bytes(&encode_frames(&frames)).unwrap();
        daemon.pump();
        daemon.poll_verdicts();
        let unkeyed = daemon.tenant_session_mut(0).unwrap().fallback();
        assert_eq!(unkeyed, Some(FallbackReason::SwitchUncertified));
        let keyed = daemon.tenant_session_mut(1).unwrap().fallback();
        assert_eq!(keyed, None, "certified switches must not break sharding");
        let f = daemon.fallbacks();
        assert_eq!(f.switch_uncertified, 1);
        assert_eq!(f.total(), 1);
        let m = daemon.metrics();
        assert_eq!(m.fallbacks, f);
        assert!(m.to_json().contains("\"switch_uncertified\": 1"));
        assert!(daemon
            .render_prometheus()
            .contains("slin_daemon_fallback{reason=\"switch_uncertified\"} 1"));
    }
}
