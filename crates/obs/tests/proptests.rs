//! Property suite for the observability primitives.
//!
//! The histogram is checked against an **exact sorted reference**: for any
//! sample multiset and quantile, the reported value must be precisely the
//! upper bound of the bucket holding the exact rank-order statistic (hence
//! within 2x above it, never below). The trace exporter is checked against
//! a real JSON grammar (a self-contained recursive-descent validator —
//! no serde in this workspace) plus the format's own invariants: monotone
//! timestamps, complete (`ph: "X"`) events, bounded ring.

use proptest::prelude::*;
use slin_obs::{bucket_bounds, bucket_index, LogHistogram, SpanEvent, TraceBuffer, BUCKETS};

// ---- JSON validator (grammar only, values discarded) ----

struct Json<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Json<'a> {
    fn validate(s: &'a str) -> Result<(), String> {
        let mut p = Json {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at {}", p.pos));
        }
        Ok(())
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, String> {
        let b = self.peek().ok_or("unexpected end of input")?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        let got = self.bump()?;
        if got != b {
            return Err(format!(
                "expected {} at {}, got {}",
                b as char, self.pos, got as char
            ));
        }
        Ok(())
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek().ok_or("unexpected end of input")? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string(),
            b't' => self.literal("true"),
            b'f' => self.literal("false"),
            b'n' => self.literal("null"),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!("unexpected byte {} at {}", other as char, self.pos)),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        for &b in lit.as_bytes() {
            self.expect(b)?;
        }
        Ok(())
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(()),
                other => return Err(format!("bad object separator {}", other as char)),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(()),
                other => return Err(format!("bad array separator {}", other as char)),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.bump()? {
                b'"' => return Ok(()),
                b'\\' => match self.bump()? {
                    b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => {}
                    b'u' => {
                        for _ in 0..4 {
                            let h = self.bump()?;
                            if !h.is_ascii_hexdigit() {
                                return Err("bad \\u escape".into());
                            }
                        }
                    }
                    other => return Err(format!("bad escape \\{}", other as char)),
                },
                b if b < 0x20 => return Err("raw control character in string".into()),
                _ => {}
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut digits = 0;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err("number with no digits".into());
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        Ok(())
    }
}

// ---- histogram properties ----

/// Samples spanning the whole u64 range, heavy near the small values a
/// latency histogram actually sees (tier 0–3: small, medium, huge, full).
fn samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec((0u8..7, 0u64..=u64::MAX), 1..200).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(tier, raw)| match tier {
                0..=3 => raw % 2_000,
                4 | 5 => raw % 2_000_000,
                _ => raw,
            })
            .collect()
    })
}

proptest! {
    /// Buckets tile the u64 range contiguously and `bucket_index` is
    /// monotone: ordered values never land in decreasing buckets.
    #[test]
    fn buckets_are_contiguous_and_monotone(a in 0u64..=u64::MAX, b in 0u64..=u64::MAX) {
        for i in 0..BUCKETS - 1 {
            let (_, hi) = bucket_bounds(i);
            let (lo_next, _) = bucket_bounds(i + 1);
            prop_assert_eq!(hi + 1, lo_next, "gap after bucket {}", i);
        }
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
        let (blo, bhi) = bucket_bounds(bucket_index(a));
        prop_assert!(blo <= a && a <= bhi);
    }

    /// Against the exact sorted reference: the reported quantile is
    /// *precisely* the upper bound of the bucket holding the exact
    /// rank-order statistic — never below it, at most 2x above.
    #[test]
    fn quantile_brackets_exact_reference(samples in samples(), q_pct in 1u32..=100) {
        let q = q_pct as f64 / 100.0;
        let h = LogHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let n = sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        let exact = sorted[rank - 1];
        let got = h.quantile(q);
        prop_assert_eq!(got, bucket_bounds(bucket_index(exact)).1);
        prop_assert!(got >= exact);
        if exact > 0 {
            prop_assert!(got <= exact.saturating_mul(2), "{} > 2*{}", got, exact);
        }
        prop_assert_eq!(h.count(), n as u64);
        let want_sum = samples.iter().fold(0u64, |acc, &s| acc.wrapping_add(s));
        prop_assert_eq!(h.sum(), want_sum);
    }

    /// Bucket counts account for every sample exactly once.
    #[test]
    fn bucket_counts_partition_the_samples(samples in samples()) {
        let h = LogHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let counts = h.bucket_counts();
        prop_assert_eq!(counts.iter().sum::<u64>(), samples.len() as u64);
        for (i, &c) in counts.iter().enumerate() {
            let want = samples.iter().filter(|&&s| bucket_index(s) == i).count() as u64;
            prop_assert_eq!(c, want, "bucket {}", i);
        }
    }
}

// ---- trace exporter properties ----

fn span_events() -> impl Strategy<Value = Vec<SpanEvent>> {
    const NAMES: [&str; 4] = [
        "engine.search",
        "monitor.ingest",
        "gc.cut",
        "weird \"name\"\\with\nescapes",
    ];
    prop::collection::vec(
        (0u8..4, 0u64..1_000_000, 0u64..10_000, 1u64..8, 0u8..3),
        1..60,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .map(|(name, ts_us, dur_us, tid, nargs)| SpanEvent {
                name: NAMES[name as usize],
                cat: "test",
                ts_us,
                dur_us,
                tid,
                args: (0..nargs as u64).map(|i| ("nodes", ts_us ^ i)).collect(),
            })
            .collect()
    })
}

proptest! {
    /// The exporter always emits grammatically valid JSON with timestamps
    /// in non-decreasing order, regardless of insertion order or content
    /// (including names that need escaping).
    #[test]
    fn chrome_trace_is_valid_json_with_monotone_timestamps(events in span_events()) {
        let buf = TraceBuffer::new(events.len());
        for ev in &events {
            buf.push(ev.clone());
        }
        let json = buf.chrome_trace_json();
        if let Err(e) = Json::validate(&json) {
            prop_assert!(false, "invalid JSON ({}):\n{}", e, json);
        }
        let ts: Vec<u64> = json
            .lines()
            .filter_map(|l| {
                let at = l.find("\"ts\": ")? + "\"ts\": ".len();
                l[at..].split(',').next()?.trim().parse().ok()
            })
            .collect();
        prop_assert_eq!(ts.len(), events.len());
        prop_assert!(ts.windows(2).all(|w| w[0] <= w[1]), "timestamps out of order: {:?}", ts);
    }

    /// The ring keeps exactly the newest `capacity` spans and counts the
    /// rest as dropped.
    #[test]
    fn ring_bound_holds_under_any_load(events in span_events(), cap in 1usize..16) {
        let buf = TraceBuffer::new(cap);
        for ev in &events {
            buf.push(ev.clone());
        }
        let kept = buf.events();
        prop_assert!(kept.len() <= cap);
        prop_assert_eq!(kept.len() + buf.dropped() as usize, events.len());
        // The survivors are exactly the newest events, in order.
        let want: Vec<u64> = events[events.len() - kept.len()..].iter().map(|e| e.ts_us).collect();
        let got: Vec<u64> = kept.iter().map(|e| e.ts_us).collect();
        prop_assert_eq!(got, want);
    }
}
