//! Sharded metrics registry with Prometheus-style exposition and a
//! versioned JSON snapshot.
//!
//! Registration (name + label resolution) takes a shard lock once; the
//! returned [`Counter`] / [`Gauge`] / [`Histogram`] handles are plain `Arc`s
//! over atomics, so the hot path is a relaxed atomic RMW with no locking.
//! Handles for a given `(name, labels)` pair are shared: registering the same
//! series twice returns the same underlying cells.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::hist::{bucket_bounds, LogHistogram, BUCKETS};

/// Number of registry shards; series are spread by a name hash so concurrent
/// registrations rarely contend on the same lock.
const SHARDS: usize = 16;

/// Monotonically increasing counter handle.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<std::sync::atomic::AtomicU64>);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `v`.
    #[inline]
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// Instantaneous signed gauge handle.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<std::sync::atomic::AtomicI64>);

impl Gauge {
    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, std::sync::atomic::Ordering::Relaxed);
    }

    /// Adds `v` (may be negative).
    #[inline]
    pub fn add(&self, v: i64) {
        self.0.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if it is below it (running maximum).
    #[inline]
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, std::sync::atomic::Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// Shared log-scale histogram handle (see [`LogHistogram`]).
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<LogHistogram>);

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.record(v);
    }

    /// The underlying histogram, for quantile reads.
    pub fn inner(&self) -> &LogHistogram {
        &self.0
    }
}

#[derive(Clone)]
enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A fully-qualified series key: metric name plus sorted label pairs.
type Key = (&'static str, Vec<(&'static str, String)>);

/// Sharded registry of named metric series.
///
/// Series names are `&'static str` by design: instrumentation sites resolve
/// their handles once (at observer installation) and pay only atomic
/// increments afterwards.
#[derive(Default)]
pub struct Registry {
    shards: [Mutex<BTreeMap<Key, Series>>; SHARDS],
}

fn shard_of(name: &str) -> usize {
    // FNV-1a over the name; labels of one metric land in one shard so
    // exposition can render a metric family from a single lock.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h as usize) % SHARDS
}

fn sorted_labels(labels: &[(&'static str, String)]) -> Vec<(&'static str, String)> {
    let mut l = labels.to_vec();
    l.sort();
    l
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves (or creates) the counter `name{labels}`.
    ///
    /// # Panics
    /// If the series was previously registered with a different kind.
    pub fn counter(&self, name: &'static str, labels: &[(&'static str, String)]) -> Counter {
        let key = (name, sorted_labels(labels));
        let mut shard = self.shards[shard_of(name)].lock().expect("registry shard");
        match shard
            .entry(key)
            .or_insert_with(|| Series::Counter(Counter::default()))
        {
            Series::Counter(c) => c.clone(),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Resolves (or creates) the gauge `name{labels}`.
    ///
    /// # Panics
    /// If the series was previously registered with a different kind.
    pub fn gauge(&self, name: &'static str, labels: &[(&'static str, String)]) -> Gauge {
        let key = (name, sorted_labels(labels));
        let mut shard = self.shards[shard_of(name)].lock().expect("registry shard");
        match shard
            .entry(key)
            .or_insert_with(|| Series::Gauge(Gauge::default()))
        {
            Series::Gauge(g) => g.clone(),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Resolves (or creates) the histogram `name{labels}`.
    ///
    /// # Panics
    /// If the series was previously registered with a different kind.
    pub fn histogram(&self, name: &'static str, labels: &[(&'static str, String)]) -> Histogram {
        let key = (name, sorted_labels(labels));
        let mut shard = self.shards[shard_of(name)].lock().expect("registry shard");
        match shard
            .entry(key)
            .or_insert_with(|| Series::Histogram(Histogram::default()))
        {
            Series::Histogram(h) => h.clone(),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// All series merged across shards, sorted by name then labels.
    fn collect(&self) -> BTreeMap<Key, Series> {
        let mut all = BTreeMap::new();
        for shard in &self.shards {
            for (k, v) in shard.lock().expect("registry shard").iter() {
                all.insert(k.clone(), v.clone());
            }
        }
        all
    }

    /// Renders the registry as a Prometheus text-format exposition page.
    ///
    /// Counters get a `# TYPE name counter` header, gauges `gauge`, and
    /// histograms are expanded into cumulative `_bucket{le="..."}` series plus
    /// `_sum` and `_count`, using the log-scale bucket upper bounds.
    pub fn render_prometheus(&self) -> String {
        let all = self.collect();
        let mut out = String::new();
        let mut last_name = "";
        for ((name, labels), series) in &all {
            if *name != last_name {
                let kind = match series {
                    Series::Counter(_) => "counter",
                    Series::Gauge(_) => "gauge",
                    Series::Histogram(_) => "histogram",
                };
                out.push_str(&format!("# TYPE {name} {kind}\n"));
                last_name = name;
            }
            match series {
                Series::Counter(c) => {
                    out.push_str(&format!("{name}{} {}\n", label_set(labels, None), c.get()));
                }
                Series::Gauge(g) => {
                    out.push_str(&format!("{name}{} {}\n", label_set(labels, None), g.get()));
                }
                Series::Histogram(h) => {
                    let counts = h.inner().bucket_counts();
                    let mut cum = 0u64;
                    for (i, c) in counts.iter().enumerate() {
                        cum += c;
                        if *c == 0 && i != BUCKETS - 1 {
                            continue; // keep the page compact: only occupied buckets + +Inf
                        }
                        let le = if i == BUCKETS - 1 {
                            "+Inf".to_string()
                        } else {
                            bucket_bounds(i).1.to_string()
                        };
                        out.push_str(&format!(
                            "{name}_bucket{} {cum}\n",
                            label_set(labels, Some(&le))
                        ));
                    }
                    out.push_str(&format!(
                        "{name}_sum{} {}\n",
                        label_set(labels, None),
                        h.inner().sum()
                    ));
                    out.push_str(&format!(
                        "{name}_count{} {}\n",
                        label_set(labels, None),
                        h.inner().count()
                    ));
                }
            }
        }
        out
    }

    /// Renders the registry as a versioned JSON snapshot (schema
    /// `"slin-obs/v1"`), deterministic up to the recorded values.
    ///
    /// Histograms are summarized as `count`/`sum`/`p50`/`p99` — the same
    /// quantile surface the daemon's legacy `slin-daemon/v1` metrics JSON
    /// exposed, which this snapshot subsumes.
    pub fn snapshot_json(&self) -> String {
        let all = self.collect();
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut hists = Vec::new();
        for ((name, labels), series) in &all {
            let head = format!(
                "{{ \"name\": {}, \"labels\": {}",
                json_str(name),
                labels_json(labels)
            );
            match series {
                Series::Counter(c) => {
                    counters.push(format!("{head}, \"value\": {} }}", c.get()));
                }
                Series::Gauge(g) => {
                    gauges.push(format!("{head}, \"value\": {} }}", g.get()));
                }
                Series::Histogram(h) => {
                    let inner = h.inner();
                    hists.push(format!(
                        "{head}, \"count\": {}, \"sum\": {}, \"p50\": {}, \"p99\": {} }}",
                        inner.count(),
                        inner.sum(),
                        inner.quantile(0.5),
                        inner.quantile(0.99)
                    ));
                }
            }
        }
        let section = |items: Vec<String>| {
            if items.is_empty() {
                "[]".to_string()
            } else {
                format!("[\n    {}\n  ]", items.join(",\n    "))
            }
        };
        format!(
            "{{\n  \"schema\": \"slin-obs/v1\",\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {}\n}}\n",
            section(counters),
            section(gauges),
            section(hists)
        )
    }
}

fn label_set(labels: &[(&'static str, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}={}", json_str(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le={}", json_str(le)));
    }
    format!("{{{}}}", parts.join(","))
}

fn labels_json(labels: &[(&'static str, String)]) -> String {
    if labels.is_empty() {
        return "{}".to_string();
    }
    let parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}: {}", json_str(k), json_str(v)))
        .collect();
    format!("{{ {} }}", parts.join(", "))
}

/// Escapes `s` as a JSON string literal (also valid as a Prometheus label
/// value, which uses the same backslash escapes).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_per_series() {
        let r = Registry::new();
        let a = r.counter("slin_test_total", &[("tenant", "3".to_string())]);
        let b = r.counter("slin_test_total", &[("tenant", "3".to_string())]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let other = r.counter("slin_test_total", &[("tenant", "4".to_string())]);
        assert_eq!(other.get(), 0);
    }

    #[test]
    fn prometheus_page_renders_all_kinds() {
        let r = Registry::new();
        r.counter("slin_events_total", &[]).add(7);
        r.gauge("slin_queue_depth", &[("lane", "0".to_string())])
            .set(5);
        r.histogram("slin_ingest_us", &[]).record(100);
        let page = r.render_prometheus();
        assert!(page.contains("# TYPE slin_events_total counter"));
        assert!(page.contains("slin_events_total 7"));
        assert!(page.contains("slin_queue_depth{lane=\"0\"} 5"));
        assert!(page.contains("# TYPE slin_ingest_us histogram"));
        assert!(page.contains("slin_ingest_us_count 1"));
        assert!(page.contains("le=\"+Inf\""));
    }

    #[test]
    fn snapshot_declares_v1_schema() {
        let r = Registry::new();
        r.counter("slin_frames_total", &[]).add(3);
        let snap = r.snapshot_json();
        assert!(snap.contains("\"schema\": \"slin-obs/v1\""));
        assert!(snap.contains("\"slin_frames_total\""));
        assert!(snap.contains("\"value\": 3"));
    }
}
