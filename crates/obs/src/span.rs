//! Ring-buffered span collector with a Chrome trace-event exporter.
//!
//! Spans are complete events (`ph: "X"` in the trace-event format): the
//! instrumentation site grabs a start instant, does its work, and records the
//! span with its duration and a handful of numeric arguments. The collector
//! keeps the most recent `capacity` spans in a ring; older spans are dropped
//! (and counted) so tracing a long-lived monitor has a hard memory bound.
//!
//! [`TraceBuffer::chrome_trace_json`] renders the ring as a JSON object
//! loadable by `chrome://tracing` and by Perfetto's trace viewer
//! (<https://ui.perfetto.dev> accepts the legacy Chrome JSON format
//! directly).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::registry::json_str;

/// One completed span.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// Span name, e.g. `"engine.search"`.
    pub name: &'static str,
    /// Trace-event category, e.g. `"engine"`, `"monitor"`, `"daemon"`.
    pub cat: &'static str,
    /// Start timestamp in microseconds since the buffer's origin.
    pub ts_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Logical thread id (assigned per OS thread, stable within a process).
    pub tid: u64,
    /// Numeric span arguments (e.g. `("nodes", 1234)`).
    pub args: Vec<(&'static str, u64)>,
}

/// Bounded in-memory span collector.
#[derive(Debug)]
pub struct TraceBuffer {
    origin: Instant,
    capacity: usize,
    ring: Mutex<VecDeque<SpanEvent>>,
    dropped: AtomicU64,
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// Logical id of the calling thread, stable for the thread's lifetime.
pub fn current_tid() -> u64 {
    TID.with(|t| *t)
}

impl TraceBuffer {
    /// Creates a collector retaining at most `capacity` spans.
    pub fn new(capacity: usize) -> Self {
        Self {
            origin: Instant::now(),
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Microseconds elapsed since the buffer was created; span timestamps are
    /// expressed on this clock.
    pub fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    /// The buffer's origin instant (spans record offsets from it).
    pub fn origin(&self) -> Instant {
        self.origin
    }

    /// Records a completed span that started at `t0` on the calling thread.
    pub fn record(
        &self,
        name: &'static str,
        cat: &'static str,
        t0: Instant,
        args: Vec<(&'static str, u64)>,
    ) {
        let ts_us = t0.saturating_duration_since(self.origin).as_micros() as u64;
        let dur_us = t0.elapsed().as_micros() as u64;
        self.push(SpanEvent {
            name,
            cat,
            ts_us,
            dur_us,
            tid: current_tid(),
            args,
        });
    }

    /// Records a pre-built span event.
    pub fn push(&self, ev: SpanEvent) {
        let mut ring = self.ring.lock().expect("trace ring");
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(ev);
    }

    /// Number of spans evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Snapshot of the retained spans, oldest first.
    pub fn events(&self) -> Vec<SpanEvent> {
        self.ring
            .lock()
            .expect("trace ring")
            .iter()
            .cloned()
            .collect()
    }

    /// Renders the retained spans as Chrome trace-event JSON.
    ///
    /// Events are sorted by start timestamp (stable, so equal timestamps keep
    /// insertion order) and emitted as complete (`"ph": "X"`) events — the
    /// format both `chrome://tracing` and Perfetto load directly.
    pub fn chrome_trace_json(&self) -> String {
        let mut events = self.events();
        events.sort_by_key(|e| e.ts_us);
        let mut out = String::from("{\n  \"traceEvents\": [");
        for (i, ev) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let args = if ev.args.is_empty() {
                "{}".to_string()
            } else {
                let parts: Vec<String> = ev
                    .args
                    .iter()
                    .map(|(k, v)| format!("{}: {v}", json_str(k)))
                    .collect();
                format!("{{ {} }}", parts.join(", "))
            };
            out.push_str(&format!(
                "\n    {{ \"name\": {}, \"cat\": {}, \"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"ts\": {}, \"dur\": {}, \"args\": {} }}",
                json_str(ev.name),
                json_str(ev.cat),
                ev.tid,
                ev.ts_us,
                ev.dur_us,
                args
            ));
        }
        out.push_str("\n  ],\n  \"displayTimeUnit\": \"ms\"\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let buf = TraceBuffer::new(2);
        for i in 0..5 {
            buf.push(SpanEvent {
                name: "t",
                cat: "test",
                ts_us: i,
                dur_us: 1,
                tid: 1,
                args: vec![],
            });
        }
        assert_eq!(buf.events().len(), 2);
        assert_eq!(buf.dropped(), 3);
        assert_eq!(buf.events()[0].ts_us, 3);
    }

    #[test]
    fn export_sorts_by_timestamp() {
        let buf = TraceBuffer::new(8);
        for ts in [5u64, 1, 3] {
            buf.push(SpanEvent {
                name: "t",
                cat: "test",
                ts_us: ts,
                dur_us: 2,
                tid: 1,
                args: vec![("n", ts)],
            });
        }
        let json = buf.chrome_trace_json();
        let p1 = json.find("\"ts\": 1").expect("ts 1");
        let p3 = json.find("\"ts\": 3").expect("ts 3");
        let p5 = json.find("\"ts\": 5").expect("ts 5");
        assert!(p1 < p3 && p3 < p5);
        assert!(json.contains("\"traceEvents\""));
    }
}
