//! `slin-obs`: the observability spine of the speculative-linearizability
//! stack — a sharded metrics [`Registry`], ring-buffered span tracing with a
//! Chrome trace-event / Perfetto exporter ([`TraceBuffer`]), and the
//! [`Observer`] seam the engine, streaming monitor, and ingestion daemon
//! report through.
//!
//! # Design
//!
//! Instrumentation sites hold an [`Obs`] handle — a cheap clone of
//! `Option<Arc<dyn Observer>>`. The default ([`Obs::noop`], equivalent to
//! installing [`NoopObserver`]) holds `None`, so every report method inlines
//! to a single pointer test and the instrumented code is zero-cost when no
//! observer is installed (the B9 bench gate in `ci/bench_threshold.py`
//! enforces this at ≤5% overhead). Installing a [`StackObserver`] turns the
//! same sites into atomic counter increments plus (optionally) span records.
//!
//! ```
//! use slin_obs::{Obs, StackObserver, EngineSearchEvent};
//! use std::sync::Arc;
//!
//! let stack = Arc::new(StackObserver::with_tracing(4096));
//! let obs = Obs::new(stack.clone());
//!
//! // ... thread `obs` into a Session / Monitor / Daemon, run a workload ...
//! let t0 = obs.t0(); // Some(Instant) only because tracing is enabled
//! obs.engine_search(EngineSearchEvent {
//!     site: "doc.example",
//!     nodes: 42,
//!     memo_hits: 7,
//!     budget_exhausted: false,
//!     t0,
//! });
//!
//! let page = stack.registry().render_prometheus();
//! assert!(page.contains("slin_engine_searches_total 1"));
//! let trace = stack.chrome_trace_json().unwrap();
//! assert!(trace.contains("\"engine.search\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod registry;
pub mod span;

pub use hist::{bucket_bounds, bucket_index, LogHistogram, BUCKETS};
pub use registry::{Counter, Gauge, Histogram, Registry};
pub use span::{current_tid, SpanEvent, TraceBuffer};

use std::sync::Arc;
use std::time::Instant;

/// One engine chain-search, reported by whoever drove it (batch check,
/// shard window search, fallback re-search).
#[derive(Clone, Debug)]
pub struct EngineSearchEvent {
    /// Call site, e.g. `"session.check"`, `"shard.window_search"`,
    /// `"shard.fallback"`.
    pub site: &'static str,
    /// Search nodes expanded.
    pub nodes: u64,
    /// Memo-table hits.
    pub memo_hits: u64,
    /// Whether the search tripped its node budget.
    pub budget_exhausted: bool,
    /// Start instant from [`Obs::t0`] (present only when tracing).
    pub t0: Option<Instant>,
}

/// One event ingested by a monitor shard.
#[derive(Clone, Debug)]
pub struct ShardIngestEvent {
    /// Global event index in the stream.
    pub index: u64,
    /// Frontier size after the ingest.
    pub frontier_len: u64,
    /// Whether the incremental step fell back to a full re-search.
    pub fell_back: bool,
    /// Start instant from [`Obs::t0`] (present only when tracing).
    pub t0: Option<Instant>,
}

/// Outcome of an epoch-GC cut attempt on a shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CutOutcome {
    /// Window retired with terminal-configuration summaries intact.
    Retired,
    /// Invocation-only window retired without a search.
    RetiredInvokeOnly,
    /// Window force-retired lossily (summaries dropped).
    RetiredLossy,
    /// Cut attempt blocked (completion enumeration overflowed or ran out of
    /// budget); the shard will retry after damping.
    Blocked,
}

/// One epoch-GC cut attempt, reported by the shard that tried it.
#[derive(Clone, Debug)]
pub struct GcCutEvent {
    /// What the attempt did.
    pub outcome: CutOutcome,
    /// Events in the window the attempt covered.
    pub window_events: u64,
    /// Start instant from [`Obs::t0`] (present only when tracing).
    pub t0: Option<Instant>,
}

/// One daemon lane pump (draining queued frames into tenant sessions).
#[derive(Clone, Debug)]
pub struct LanePumpEvent {
    /// Lane index.
    pub lane: u64,
    /// Events drained in this pump.
    pub drained: u64,
    /// Deepest tenant queue observed on the lane before draining.
    pub queue_depth: u64,
    /// Start instant from [`Obs::t0`] (present only when tracing).
    pub t0: Option<Instant>,
}

/// Receiver for structured events from the engine, monitor shards, and
/// daemon lanes.
///
/// Every method has a no-op default, so implementors override only the seams
/// they care about. [`NoopObserver`] overrides nothing; [`StackObserver`]
/// translates every event into registry metrics and (optionally) spans.
pub trait Observer: Send + Sync {
    /// Whether instrumentation sites should capture start instants for span
    /// timing. Return `false` (the default) to skip the clock reads entirely.
    fn wants_timing(&self) -> bool {
        false
    }

    /// An engine chain-search completed.
    fn engine_search(&self, _ev: &EngineSearchEvent) {}

    /// A monitor shard ingested one event.
    fn shard_ingest(&self, _ev: &ShardIngestEvent) {}

    /// A shard attempted an epoch-GC cut.
    fn gc_cut(&self, _ev: &GcCutEvent) {}

    /// A commit was absorbed into a symbolic completion during GC
    /// bookkeeping (no re-search needed).
    fn gc_absorption(&self) {}

    /// A GC-retired window was archived for forensic witness
    /// reconstruction (`events` = number of events archived).
    fn archive_window(&self, _events: u64) {}

    /// An archived window was evicted from the ring (archive depth
    /// exceeded); witnesses older than this are window-relative again.
    fn archive_eviction(&self) {}

    /// `Monitor::report()` reconstructed a full forensic verdict from the
    /// witness archive.
    fn archive_reconstruction(&self) {}

    /// A daemon lane finished one pump.
    fn lane_pump(&self, _ev: &LanePumpEvent) {}

    /// The daemon shed an event for `tenant` (queue at capacity).
    fn shed(&self, _tenant: u64) {}
}

/// The do-nothing observer: the compile-time default every instrumented
/// component starts with. Prefer [`Obs::noop`], which skips even the virtual
/// dispatch.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl Observer for NoopObserver {}

/// Cheap, clonable handle to an optional [`Observer`].
///
/// This is the type threaded through configs and builders. All methods are
/// `#[inline]` and begin with an `Option` test, so with the default noop
/// handle the instrumentation compiles down to a branch on a null pointer.
#[derive(Clone, Default)]
pub struct Obs(Option<Arc<dyn Observer>>);

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Obs")
            .field(&if self.0.is_some() {
                "installed"
            } else {
                "noop"
            })
            .finish()
    }
}

impl Obs {
    /// The default handle: no observer installed, all reports free.
    pub fn noop() -> Self {
        Self(None)
    }

    /// Wraps an installed observer.
    pub fn new(observer: Arc<dyn Observer>) -> Self {
        Self(Some(observer))
    }

    /// Whether an observer is installed.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Captures a span start instant — `Some` only when an observer is
    /// installed *and* it wants timing, so the clock read itself is skipped
    /// on untraced runs.
    #[inline]
    pub fn t0(&self) -> Option<Instant> {
        match &self.0 {
            Some(o) if o.wants_timing() => Some(Instant::now()),
            _ => None,
        }
    }

    /// Reports an engine search (see [`Observer::engine_search`]).
    #[inline]
    pub fn engine_search(&self, ev: EngineSearchEvent) {
        if let Some(o) = &self.0 {
            o.engine_search(&ev);
        }
    }

    /// Reports a shard ingest (see [`Observer::shard_ingest`]).
    #[inline]
    pub fn shard_ingest(&self, ev: ShardIngestEvent) {
        if let Some(o) = &self.0 {
            o.shard_ingest(&ev);
        }
    }

    /// Reports a GC cut attempt (see [`Observer::gc_cut`]).
    #[inline]
    pub fn gc_cut(&self, ev: GcCutEvent) {
        if let Some(o) = &self.0 {
            o.gc_cut(&ev);
        }
    }

    /// Reports a commit absorption (see [`Observer::gc_absorption`]).
    #[inline]
    pub fn gc_absorption(&self) {
        if let Some(o) = &self.0 {
            o.gc_absorption();
        }
    }

    /// Reports a window archival (see [`Observer::archive_window`]).
    #[inline]
    pub fn archive_window(&self, events: u64) {
        if let Some(o) = &self.0 {
            o.archive_window(events);
        }
    }

    /// Reports an archive eviction (see [`Observer::archive_eviction`]).
    #[inline]
    pub fn archive_eviction(&self) {
        if let Some(o) = &self.0 {
            o.archive_eviction();
        }
    }

    /// Reports an archive reconstruction (see
    /// [`Observer::archive_reconstruction`]).
    #[inline]
    pub fn archive_reconstruction(&self) {
        if let Some(o) = &self.0 {
            o.archive_reconstruction();
        }
    }

    /// Reports a lane pump (see [`Observer::lane_pump`]).
    #[inline]
    pub fn lane_pump(&self, ev: LanePumpEvent) {
        if let Some(o) = &self.0 {
            o.lane_pump(&ev);
        }
    }

    /// Reports a shed event (see [`Observer::shed`]).
    #[inline]
    pub fn shed(&self, tenant: u64) {
        if let Some(o) = &self.0 {
            o.shed(tenant);
        }
    }
}

/// Metric handles the [`StackObserver`] resolves once at construction, so
/// event handling is pure atomic arithmetic.
struct StackMetrics {
    engine_searches: Counter,
    engine_nodes: Counter,
    engine_memo_hits: Counter,
    engine_budget_trips: Counter,
    ingest_events: Counter,
    ingest_fallbacks: Counter,
    frontier_len: Histogram,
    gc_cut_attempts: Counter,
    gc_cuts: Counter,
    gc_lossy_cuts: Counter,
    gc_blocked_cuts: Counter,
    gc_absorptions: Counter,
    archive_windows: Counter,
    archive_events: Counter,
    archive_evictions: Counter,
    archive_reconstructions: Counter,
    lane_pumps: Counter,
    lane_drained: Counter,
    lane_queue_depth: Histogram,
    sheds: Counter,
}

impl StackMetrics {
    fn resolve(r: &Registry) -> Self {
        Self {
            engine_searches: r.counter("slin_engine_searches_total", &[]),
            engine_nodes: r.counter("slin_engine_nodes_total", &[]),
            engine_memo_hits: r.counter("slin_engine_memo_hits_total", &[]),
            engine_budget_trips: r.counter("slin_engine_budget_trips_total", &[]),
            ingest_events: r.counter("slin_monitor_ingest_events_total", &[]),
            ingest_fallbacks: r.counter("slin_monitor_fallback_searches_total", &[]),
            frontier_len: r.histogram("slin_monitor_frontier_len", &[]),
            gc_cut_attempts: r.counter("slin_gc_cut_attempts_total", &[]),
            gc_cuts: r.counter("slin_gc_cuts_total", &[]),
            gc_lossy_cuts: r.counter("slin_gc_lossy_cuts_total", &[]),
            gc_blocked_cuts: r.counter("slin_gc_blocked_cuts_total", &[]),
            gc_absorptions: r.counter("slin_gc_absorptions_total", &[]),
            archive_windows: r.counter("slin_archive_windows_total", &[]),
            archive_events: r.counter("slin_archive_events_total", &[]),
            archive_evictions: r.counter("slin_archive_evictions_total", &[]),
            archive_reconstructions: r.counter("slin_archive_reconstructions_total", &[]),
            lane_pumps: r.counter("slin_daemon_lane_pumps_total", &[]),
            lane_drained: r.counter("slin_daemon_lane_drained_total", &[]),
            lane_queue_depth: r.histogram("slin_daemon_lane_queue_depth", &[]),
            sheds: r.counter("slin_daemon_sheds_total", &[]),
        }
    }
}

/// The shipped observer: feeds every event into a [`Registry`] and,
/// when constructed [`with_tracing`](StackObserver::with_tracing), into a
/// bounded [`TraceBuffer`] exportable as a Perfetto-loadable Chrome trace.
pub struct StackObserver {
    registry: Registry,
    metrics: StackMetrics,
    tracer: Option<TraceBuffer>,
}

impl Default for StackObserver {
    fn default() -> Self {
        Self::new()
    }
}

impl StackObserver {
    /// Metrics only — no span collection, no clock reads on the hot path.
    pub fn new() -> Self {
        let registry = Registry::new();
        let metrics = StackMetrics::resolve(&registry);
        Self {
            registry,
            metrics,
            tracer: None,
        }
    }

    /// Metrics plus span tracing with a ring of `capacity` spans.
    pub fn with_tracing(capacity: usize) -> Self {
        let registry = Registry::new();
        let metrics = StackMetrics::resolve(&registry);
        Self {
            registry,
            metrics,
            tracer: Some(TraceBuffer::new(capacity)),
        }
    }

    /// The metrics registry, for exposition
    /// ([`Registry::render_prometheus`], [`Registry::snapshot_json`]) and for
    /// components that register their own series (the daemon's per-tenant
    /// labels live here).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The span collector, if tracing is enabled.
    pub fn tracer(&self) -> Option<&TraceBuffer> {
        self.tracer.as_ref()
    }

    /// Renders the collected spans as Chrome trace-event JSON, or `None`
    /// when tracing is disabled.
    pub fn chrome_trace_json(&self) -> Option<String> {
        self.tracer.as_ref().map(|t| t.chrome_trace_json())
    }

    fn span(
        &self,
        name: &'static str,
        cat: &'static str,
        t0: Option<Instant>,
        args: Vec<(&'static str, u64)>,
    ) {
        if let (Some(tracer), Some(t0)) = (&self.tracer, t0) {
            tracer.record(name, cat, t0, args);
        }
    }
}

impl Observer for StackObserver {
    fn wants_timing(&self) -> bool {
        self.tracer.is_some()
    }

    fn engine_search(&self, ev: &EngineSearchEvent) {
        self.metrics.engine_searches.inc();
        self.metrics.engine_nodes.add(ev.nodes);
        self.metrics.engine_memo_hits.add(ev.memo_hits);
        if ev.budget_exhausted {
            self.metrics.engine_budget_trips.inc();
        }
        self.span(
            "engine.search",
            "engine",
            ev.t0,
            vec![
                ("site", site_code(ev.site)),
                ("nodes", ev.nodes),
                ("memo_hits", ev.memo_hits),
                ("budget_exhausted", ev.budget_exhausted as u64),
            ],
        );
    }

    fn shard_ingest(&self, ev: &ShardIngestEvent) {
        self.metrics.ingest_events.inc();
        if ev.fell_back {
            self.metrics.ingest_fallbacks.inc();
        }
        self.metrics.frontier_len.record(ev.frontier_len);
        self.span(
            "monitor.ingest",
            "monitor",
            ev.t0,
            vec![
                ("index", ev.index),
                ("frontier_len", ev.frontier_len),
                ("fell_back", ev.fell_back as u64),
            ],
        );
    }

    fn gc_cut(&self, ev: &GcCutEvent) {
        self.metrics.gc_cut_attempts.inc();
        match ev.outcome {
            CutOutcome::Retired | CutOutcome::RetiredInvokeOnly => self.metrics.gc_cuts.inc(),
            CutOutcome::RetiredLossy => {
                self.metrics.gc_cuts.inc();
                self.metrics.gc_lossy_cuts.inc();
            }
            CutOutcome::Blocked => self.metrics.gc_blocked_cuts.inc(),
        }
        self.span(
            "gc.cut",
            "monitor",
            ev.t0,
            vec![
                ("outcome", ev.outcome as u64),
                ("window_events", ev.window_events),
            ],
        );
    }

    fn gc_absorption(&self) {
        self.metrics.gc_absorptions.inc();
    }

    fn archive_window(&self, events: u64) {
        self.metrics.archive_windows.inc();
        self.metrics.archive_events.add(events);
    }

    fn archive_eviction(&self) {
        self.metrics.archive_evictions.inc();
    }

    fn archive_reconstruction(&self) {
        self.metrics.archive_reconstructions.inc();
    }

    fn lane_pump(&self, ev: &LanePumpEvent) {
        self.metrics.lane_pumps.inc();
        self.metrics.lane_drained.add(ev.drained);
        self.metrics.lane_queue_depth.record(ev.queue_depth);
        self.span(
            "daemon.lane_pump",
            "daemon",
            ev.t0,
            vec![
                ("lane", ev.lane),
                ("drained", ev.drained),
                ("queue_depth", ev.queue_depth),
            ],
        );
    }

    fn shed(&self, _tenant: u64) {
        self.metrics.sheds.inc();
    }
}

/// Stable numeric code for a site label, so spans can carry it as a numeric
/// arg (trace-event args in this exporter are numeric-only).
fn site_code(site: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in site.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handle_reports_nothing_and_skips_clock() {
        let obs = Obs::noop();
        assert!(!obs.enabled());
        assert!(obs.t0().is_none());
        obs.engine_search(EngineSearchEvent {
            site: "t",
            nodes: 1,
            memo_hits: 0,
            budget_exhausted: false,
            t0: None,
        });
    }

    #[test]
    fn stack_observer_counts_and_traces() {
        let stack = Arc::new(StackObserver::with_tracing(16));
        let obs = Obs::new(stack.clone());
        assert!(obs.t0().is_some());
        obs.shard_ingest(ShardIngestEvent {
            index: 0,
            frontier_len: 3,
            fell_back: true,
            t0: obs.t0(),
        });
        obs.gc_cut(GcCutEvent {
            outcome: CutOutcome::Blocked,
            window_events: 8,
            t0: None,
        });
        let page = stack.registry().render_prometheus();
        assert!(page.contains("slin_monitor_ingest_events_total 1"));
        assert!(page.contains("slin_monitor_fallback_searches_total 1"));
        assert!(page.contains("slin_gc_blocked_cuts_total 1"));
        let trace = stack.chrome_trace_json().expect("tracing enabled");
        assert!(trace.contains("monitor.ingest"));
    }

    #[test]
    fn metrics_only_observer_skips_timing() {
        let stack = Arc::new(StackObserver::new());
        let obs = Obs::new(stack);
        assert!(obs.enabled());
        assert!(obs.t0().is_none());
    }
}
