//! Fixed-memory log-scale histogram.
//!
//! [`LogHistogram`] buckets `u64` samples by bit width: bucket 0 holds the
//! value `0` and bucket `i` (for `i >= 1`) holds values in
//! `[2^(i-1), 2^i - 1]`. That gives a constant 65 buckets covering the full
//! `u64` range with a worst-case relative quantile error of 2x — exactly the
//! resolution a latency p50/p99 needs, at 520 bytes per histogram and no
//! allocation after construction. All updates are relaxed atomic increments,
//! so a histogram handle can be shared freely across threads.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per bit width of a `u64`.
pub const BUCKETS: usize = 65;

/// Concurrent fixed-bucket log-scale histogram over `u64` samples.
///
/// Memory use is constant (65 buckets + count + sum) regardless of how many
/// samples are recorded, unlike the `Vec<u64>`-of-latencies it replaces.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Index of the bucket holding `v`: 0 for 0, otherwise the bit width of `v`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive `[lower, upper]` value range of bucket `i`.
///
/// Bucket 0 is `[0, 0]`; bucket `i >= 1` is `[2^(i-1), 2^i - 1]` (the last
/// bucket saturates at `u64::MAX`).
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < BUCKETS, "bucket index {i} out of range");
    if i == 0 {
        (0, 0)
    } else {
        let lower = 1u64 << (i - 1);
        let upper = if i == 64 { u64::MAX } else { (1u64 << i) - 1 };
        (lower, upper)
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts, in bucket order.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (slot, bucket) in out.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        out
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`0.0 < q <= 1.0`), or 0 if the histogram is empty.
    ///
    /// The exact `q`-quantile of the recorded samples is guaranteed to lie in
    /// `[lower, upper]` of the returned bucket, so the reported value
    /// overestimates by at most 2x.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        // Rank of the q-quantile among the sorted samples, 1-based.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bounds(i).1;
            }
        }
        bucket_bounds(BUCKETS - 1).1
    }
}

impl Clone for LogHistogram {
    fn clone(&self) -> Self {
        let out = Self::new();
        for (slot, bucket) in out.buckets.iter().zip(self.buckets.iter()) {
            slot.store(bucket.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        out.count.store(self.count(), Ordering::Relaxed);
        out.sum.store(self.sum(), Ordering::Relaxed);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_matches_bounds() {
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
        }
    }

    #[test]
    fn quantiles_bound_the_exact_value() {
        let h = LogHistogram::new();
        let samples: Vec<u64> = (0..1000).map(|i| i * i % 7919).collect();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99, 1.0] {
            let exact =
                sorted[((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1];
            let upper = h.quantile(q);
            assert!(exact <= upper, "q={q}: exact {exact} > reported {upper}");
            let (lo, _) = bucket_bounds(bucket_index(upper));
            assert!(lo <= exact, "q={q}: exact {exact} below bucket lower {lo}");
        }
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
    }
}
