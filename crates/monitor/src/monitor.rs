//! The sharded monitors: [`LinMonitor`] and [`SlinMonitor`].
//!
//! Both wrap the same [`Core`]: a router that classifies every ingested
//! action through a [`Partitioner`] and feeds it to the per-key
//! [`ShardState`] incremental engines, while tracking the stream-global
//! facts the batch checkers derive from the closed trace (well-formedness,
//! switch actions, input multisets). The wrappers differ exactly where the
//! batch checkers differ: what a switch action means, and which batch
//! entry point the final report must be byte-identical to.

use crate::shard::{ShardConfig, ShardState, ShardStatus};
use crate::wf::WfTracker;
use crate::{IngestOutcome, MonitorConfig, MonitorReport, MonitorStatus, ShardSummary};
use slin_adt::{Adt, Partitioner};
use slin_core::engine::{EngineError, SearchSeed, SearchStats};
use slin_core::initrel::InitRelation;
use slin_core::lin::{LinChecker, LinError, LinWitness};
use slin_core::partition::{
    merge_partition_chains, witness_steps, SplitOutcome, Step, TracePartition,
};
use slin_core::slin::{SlinChecker, SlinError, SlinReport, SlinWitness};
use slin_core::ObjAction;
use slin_trace::{Action, Multiset, PhaseId, Trace};
use std::collections::{BTreeMap, VecDeque};

/// A report cached per stream version (`events` at computation time).
type CachedReport<W, E> = Option<(usize, MonitorReport<W, E>)>;

/// The shared router + shard table behind both monitors.
pub(crate) struct Core<'a, T: Adt, V, K: Ord> {
    adt: &'a T,
    shard_cfg: ShardConfig,
    window: Option<usize>,
    /// Shards by class key; the identity shard (engaged by unclassifiable
    /// inputs) lives under `None` and is always alone.
    pub shards: BTreeMap<Option<K>, ShardState<'a, T, V>>,
    /// Stream length so far (the next action's global index).
    pub events: usize,
    /// The closed-trace buffer; `None` when a bounded window is configured
    /// (memory stays O(window)) until something forces reconstruction.
    buffer: Option<Trace<ObjAction<T, V>>>,
    /// First switch action's global index, if any.
    pub first_switch: Option<usize>,
    wf: WfTracker<T::Input, T::Output, V>,
    /// All inputs invoked so far (any shard) — the global extra pool.
    invoked: Multiset<T::Input>,
    /// Global validity-bound snapshot per commit index (window mode only;
    /// trimmed as prefixes retire).
    commit_bounds: BTreeMap<usize, Multiset<T::Input>>,
    /// Whether any shard has retired a prefix (reports become
    /// window-relative).
    pub prefix_committed: bool,
    /// Whether identity routing engaged (mirrors `SplitOutcome::fallback`).
    pub fallback: bool,
}

impl<'a, T, V, K> Core<'a, T, V, K>
where
    T: Adt,
    T::Input: Ord,
    V: Clone + PartialEq,
    K: Ord + Clone,
{
    fn new(adt: &'a T, config: &MonitorConfig, phase_bounds: Option<(PhaseId, PhaseId)>) -> Self {
        Core {
            adt,
            shard_cfg: ShardConfig {
                budget: config.budget,
                frontier_cap: config.frontier_cap,
                extension_budget: config.extension_budget,
            },
            window: config.window,
            shards: BTreeMap::new(),
            events: 0,
            buffer: if config.window.is_none() {
                Some(Trace::new())
            } else {
                None
            },
            first_switch: None,
            wf: WfTracker::new(phase_bounds),
            invoked: Multiset::new(),
            commit_bounds: BTreeMap::new(),
            prefix_committed: false,
            fallback: false,
        }
    }

    /// Stream-global bookkeeping every event goes through, regardless of
    /// routing. Returns the event's global index.
    fn observe(&mut self, action: &ObjAction<T, V>) -> usize {
        let index = self.events;
        self.events += 1;
        self.wf.observe(action, index);
        match action {
            Action::Invoke { input, .. } => self.invoked.insert(input.clone()),
            Action::Respond { .. } => {
                if self.window.is_some() {
                    self.commit_bounds.insert(index, self.invoked.clone());
                }
            }
            Action::Switch { .. } => {
                if self.first_switch.is_none() {
                    self.first_switch = Some(index);
                }
            }
        }
        if let Some(buffer) = &mut self.buffer {
            buffer.push(action.clone());
        }
        index
    }

    /// Routes a (non-switch) action into its shard, creating the shard on
    /// first contact, and applies bounded-window GC afterwards.
    fn route(&mut self, key: Option<K>, action: ObjAction<T, V>, index: usize) -> (usize, bool) {
        let key = if self.fallback { None } else { key };
        let window = self.window;
        let adt = self.adt;
        let shard_cfg = self.shard_cfg;
        let shard = self
            .shards
            .entry(key)
            .or_insert_with(|| ShardState::new(adt, shard_cfg));
        let out = shard.ingest(action, index);
        if let Some(window) = window {
            if let Some(retired) = shard.maybe_retire(window) {
                self.prefix_committed = true;
                for idx in retired {
                    self.commit_bounds.remove(&idx);
                }
            }
        }
        out
    }

    /// Engages identity routing: rebuilds one fallback shard holding the
    /// whole retained stream (from the buffer when present, otherwise from
    /// the shard windows seeded with their retired prefixes) and drops the
    /// per-key shards. Mirrors `split_trace`'s identity fallback.
    fn collapse_to_identity(&mut self) {
        self.fallback = true;
        let mut identity = match &self.buffer {
            Some(buffer) => {
                // Closed-trace mode: replay the whole stream so far into
                // one fresh shard — exactly `split_trace`'s identity
                // partition.
                let mut shard = ShardState::new(self.adt, self.shard_cfg);
                for (i, a) in buffer.iter().enumerate() {
                    if !a.is_switch() {
                        shard.ingest(a.clone(), i);
                    }
                }
                shard
            }
            None => {
                // Window mode: retired per-shard prefixes cannot be
                // combined into one identity state for an input that
                // touches every class, so the identity shard restarts from
                // the retained windows, treated as a fresh stream (the
                // documented bounded-window trade for partitioners that
                // decline inputs mid-stream).
                let mut shard = ShardState::new(self.adt, self.shard_cfg);
                for (i, a) in self.window_events() {
                    shard.ingest(a, i);
                }
                shard
            }
        };
        identity.counters.retired_events += self
            .shards
            .values()
            .map(|s| s.counters.retired_events)
            .sum::<usize>();
        self.shards.clear();
        self.shards.insert(None, identity);
    }

    /// The retained window events of every shard, merged back into global
    /// stream order.
    fn window_events(&self) -> Vec<(usize, ObjAction<T, V>)> {
        let mut all: Vec<(usize, ObjAction<T, V>)> = self
            .shards
            .values()
            .flat_map(|s| s.index_map.iter().copied().zip(s.sub.iter().cloned()))
            .collect();
        all.sort_by_key(|(i, _)| *i);
        all
    }

    /// Aggregated rolling shard verdict (worst wins).
    fn shard_status(&self) -> MonitorStatus {
        let mut status = MonitorStatus::Ok;
        for shard in self.shards.values() {
            match shard.status() {
                ShardStatus::Violated => return MonitorStatus::Violation,
                ShardStatus::BudgetExhausted => status = MonitorStatus::Unknown,
                ShardStatus::Ok => {}
            }
        }
        status
    }

    fn summary(&self) -> ShardSummary {
        let mut out = ShardSummary::default();
        for shard in self.shards.values() {
            out.extension_searches += shard.counters.extension_searches;
            out.fallback_searches += shard.counters.fallback_searches;
            out.frontier_peak = out.frontier_peak.max(shard.counters.frontier_peak);
            out.retired_events += shard.counters.retired_events;
        }
        out
    }

    /// The split the batch checkers would compute on the closed trace —
    /// rebuilt from the live shard table.
    fn split(&self) -> SplitOutcome<T, V, K> {
        SplitOutcome {
            parts: self
                .shards
                .iter()
                .map(|(key, shard)| TracePartition {
                    key: key.clone(),
                    trace: shard.sub.clone(),
                    index_map: shard.index_map.clone(),
                })
                .collect(),
            fallback: self.fallback,
        }
    }

    /// The window-relative search + merge used when no closed-trace buffer
    /// exists (bounded-window mode). Returns the merged commit chain in
    /// *global* indices, or the first failing shard's engine outcome, plus
    /// the absorbed stats and whether a monolithic re-derivation ran.
    ///
    /// `key_of` classifies inputs (the wrapper's partitioner) — needed only
    /// on the rare merge-bail path, where the per-shard seed states are
    /// assembled into one product state for a monolithic window search.
    #[allow(clippy::type_complexity)]
    fn window_verdict(
        &self,
        key_of: &dyn Fn(&T::Input) -> Option<K>,
    ) -> (
        Result<Vec<(usize, Vec<T::Input>)>, WindowError>,
        SearchStats,
        bool,
    )
    where
        K: std::hash::Hash + std::fmt::Debug,
    {
        let mut stats = SearchStats::default();
        let mut chains: Vec<(
            &Option<K>,
            &ShardState<'a, T, V>,
            usize,
            Vec<(usize, Vec<T::Input>)>,
        )> = Vec::new();
        let mut first_error: Option<WindowError> = None;
        for (key, shard) in self.shards.iter() {
            let (result, shard_stats) = shard.window_search();
            stats.absorb(&shard_stats);
            match result {
                Ok(Some((seed_index, chain))) => chains.push((key, shard, seed_index, chain)),
                Ok(None) => {
                    if first_error.is_none() {
                        first_error = Some(WindowError::NotLinearizable);
                    }
                }
                Err(EngineError::BudgetExhausted { nodes }) => {
                    if first_error.is_none() {
                        first_error = Some(WindowError::BudgetExhausted { nodes });
                    }
                }
            }
        }
        if let Some(e) = first_error {
            return (Err(e), stats, false);
        }
        if chains.len() <= 1 {
            let merged = chains
                .pop()
                .map(|(_, shard, _, chain)| remap_chain(chain, &shard.index_map))
                .unwrap_or_default();
            return (Ok(merged), stats, false);
        }

        // Rank-compact the global commit indices so the merge machinery can
        // index bounds densely (memory stays O(window)).
        let mut commit_indices: Vec<usize> = self.commit_bounds.keys().copied().collect();
        commit_indices.sort_unstable();
        let bounds_by_rank: Vec<Multiset<T::Input>> = commit_indices
            .iter()
            .map(|i| self.commit_bounds[i].clone())
            .collect();
        let mut parts: Vec<(VecDeque<Step<T::Input>>, Multiset<T::Input>)> = Vec::new();
        let mut seed_used: Multiset<T::Input> = Multiset::new();
        for (_, shard, seed_index, chain) in &chains {
            let ranks: Vec<usize> = shard
                .index_map
                .iter()
                .map(|&global| commit_indices.binary_search(&global).unwrap_or(usize::MAX))
                .collect();
            parts.push((witness_steps(chain, &ranks), shard.pool().clone()));
            seed_used = seed_used.sum(&shard.seed(*seed_index).used);
        }
        if let Some(chain) = merge_partition_chains(&bounds_by_rank, parts, seed_used.clone()) {
            let merged = chain
                .into_iter()
                .map(|(rank, h)| (commit_indices[rank], h))
                .collect();
            return (Ok(merged), stats, false);
        }

        // Merge bailed (cross-bound coupling): re-derive monolithically
        // over the combined window. The retired prefixes have no histories
        // left, so the monolithic state is assembled as a *product* over
        // the shard keys (sound exactly because multi-shard mode implies
        // every input classifies — the Partitioner product contract).
        // Fixing each shard to the seed its own window_search picked is
        // complete, not a guess: inputs of distinct shards are disjoint,
        // so interleaving the per-shard chains in global commit order
        // satisfies every (monotone, per-input) bound the shards already
        // satisfied locally — a completion from exactly these seeds is
        // guaranteed to exist, and the engine's exhaustive search finds
        // one (only a budget trip, reported as such, can stop it).
        let product = ProductAdt {
            adt: self.adt,
            key_of,
        };
        let mut state: std::collections::BTreeMap<K, T::State> = std::collections::BTreeMap::new();
        for (key, shard, seed_index, _) in &chains {
            let key = key
                .as_ref()
                .expect("multi-shard mode classifies every input");
            state.insert(key.clone(), shard.seed(*seed_index).state.clone());
        }
        let events = self.window_events();
        let trace: Vec<ObjAction<T, V>> = events.iter().map(|(_, a)| a.clone()).collect();
        let globals: Vec<usize> = events.iter().map(|(i, _)| *i).collect();
        let commits: Vec<slin_core::ops::Commit<ProductAdt<'_, 'a, T, K>>> = trace
            .iter()
            .enumerate()
            .filter_map(|(p, a)| match a {
                Action::Respond {
                    client,
                    input,
                    output,
                    ..
                } => Some(slin_core::ops::Commit {
                    index: p,
                    client: *client,
                    input: input.clone(),
                    output: output.clone(),
                }),
                _ => None,
            })
            .collect();
        let empty = Multiset::new();
        let bounds: Vec<Multiset<T::Input>> = (0..=trace.len())
            .map(|p| {
                if p < trace.len() && trace[p].is_respond() {
                    self.commit_bounds[&globals[p]].clone()
                } else {
                    empty.clone()
                }
            })
            .collect();
        let engine = slin_core::engine::CheckerEngine::new(
            &product,
            &commits,
            &bounds,
            self.invoked.clone(),
            slin_core::engine::SearchBudget::new(self.shard_cfg.budget),
        )
        .with_extra_cap(trace.len());
        let seed = SearchSeed::<ProductAdt<'_, 'a, T, K>> {
            history: Vec::new(),
            state,
            used: seed_used,
        };
        match engine.run(seed, &mut |_, _| Some(())) {
            Ok(outcome) => {
                stats.absorb(&outcome.stats);
                match outcome.solution {
                    Some((chain, ())) => (Ok(remap_chain(chain, &globals)), stats, true),
                    None => (Err(WindowError::NotLinearizable), stats, true),
                }
            }
            Err(EngineError::BudgetExhausted { nodes }) => {
                (Err(WindowError::BudgetExhausted { nodes }), stats, true)
            }
        }
    }
}

/// The product ADT over shard keys: routes every input to its class's
/// component state. Sound exactly where it is used — multi-shard merges,
/// where the [`Partitioner`] contract makes the monitored ADT a product
/// over the keys it emits.
struct ProductAdt<'x, 'a, T: Adt, K> {
    adt: &'a T,
    key_of: &'x dyn Fn(&T::Input) -> Option<K>,
}

impl<T, K> Adt for ProductAdt<'_, '_, T, K>
where
    T: Adt,
    K: Ord + Clone + std::hash::Hash + std::fmt::Debug,
{
    type Input = T::Input;
    type Output = T::Output;
    type State = std::collections::BTreeMap<K, T::State>;

    fn initial(&self) -> Self::State {
        std::collections::BTreeMap::new()
    }

    fn apply(&self, state: &Self::State, input: &Self::Input) -> (Self::State, Self::Output) {
        let key = (self.key_of)(input).expect("multi-shard mode classifies every input");
        let component = state
            .get(&key)
            .cloned()
            .unwrap_or_else(|| self.adt.initial());
        let (next, out) = self.adt.apply(&component, input);
        let mut map = state.clone();
        map.insert(key, next);
        (map, out)
    }
}

/// Window-mode failure, mapped onto each checker's error type by the
/// wrappers.
enum WindowError {
    NotLinearizable,
    BudgetExhausted { nodes: usize },
}

fn remap_chain<I>(chain: Vec<(usize, Vec<I>)>, index_map: &[usize]) -> Vec<(usize, Vec<I>)> {
    chain
        .into_iter()
        .map(|(sub, h)| (index_map[sub], h))
        .collect()
}

/// Online monitor for the paper's (plain) linearizability over a live
/// stream of actions. See the crate docs for the architecture and the
/// exactness guarantees.
///
/// # Example
///
/// ```
/// use slin_adt::{KvInput, KvKeyPartitioner, KvOutput, KvStore};
/// use slin_monitor::{LinMonitor, MonitorStatus};
/// use slin_trace::{Action, ClientId, PhaseId, Trace};
///
/// let (c1, ph) = (ClientId::new(1), PhaseId::FIRST);
/// let mut mon: LinMonitor<'_, KvStore, KvKeyPartitioner> =
///     LinMonitor::new(&KvStore, KvKeyPartitioner);
/// mon.ingest(Action::invoke(c1, ph, KvInput::Put(1, 5)));
/// mon.ingest(Action::respond(c1, ph, KvInput::Put(1, 5), KvOutput::Ack));
/// assert_eq!(mon.status(), MonitorStatus::Ok);
/// let report = mon.report();
/// assert!(report.verdict.is_ok());
/// ```
pub struct LinMonitor<'a, T: Adt, P: Partitioner<T>, V = ()> {
    pub(crate) core: Core<'a, T, V, P::Key>,
    partitioner: P,
    config: MonitorConfig,
    cached: CachedReport<LinWitness<T::Input>, LinError>,
}

impl<'a, T, P, V> LinMonitor<'a, T, P, V>
where
    T: Adt,
    T::Input: Ord,
    P: Partitioner<T>,
    V: Clone + PartialEq,
{
    /// Creates a monitor with the default configuration.
    pub fn new(adt: &'a T, partitioner: P) -> Self {
        Self::with_config(adt, partitioner, MonitorConfig::default())
    }

    /// Creates a monitor with an explicit configuration.
    pub fn with_config(adt: &'a T, partitioner: P, config: MonitorConfig) -> Self {
        LinMonitor {
            core: Core::new(adt, &config, None),
            partitioner,
            config,
            cached: None,
        }
    }

    /// Ingests the next event of the live stream; O(shard work) — no
    /// re-check of the growing prefix.
    pub fn ingest(&mut self, action: ObjAction<T, V>) -> IngestOutcome {
        self.cached = None;
        let index = self.core.observe(&action);
        let (frontier_len, fell_back) = if action.is_switch() {
            // The verdict is decided (`LinError::SwitchAction` — plain
            // linearizability has no switch actions); shards go quiet.
            (0, false)
        } else if self.core.first_switch.is_some() {
            (0, false)
        } else {
            let key = self.partitioner.key_of(action.input());
            if key.is_none() && !self.core.fallback {
                self.core.collapse_to_identity();
            }
            self.core.route(key, action, index)
        };
        IngestOutcome {
            index,
            frontier_len,
            fell_back,
            status: self.status(),
        }
    }

    /// The exact rolling verdict, O(#shards).
    pub fn status(&self) -> MonitorStatus {
        if self.core.first_switch.is_some() {
            return MonitorStatus::SwitchSeen;
        }
        if self.core.wf.has_violation() {
            return MonitorStatus::IllFormed;
        }
        self.core.shard_status()
    }

    /// Number of events ingested so far.
    pub fn events(&self) -> usize {
        self.core.events
    }

    /// Number of live shards.
    pub fn shards(&self) -> usize {
        self.core.shards.len()
    }

    /// The full forensic report. With an unbounded window this is
    /// **byte-identical** to [`LinChecker::check`] on the closed trace
    /// (witness included); with a bounded window it is window-relative
    /// (see the crate docs) and flagged by
    /// [`MonitorReport::prefix_committed`].
    pub fn report(&mut self) -> MonitorReport<LinWitness<T::Input>, LinError>
    where
        T: Sync,
        T::Input: Send + Sync,
        T::Output: Sync,
        V: Sync,
        P::Key: Sync,
    {
        if let Some((at, report)) = &self.cached {
            if *at == self.core.events {
                return report.clone();
            }
        }
        let report = self.compute_report();
        self.cached = Some((self.core.events, report.clone()));
        report
    }

    fn compute_report(&self) -> MonitorReport<LinWitness<T::Input>, LinError>
    where
        T: Sync,
        T::Input: Send + Sync,
        T::Output: Sync,
        V: Sync,
        P::Key: Sync,
    {
        let core = &self.core;
        let base = MonitorReport {
            verdict: Err(LinError::NotLinearizable),
            events: core.events,
            shards: core.shards.len(),
            fallback: core.fallback || core.first_switch.is_some(),
            remerged: false,
            prefix_committed: core.prefix_committed,
            stats: SearchStats::default(),
            shard: core.summary(),
        };
        if let Some(buffer) = &core.buffer {
            // Closed-trace mode: delegate to the batch split checker — the
            // proven-identical partitioned path over the live shard table.
            let checker = LinChecker::new(core.adt)
                .with_budget(self.config.budget)
                .with_threads(self.config.threads);
            let split = if core.first_switch.is_some() {
                SplitOutcome {
                    parts: vec![TracePartition {
                        key: None,
                        trace: buffer.clone(),
                        index_map: (0..buffer.len()).collect(),
                    }],
                    fallback: true,
                }
            } else {
                core.split()
            };
            let (verdict, part_report) = checker.check_split_with_report(&split, buffer);
            return MonitorReport {
                verdict,
                remerged: part_report.remerged,
                stats: part_report.stats,
                ..base
            };
        }
        // Window mode: batch precedence (switch, well-formedness, search)
        // over the retained window.
        if let Some(index) = core.first_switch {
            return MonitorReport {
                verdict: Err(LinError::SwitchAction { index }),
                ..base
            };
        }
        if let Some(e) = core.wf.first_error() {
            return MonitorReport {
                verdict: Err(LinError::IllFormed(e)),
                ..base
            };
        }
        let (merged, stats, remerged) = core.window_verdict(&|i| self.partitioner.key_of(i));
        let verdict = match merged {
            Ok(assignments) => Ok(LinWitness::from_assignments(assignments)),
            Err(WindowError::NotLinearizable) => Err(LinError::NotLinearizable),
            Err(WindowError::BudgetExhausted { nodes }) => Err(LinError::BudgetExhausted { nodes }),
        };
        MonitorReport {
            verdict,
            remerged,
            stats,
            ..base
        }
    }

    /// Drains a stream sequentially; returns the final rolling status.
    pub fn drive<S: crate::EventStream<ObjAction<T, V>>>(
        &mut self,
        mut stream: S,
    ) -> MonitorStatus {
        while let Some(action) = stream.next_event() {
            self.ingest(action);
        }
        self.status()
    }

    /// Drains a stream through **per-key shard workers**: the router (this
    /// thread) classifies each event and hands it to the worker owning its
    /// shard over a channel; workers run the incremental shard engines in
    /// parallel and are merged back at stream end. Final states, statuses
    /// and reports are identical to [`LinMonitor::drive`] at every thread
    /// count (each shard's state is a pure function of its own event
    /// subsequence, which routing preserves in order).
    ///
    /// An event the shard workers cannot own — a switch action or an
    /// unclassifiable input — drains and merges the workers, then the rest
    /// of the stream runs inline.
    pub fn drive_parallel<S>(&mut self, mut stream: S) -> MonitorStatus
    where
        S: crate::EventStream<ObjAction<T, V>>,
        T: Sync,
        T::Input: Send + Sync,
        T::Output: Send + Sync,
        T::State: Send,
        V: Send + Sync,
        P::Key: Send,
    {
        let threads = if self.config.threads > 0 {
            self.config.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        if threads <= 1 || self.core.fallback || self.core.first_switch.is_some() {
            return self.drive(stream);
        }

        enum WorkerMsg<'a, T: Adt, V, K> {
            /// An existing shard moves to the worker that now owns its key.
            Adopt(K, Box<ShardState<'a, T, V>>),
            Event(usize, K, ObjAction<T, V>),
        }

        let adt = self.core.adt;
        let shard_cfg = self.core.shard_cfg;
        let window = self.core.window;
        let mut assignment: BTreeMap<P::Key, usize> = BTreeMap::new();
        let mut next_worker = 0usize;
        let mut leftover: Option<ObjAction<T, V>> = None;

        let core = &mut self.core;
        let partitioner = &self.partitioner;
        let (maps, retired) = std::thread::scope(|scope| {
            let mut senders = Vec::with_capacity(threads);
            let mut handles = Vec::with_capacity(threads);
            for _ in 0..threads {
                let (tx, rx) = std::sync::mpsc::channel::<WorkerMsg<'a, T, V, P::Key>>();
                senders.push(tx);
                handles.push(scope.spawn(move || {
                    let mut shards: BTreeMap<P::Key, ShardState<'a, T, V>> = BTreeMap::new();
                    let mut retired: Vec<usize> = Vec::new();
                    while let Ok(msg) = rx.recv() {
                        match msg {
                            WorkerMsg::Adopt(key, shard) => {
                                shards.insert(key, *shard);
                            }
                            WorkerMsg::Event(index, key, action) => {
                                let shard = shards
                                    .entry(key)
                                    .or_insert_with(|| ShardState::new(adt, shard_cfg));
                                shard.ingest(action, index);
                                if let Some(w) = window {
                                    if let Some(r) = shard.maybe_retire(w) {
                                        retired.extend(r);
                                    }
                                }
                            }
                        }
                    }
                    (shards, retired)
                }));
            }
            while let Some(action) = stream.next_event() {
                if action.is_switch() {
                    leftover = Some(action);
                    break;
                }
                let Some(key) = partitioner.key_of(action.input()) else {
                    leftover = Some(action);
                    break;
                };
                let index = core.observe(&action);
                let worker = *assignment.entry(key.clone()).or_insert_with(|| {
                    let w = next_worker % threads;
                    next_worker += 1;
                    w
                });
                if let Some(existing) = core.shards.remove(&Some(key.clone())) {
                    senders[worker]
                        .send(WorkerMsg::Adopt(key.clone(), Box::new(existing)))
                        .expect("worker alive");
                }
                senders[worker]
                    .send(WorkerMsg::Event(index, key, action))
                    .expect("worker alive");
            }
            drop(senders);
            let mut maps = Vec::new();
            let mut retired_all = Vec::new();
            for h in handles {
                let (m, r) = h.join().expect("shard worker panicked");
                maps.push(m);
                retired_all.extend(r);
            }
            (maps, retired_all)
        });
        for map in maps {
            for (key, shard) in map {
                self.core.shards.insert(Some(key), shard);
            }
        }
        if !retired.is_empty() {
            self.core.prefix_committed = true;
            for index in retired {
                self.core.commit_bounds.remove(&index);
            }
        }
        if let Some(action) = leftover {
            self.ingest(action);
        }
        self.drive(stream)
    }
}

/// Online monitor for `(m, n)`-speculative linearizability.
///
/// Switch-free streams run on the same incremental shard machinery as
/// [`LinMonitor`] (Theorem 2 equates the two criteria there). The first
/// switch action sends the monitor into **speculative mode**: the shard
/// engines go quiet and the rolling verdict is recomputed lazily — and
/// cached per stream version — by the batch [`SlinChecker`], mirroring the
/// partitioned checker's own monolithic fallback on phase traces.
pub struct SlinMonitor<'a, T: Adt, R: InitRelation<T::Input>, P: Partitioner<T>> {
    pub(crate) core: Core<'a, T, R::Value, P::Key>,
    checker: SlinChecker<'a, T, R>,
    partitioner: P,
    speculative: bool,
    cached_status: Option<(usize, MonitorStatus)>,
    cached: CachedReport<SlinReport<T::Input>, SlinError>,
}

impl<'a, T, R, P> SlinMonitor<'a, T, R, P>
where
    T: Adt + Sync,
    T::Input: Ord + Send + Sync,
    T::Output: Sync,
    R: InitRelation<T::Input> + Sync,
    R::Value: Clone + PartialEq + Sync,
    P: Partitioner<T>,
{
    /// Creates a monitor around a configured batch checker for phase
    /// `(m, n)`.
    pub fn new(
        checker: SlinChecker<'a, T, R>,
        adt: &'a T,
        m: PhaseId,
        n: PhaseId,
        partitioner: P,
        config: MonitorConfig,
    ) -> Self {
        SlinMonitor {
            core: Core::new(adt, &config, Some((m, n))),
            checker,
            partitioner,
            speculative: false,
            cached_status: None,
            cached: None,
        }
    }

    /// Ingests the next event of the live stream.
    pub fn ingest(&mut self, action: ObjAction<T, R::Value>) -> IngestOutcome {
        self.cached = None;
        self.cached_status = None;
        let index = self.core.observe(&action);
        let (frontier_len, fell_back) = if action.is_switch() && !self.speculative {
            self.enter_speculative_mode(action);
            (0, false)
        } else if self.speculative {
            // `observe` already appended the event to the (reconstructed)
            // buffer; the shard machinery is retired.
            (0, false)
        } else {
            let key = self.partitioner.key_of(action.input());
            if key.is_none() && !self.core.fallback {
                self.core.collapse_to_identity();
            }
            self.core.route(key, action, index)
        };
        IngestOutcome {
            index,
            frontier_len,
            fell_back,
            status: self.quick_status(),
        }
    }

    /// Switch actions couple independence classes through `rinit`: retire
    /// the shard machinery and fall back to lazy batch checking over the
    /// retained trace (mirroring `check_partitioned`'s identity fallback).
    fn enter_speculative_mode(&mut self, action: ObjAction<T, R::Value>) {
        self.speculative = true;
        if self.core.buffer.is_none() {
            // Window mode: reconstruct what is still retained. If a prefix
            // was already retired the verdict becomes window-relative (the
            // documented bounded-window trade).
            let mut actions: Vec<ObjAction<T, R::Value>> = self
                .core
                .window_events()
                .into_iter()
                .map(|(_, a)| a)
                .collect();
            actions.push(action);
            self.core.buffer = Some(Trace::from_actions(actions));
        }
    }

    /// O(1) status that reports [`MonitorStatus::Deferred`] in speculative
    /// mode instead of forcing a batch re-check; [`SlinMonitor::status`]
    /// resolves it.
    pub fn quick_status(&self) -> MonitorStatus {
        if self.speculative {
            if let Some((at, s)) = self.cached_status {
                if at == self.core.events {
                    return s;
                }
            }
            return MonitorStatus::Deferred;
        }
        if self.core.wf.first_foreign.is_some() || self.core.wf.has_violation() {
            return MonitorStatus::IllFormed;
        }
        self.core.shard_status()
    }

    /// The exact rolling verdict. Cheap on switch-free streams; in
    /// speculative mode it runs (and caches per stream version) one batch
    /// check of the retained trace.
    pub fn status(&mut self) -> MonitorStatus {
        let quick = self.quick_status();
        if quick != MonitorStatus::Deferred {
            return quick;
        }
        let buffer = self.core.buffer.as_ref().expect("speculative mode buffers");
        let status = match self.checker.check(buffer) {
            Ok(_) => MonitorStatus::Ok,
            Err(SlinError::NotSpeculativelyLinearizable { .. }) => MonitorStatus::Violation,
            Err(SlinError::IllFormed(_)) | Err(SlinError::ForeignAction { .. }) => {
                MonitorStatus::IllFormed
            }
            Err(SlinError::BudgetExhausted { .. })
            | Err(SlinError::TooManyInterpretations { .. }) => MonitorStatus::Unknown,
        };
        self.cached_status = Some((self.core.events, status));
        status
    }

    /// Number of events ingested so far.
    pub fn events(&self) -> usize {
        self.core.events
    }

    /// Number of live shards.
    pub fn shards(&self) -> usize {
        self.core.shards.len()
    }

    /// The full forensic report; byte-identical to
    /// [`SlinChecker::check_partitioned_with_report`] on the closed trace
    /// when the window is unbounded (and therefore, on the witness and
    /// error, to [`SlinChecker::check`] — the PR 2 differential contract).
    pub fn report(&mut self) -> MonitorReport<SlinReport<T::Input>, SlinError> {
        if let Some((at, report)) = &self.cached {
            if *at == self.core.events {
                return report.clone();
            }
        }
        let report = self.compute_report();
        self.cached = Some((self.core.events, report.clone()));
        report
    }

    fn compute_report(&self) -> MonitorReport<SlinReport<T::Input>, SlinError> {
        let core = &self.core;
        let base = MonitorReport {
            verdict: Err(SlinError::NotSpeculativelyLinearizable {
                interpretation: Vec::new(),
            }),
            events: core.events,
            shards: core.shards.len(),
            fallback: core.fallback || self.speculative,
            remerged: false,
            prefix_committed: core.prefix_committed,
            stats: SearchStats::default(),
            shard: core.summary(),
        };
        if let Some(buffer) = &core.buffer {
            let split = if self.speculative {
                SplitOutcome {
                    parts: vec![TracePartition {
                        key: None,
                        trace: buffer.clone(),
                        index_map: (0..buffer.len()).collect(),
                    }],
                    fallback: true,
                }
            } else {
                core.split()
            };
            let (verdict, part_report) = self.checker.check_split_with_report(&split, buffer);
            return MonitorReport {
                verdict,
                remerged: part_report.remerged,
                stats: part_report.stats,
                ..base
            };
        }
        // Window mode, switch-free: Theorem 2 lets the lin window verdict
        // stand for the speculative one.
        if let Some(index) = core.wf.first_foreign {
            return MonitorReport {
                verdict: Err(SlinError::ForeignAction { index }),
                ..base
            };
        }
        if let Some(e) = core.wf.first_error() {
            return MonitorReport {
                verdict: Err(SlinError::IllFormed(e)),
                ..base
            };
        }
        let (merged, stats, remerged) = core.window_verdict(&|i| self.partitioner.key_of(i));
        let verdict = match merged {
            Ok(chain) => Ok(SlinReport {
                interpretations_checked: stats.interpretations,
                witness: SlinWitness {
                    init_histories: Vec::new(),
                    commit_histories: chain,
                    abort_histories: Vec::new(),
                },
                stats,
            }),
            Err(WindowError::NotLinearizable) => Err(SlinError::NotSpeculativelyLinearizable {
                interpretation: Vec::new(),
            }),
            Err(WindowError::BudgetExhausted { nodes }) => {
                Err(SlinError::BudgetExhausted { nodes })
            }
        };
        MonitorReport {
            verdict,
            remerged,
            stats,
            ..base
        }
    }

    /// Drains a stream sequentially; returns the final rolling status
    /// (resolving speculative deferral).
    pub fn drive<S: crate::EventStream<ObjAction<T, R::Value>>>(
        &mut self,
        mut stream: S,
    ) -> MonitorStatus {
        while let Some(action) = stream.next_event() {
            self.ingest(action);
        }
        self.status()
    }
}
