//! Online streaming monitor: sharded incremental (s)linearizability
//! checking over live event streams.
//!
//! The machinery behind this crate moved into [`slin_core::stream`] when
//! the checker surface was unified behind the
//! [`slin_core::model::ConsistencyModel`] trait: there is now **one**
//! generic [`Monitor`], and [`LinMonitor`]/[`SlinMonitor`] are its two
//! shipped instantiations. This crate re-exports that module unchanged so
//! existing consumers keep working; new code can depend on `slin-core`
//! alone and reach the same types through the
//! [`slin_core::session::Checker`] builder
//! (`Strategy::Streaming { window }`).
//!
//! ```text
//!                        ┌───────────────────────────────┐
//!   live event stream ──▶│ router (Partitioner::key_of)  │
//!                        └──┬──────────┬──────────┬──────┘
//!                key 1 ─────▼──  key 2 ▼   …  key k ▼        unclassifiable /
//!                   ┌─────────┐ ┌─────────┐ ┌─────────┐      switch action
//!                   │ shard 1 │ │ shard 2 │ │ shard k │   ──▶ identity shard /
//!                   │frontier │ │frontier │ │frontier │       speculative mode
//!                   └────┬────┘ └────┬────┘ └────┬────┘
//!                        └─────── merged verdict ┴──▶ status() / report()
//! ```
//!
//! See [`slin_core::stream`] for the architecture (routing, incremental
//! frontier engines, bounded-window GC) and the exactness guarantees
//! (batch-identical reports with the default unbounded window).
//!
//! # Quickstart
//!
//! ```
//! use slin_adt::{KvKeyPartitioner, KvStore};
//! use slin_core::gen::{random_multikey_kv_trace, MultiKeyConfig};
//! use slin_monitor::{LinMonitor, MonitorStatus};
//!
//! let trace = random_multikey_kv_trace(&MultiKeyConfig::default());
//! let mut mon: LinMonitor<KvStore, KvKeyPartitioner> =
//!     LinMonitor::owned(KvStore, KvKeyPartitioner);
//! for action in trace.iter() {
//!     let outcome = mon.ingest(action.clone());
//!     assert_eq!(outcome.status, MonitorStatus::Ok); // rolling, exact
//! }
//! assert!(mon.report().verdict.is_ok()); // identical to the batch checker
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use slin_core::stream::{
    EventStream, GcPolicy, IngestOutcome, LinMonitor, Monitor, MonitorConfig, MonitorReport,
    MonitorStatus, ShardSummary, SlinMonitor, StreamFailure, StreamModel,
};

/// Observability surface ([`slin_obs`]): install a [`StackObserver`] via
/// [`Monitor::with_observer`] to collect metrics (Prometheus text or JSON
/// snapshot) and Chrome-trace spans from the monitor's ingest hot path.
pub use slin_obs::{
    LogHistogram, NoopObserver, Obs, Observer, Registry, StackObserver, TraceBuffer,
};
