//! Online streaming monitor: sharded incremental (s)linearizability
//! checking over live event streams.
//!
//! The batch checkers in `slin-core` need the whole trace before
//! `check()` runs. This crate adds the layer between the trace model and
//! those checkers that the ROADMAP's live-traffic north star needs: a
//! monitor that **ingests one action at a time** and maintains a rolling
//! verdict without re-checking the growing prefix.
//!
//! ```text
//!                        ┌───────────────────────────────┐
//!   live event stream ──▶│ router (Partitioner::key_of)  │
//!                        └──┬──────────┬──────────┬──────┘
//!                key 1 ─────▼──  key 2 ▼   …  key k ▼        unclassifiable /
//!                   ┌─────────┐ ┌─────────┐ ┌─────────┐      switch action
//!                   │ shard 1 │ │ shard 2 │ │ shard k │   ──▶ identity shard /
//!                   │frontier │ │frontier │ │frontier │       speculative mode
//!                   └────┬────┘ └────┬────┘ └────┬────┘
//!                        └─────── merged verdict ┴──▶ status() / report()
//! ```
//!
//! # Architecture
//!
//! * **Routing** — every action is classified by the existing
//!   [`slin_adt::Partitioner`]; each independence class gets its own
//!   shard with its own incremental engine state. The identity fallback
//!   (unclassifiable inputs) collapses everything into one shard, so
//!   non-partitionable ADTs still stream.
//! * **Incremental engine state** — each shard persists a **frontier** of
//!   complete chain-search configurations between events (each one a
//!   genuine witness for the shard's prefix). Invocations are O(1);
//!   responses extend the frontier at the chain tail. When the frontier
//!   prunes empty the shard runs the documented fallback: one **bounded
//!   re-search** of the retained window, which decides the rolling verdict
//!   exactly. Rolling "ok" therefore always carries a witness, and rolling
//!   "violation" is never spurious before any garbage collection.
//! * **Bounded-window GC** — with [`MonitorConfig::window`] set, a shard
//!   that grows past the window while quiescent retires its
//!   fully-committed prefix into the *complete* set of terminal search
//!   configurations — a lossless summary (the engine's future depends
//!   only on reached state + consumed inputs), so verdicts stay exact;
//!   retirement is skipped whenever the summary would be truncated.
//!   Memory stays bounded by the window and the input alphabet
//!   (O(window · alphabet) worst case — per-index bound snapshots, the
//!   same shape the batch checkers materialise), independent of stream
//!   length. [`MonitorReport::prefix_committed`] flags engaged GC;
//!   reported *witness histories* become window-relative (the retired
//!   events are gone).
//! * **Batch-identical reports** — with the default unbounded window,
//!   [`LinMonitor::report`] is byte-identical (verdict *and* witness) to
//!   [`slin_core::lin::LinChecker::check`] on the closed trace, and
//!   [`SlinMonitor::report`] to the speculative partitioned checker; the
//!   `streaming_differential` suite in `tests/` pins this over the
//!   multi-key generators, including traces with more than 64 commits.
//!
//! # Quickstart
//!
//! ```
//! use slin_adt::{KvKeyPartitioner, KvStore};
//! use slin_core::gen::{random_multikey_kv_trace, MultiKeyConfig};
//! use slin_monitor::{LinMonitor, MonitorStatus};
//!
//! let trace = random_multikey_kv_trace(&MultiKeyConfig::default());
//! let mut mon: LinMonitor<'_, KvStore, KvKeyPartitioner> =
//!     LinMonitor::new(&KvStore, KvKeyPartitioner);
//! for action in trace.iter() {
//!     let outcome = mon.ingest(action.clone());
//!     assert_eq!(outcome.status, MonitorStatus::Ok); // rolling, exact
//! }
//! assert!(mon.report().verdict.is_ok()); // identical to the batch checker
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod monitor;
mod shard;
mod stream;
mod wf;

pub use monitor::{LinMonitor, SlinMonitor};
pub use stream::EventStream;

use slin_core::engine::SearchStats;

/// Tuning knobs of a monitor.
#[derive(Debug, Clone, Copy)]
pub struct MonitorConfig {
    /// Node budget of every full engine search (fallback re-searches,
    /// final report derivations). Matches the batch checkers' default.
    pub budget: usize,
    /// Maximum frontier configurations retained per shard. Larger values
    /// survive more reorderings without falling back; smaller values bound
    /// per-event work tighter.
    pub frontier_cap: usize,
    /// Node budget of one frontier tail-extension pass; exhausting it
    /// forces a fallback re-search (exactness is never lost).
    pub extension_budget: usize,
    /// Bounded-window GC: retire quiescent, fully-committed prefixes once
    /// a shard's window exceeds this many events. `None` (default) retains
    /// everything and keeps reports byte-identical to the batch checkers.
    pub window: Option<usize>,
    /// Worker threads for the final report's partition fan-out and for
    /// [`LinMonitor::drive_parallel`] (0 = one per core).
    pub threads: usize,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            budget: slin_core::lin::DEFAULT_BUDGET,
            frontier_cap: 32,
            extension_budget: 4096,
            window: None,
            threads: 0,
        }
    }
}

/// The rolling verdict of a monitor (exact at every event — see the crate
/// docs for the one bounded-window caveat).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorStatus {
    /// Every ingested prefix satisfies the monitored criterion.
    Ok,
    /// The stream violates the criterion (permanent).
    Violation,
    /// The stream is not well-formed (or, for the speculative monitor, an
    /// action lies outside the phase signature).
    IllFormed,
    /// A switch action appeared in a plain-linearizability stream: the
    /// verdict is decided (`LinError::SwitchAction`).
    SwitchSeen,
    /// A search exhausted its node budget; the verdict is unknown until a
    /// later search succeeds.
    Unknown,
    /// Speculative mode defers the verdict to the next
    /// [`SlinMonitor::status`] call (which runs and caches a batch check).
    Deferred,
}

/// Per-event feedback from [`LinMonitor::ingest`] / [`SlinMonitor::ingest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestOutcome {
    /// The event's global stream index.
    pub index: usize,
    /// The target shard's frontier size after the event (0 for events that
    /// bypass the shard machinery).
    pub frontier_len: usize,
    /// Whether the event forced a bounded re-search (frontier pruned
    /// empty or the extension budget tripped).
    pub fell_back: bool,
    /// The rolling verdict after the event.
    pub status: MonitorStatus,
}

/// Aggregated shard-machinery counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardSummary {
    /// Frontier tail-extension passes run (one per commit event).
    pub extension_searches: usize,
    /// Bounded re-searches run (the documented fallback).
    pub fallback_searches: usize,
    /// Largest frontier any shard ever held.
    pub frontier_peak: usize,
    /// Events retired by bounded-window GC across all shards.
    pub retired_events: usize,
}

/// The monitor's full forensic report.
///
/// `W`/`E` are the wrapped batch checker's witness and error types; with
/// an unbounded window `verdict` is byte-identical to that checker's
/// output on the closed trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorReport<W, E> {
    /// The verdict (witness or error) for the retained trace.
    pub verdict: Result<W, E>,
    /// Events ingested.
    pub events: usize,
    /// Live shards.
    pub shards: usize,
    /// Whether identity routing engaged (unclassifiable input, switch
    /// action, or speculative mode) — mirrors `SplitOutcome::fallback`.
    pub fallback: bool,
    /// Whether the final witness needed a monolithic re-derivation
    /// (cross-partition bound coupling) — mirrors
    /// `PartitionReport::remerged`.
    pub remerged: bool,
    /// Whether bounded-window GC retired a prefix: the verdict is
    /// window-relative.
    pub prefix_committed: bool,
    /// Engine counters absorbed over the report derivation.
    pub stats: SearchStats,
    /// Aggregated shard-machinery counters.
    pub shard: ShardSummary,
}
