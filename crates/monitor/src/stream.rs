//! Event streams: the monitor's ingestion interface.

/// A pull-based stream of actions. Blanket-implemented for every
/// [`Iterator`], so `trace.into_iter()`, channels drained through
/// `try_iter()`, and custom sources all plug straight into
/// [`crate::LinMonitor::drive`] / [`crate::LinMonitor::drive_parallel`].
pub trait EventStream<A> {
    /// The next event, or `None` when the stream is (currently) drained.
    fn next_event(&mut self) -> Option<A>;
}

impl<A, I: Iterator<Item = A>> EventStream<A> for I {
    fn next_event(&mut self) -> Option<A> {
        self.next()
    }
}
