//! Monitor behaviour tests: rolling exactness, fallback/collapse paths,
//! parallel drive parity, and bounded-window GC. The heavyweight
//! streaming-vs-batch differential proptests live in the workspace `tests`
//! crate (`streaming_differential.rs`).

use slin_adt::{
    ConsInput, ConsOutput, Consensus, IdentityPartitioner, KvInput, KvKeyPartitioner, KvOutput,
    KvStore, Value,
};
use slin_core::gen::{random_multikey_kv_trace, MultiKeyConfig};
use slin_core::initrel::ConsensusInit;
use slin_core::lin::{witness_is_valid, LinChecker, LinError};
use slin_core::slin::SlinChecker;
use slin_core::ObjAction;
use slin_monitor::{LinMonitor, MonitorConfig, MonitorStatus, SlinMonitor};
use slin_trace::{Action, ClientId, PhaseId, Trace};

fn c(n: u32) -> ClientId {
    ClientId::new(n)
}
fn ph() -> PhaseId {
    PhaseId::FIRST
}

fn kv_monitor() -> LinMonitor<KvStore, KvKeyPartitioner> {
    LinMonitor::owned(KvStore, KvKeyPartitioner)
}

#[test]
fn rolling_status_is_exact_on_every_prefix() {
    let chk = LinChecker::owned(KvStore);
    for seed in [0u64, 3, 11, 19] {
        for error_prob in [0.0, 0.5] {
            let cfg = MultiKeyConfig {
                keys: 3,
                clients: 3,
                steps: 20,
                error_prob,
                seed,
                ..Default::default()
            };
            let t = random_multikey_kv_trace(&cfg);
            let mut mon = kv_monitor();
            for (i, a) in t.iter().enumerate() {
                let outcome = mon.ingest(a.clone());
                let batch_ok = chk.check(&t.truncate_to(i + 1)).is_ok();
                let rolling_ok = outcome.status == MonitorStatus::Ok;
                assert_eq!(
                    rolling_ok,
                    batch_ok,
                    "seed {seed} error {error_prob} prefix {}",
                    i + 1
                );
            }
        }
    }
}

#[test]
fn report_is_byte_identical_to_batch_check() {
    let chk = LinChecker::owned(KvStore);
    for seed in [1u64, 5, 8, 21] {
        for error_prob in [0.0, 0.4] {
            let cfg = MultiKeyConfig {
                keys: 4,
                clients: 4,
                steps: 26,
                error_prob,
                seed,
                ..Default::default()
            };
            let t = random_multikey_kv_trace(&cfg);
            let mut mon = kv_monitor();
            for a in t.iter() {
                mon.ingest(a.clone());
            }
            let report = mon.report();
            let batch = chk.check(&t);
            assert_eq!(report.verdict, batch, "seed {seed} error {error_prob}");
            assert_eq!(report.events, t.len());
            if let Ok(w) = &report.verdict {
                assert!(witness_is_valid(&KvStore, &t, w));
            }
        }
    }
}

#[test]
fn parallel_drive_matches_sequential_drive() {
    for seed in [2u64, 7, 13] {
        let cfg = MultiKeyConfig {
            keys: 6,
            clients: 4,
            steps: 40,
            seed,
            ..Default::default()
        };
        let t = random_multikey_kv_trace(&cfg);
        let mut seq = kv_monitor();
        let seq_status = seq.drive(t.iter().cloned());
        let mut par: LinMonitor<KvStore, KvKeyPartitioner> = LinMonitor::owned_with_config(
            KvStore,
            KvKeyPartitioner,
            MonitorConfig {
                threads: 4,
                ..Default::default()
            },
        );
        let par_status = par.drive_parallel(t.iter().cloned());
        assert_eq!(seq_status, par_status, "seed {seed}");
        assert_eq!(seq.report(), par.report(), "seed {seed}");
        assert_eq!(seq.shards(), par.shards());
    }
}

#[test]
fn identity_partitioner_collapses_to_one_shard_and_stays_exact() {
    let cfg = MultiKeyConfig {
        keys: 4,
        seed: 9,
        ..Default::default()
    };
    let t = random_multikey_kv_trace(&cfg);
    let mut mon: LinMonitor<KvStore, IdentityPartitioner> =
        LinMonitor::owned(KvStore, IdentityPartitioner);
    mon.drive(t.iter().cloned());
    assert_eq!(mon.shards(), 1);
    let report = mon.report();
    assert!(report.fallback.is_some());
    assert_eq!(report.verdict, LinChecker::owned(KvStore).check(&t));
}

#[test]
fn switch_action_decides_the_lin_verdict() {
    let mut mon: LinMonitor<KvStore, KvKeyPartitioner, u8> =
        LinMonitor::owned(KvStore, KvKeyPartitioner);
    mon.ingest(Action::invoke(c(1), ph(), KvInput::Put(1, 5)));
    let out = mon.ingest(Action::switch(c(1), PhaseId::new(2), KvInput::Put(1, 5), 0));
    assert_eq!(out.status, MonitorStatus::SwitchSeen);
    assert_eq!(
        mon.report().verdict,
        Err(LinError::SwitchAction { index: 1 })
    );
}

#[test]
fn ill_formed_stream_matches_batch_error() {
    // Response with no pending invocation.
    let t: Trace<ObjAction<KvStore, ()>> = Trace::from_actions(vec![
        Action::invoke(c(2), ph(), KvInput::Put(1, 5)),
        Action::respond(c(1), ph(), KvInput::Get(1), KvOutput::Found(None)),
    ]);
    let mut mon = kv_monitor();
    let status = mon.drive(t.iter().cloned());
    assert_eq!(status, MonitorStatus::IllFormed);
    assert_eq!(mon.report().verdict, LinChecker::owned(KvStore).check(&t));
}

#[test]
fn bounded_window_gc_retires_prefixes_and_keeps_the_verdict() {
    let cfg = MultiKeyConfig {
        keys: 3,
        clients: 3,
        steps: 120,
        seed: 4,
        ..Default::default()
    };
    let t = random_multikey_kv_trace(&cfg);
    let mut mon: LinMonitor<KvStore, KvKeyPartitioner> = LinMonitor::owned_with_config(
        KvStore,
        KvKeyPartitioner,
        MonitorConfig {
            window: Some(8),
            ..Default::default()
        },
    );
    for a in t.iter() {
        let out = mon.ingest(a.clone());
        assert_eq!(
            out.status,
            MonitorStatus::Ok,
            "linearizable by construction"
        );
    }
    let report = mon.report();
    assert!(report.prefix_committed, "GC must have engaged");
    assert!(report.shard.retired_events > 0);
    assert!(report.verdict.is_ok(), "window-relative verdict stays ok");
}

#[test]
fn violations_are_still_caught_after_gc() {
    let mut mon: LinMonitor<KvStore, KvKeyPartitioner> = LinMonitor::owned_with_config(
        KvStore,
        KvKeyPartitioner,
        MonitorConfig {
            window: Some(4),
            ..Default::default()
        },
    );
    // A long correct single-key prefix, then a stale read.
    for round in 0..20u32 {
        let v = round as u64 + 1;
        mon.ingest(Action::invoke(c(1), ph(), KvInput::Put(1, v)));
        mon.ingest(Action::respond(
            c(1),
            ph(),
            KvInput::Put(1, v),
            KvOutput::Ack,
        ));
    }
    mon.ingest(Action::invoke(c(1), ph(), KvInput::Get(1)));
    let out = mon.ingest(Action::respond(
        c(1),
        ph(),
        KvInput::Get(1),
        KvOutput::Found(None), // must see 20 (or at least *some* write)
    ));
    assert_eq!(out.status, MonitorStatus::Violation);
    assert!(mon.report().verdict.is_err());
}

#[test]
#[allow(deprecated)] // compat: the deprecated partitioned wrapper is the differential oracle
fn slin_monitor_matches_partitioned_checker_on_switch_free_streams() {
    let chk = SlinChecker::new(
        &KvStore,
        slin_core::initrel::ExactInit::new(),
        PhaseId::new(1),
        PhaseId::new(2),
    );
    for seed in [0u64, 6, 17] {
        let cfg = MultiKeyConfig {
            keys: 3,
            steps: 22,
            seed,
            ..Default::default()
        };
        let t = random_multikey_kv_trace(&cfg);
        let t: Trace<ObjAction<KvStore, Vec<KvInput>>> = Trace::from_actions(
            t.iter()
                .map(|a| match a {
                    Action::Invoke {
                        client,
                        phase,
                        input,
                    } => Action::invoke(*client, *phase, *input),
                    Action::Respond {
                        client,
                        phase,
                        input,
                        output,
                    } => Action::respond(*client, *phase, *input, *output),
                    Action::Switch { .. } => unreachable!(),
                })
                .collect(),
        );
        let mut mon = SlinMonitor::new(
            chk.clone(),
            &KvStore,
            PhaseId::new(1),
            PhaseId::new(2),
            KvKeyPartitioner,
            MonitorConfig::default(),
        );
        for a in t.iter() {
            mon.ingest(a.clone());
        }
        let report = mon.report();
        let batch = chk.check_partitioned(&KvKeyPartitioner, &t);
        assert_eq!(report.verdict, batch, "seed {seed}");
    }
}

#[test]
fn slin_monitor_goes_speculative_on_switches_and_stays_exact() {
    let chk = SlinChecker::owned(
        Consensus,
        ConsensusInit::new(),
        PhaseId::new(1),
        PhaseId::new(2),
    );
    let traces: Vec<Trace<ObjAction<Consensus, Value>>> = vec![
        // Decide 1, switch with 1: speculatively linearizable.
        Trace::from_actions(vec![
            Action::invoke(c(1), ph(), ConsInput::propose(1)),
            Action::invoke(c(2), ph(), ConsInput::propose(2)),
            Action::respond(c(1), ph(), ConsInput::propose(1), ConsOutput::decide(1)),
            Action::switch(c(2), PhaseId::new(2), ConsInput::propose(2), Value::new(1)),
        ]),
        // Decide 1, switch with 2: violation.
        Trace::from_actions(vec![
            Action::invoke(c(1), ph(), ConsInput::propose(1)),
            Action::invoke(c(2), ph(), ConsInput::propose(2)),
            Action::respond(c(1), ph(), ConsInput::propose(1), ConsOutput::decide(1)),
            Action::switch(c(2), PhaseId::new(2), ConsInput::propose(2), Value::new(2)),
        ]),
    ];
    for t in &traces {
        let mut mon =
            SlinMonitor::from_checker(chk.clone(), IdentityPartitioner, MonitorConfig::default());
        let status = mon.drive(t.iter().cloned());
        let batch = chk.check(t);
        assert_eq!(status == MonitorStatus::Ok, batch.is_ok(), "{t:?}");
        assert_eq!(mon.report().verdict, batch, "{t:?}");
    }
}

#[test]
fn more_than_64_commits_stream_and_check() {
    // 70 put/ack rounds over 7 keys: both the monitor and the batch path
    // must accept what the old 64-commit ceiling refused.
    let mut actions: Vec<ObjAction<KvStore, ()>> = Vec::new();
    for round in 0..70u32 {
        let key = round % 7 + 1;
        actions.push(Action::invoke(c(1), ph(), KvInput::Put(key, round as u64)));
        actions.push(Action::respond(
            c(1),
            ph(),
            KvInput::Put(key, round as u64),
            KvOutput::Ack,
        ));
    }
    let t = Trace::from_actions(actions);
    let mut mon = kv_monitor();
    let status = mon.drive(t.iter().cloned());
    assert_eq!(status, MonitorStatus::Ok);
    let report = mon.report();
    let batch = LinChecker::owned(KvStore).check(&t);
    assert!(batch.is_ok(), "batch path must accept > 64 commits now");
    assert_eq!(report.verdict, batch);
}
