//! Composition and hiding of I/O automata.
//!
//! Composition synchronizes components on shared actions: an action in both
//! signatures executes jointly (Definition 2's requirement that components
//! execute common actions simultaneously); an action in one signature only
//! executes solo. Hiding reclassifies selected external actions as internal —
//! the `proj` of Theorem 3, which removes the interior switch actions of a
//! composed speculation phase.

use crate::automaton::Automaton;

/// The parallel composition `A1 ‖ A2` of two automata over the same action
/// type.
///
/// Compatibility (no shared outputs) is the caller's responsibility, as in
/// the paper; for the ALM development the shared actions are exactly the
/// switch actions at the phase boundary, which are outputs of the first
/// component and inputs of the second.
#[derive(Debug, Clone)]
pub struct Composition<A1, A2> {
    first: A1,
    second: A2,
}

impl<A1, A2> Composition<A1, A2> {
    /// Composes two automata.
    pub fn new(first: A1, second: A2) -> Self {
        Composition { first, second }
    }

    /// The first component.
    pub fn first(&self) -> &A1 {
        &self.first
    }

    /// The second component.
    pub fn second(&self) -> &A2 {
        &self.second
    }
}

impl<Act, A1, A2> Automaton for Composition<A1, A2>
where
    Act: Clone + Eq + std::hash::Hash + std::fmt::Debug,
    A1: Automaton<Action = Act>,
    A2: Automaton<Action = Act>,
{
    type State = (A1::State, A2::State);
    type Action = Act;

    fn initial_states(&self) -> Vec<Self::State> {
        let mut out = Vec::new();
        for s1 in self.first.initial_states() {
            for s2 in self.second.initial_states() {
                out.push((s1.clone(), s2));
            }
        }
        out
    }

    fn transitions(&self, state: &Self::State) -> Vec<(Act, Self::State)> {
        let (s1, s2) = state;
        let mut out = Vec::new();
        for (a, s1p) in self.first.transitions(s1) {
            if self.second.in_signature(&a) {
                // Joint step: the second component must take the same action.
                for (b, s2p) in self.second.transitions(s2) {
                    if b == a {
                        out.push((a.clone(), (s1p.clone(), s2p)));
                    }
                }
            } else {
                out.push((a, (s1p, s2.clone())));
            }
        }
        for (a, s2p) in self.second.transitions(s2) {
            if !self.first.in_signature(&a) {
                out.push((a, (s1.clone(), s2p)));
            }
            // Joint steps were already produced above.
        }
        out
    }

    fn in_signature(&self, action: &Act) -> bool {
        self.first.in_signature(action) || self.second.in_signature(action)
    }

    fn is_external(&self, action: &Act) -> bool {
        (self.first.in_signature(action) && self.first.is_external(action))
            || (self.second.in_signature(action) && self.second.is_external(action))
    }
}

/// An automaton with some external actions reclassified as internal.
#[derive(Debug, Clone)]
pub struct Hidden<A, F> {
    inner: A,
    hide: F,
}

impl<A, F> Hidden<A, F> {
    /// Hides the actions selected by `hide` in `inner`.
    pub fn new(inner: A, hide: F) -> Self {
        Hidden { inner, hide }
    }

    /// The underlying automaton.
    pub fn inner(&self) -> &A {
        &self.inner
    }
}

impl<A, F> Automaton for Hidden<A, F>
where
    A: Automaton,
    F: Fn(&A::Action) -> bool,
{
    type State = A::State;
    type Action = A::Action;

    fn initial_states(&self) -> Vec<Self::State> {
        self.inner.initial_states()
    }

    fn transitions(&self, state: &Self::State) -> Vec<(Self::Action, Self::State)> {
        self.inner.transitions(state)
    }

    fn in_signature(&self, action: &Self::Action) -> bool {
        self.inner.in_signature(action)
    }

    fn is_external(&self, action: &Self::Action) -> bool {
        self.inner.is_external(action) && !(self.hide)(action)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::Automaton;

    /// A producer emitting `Msg(k)` outputs, and a consumer accepting them.
    #[derive(Debug, Clone)]
    struct Producer {
        max: u8,
    }
    #[derive(Debug, Clone)]
    struct Consumer;

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    enum Act {
        Msg(u8),
        Consumed(u8),
    }

    impl Automaton for Producer {
        type State = u8;
        type Action = Act;
        fn initial_states(&self) -> Vec<u8> {
            vec![0]
        }
        fn transitions(&self, s: &u8) -> Vec<(Act, u8)> {
            if *s < self.max {
                vec![(Act::Msg(*s), s + 1)]
            } else {
                vec![]
            }
        }
        fn in_signature(&self, a: &Act) -> bool {
            matches!(a, Act::Msg(_))
        }
        fn is_external(&self, _a: &Act) -> bool {
            true
        }
    }

    impl Automaton for Consumer {
        type State = Vec<u8>;
        type Action = Act;
        fn initial_states(&self) -> Vec<Vec<u8>> {
            vec![vec![]]
        }
        fn transitions(&self, s: &Vec<u8>) -> Vec<(Act, Vec<u8>)> {
            let mut out = Vec::new();
            // Input-enabled: accept any message value.
            for k in 0..4 {
                let mut s2 = s.clone();
                s2.push(k);
                out.push((Act::Msg(k), s2));
            }
            if let Some(&last) = s.last() {
                out.push((Act::Consumed(last), s.clone()));
            }
            out
        }
        fn in_signature(&self, _a: &Act) -> bool {
            true
        }
        fn is_external(&self, _a: &Act) -> bool {
            true
        }
    }

    #[test]
    fn shared_actions_synchronize() {
        let comp = Composition::new(Producer { max: 2 }, Consumer);
        let init = comp.initial_states().remove(0);
        let ts = comp.transitions(&init);
        // Only Msg(0) is jointly enabled (producer constrains the value);
        // Consumed is not enabled yet (consumer has no message).
        assert_eq!(ts.len(), 1);
        let (a, s1) = &ts[0];
        assert_eq!(*a, Act::Msg(0));
        assert_eq!(s1.1, vec![0]);
        // After one message, the consumer can emit Consumed(0) solo.
        let ts2 = comp.transitions(s1);
        assert!(ts2.iter().any(|(a, _)| *a == Act::Consumed(0)));
    }

    #[test]
    fn hiding_removes_actions_from_traces() {
        let comp = Composition::new(Producer { max: 2 }, Consumer);
        let hidden = Hidden::new(comp, |a: &Act| matches!(a, Act::Msg(_)));
        let actions = vec![Act::Msg(0), Act::Consumed(0), Act::Msg(1)];
        assert_eq!(hidden.trace_of(&actions), vec![Act::Consumed(0)]);
        // Transitions are unchanged.
        let init = hidden.initial_states().remove(0);
        assert_eq!(hidden.transitions(&init).len(), 1);
    }
}
