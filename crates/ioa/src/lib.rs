//! I/O automata and the ALM specification automaton (paper Section 6).
//!
//! The paper complements its trace-based development with an automaton
//! formalization in the style of Lynch & Tuttle's I/O automata, mechanised
//! in Isabelle/HOL: a specification automaton for speculative
//! linearizability instantiated to the *universal ADT* (outputs are full
//! input histories), and a machine-checked proof that the composition of two
//! specification automata refines a single one.
//!
//! This crate rebuilds that development executably:
//!
//! * [`automaton`] — an I/O-automaton trait with enumerable transitions,
//!   executions and external traces;
//! * [`compose`] — binary composition synchronizing on shared actions, and
//!   action hiding;
//! * [`explore`] — bounded breadth-first exploration and seeded random
//!   walks (used both for model checking and as a generator of
//!   speculatively-linearizable traces);
//! * [`refine`] — trace-inclusion checking by subset construction
//!   (the executable counterpart of the paper's refinement mapping);
//! * [`alm`] — the ALM ("abortable linearizable module") specification
//!   automaton with the steps A1–A4 of Section 6.
//!
//! # Example
//!
//! ```
//! use slin_ioa::alm::{AlmAutomaton, AlmParams};
//! use slin_ioa::explore::random_walk;
//!
//! let alm = AlmAutomaton::new(AlmParams {
//!     first: 1,
//!     last: 2,
//!     clients: 2,
//!     inputs: vec![1u8, 2],
//! });
//! // A random execution of the specification automaton…
//! let trace = random_walk(&alm, 20, 42);
//! assert!(trace.len() <= 20);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alm;
pub mod automaton;
pub mod compose;
pub mod explore;
pub mod refine;

pub use alm::{AlmAction, AlmAutomaton, AlmParams};
pub use automaton::Automaton;
pub use compose::{Composition, Hidden};
pub use refine::{check_trace_inclusion, RefinementError};
