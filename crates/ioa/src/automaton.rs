//! The I/O-automaton abstraction (Lynch & Tuttle, cited as \[21\] in the
//! paper), restricted to automata with enumerable transition relations so
//! that exploration and refinement checking are executable.

use std::fmt::Debug;
use std::hash::Hash;

/// An I/O automaton with enumerable transitions.
///
/// Compared to the full I/O-automata model this trait drops task partitions
/// (we only check safety properties, like the paper, which restricts itself
/// to finite traces) and represents the signature by two predicates:
/// [`Automaton::in_signature`] (does the action belong to this automaton at
/// all — used by composition to decide synchronization) and
/// [`Automaton::is_external`] (is it visible in traces).
pub trait Automaton {
    /// The state type.
    type State: Clone + Eq + Hash + Debug;
    /// The action type.
    type Action: Clone + Eq + Hash + Debug;

    /// The initial states (I/O automata may have several).
    fn initial_states(&self) -> Vec<Self::State>;

    /// All enabled transitions from `state`, as `(action, successor)` pairs.
    fn transitions(&self, state: &Self::State) -> Vec<(Self::Action, Self::State)>;

    /// Whether `action` belongs to this automaton's signature (input,
    /// output, or internal).
    fn in_signature(&self, action: &Self::Action) -> bool;

    /// Whether `action` is external (input or output) — internal actions are
    /// invisible in traces.
    fn is_external(&self, action: &Self::Action) -> bool;

    /// The external projection of an execution's action sequence: its trace.
    fn trace_of(&self, actions: &[Self::Action]) -> Vec<Self::Action> {
        actions
            .iter()
            .filter(|a| self.is_external(a))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// A tiny counter automaton used by the framework tests: internal ticks,
    /// external emissions of the current count.
    #[derive(Debug, Clone)]
    pub struct TickTock {
        pub max: u8,
    }

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    pub enum TickAction {
        Tick,
        Emit(u8),
    }

    impl Automaton for TickTock {
        type State = u8;
        type Action = TickAction;

        fn initial_states(&self) -> Vec<u8> {
            vec![0]
        }

        fn transitions(&self, s: &u8) -> Vec<(TickAction, u8)> {
            let mut out = Vec::new();
            if *s < self.max {
                out.push((TickAction::Tick, s + 1));
            }
            out.push((TickAction::Emit(*s), *s));
            out
        }

        fn in_signature(&self, _a: &TickAction) -> bool {
            true
        }

        fn is_external(&self, a: &TickAction) -> bool {
            matches!(a, TickAction::Emit(_))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::{TickAction, TickTock};
    use super::*;

    #[test]
    fn transitions_enumerate_enabled_actions() {
        let a = TickTock { max: 2 };
        let ts = a.transitions(&0);
        assert_eq!(ts.len(), 2);
        assert!(ts.contains(&(TickAction::Tick, 1)));
        assert!(ts.contains(&(TickAction::Emit(0), 0)));
        // At the bound, ticking is disabled.
        assert_eq!(a.transitions(&2).len(), 1);
    }

    #[test]
    fn trace_of_filters_internal_actions() {
        let a = TickTock { max: 2 };
        let actions = vec![TickAction::Tick, TickAction::Emit(1), TickAction::Tick];
        assert_eq!(a.trace_of(&actions), vec![TickAction::Emit(1)]);
    }
}
