//! Bounded exploration of automata: breadth-first reachability, trace
//! collection, and seeded random walks.

use crate::automaton::Automaton;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashSet, VecDeque};

/// All states reachable within `max_depth` transitions, capped at
/// `max_states` (exploration stops, without error, at the cap).
pub fn reachable_states<A: Automaton>(
    automaton: &A,
    max_depth: usize,
    max_states: usize,
) -> Vec<A::State> {
    let mut seen: HashSet<A::State> = HashSet::new();
    let mut frontier: VecDeque<(A::State, usize)> = VecDeque::new();
    let mut out = Vec::new();
    for s in automaton.initial_states() {
        if seen.insert(s.clone()) {
            out.push(s.clone());
            frontier.push_back((s, 0));
        }
    }
    while let Some((s, d)) = frontier.pop_front() {
        if d >= max_depth || out.len() >= max_states {
            continue;
        }
        for (_, s2) in automaton.transitions(&s) {
            if seen.insert(s2.clone()) {
                out.push(s2.clone());
                if out.len() >= max_states {
                    return out;
                }
                frontier.push_back((s2, d + 1));
            }
        }
    }
    out
}

/// All *external traces* of executions with at most `max_depth` transitions
/// (deduplicated). Exponential in general: use tight bounds.
pub fn bounded_traces<A: Automaton>(automaton: &A, max_depth: usize) -> Vec<Vec<A::Action>> {
    let mut out: HashSet<Vec<A::Action>> = HashSet::new();
    let mut stack: Vec<(A::State, Vec<A::Action>, usize)> = automaton
        .initial_states()
        .into_iter()
        .map(|s| (s, Vec::new(), 0))
        .collect();
    while let Some((s, trace, d)) = stack.pop() {
        out.insert(trace.clone());
        if d >= max_depth {
            continue;
        }
        for (a, s2) in automaton.transitions(&s) {
            let mut t2 = trace.clone();
            if automaton.is_external(&a) {
                t2.push(a);
            }
            stack.push((s2, t2, d + 1));
        }
    }
    out.into_iter().collect()
}

/// A seeded random execution of up to `steps` transitions; returns the
/// external trace. Deterministic in the seed.
///
/// # Example
///
/// ```
/// use slin_ioa::alm::{AlmAutomaton, AlmParams};
/// use slin_ioa::explore::random_walk;
/// let alm = AlmAutomaton::new(AlmParams { first: 1, last: 2, clients: 2, inputs: vec![1u8] });
/// assert_eq!(random_walk(&alm, 10, 3), random_walk(&alm, 10, 3));
/// ```
pub fn random_walk<A: Automaton>(automaton: &A, steps: usize, seed: u64) -> Vec<A::Action> {
    random_walk_with_bias(automaton, steps, seed, |_| 1)
}

/// Like [`random_walk`] but with a weight function biasing the choice of the
/// next action (weight 0 disables an action).
pub fn random_walk_with_bias<A, W>(
    automaton: &A,
    steps: usize,
    seed: u64,
    weight: W,
) -> Vec<A::Action>
where
    A: Automaton,
    W: Fn(&A::Action) -> u32,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let inits = automaton.initial_states();
    if inits.is_empty() {
        return Vec::new();
    }
    let mut state = inits[rng.gen_range(0..inits.len())].clone();
    let mut trace = Vec::new();
    for _ in 0..steps {
        let ts = automaton.transitions(&state);
        let weights: Vec<u32> = ts.iter().map(|(a, _)| weight(a)).collect();
        let total: u32 = weights.iter().sum();
        if total == 0 {
            break;
        }
        let mut pick = rng.gen_range(0..total);
        let mut chosen = 0;
        for (i, w) in weights.iter().enumerate() {
            if pick < *w {
                chosen = i;
                break;
            }
            pick -= w;
        }
        let (a, s2) = ts[chosen].clone();
        if automaton.is_external(&a) {
            trace.push(a);
        }
        state = s2;
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::testutil::{TickAction, TickTock};

    #[test]
    fn reachable_states_bounded_by_depth() {
        let a = TickTock { max: 5 };
        assert_eq!(reachable_states(&a, 2, 100).len(), 3); // 0, 1, 2
        assert_eq!(reachable_states(&a, 10, 100).len(), 6);
    }

    #[test]
    fn reachable_states_bounded_by_cap() {
        let a = TickTock { max: 200 };
        assert_eq!(reachable_states(&a, 1000, 10).len(), 10);
    }

    #[test]
    fn bounded_traces_contain_empty_trace() {
        let a = TickTock { max: 2 };
        let ts = bounded_traces(&a, 3);
        assert!(ts.contains(&vec![]));
        assert!(ts.contains(&vec![TickAction::Emit(0)]));
        assert!(ts.contains(&vec![TickAction::Emit(0), TickAction::Emit(1)]));
    }

    #[test]
    fn random_walk_deterministic() {
        let a = TickTock { max: 3 };
        assert_eq!(random_walk(&a, 8, 7), random_walk(&a, 8, 7));
    }

    #[test]
    fn bias_disables_actions() {
        let a = TickTock { max: 3 };
        // Forbid emissions: the walk is all internal, trace empty.
        let t = random_walk_with_bias(&a, 8, 1, |act| {
            if matches!(act, TickAction::Emit(_)) {
                0
            } else {
                1
            }
        });
        assert!(t.is_empty());
    }
}
