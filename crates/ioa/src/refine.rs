//! Trace-inclusion checking by subset construction.
//!
//! The paper proves its intra-object composition theorem for automata by
//! exhibiting a refinement mapping \[20\] from the composition of two
//! specification automata to a single one. Refinement mappings imply trace
//! inclusion; here we check trace inclusion directly and exhaustively on
//! bounded state spaces: for every reachable implementation step with an
//! external action, the specification (tracked as a *set* of states closed
//! under internal steps) must be able to match it.

use crate::automaton::Automaton;
use std::collections::{BTreeSet, HashSet, VecDeque};
use std::error::Error;
use std::fmt;

/// A refinement-check failure: the implementation can produce an external
/// trace the specification cannot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefinementError<Act> {
    /// The external trace prefix leading to the failure.
    pub trace: Vec<Act>,
    /// The external action the specification could not match.
    pub action: Act,
}

impl<Act: fmt::Debug> fmt::Display for RefinementError<Act> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "specification cannot match action {:?} after trace {:?}",
            self.action, self.trace
        )
    }
}

impl<Act: fmt::Debug> Error for RefinementError<Act> {}

/// The result of a bounded trace-inclusion check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InclusionReport {
    /// Inclusion verified over the whole bounded region.
    HoldsWithinBounds {
        /// Number of (implementation state, spec state-set) pairs explored.
        pairs_explored: usize,
    },
    /// The exploration hit the state cap before exhausting the region;
    /// inclusion holds on everything explored.
    CapReached {
        /// Number of pairs explored before stopping.
        pairs_explored: usize,
    },
}

/// Closure of a set of specification states under internal steps.
fn internal_closure<S: Automaton>(spec: &S, states: &mut BTreeSet<S::State>)
where
    S::State: Ord,
{
    let mut frontier: Vec<S::State> = states.iter().cloned().collect();
    while let Some(s) = frontier.pop() {
        for (a, s2) in spec.transitions(&s) {
            if !spec.is_external(&a) && states.insert(s2.clone()) {
                frontier.push(s2);
            }
        }
    }
}

/// Checks that every external trace of `imp` with at most `max_depth`
/// transitions is a trace of `spec` (bounded trace inclusion).
///
/// # Errors
///
/// Returns a [`RefinementError`] with a counterexample trace when inclusion
/// fails.
///
/// # Example
///
/// ```
/// use slin_ioa::alm::{AlmAutomaton, AlmParams};
/// use slin_ioa::refine::check_trace_inclusion;
/// let p = AlmParams { first: 1, last: 2, clients: 1, inputs: vec![1u8] };
/// let alm = AlmAutomaton::new(p.clone());
/// let same = AlmAutomaton::new(p);
/// // Any automaton refines itself.
/// assert!(check_trace_inclusion(&alm, &same, 6, 100_000).is_ok());
/// ```
pub fn check_trace_inclusion<I, S>(
    imp: &I,
    spec: &S,
    max_depth: usize,
    max_pairs: usize,
) -> Result<InclusionReport, RefinementError<I::Action>>
where
    I: Automaton,
    S: Automaton<Action = I::Action>,
    S::State: Ord,
{
    let mut spec_init: BTreeSet<S::State> = spec.initial_states().into_iter().collect();
    internal_closure(spec, &mut spec_init);

    type Pair<I1, S1> = (<I1 as Automaton>::State, BTreeSet<<S1 as Automaton>::State>);
    type Work<I1, S1> = (Pair<I1, S1>, Vec<<I1 as Automaton>::Action>, usize);
    let mut seen: HashSet<Pair<I, S>> = HashSet::new();
    let mut queue: VecDeque<Work<I, S>> = VecDeque::new();
    for s in imp.initial_states() {
        let pair = (s, spec_init.clone());
        if seen.insert(pair.clone()) {
            queue.push_back((pair, Vec::new(), 0));
        }
    }
    let mut capped = false;
    while let Some(((is, ss), trace, depth)) = queue.pop_front() {
        if depth >= max_depth {
            continue;
        }
        for (a, is2) in imp.transitions(&is) {
            let (ss2, trace2) = if imp.is_external(&a) {
                // The spec must match the action from some tracked state.
                let mut next: BTreeSet<S::State> = BTreeSet::new();
                for s in &ss {
                    for (b, s2) in spec.transitions(s) {
                        if b == a {
                            next.insert(s2);
                        }
                    }
                }
                if next.is_empty() {
                    return Err(RefinementError { trace, action: a });
                }
                internal_closure(spec, &mut next);
                let mut t2 = trace.clone();
                t2.push(a.clone());
                (next, t2)
            } else {
                (ss.clone(), trace.clone())
            };
            let pair = (is2, ss2);
            if seen.len() >= max_pairs {
                capped = true;
                continue;
            }
            if seen.insert(pair.clone()) {
                queue.push_back((pair, trace2, depth + 1));
            }
        }
    }
    let pairs_explored = seen.len();
    if capped {
        Ok(InclusionReport::CapReached { pairs_explored })
    } else {
        Ok(InclusionReport::HoldsWithinBounds { pairs_explored })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::testutil::{TickAction, TickTock};

    #[test]
    fn automaton_refines_itself() {
        let a = TickTock { max: 3 };
        let b = TickTock { max: 3 };
        let r = check_trace_inclusion(&a, &b, 8, 10_000).unwrap();
        assert!(matches!(r, InclusionReport::HoldsWithinBounds { .. }));
    }

    #[test]
    fn smaller_refines_larger() {
        let small = TickTock { max: 2 };
        let large = TickTock { max: 5 };
        assert!(check_trace_inclusion(&small, &large, 8, 10_000).is_ok());
    }

    #[test]
    fn larger_does_not_refine_smaller() {
        let small = TickTock { max: 1 };
        let large = TickTock { max: 3 };
        let err = check_trace_inclusion(&large, &small, 10, 10_000).unwrap_err();
        // The counterexample emits a count the small automaton can't reach.
        assert_eq!(err.action, TickAction::Emit(2));
    }

    #[test]
    fn cap_is_reported() {
        let a = TickTock { max: 50 };
        let b = TickTock { max: 50 };
        let r = check_trace_inclusion(&a, &b, 100, 5).unwrap();
        assert!(matches!(r, InclusionReport::CapReached { .. }));
    }
}
