//! The ALM ("abortable linearizable module") specification automaton
//! (paper Section 6).
//!
//! The automaton specifies speculative linearizability for the *universal
//! ADT* (outputs are full input histories) with the singleton relation
//! `rinit(h) = {h}`. Its state comprises the longest committed
//! linearization `hist`, a per-client phase (`Sleep`, `Pending`, `Ready`,
//! `Aborted`), the pending input of each client, the received init
//! histories, and the `aborted` / `initialized` flags. It takes the
//! nondeterministic steps of the paper:
//!
//! * **A1** (internal) — once some client is awake and the automaton is not
//!   yet initialized, set `hist` to the longest common prefix of the
//!   received init histories;
//! * **A2** (output) — respond to a pending client by appending its input to
//!   `hist` and emitting the new `hist`; disabled once `aborted` — this is
//!   what freezes `hist` and secures Abort-Order ("at this point hist does
//!   not grow anymore");
//! * **A3** (internal) — set `aborted`;
//! * **A4** (output) — switch a pending client out, emitting an abort value
//!   `h'` that extends `hist` by pending inputs only.
//!
//! Two variants are provided: the **strict** automaton above (the paper's),
//! and a **relaxed** one ([`AlmAutomaton::spec`]) whose responses may linearize
//! other clients' pending inputs in the same step. The relaxed variant is
//! needed as the *specification* when checking that a composition with
//! *hidden* interior switches refines a single phase: a hidden abort value
//! can transfer pending inputs into the next component's `hist`, and the
//! specification must be able to produce the resulting response in one
//! visible step. Every relaxed trace is still speculatively linearizable
//! (the workspace tests check both variants with
//! `slin_core::slin::SlinChecker`).

use crate::automaton::Automaton;
use slin_trace::{Action, ClientId, PhaseId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Debug;
use std::hash::Hash;

/// An external ALM action: a trace action of the universal ADT, with
/// histories as outputs and as switch values.
pub type AlmExt<I> = Action<I, Vec<I>, Vec<I>>;

/// An action of the ALM automaton.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum AlmAction<I> {
    /// An external action (invocation, response, or switch).
    Ext(AlmExt<I>),
    /// Internal step A1 of the automaton whose first phase is `phase`.
    Initialize {
        /// The owning automaton's first phase (disambiguates instances).
        phase: u32,
    },
    /// Internal step A3 of the automaton whose first phase is `phase`.
    MarkAborted {
        /// The owning automaton's first phase.
        phase: u32,
    },
}

impl<I: Debug> Debug for AlmAction<I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlmAction::Ext(a) => write!(f, "{a:?}"),
            AlmAction::Initialize { phase } => write!(f, "init@{phase}"),
            AlmAction::MarkAborted { phase } => write!(f, "abort@{phase}"),
        }
    }
}

/// Parameters of an ALM automaton instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlmParams<I = u8> {
    /// The phase interval lower bound `m` (1 for the first phase).
    pub first: u32,
    /// The phase interval upper bound `n` (the phase switched to).
    pub last: u32,
    /// Number of clients (identifiers `1..=clients`).
    pub clients: u32,
    /// The finite input pool enumerated by invocations and init histories.
    pub inputs: Vec<I>,
}

impl<I> AlmParams<I> {
    /// Upper bound on the length of enumerated incoming init histories.
    const MAX_INIT_HIST: usize = 2;
}

/// Per-client phase of the ALM automaton (paper Section 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ClientPhase {
    /// Not yet arrived in this speculation phase.
    Sleep,
    /// Waiting for a response to its pending input.
    Pending,
    /// Received its last response; may invoke again.
    Ready,
    /// Switched out to the next speculation phase.
    Aborted,
}

/// The state of the ALM automaton.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AlmState<I: Ord> {
    hist: Vec<I>,
    phase: BTreeMap<ClientId, ClientPhase>,
    pending: BTreeMap<ClientId, (u32, I)>,
    init_hists: BTreeSet<Vec<I>>,
    aborted: bool,
    initialized: bool,
}

impl<I: Ord + Clone> AlmState<I> {
    /// The longest linearization made visible to a client so far.
    pub fn hist(&self) -> &[I] {
        &self.hist
    }

    /// Whether step A3 has occurred.
    pub fn is_aborted(&self) -> bool {
        self.aborted
    }

    /// The phase of a client.
    pub fn client_phase(&self, c: ClientId) -> ClientPhase {
        self.phase.get(&c).copied().unwrap_or(ClientPhase::Sleep)
    }
}

/// The ALM specification automaton for speculation phase
/// `(first, last)`.
///
/// # Example
///
/// ```
/// use slin_ioa::alm::{AlmAutomaton, AlmParams};
/// use slin_ioa::automaton::Automaton;
///
/// let alm = AlmAutomaton::new(AlmParams { first: 1, last: 2, clients: 1, inputs: vec![7u8] });
/// let s0 = alm.initial_states().remove(0);
/// // Client 1 may invoke 7 from the initial state (next to the internal
/// // initialize / abort steps, which are always available).
/// let ts = alm.transitions(&s0);
/// assert!(ts.iter().any(|(a, _)| alm.is_external(a)));
/// ```
#[derive(Debug, Clone)]
pub struct AlmAutomaton<I = u8> {
    params: AlmParams<I>,
    multi_append: bool,
}

impl<I: Clone + Ord + Hash + Debug> AlmAutomaton<I> {
    /// The paper's (strict) specification automaton.
    pub fn new(params: AlmParams<I>) -> Self {
        assert!(params.first < params.last, "phase interval requires m < n");
        assert!(params.clients > 0, "at least one client");
        AlmAutomaton {
            params,
            multi_append: false,
        }
    }

    /// The relaxed variant whose responses may linearize other pending
    /// inputs in the same step (used as the specification when interior
    /// switch actions are hidden).
    pub fn spec(params: AlmParams<I>) -> Self {
        let mut a = AlmAutomaton::new(params);
        a.multi_append = true;
        a
    }

    /// The automaton's parameters.
    pub fn params(&self) -> &AlmParams<I> {
        &self.params
    }

    fn client_ids(&self) -> impl Iterator<Item = ClientId> {
        (1..=self.params.clients).map(ClientId::new)
    }

    /// Sub-phase labels usable by invocations and responses: `[m..n-1]`.
    fn op_labels(&self) -> impl Iterator<Item = u32> {
        self.params.first..self.params.last
    }

    /// Enumerates the candidate incoming init histories: sequences over the
    /// input pool of length `≤ MAX_INIT_HIST`.
    fn init_hist_pool(&self) -> Vec<Vec<I>> {
        let mut out: Vec<Vec<I>> = vec![Vec::new()];
        let mut layer: Vec<Vec<I>> = vec![Vec::new()];
        for _ in 0..AlmParams::<I>::MAX_INIT_HIST {
            let mut next = Vec::new();
            for h in &layer {
                for i in &self.params.inputs {
                    let mut h2 = h.clone();
                    h2.push(i.clone());
                    next.push(h2.clone());
                    out.push(h2);
                }
            }
            layer = next;
        }
        out
    }

    /// The pending inputs (of `Pending` clients) not already present in
    /// `hist` — the inputs abort values may append (step A4), and the extra
    /// inputs relaxed responses may linearize.
    fn loose_pending(&self, s: &AlmState<I>, except: Option<ClientId>) -> Vec<I> {
        let mut out = Vec::new();
        for (c, (_, i)) in &s.pending {
            if Some(*c) == except {
                continue;
            }
            if s.phase.get(c) == Some(&ClientPhase::Pending) && !s.hist.contains(i) {
                out.push(i.clone());
            }
        }
        out
    }

    /// All ordered arrangements of all subsets of `items` (small inputs
    /// only: used for abort-value and multi-append enumeration).
    fn arrangements(items: &[I]) -> Vec<Vec<I>> {
        let mut out = vec![Vec::new()];
        // Enumerate permutations of subsets by recursive selection.
        fn go<I: Clone + PartialEq>(
            items: &[I],
            current: &mut Vec<I>,
            used: &mut Vec<bool>,
            out: &mut Vec<Vec<I>>,
        ) {
            for k in 0..items.len() {
                if used[k] {
                    continue;
                }
                used[k] = true;
                current.push(items[k].clone());
                out.push(current.clone());
                go(items, current, used, out);
                current.pop();
                used[k] = false;
            }
        }
        let mut used = vec![false; items.len()];
        go(items, &mut Vec::new(), &mut used, &mut out);
        out.dedup();
        out
    }
}

impl<I: Clone + Ord + Hash + Debug> Automaton for AlmAutomaton<I> {
    type State = AlmState<I>;
    type Action = AlmAction<I>;

    fn initial_states(&self) -> Vec<Self::State> {
        let start = if self.params.first == 1 {
            // Phase 1 has no init switches: clients are immediately ready.
            ClientPhase::Ready
        } else {
            ClientPhase::Sleep
        };
        vec![AlmState {
            hist: Vec::new(),
            phase: self.client_ids().map(|c| (c, start)).collect(),
            pending: BTreeMap::new(),
            init_hists: BTreeSet::new(),
            aborted: false,
            initialized: false,
        }]
    }

    fn transitions(&self, s: &AlmState<I>) -> Vec<(AlmAction<I>, AlmState<I>)> {
        let mut out = Vec::new();
        let m = self.params.first;
        let n = self.params.last;

        // Input: invocations by ready clients, at any owned sub-phase label.
        for c in self.client_ids() {
            if s.phase.get(&c) == Some(&ClientPhase::Ready) {
                for o in self.op_labels() {
                    for i in &self.params.inputs {
                        let mut s2 = s.clone();
                        s2.phase.insert(c, ClientPhase::Pending);
                        s2.pending.insert(c, (o, i.clone()));
                        out.push((
                            AlmAction::Ext(Action::invoke(c, PhaseId::new(o), i.clone())),
                            s2,
                        ));
                    }
                }
            }
        }

        // Input: init switches (only when m > 1) by sleeping clients.
        if m > 1 {
            for c in self.client_ids() {
                if s.phase.get(&c) == Some(&ClientPhase::Sleep) {
                    for i in &self.params.inputs {
                        for h in self.init_hist_pool() {
                            let mut s2 = s.clone();
                            s2.phase.insert(c, ClientPhase::Pending);
                            s2.pending.insert(c, (m, i.clone()));
                            s2.init_hists.insert(h.clone());
                            out.push((
                                AlmAction::Ext(Action::switch(c, PhaseId::new(m), i.clone(), h)),
                                s2,
                            ));
                        }
                    }
                }
            }
        }

        // A1 (internal): initialize hist from the received init histories.
        if !s.initialized && s.phase.values().any(|p| *p != ClientPhase::Sleep) {
            let mut s2 = s.clone();
            s2.hist =
                slin_trace::seq::longest_common_prefix(s.init_hists.iter().map(|h| h.as_slice()));
            s2.initialized = true;
            out.push((AlmAction::Initialize { phase: m }, s2));
        }

        // A2 (output): respond to a pending client. Disabled once aborted —
        // hist must not grow after an abort value has been emitted. Also
        // disabled while the client's input is already present in hist
        // (the paper's definition of *pending*): the operation may already
        // have been linearized by an incoming init history or by an abort
        // value of the previous phase, and answering it again would
        // double-count the invocation.
        if s.initialized && !s.aborted {
            for c in self.client_ids() {
                if s.phase.get(&c) != Some(&ClientPhase::Pending) {
                    continue;
                }
                let (o_pending, input) = s.pending.get(&c).expect("pending client").clone();
                if s.hist.contains(&input) {
                    continue;
                }
                let extra_arrangements = if self.multi_append {
                    Self::arrangements(&self.loose_pending(s, Some(c)))
                } else {
                    vec![Vec::new()]
                };
                for extras in extra_arrangements {
                    let mut hist2 = s.hist.clone();
                    hist2.extend(extras);
                    hist2.push(input.clone());
                    // The response label may be any owned sub-phase: the
                    // client may have progressed past its invocation label
                    // behind hidden interior switches.
                    for o in self.op_labels().filter(|o| *o >= o_pending) {
                        let mut s2 = s.clone();
                        s2.hist = hist2.clone();
                        s2.phase.insert(c, ClientPhase::Ready);
                        s2.pending.remove(&c);
                        out.push((
                            AlmAction::Ext(Action::respond(
                                c,
                                PhaseId::new(o),
                                input.clone(),
                                hist2.clone(),
                            )),
                            s2,
                        ));
                    }
                }
            }
        }

        // A3 (internal): abort.
        if !s.aborted {
            let mut s2 = s.clone();
            s2.aborted = true;
            out.push((AlmAction::MarkAborted { phase: m }, s2));
        }

        // A4 (output): switch a pending client out with an abort value
        // extending hist by pending inputs.
        if s.aborted && s.initialized {
            for c in self.client_ids() {
                if s.phase.get(&c) != Some(&ClientPhase::Pending) {
                    continue;
                }
                let (_, input) = s.pending.get(&c).expect("pending client").clone();
                for extras in Self::arrangements(&self.loose_pending(s, None)) {
                    let mut h2 = s.hist.clone();
                    h2.extend(extras);
                    let mut s2 = s.clone();
                    s2.phase.insert(c, ClientPhase::Aborted);
                    s2.pending.remove(&c);
                    out.push((
                        AlmAction::Ext(Action::switch(c, PhaseId::new(n), input.clone(), h2)),
                        s2,
                    ));
                }
            }
        }

        out
    }

    fn in_signature(&self, action: &AlmAction<I>) -> bool {
        let m = self.params.first;
        let n = self.params.last;
        match action {
            AlmAction::Ext(Action::Invoke { phase, .. })
            | AlmAction::Ext(Action::Respond { phase, .. }) => (m..n).contains(&phase.value()),
            AlmAction::Ext(Action::Switch { phase, .. }) => {
                (phase.value() == m && m > 1) || phase.value() == n
            }
            AlmAction::Initialize { phase } | AlmAction::MarkAborted { phase } => *phase == m,
        }
    }

    fn is_external(&self, action: &AlmAction<I>) -> bool {
        matches!(action, AlmAction::Ext(_))
    }
}

/// Extracts the trace-model actions from an ALM action sequence (dropping
/// internal steps), ready for the checkers of `slin-core`.
pub fn external_trace<I: Clone>(actions: &[AlmAction<I>]) -> slin_trace::Trace<AlmExt<I>> {
    actions
        .iter()
        .filter_map(|a| match a {
            AlmAction::Ext(e) => Some(e.clone()),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{bounded_traces, random_walk};

    fn small(first: u32, last: u32) -> AlmAutomaton<u8> {
        AlmAutomaton::new(AlmParams {
            first,
            last,
            clients: 2,
            inputs: vec![1, 2],
        })
    }

    #[test]
    fn initial_phase_depends_on_m() {
        let a1 = small(1, 2);
        let s = a1.initial_states().remove(0);
        assert_eq!(s.client_phase(ClientId::new(1)), ClientPhase::Ready);
        let a2 = small(2, 3);
        let s = a2.initial_states().remove(0);
        assert_eq!(s.client_phase(ClientId::new(1)), ClientPhase::Sleep);
    }

    #[test]
    fn respond_requires_initialization() {
        let a = small(1, 2);
        let s0 = a.initial_states().remove(0);
        // Invoke client 1.
        let (_, s1) = a
            .transitions(&s0)
            .into_iter()
            .find(|(act, _)| matches!(act, AlmAction::Ext(Action::Invoke { .. })))
            .unwrap();
        // No response enabled before A1.
        assert!(!a
            .transitions(&s1)
            .iter()
            .any(|(act, _)| matches!(act, AlmAction::Ext(Action::Respond { .. }))));
        // After A1, the response appends to hist.
        let (_, s2) = a
            .transitions(&s1)
            .into_iter()
            .find(|(act, _)| matches!(act, AlmAction::Initialize { .. }))
            .unwrap();
        let resp = a
            .transitions(&s2)
            .into_iter()
            .find(|(act, _)| matches!(act, AlmAction::Ext(Action::Respond { .. })));
        assert!(resp.is_some());
        let (_, s3) = resp.unwrap();
        assert_eq!(s3.hist().len(), 1);
    }

    #[test]
    fn aborted_automaton_stops_responding() {
        let a = small(1, 2);
        let s0 = a.initial_states().remove(0);
        let (_, s1) = a
            .transitions(&s0)
            .into_iter()
            .find(|(act, _)| matches!(act, AlmAction::Ext(Action::Invoke { .. })))
            .unwrap();
        let (_, s2) = a
            .transitions(&s1)
            .into_iter()
            .find(|(act, _)| matches!(act, AlmAction::Initialize { .. }))
            .unwrap();
        let (_, s3) = a
            .transitions(&s2)
            .into_iter()
            .find(|(act, _)| matches!(act, AlmAction::MarkAborted { .. }))
            .unwrap();
        assert!(s3.is_aborted());
        // No A2 response, but A4 switch-out is enabled.
        let ts = a.transitions(&s3);
        assert!(!ts
            .iter()
            .any(|(act, _)| matches!(act, AlmAction::Ext(Action::Respond { .. }))));
        assert!(ts
            .iter()
            .any(|(act, _)| matches!(act, AlmAction::Ext(Action::Switch { .. }))));
    }

    #[test]
    fn second_phase_accepts_init_switches() {
        let a = small(2, 3);
        let s0 = a.initial_states().remove(0);
        let inits: Vec<_> = a
            .transitions(&s0)
            .into_iter()
            .filter(|(act, _)| matches!(act, AlmAction::Ext(Action::Switch { .. })))
            .collect();
        assert!(!inits.is_empty());
        // All incoming switches are labelled with the phase's m.
        for (act, s1) in &inits {
            if let AlmAction::Ext(Action::Switch { phase, .. }) = act {
                assert_eq!(phase.value(), 2);
            }
            assert!(
                s1.client_phase(ClientId::new(1)) == ClientPhase::Pending
                    || s1.client_phase(ClientId::new(2)) == ClientPhase::Pending
            );
        }
    }

    #[test]
    fn walks_are_deterministic_and_bounded() {
        let a = small(1, 2);
        assert_eq!(random_walk(&a, 15, 5), random_walk(&a, 15, 5));
        assert!(random_walk(&a, 15, 5).len() <= 15);
    }

    #[test]
    fn bounded_traces_include_complete_operations() {
        let a = AlmAutomaton::new(AlmParams {
            first: 1,
            last: 2,
            clients: 1,
            inputs: vec![9u8],
        });
        let traces = bounded_traces(&a, 4);
        // Some trace contains an invocation followed by a response of [9].
        assert!(traces.iter().any(|t| {
            t.len() == 2
                && matches!(&t[0], AlmAction::Ext(Action::Invoke { .. }))
                && matches!(&t[1], AlmAction::Ext(Action::Respond { output, .. }) if output == &vec![9u8])
        }));
    }

    #[test]
    fn spec_variant_multi_appends() {
        let a = AlmAutomaton::spec(AlmParams {
            first: 1,
            last: 2,
            clients: 2,
            inputs: vec![1u8, 2],
        });
        // Both clients invoke; a single response may linearize both inputs.
        let s0 = a.initial_states().remove(0);
        let mut s = s0;
        for _ in 0..2 {
            let (_, s2) = a
                .transitions(&s)
                .into_iter()
                .find(|(act, _)| matches!(act, AlmAction::Ext(Action::Invoke { .. })))
                .unwrap();
            s = s2;
        }
        let (_, s) = a
            .transitions(&s)
            .into_iter()
            .find(|(act, _)| matches!(act, AlmAction::Initialize { .. }))
            .unwrap();
        let two_at_once = a.transitions(&s).into_iter().any(|(act, _)| {
            matches!(act, AlmAction::Ext(Action::Respond { output, .. }) if output.len() == 2)
        });
        assert!(two_at_once);
    }
}
