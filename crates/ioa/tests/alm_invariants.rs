//! State invariants of the ALM automaton, in the spirit of the 15 state
//! invariants the paper's Isabelle proof maintains: checked over the whole
//! bounded-reachable state space and along random executions.

use slin_ioa::alm::{AlmAction, AlmAutomaton, AlmParams, ClientPhase};
use slin_ioa::automaton::Automaton;
use slin_ioa::explore::reachable_states;
use slin_trace::seq::is_prefix;
use slin_trace::Action;

fn params(first: u32, last: u32, clients: u32, inputs: Vec<u8>) -> AlmParams<u8> {
    AlmParams {
        first,
        last,
        clients,
        inputs,
    }
}

/// hist never shrinks along any transition, and it is only ever extended —
/// the state-level root of Commit-Order.
#[test]
fn hist_grows_by_extension_only() {
    for alm in [
        AlmAutomaton::new(params(1, 2, 2, vec![1, 2])),
        AlmAutomaton::new(params(2, 3, 2, vec![1, 2])),
        AlmAutomaton::spec(params(1, 3, 2, vec![1, 2])),
    ] {
        for s in reachable_states(&alm, 5, 20_000) {
            for (_, s2) in alm.transitions(&s) {
                assert!(
                    is_prefix(s.hist(), s2.hist()),
                    "hist changed non-monotonically: {:?} -> {:?}",
                    s.hist(),
                    s2.hist()
                );
            }
        }
    }
}

/// Once aborted, hist is frozen (the paper's "at this point hist does not
/// grow anymore") — the state-level root of Abort-Order.
#[test]
fn aborted_states_freeze_hist() {
    let alm = AlmAutomaton::new(params(1, 2, 2, vec![1, 2]));
    for s in reachable_states(&alm, 6, 40_000) {
        if s.is_aborted() {
            for (_, s2) in alm.transitions(&s) {
                assert_eq!(s.hist(), s2.hist(), "hist grew after abort");
            }
        }
    }
}

/// Responses carry exactly the post-state hist, and emitted abort values
/// extend the pre-state hist — the automaton's outputs are truthful.
#[test]
fn outputs_are_truthful() {
    let alm = AlmAutomaton::new(params(1, 2, 2, vec![1, 2]));
    for s in reachable_states(&alm, 6, 40_000) {
        for (a, s2) in alm.transitions(&s) {
            match a {
                AlmAction::Ext(Action::Respond { output, .. }) => {
                    assert_eq!(output.as_slice(), s2.hist());
                }
                AlmAction::Ext(Action::Switch { value, .. }) => {
                    // Incoming switches (phase m, only when m > 1) carry
                    // arbitrary init histories; outgoing ones extend hist.
                    assert!(is_prefix(s.hist(), &value) || s.hist() == s2.hist());
                }
                _ => {}
            }
        }
    }
}

/// Client phases follow the Sleep → Pending → Ready/Aborted discipline:
/// no transition revives an aborted client.
#[test]
fn aborted_clients_stay_aborted() {
    let alm = AlmAutomaton::new(params(2, 3, 2, vec![1]));
    for s in reachable_states(&alm, 6, 40_000) {
        for (_, s2) in alm.transitions(&s) {
            for c in 1..=2 {
                let c = slin_trace::ClientId::new(c);
                if s.client_phase(c) == ClientPhase::Aborted {
                    assert_eq!(s2.client_phase(c), ClientPhase::Aborted);
                }
            }
        }
    }
}

/// Responses only happen between initialization and abort.
#[test]
fn responses_gated_by_lifecycle() {
    let alm = AlmAutomaton::new(params(1, 2, 2, vec![1, 2]));
    for s in reachable_states(&alm, 6, 40_000) {
        let responding = alm
            .transitions(&s)
            .into_iter()
            .any(|(a, _)| matches!(a, AlmAction::Ext(Action::Respond { .. })));
        if responding {
            assert!(!s.is_aborted(), "response enabled after abort");
        }
    }
}
