//! Offline drop-in subset of `parking_lot`: a [`Mutex`] with the
//! no-poisoning `lock()` signature, backed by `std::sync::Mutex`.
//!
//! The workspace builds in environments with no access to crates.io; this
//! stub keeps call sites source-compatible with the real crate.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock whose `lock()` never returns a poison error
/// (matching `parking_lot`'s API).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. A panic while the
    /// lock was held does not poison it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = std::sync::Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
