//! Offline drop-in subset of the `rand` crate.
//!
//! The workspace builds in environments with no access to crates.io, so this
//! vendored stub provides exactly the API surface the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over
//! integer ranges, and [`Rng::gen_bool`].
//!
//! The generator is SplitMix64 — statistically solid for simulation and test
//! workloads and deterministic in the seed, which is all the workspace
//! requires (seeds pin traces, not specific upstream `rand` streams).

#![forbid(unsafe_code)]

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose output is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from an integer range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]: {p}");
        // 53 uniform mantissa bits in [0, 1); strictly below 1.0, so p = 1.0
        // always succeeds and p = 0.0 never does.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for ::core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// The generators shipped by this stub.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seeded generator: SplitMix64.
    ///
    /// Deterministic in the seed; not cryptographically secure (neither is
    /// upstream `StdRng` a stability guarantee — only determinism is).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_the_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5..=5u32);
            assert_eq!(y, 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}
