//! Offline drop-in subset of the `criterion` benchmarking crate.
//!
//! The workspace builds in environments with no access to crates.io; this
//! stub keeps the bench targets source-compatible with real criterion and
//! measures each benchmark with a simple warm-up + N-sample loop, printing
//! `name ... mean <t> (min <t>, N samples)` lines instead of criterion's
//! statistical report. Set `CRITERION_SAMPLES=<n>` to change the sample
//! count (default 10; 1 makes bench runs a fast smoke pass).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Where plots would be rendered (accepted and ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlottingBackend {
    /// No plots.
    None,
    /// Gnuplot (ignored).
    Gnuplot,
    /// The plotters crate (ignored).
    Plotters,
}

/// How batched inputs are grouped (accepted and ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// The identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// A parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

fn samples() -> usize {
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(10)
}

/// The measurement context handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            samples: Vec::new(),
        }
    }

    /// Times `routine` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..samples() {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Lets `routine` measure itself: it receives an iteration count and
    /// returns the total elapsed time for that many iterations.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut routine: F) {
        let n = samples() as u64;
        let total = routine(n);
        for _ in 0..n {
            self.samples.push(total / n as u32);
        }
    }

    /// Times `routine` on inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..samples() {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<48} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = *self.samples.iter().min().expect("non-empty");
        println!(
            "{id:<48} mean {mean:>12?}  (min {min:>12?}, {} samples)",
            self.samples.len()
        );
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark identified by `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Runs one parameterized benchmark over `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Ends the group (prints a separator).
    pub fn finish(self) {
        println!();
    }
}

/// The top-level benchmark harness configuration.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepts and ignores the plotting backend.
    pub fn plotting_backend(self, _backend: PlottingBackend) -> Self {
        self
    }

    /// Accepts and ignores the warm-up time (the stub's first sample doubles
    /// as warm-up).
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepts and ignores the statistical sample size (use
    /// `CRITERION_SAMPLES` to change the stub's loop count).
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Accepts and ignores the measurement time.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepts and ignores CLI configuration.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup {
            name,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&id.id);
        self
    }
}

/// Declares a benchmark group: both the `name/config/targets` form and the
/// positional `(group_name, target, ...)` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.bench_function("iter", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3u32, |b, &x| {
            b.iter_batched(|| x, |v| v * 2, BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn harness_runs_groups() {
        criterion_group! {
            name = benches;
            config = Criterion::default().sample_size(5);
            targets = quick_bench
        }
        benches();
    }
}
