//! The [`any`] entry point and the [`Arbitrary`] trait.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The full-domain strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u64_covers_high_bits() {
        let mut rng = TestRng::from_seed(1);
        let strat = any::<u64>();
        assert!((0..100).any(|_| strat.new_value(&mut rng) > u64::MAX / 2));
    }
}
