//! The deterministic test runner: pinned seed, per-case RNG, no shrinking.

/// The pinned base seed all `cargo test` runs use by default, making the
/// generated corpus a reproducible regression suite (override with the
/// `PROPTEST_RNG_SEED` environment variable to explore a fresh corpus).
pub const PINNED_SEED: u64 = 0x5EED_1205_2012_0001;

/// Why a single generated case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion failed with the given message.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure from a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

/// Configuration of a property test (the subset the workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` generated cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The pseudo-random source handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next pseudo-random 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Drives the cases of one property test.
pub struct TestRunner {
    config: ProptestConfig,
    base_seed: u64,
}

impl TestRunner {
    /// Creates a runner with the given configuration; the base seed comes
    /// from `PROPTEST_RNG_SEED` or [`PINNED_SEED`].
    pub fn new(config: ProptestConfig) -> Self {
        let base_seed = std::env::var("PROPTEST_RNG_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(PINNED_SEED);
        TestRunner { config, base_seed }
    }

    /// The base seed this runner derives per-case seeds from.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// Runs every case; panics (failing the enclosing `#[test]`) on the
    /// first case whose closure returns an error.
    pub fn run_cases<F>(&mut self, test_name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        for index in 0..self.config.cases {
            let mut rng = TestRng::from_seed(case_seed(self.base_seed, test_name, index));
            if let Err(TestCaseError::Fail(message)) = case(&mut rng) {
                panic!(
                    "proptest `{test_name}` failed at case {index}/{} \
                     (base seed {:#x}; set PROPTEST_RNG_SEED to replay): {message}",
                    self.config.cases, self.base_seed,
                );
            }
        }
    }
}

/// Derives the per-case seed: a hash of base seed, test name and case index,
/// so distinct tests explore distinct corpora under the one pinned seed.
pub fn case_seed(base: u64, test_name: &str, index: u32) -> u64 {
    let mut h = base ^ 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    h = (h ^ index as u64).wrapping_mul(0x1000_0000_01b3);
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seeds_differ_across_tests_and_cases() {
        assert_ne!(case_seed(1, "a", 0), case_seed(1, "b", 0));
        assert_ne!(case_seed(1, "a", 0), case_seed(1, "a", 1));
        assert_eq!(case_seed(1, "a", 7), case_seed(1, "a", 7));
    }

    #[test]
    #[should_panic(expected = "failed at case 3")]
    fn runner_reports_failing_case_index() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(10));
        let mut n = 0u32;
        runner.run_cases("runner_reports_failing_case_index", |_| {
            n += 1;
            if n == 4 {
                Err(TestCaseError::fail("boom"))
            } else {
                Ok(())
            }
        });
    }
}
