//! Boolean strategies (`prop::bool::ANY`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy generating both booleans uniformly.
#[derive(Debug, Clone, Copy)]
pub struct BoolStrategy;

/// Uniformly random booleans.
pub const ANY: BoolStrategy = BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;
    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_values_occur() {
        let mut rng = TestRng::from_seed(2);
        let vals: Vec<bool> = (0..64).map(|_| ANY.new_value(&mut rng)).collect();
        assert!(vals.iter().any(|&b| b) && vals.iter().any(|&b| !b));
    }
}
