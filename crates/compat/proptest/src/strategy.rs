//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// is a pure function of the RNG stream, which the pinned-seed runner makes
/// fully reproducible.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for ::core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl Strategy for ::core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(5);
        for _ in 0..500 {
            let v = (1..4u64).new_value(&mut rng);
            assert!((1..4).contains(&v));
        }
    }

    #[test]
    fn map_and_tuples_compose() {
        let strat = (0..3u32, 0..3u8).prop_map(|(a, b)| a as usize + b as usize);
        let mut rng = TestRng::from_seed(9);
        for _ in 0..100 {
            assert!(strat.new_value(&mut rng) <= 4);
        }
    }

    #[test]
    fn just_clones_the_value() {
        let mut rng = TestRng::from_seed(0);
        assert_eq!(Just(41u8).new_value(&mut rng), 41);
    }
}
