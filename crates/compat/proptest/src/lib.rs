//! Offline drop-in subset of the `proptest` crate.
//!
//! The workspace builds in environments with no access to crates.io, so this
//! stub reimplements the slice of proptest the workspace test suites use:
//!
//! * the [`strategy::Strategy`] trait with [`strategy::Strategy::prop_map`],
//!   implemented for integer ranges, tuples (up to 4), [`collection::vec()`],
//!   [`arbitrary::any`], and [`bool::ANY`];
//! * the [`proptest!`] macro with the `arg in strategy` binder syntax and
//!   the optional `#![proptest_config(...)]` header;
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`];
//! * a deterministic [`test_runner::TestRunner`] driven by the **pinned
//!   seed** [`test_runner::PINNED_SEED`], so every `cargo test` run explores
//!   the identical corpus (the upstream crate persists regression seeds in
//!   `proptest-regressions/`; here the whole corpus *is* the regression
//!   file). Set `PROPTEST_RNG_SEED=<u64>` to explore a different corpus
//!   locally.
//!
//! No shrinking is performed: on failure the runner reports the case index
//! and base seed, which — determinism — is enough to replay.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod bool;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The conventional glob import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespaced strategies, mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Returns early from a proptest case with a failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Returns early from a proptest case when two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`\n{}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Returns early from a proptest case when two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a deterministic multi-case test.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strategy:expr ),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                runner.run_cases(stringify!($name), |rng| {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::new_value(&($strategy), rng);
                    )*
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}
