//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A range of collection sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        debug_assert!(self.min < self.max);
        self.min + rng.below((self.max - self.min) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange {
            min: len,
            max: len + 1,
        }
    }
}

impl From<::core::ops::Range<usize>> for SizeRange {
    fn from(r: ::core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<::core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: ::core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

/// Generates a `Vec` whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_the_range() {
        let strat = vec(0..5u8, 2..6);
        let mut rng = TestRng::from_seed(3);
        for _ in 0..200 {
            let v = strat.new_value(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn fixed_length_from_usize() {
        let strat = vec(0..2u8, 4usize);
        let mut rng = TestRng::from_seed(3);
        assert_eq!(strat.new_value(&mut rng).len(), 4);
    }

    #[test]
    fn nested_vec_strategies() {
        let strat = vec(vec(0..5u8, 0..8), 1..5);
        let mut rng = TestRng::from_seed(11);
        let v = strat.new_value(&mut rng);
        assert!((1..5).contains(&v.len()));
    }
}
