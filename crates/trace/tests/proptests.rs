//! Property-based tests for the trace substrate: algebraic laws of
//! multisets, the prefix order, projections, and well-formedness.

use proptest::prelude::*;
use slin_trace::seq::{comparable, concat, is_prefix, is_strict_prefix, longest_common_prefix};
use slin_trace::wf;
use slin_trace::{Action, ClientId, Multiset, PersistentMultiset, PhaseId, Trace};

fn small_vec() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0..5u8, 0..8)
}

/// The proptest corpora are pinned: the same base seed regenerates the same
/// inputs, so tier-1 runs explore an identical regression corpus in CI
/// (`PROPTEST_RNG_SEED` overrides the pin for local exploration).
#[test]
fn pinned_seed_corpus_is_reproducible() {
    use proptest::test_runner::{case_seed, TestRng, PINNED_SEED};
    let strat = (small_vec(), any::<u64>(), 0..7u32);
    for case in 0..32 {
        let seed = case_seed(PINNED_SEED, "pinned_corpus", case);
        let a = strat.new_value(&mut TestRng::from_seed(seed));
        let b = strat.new_value(&mut TestRng::from_seed(seed));
        assert_eq!(a, b, "case {case}");
    }
}

proptest! {
    // ---- multiset laws ----

    #[test]
    fn multiset_union_is_commutative(a in small_vec(), b in small_vec()) {
        let (ma, mb) = (Multiset::elems(&a), Multiset::elems(&b));
        prop_assert_eq!(ma.union_max(&mb), mb.union_max(&ma));
    }

    #[test]
    fn multiset_union_is_idempotent(a in small_vec()) {
        let m = Multiset::elems(&a);
        prop_assert_eq!(m.union_max(&m), m);
    }

    #[test]
    fn multiset_sum_is_commutative_and_counts(a in small_vec(), b in small_vec()) {
        let (ma, mb) = (Multiset::elems(&a), Multiset::elems(&b));
        prop_assert_eq!(ma.sum(&mb), mb.sum(&ma));
        prop_assert_eq!(ma.sum(&mb).len(), a.len() + b.len());
    }

    #[test]
    fn multiset_subset_is_a_partial_order(a in small_vec(), b in small_vec(), c in small_vec()) {
        let (ma, mb, mc) = (Multiset::elems(&a), Multiset::elems(&b), Multiset::elems(&c));
        // Reflexive.
        prop_assert!(ma.is_subset_of(&ma));
        // Antisymmetric.
        if ma.is_subset_of(&mb) && mb.is_subset_of(&ma) {
            prop_assert_eq!(&ma, &mb);
        }
        // Transitive.
        if ma.is_subset_of(&mb) && mb.is_subset_of(&mc) {
            prop_assert!(ma.is_subset_of(&mc));
        }
    }

    #[test]
    fn union_is_least_upper_bound(a in small_vec(), b in small_vec()) {
        let (ma, mb) = (Multiset::elems(&a), Multiset::elems(&b));
        let u = ma.union_max(&mb);
        prop_assert!(ma.is_subset_of(&u));
        prop_assert!(mb.is_subset_of(&u));
        // The union embeds in the sum.
        prop_assert!(u.is_subset_of(&ma.sum(&mb)));
    }

    #[test]
    fn remove_inverts_insert(a in small_vec(), x in 0..5u8) {
        let mut m = Multiset::elems(&a);
        let before = m.clone();
        m.insert(x);
        prop_assert!(m.remove(&x));
        prop_assert_eq!(m, before);
    }

    // ---- prefix-order laws ----

    #[test]
    fn prefix_is_reflexive_and_concat_extends(a in small_vec(), b in small_vec()) {
        prop_assert!(is_prefix(&a, &a));
        let ab = concat(&a, &b);
        prop_assert!(is_prefix(&a, &ab));
        prop_assert_eq!(is_strict_prefix(&a, &ab), !b.is_empty());
    }

    #[test]
    fn lcp_is_a_common_prefix_and_maximal(xs in prop::collection::vec(small_vec(), 1..5)) {
        let lcp = longest_common_prefix(xs.iter().map(|v| v.as_slice()));
        for x in &xs {
            prop_assert!(is_prefix(&lcp, x));
        }
        // Maximality: extending by the next element of the first sequence
        // breaks common-prefix-ness (unless lcp is the first sequence).
        if lcp.len() < xs[0].len() {
            let mut longer = lcp.clone();
            longer.push(xs[0][lcp.len()]);
            prop_assert!(!xs.iter().all(|x| is_prefix(&longer, x)));
        }
    }

    #[test]
    fn comparability_matches_definition(a in small_vec(), b in small_vec()) {
        prop_assert_eq!(comparable(&a, &b), is_prefix(&a, &b) || is_prefix(&b, &a));
    }

    // ---- trace and projection laws ----

    #[test]
    fn projection_is_idempotent_and_shrinking(events in prop::collection::vec((0..4u32, 0..3u8), 0..12)) {
        let t: Trace<Action<u8, u8, u8>> = events
            .iter()
            .map(|&(c, i)| Action::invoke(ClientId::new(c + 1), PhaseId::FIRST, i))
            .collect();
        let keep = |a: &Action<u8, u8, u8>| a.client().value().is_multiple_of(2);
        let p1 = t.project(keep);
        let p2 = p1.project(keep);
        prop_assert_eq!(&p1, &p2);
        prop_assert!(p1.len() <= t.len());
    }

    #[test]
    fn client_subtraces_partition_events(events in prop::collection::vec((0..4u32, 0..3u8), 0..12)) {
        let t: Trace<Action<u8, u8, u8>> = events
            .iter()
            .map(|&(c, i)| Action::invoke(ClientId::new(c + 1), PhaseId::FIRST, i))
            .collect();
        let total: usize = wf::clients(&t)
            .into_iter()
            .map(|c| wf::client_subtrace(&t, c, None).len())
            .sum();
        prop_assert_eq!(total, t.len());
    }

    // ---- well-formedness closure properties ----

    #[test]
    fn alternating_client_traces_are_well_formed(inputs in prop::collection::vec(0..4u8, 0..6)) {
        // Build a single-client strictly alternating trace: always WF,
        // with or without a trailing pending invocation.
        let c = ClientId::new(1);
        let mut actions: Vec<Action<u8, u8, u8>> = Vec::new();
        for &i in &inputs {
            actions.push(Action::invoke(c, PhaseId::FIRST, i));
            actions.push(Action::respond(c, PhaseId::FIRST, i, i));
        }
        let complete: Trace<_> = actions.iter().cloned().collect();
        prop_assert!(wf::is_well_formed(&complete));
        actions.push(Action::invoke(c, PhaseId::FIRST, 9));
        let pending: Trace<_> = actions.into_iter().collect();
        prop_assert!(wf::is_well_formed(&pending));
    }

    #[test]
    fn well_formedness_is_preserved_by_truncation(inputs in prop::collection::vec(0..4u8, 0..6), cut in 0..12usize) {
        let c = ClientId::new(1);
        let mut actions: Vec<Action<u8, u8, u8>> = Vec::new();
        for &i in &inputs {
            actions.push(Action::invoke(c, PhaseId::FIRST, i));
            actions.push(Action::respond(c, PhaseId::FIRST, i, i));
        }
        let t: Trace<_> = actions.into_iter().collect();
        let cut = cut.min(t.len());
        // A prefix of a well-formed trace is well-formed (safety property).
        prop_assert!(wf::is_well_formed(&t.truncate_to(cut)));
    }
}

// ---- persistent multiset ≡ multiset (differential laws) ----
//
// `PersistentMultiset` must be observationally equal to the reference
// `Multiset` under arbitrary operation interleavings: the checkers thread
// the persistent form through bound snapshots, memo keys, and frontier
// `used` sets purely for its O(1) clone and structure sharing — never for
// different semantics.

/// One step of a random multiset program.
#[derive(Debug, Clone)]
enum MsOp {
    Insert(u8),
    Remove(u8),
    /// Replace the accumulator with `acc.union_max(elems(operand))`.
    UnionMax(Vec<u8>),
    /// Replace the accumulator with `acc.sum(elems(operand))`.
    Sum(Vec<u8>),
}

fn ms_op() -> impl Strategy<Value = MsOp> {
    // Insert- and remove-heavy mix, with occasional bulk operations.
    (0..8u8, 0..6u8, prop::collection::vec(0..6u8, 0..5)).prop_map(|(sel, e, other)| match sel {
        0..=2 => MsOp::Insert(e),
        3..=5 => MsOp::Remove(e),
        6 => MsOp::UnionMax(other),
        _ => MsOp::Sum(other),
    })
}

/// Checks every observation the checkers rely on.
fn assert_agree(m: &Multiset<u8>, p: &PersistentMultiset<u8>) -> Result<(), TestCaseError> {
    prop_assert_eq!(m.len(), p.len());
    prop_assert_eq!(m.distinct_len(), p.distinct_len());
    prop_assert_eq!(m.is_empty(), p.is_empty());
    for e in 0..8u8 {
        prop_assert_eq!(m.count(&e), p.count(&e), "count({})", e);
        prop_assert_eq!(m.contains(&e), p.contains(&e), "contains({})", e);
    }
    // The iterators agree as maps (orders differ: BTreeMap vs trie).
    let mi: std::collections::BTreeMap<u8, usize> = m.iter().map(|(e, c)| (*e, c)).collect();
    let pi: std::collections::BTreeMap<u8, usize> = p.iter().map(|(e, c)| (*e, c)).collect();
    prop_assert_eq!(mi, pi);
    Ok(())
}

/// Runs one random program against both implementations, re-checking
/// observational agreement after every step (kept outside the `proptest!`
/// macro — its body is token-expanded and chokes on long functions).
fn run_differential_program(init: &[u8], ops: &[MsOp]) -> Result<(), TestCaseError> {
    let mut m = Multiset::elems(init);
    let mut p = PersistentMultiset::elems(init);
    assert_agree(&m, &p)?;
    for op in ops {
        match op {
            MsOp::Insert(e) => {
                m.insert(*e);
                p.insert(*e);
            }
            MsOp::Remove(e) => {
                prop_assert_eq!(m.remove(e), p.remove(e));
            }
            MsOp::UnionMax(other) => {
                m = m.union_max(&Multiset::elems(other));
                p = p.union_max(&PersistentMultiset::elems(other));
            }
            MsOp::Sum(other) => {
                m = m.sum(&Multiset::elems(other));
                p = p.sum(&PersistentMultiset::elems(other));
            }
        }
        assert_agree(&m, &p)?;
    }
    Ok(())
}

/// Semantic equality/hash agreement for pointer-disjoint construction
/// paths (sorted insertion order + a push/pop round-trip on one side).
fn check_semantic_equality(a: &[u8], b: &mut [u8]) -> Result<(), TestCaseError> {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let pa = PersistentMultiset::elems(a);
    b.sort_unstable();
    let mut pb = PersistentMultiset::elems(&*b);
    pb.insert(0);
    pb.remove(&0);
    let equal_contents = Multiset::elems(a) == Multiset::elems(b);
    prop_assert_eq!(pa == pb, equal_contents);
    if equal_contents {
        let hash = |p: &PersistentMultiset<u8>| {
            let mut h = DefaultHasher::new();
            p.hash(&mut h);
            h.finish()
        };
        prop_assert_eq!(hash(&pa), hash(&pb));
    }
    Ok(())
}

proptest! {
    #[test]
    fn persistent_multiset_matches_reference_under_random_programs(
        init in small_vec(),
        ops in prop::collection::vec(ms_op(), 0..24),
    ) {
        run_differential_program(&init, &ops)?;
    }
}

proptest! {
    #[test]
    fn persistent_subset_matches_reference(a in small_vec(), b in small_vec()) {
        let (ma, mb) = (Multiset::elems(&a), Multiset::elems(&b));
        let (pa, pb) = (PersistentMultiset::elems(&a), PersistentMultiset::elems(&b));
        prop_assert_eq!(ma.is_subset_of(&mb), pa.is_subset_of(&pb));
        prop_assert_eq!(mb.is_subset_of(&ma), pb.is_subset_of(&pa));
    }
}

proptest! {
    #[test]
    fn persistent_equality_is_semantic(a in small_vec(), b in small_vec()) {
        let mut b = b;
        check_semantic_equality(&a, &mut b)?;
    }
}

proptest! {
    #[test]
    fn persistent_clones_share_structure_without_aliasing(init in small_vec(), e in 0..6u8) {
        let base = PersistentMultiset::elems(&init);
        let mut fork = base.clone();
        fork.insert(e);
        // The clone diverged; the original is untouched (path copying).
        prop_assert_eq!(fork.count(&e), base.count(&e) + 1);
        prop_assert_eq!(fork.len(), base.len() + 1);
        prop_assert_eq!(&PersistentMultiset::elems(&init), &base);
    }
}
