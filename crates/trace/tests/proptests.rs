//! Property-based tests for the trace substrate: algebraic laws of
//! multisets, the prefix order, projections, and well-formedness.

use proptest::prelude::*;
use slin_trace::seq::{comparable, concat, is_prefix, is_strict_prefix, longest_common_prefix};
use slin_trace::wf;
use slin_trace::{Action, ClientId, Multiset, PhaseId, Trace};

fn small_vec() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0..5u8, 0..8)
}

/// The proptest corpora are pinned: the same base seed regenerates the same
/// inputs, so tier-1 runs explore an identical regression corpus in CI
/// (`PROPTEST_RNG_SEED` overrides the pin for local exploration).
#[test]
fn pinned_seed_corpus_is_reproducible() {
    use proptest::test_runner::{case_seed, TestRng, PINNED_SEED};
    let strat = (small_vec(), any::<u64>(), 0..7u32);
    for case in 0..32 {
        let seed = case_seed(PINNED_SEED, "pinned_corpus", case);
        let a = strat.new_value(&mut TestRng::from_seed(seed));
        let b = strat.new_value(&mut TestRng::from_seed(seed));
        assert_eq!(a, b, "case {case}");
    }
}

proptest! {
    // ---- multiset laws ----

    #[test]
    fn multiset_union_is_commutative(a in small_vec(), b in small_vec()) {
        let (ma, mb) = (Multiset::elems(&a), Multiset::elems(&b));
        prop_assert_eq!(ma.union_max(&mb), mb.union_max(&ma));
    }

    #[test]
    fn multiset_union_is_idempotent(a in small_vec()) {
        let m = Multiset::elems(&a);
        prop_assert_eq!(m.union_max(&m), m);
    }

    #[test]
    fn multiset_sum_is_commutative_and_counts(a in small_vec(), b in small_vec()) {
        let (ma, mb) = (Multiset::elems(&a), Multiset::elems(&b));
        prop_assert_eq!(ma.sum(&mb), mb.sum(&ma));
        prop_assert_eq!(ma.sum(&mb).len(), a.len() + b.len());
    }

    #[test]
    fn multiset_subset_is_a_partial_order(a in small_vec(), b in small_vec(), c in small_vec()) {
        let (ma, mb, mc) = (Multiset::elems(&a), Multiset::elems(&b), Multiset::elems(&c));
        // Reflexive.
        prop_assert!(ma.is_subset_of(&ma));
        // Antisymmetric.
        if ma.is_subset_of(&mb) && mb.is_subset_of(&ma) {
            prop_assert_eq!(&ma, &mb);
        }
        // Transitive.
        if ma.is_subset_of(&mb) && mb.is_subset_of(&mc) {
            prop_assert!(ma.is_subset_of(&mc));
        }
    }

    #[test]
    fn union_is_least_upper_bound(a in small_vec(), b in small_vec()) {
        let (ma, mb) = (Multiset::elems(&a), Multiset::elems(&b));
        let u = ma.union_max(&mb);
        prop_assert!(ma.is_subset_of(&u));
        prop_assert!(mb.is_subset_of(&u));
        // The union embeds in the sum.
        prop_assert!(u.is_subset_of(&ma.sum(&mb)));
    }

    #[test]
    fn remove_inverts_insert(a in small_vec(), x in 0..5u8) {
        let mut m = Multiset::elems(&a);
        let before = m.clone();
        m.insert(x);
        prop_assert!(m.remove(&x));
        prop_assert_eq!(m, before);
    }

    // ---- prefix-order laws ----

    #[test]
    fn prefix_is_reflexive_and_concat_extends(a in small_vec(), b in small_vec()) {
        prop_assert!(is_prefix(&a, &a));
        let ab = concat(&a, &b);
        prop_assert!(is_prefix(&a, &ab));
        prop_assert_eq!(is_strict_prefix(&a, &ab), !b.is_empty());
    }

    #[test]
    fn lcp_is_a_common_prefix_and_maximal(xs in prop::collection::vec(small_vec(), 1..5)) {
        let lcp = longest_common_prefix(xs.iter().map(|v| v.as_slice()));
        for x in &xs {
            prop_assert!(is_prefix(&lcp, x));
        }
        // Maximality: extending by the next element of the first sequence
        // breaks common-prefix-ness (unless lcp is the first sequence).
        if lcp.len() < xs[0].len() {
            let mut longer = lcp.clone();
            longer.push(xs[0][lcp.len()]);
            prop_assert!(!xs.iter().all(|x| is_prefix(&longer, x)));
        }
    }

    #[test]
    fn comparability_matches_definition(a in small_vec(), b in small_vec()) {
        prop_assert_eq!(comparable(&a, &b), is_prefix(&a, &b) || is_prefix(&b, &a));
    }

    // ---- trace and projection laws ----

    #[test]
    fn projection_is_idempotent_and_shrinking(events in prop::collection::vec((0..4u32, 0..3u8), 0..12)) {
        let t: Trace<Action<u8, u8, u8>> = events
            .iter()
            .map(|&(c, i)| Action::invoke(ClientId::new(c + 1), PhaseId::FIRST, i))
            .collect();
        let keep = |a: &Action<u8, u8, u8>| a.client().value().is_multiple_of(2);
        let p1 = t.project(keep);
        let p2 = p1.project(keep);
        prop_assert_eq!(&p1, &p2);
        prop_assert!(p1.len() <= t.len());
    }

    #[test]
    fn client_subtraces_partition_events(events in prop::collection::vec((0..4u32, 0..3u8), 0..12)) {
        let t: Trace<Action<u8, u8, u8>> = events
            .iter()
            .map(|&(c, i)| Action::invoke(ClientId::new(c + 1), PhaseId::FIRST, i))
            .collect();
        let total: usize = wf::clients(&t)
            .into_iter()
            .map(|c| wf::client_subtrace(&t, c, None).len())
            .sum();
        prop_assert_eq!(total, t.len());
    }

    // ---- well-formedness closure properties ----

    #[test]
    fn alternating_client_traces_are_well_formed(inputs in prop::collection::vec(0..4u8, 0..6)) {
        // Build a single-client strictly alternating trace: always WF,
        // with or without a trailing pending invocation.
        let c = ClientId::new(1);
        let mut actions: Vec<Action<u8, u8, u8>> = Vec::new();
        for &i in &inputs {
            actions.push(Action::invoke(c, PhaseId::FIRST, i));
            actions.push(Action::respond(c, PhaseId::FIRST, i, i));
        }
        let complete: Trace<_> = actions.iter().cloned().collect();
        prop_assert!(wf::is_well_formed(&complete));
        actions.push(Action::invoke(c, PhaseId::FIRST, 9));
        let pending: Trace<_> = actions.into_iter().collect();
        prop_assert!(wf::is_well_formed(&pending));
    }

    #[test]
    fn well_formedness_is_preserved_by_truncation(inputs in prop::collection::vec(0..4u8, 0..6), cut in 0..12usize) {
        let c = ClientId::new(1);
        let mut actions: Vec<Action<u8, u8, u8>> = Vec::new();
        for &i in &inputs {
            actions.push(Action::invoke(c, PhaseId::FIRST, i));
            actions.push(Action::respond(c, PhaseId::FIRST, i, i));
        }
        let t: Trace<_> = actions.into_iter().collect();
        let cut = cut.min(t.len());
        // A prefix of a well-formed trace is well-formed (safety property).
        prop_assert!(wf::is_well_formed(&t.truncate_to(cut)));
    }
}
