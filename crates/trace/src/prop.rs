//! Signatures and trace properties (paper Definitions 1–3).
//!
//! A *signature* classifies actions into disjoint input and output sets; a
//! *trace property* is a signature together with a set of traces. Because the
//! action universe of a concurrent object is infinite (inputs and switch
//! values range over arbitrary data), signatures are represented by
//! *membership predicates* rather than by enumerated sets, and trace
//! properties by *decision procedures* rather than extensional sets.

use crate::trace::Trace;

/// Classification of an action within a signature.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Polarity {
    /// The action is an input of the component (controlled by its
    /// environment).
    Input,
    /// The action is an output of the component (controlled by the component
    /// itself).
    Output,
}

/// A signature `sig = (in, out)`: a pair of disjoint action sets, given
/// intensionally by a classification function.
///
/// `acts(sig)` is the set of actions with a `Some(_)` polarity.
pub trait Signature<A> {
    /// Classifies `action`: `Some(Input)`, `Some(Output)`, or `None` when the
    /// action does not belong to `acts(sig)`.
    fn polarity(&self, action: &A) -> Option<Polarity>;

    /// Whether `action ∈ acts(sig)`.
    fn contains(&self, action: &A) -> bool {
        self.polarity(action).is_some()
    }

    /// Whether `action ∈ in(sig)`.
    fn is_input(&self, action: &A) -> bool {
        self.polarity(action) == Some(Polarity::Input)
    }

    /// Whether `action ∈ out(sig)`.
    fn is_output(&self, action: &A) -> bool {
        self.polarity(action) == Some(Polarity::Output)
    }

    /// Whether every event of `t` belongs to `acts(sig)` ("t is a trace in
    /// sig").
    fn admits_trace(&self, t: &Trace<A>) -> bool {
        t.iter().all(|a| self.contains(a))
    }

    /// Signature compatibility (Definition 2 precondition): `self` and
    /// `other` share no *output* actions.
    ///
    /// Because signatures are intensional, compatibility can only be checked
    /// relative to a finite set of witness actions; this helper checks the
    /// events of a given trace.
    fn compatible_on<S: Signature<A>>(&self, other: &S, witnesses: &Trace<A>) -> bool {
        witnesses
            .iter()
            .all(|a| !(self.is_output(a) && other.is_output(a)))
    }
}

/// A trace property `P = (sig, Traces)` (Definition 1), represented by a
/// decision procedure for trace membership.
///
/// `Q ⊨ P` ("Q satisfies P") for a concrete finite system `Q` holds when
/// every generated trace of `Q` is accepted by `P`; see
/// [`satisfies`].
pub trait TraceProperty<A> {
    /// Whether `t ∈ Traces(P)`.
    fn holds(&self, t: &Trace<A>) -> bool;
}

impl<A, F: Fn(&Trace<A>) -> bool> TraceProperty<A> for F {
    fn holds(&self, t: &Trace<A>) -> bool {
        self(t)
    }
}

/// Checks `Q ⊨ P` for a finite set of observed traces: every trace of the
/// system satisfies the property. Returns the index of the first violating
/// trace on failure.
///
/// # Example
///
/// ```
/// use slin_trace::prop::satisfies;
/// use slin_trace::Trace;
///
/// let traces: Vec<Trace<u8>> = vec![Trace::from_actions(vec![1, 2])];
/// let even_len = |t: &Trace<u8>| t.len() % 2 == 0;
/// assert_eq!(satisfies(&traces, &even_len), Ok(()));
/// ```
pub fn satisfies<A, P: TraceProperty<A>>(traces: &[Trace<A>], prop: &P) -> Result<(), usize> {
    for (i, t) in traces.iter().enumerate() {
        if !prop.holds(t) {
            return Err(i);
        }
    }
    Ok(())
}

/// The composed property `P1 ‖ P2` (Definition 2), checked on a trace by
/// projecting onto each component signature: `t ∈ Traces(P1‖P2)` iff
/// `proj(t, acts(P1)) ∈ Traces(P1)` and `proj(t, acts(P2)) ∈ Traces(P2)`.
#[derive(Debug, Clone)]
pub struct Compose<S1, P1, S2, P2> {
    sig1: S1,
    prop1: P1,
    sig2: S2,
    prop2: P2,
}

impl<S1, P1, S2, P2> Compose<S1, P1, S2, P2> {
    /// Builds the composition of `(sig1, prop1)` and `(sig2, prop2)`.
    pub fn new(sig1: S1, prop1: P1, sig2: S2, prop2: P2) -> Self {
        Compose {
            sig1,
            prop1,
            sig2,
            prop2,
        }
    }
}

impl<A, S1, P1, S2, P2> TraceProperty<A> for Compose<S1, P1, S2, P2>
where
    A: Clone,
    S1: Signature<A>,
    P1: TraceProperty<A>,
    S2: Signature<A>,
    P2: TraceProperty<A>,
{
    fn holds(&self, t: &Trace<A>) -> bool {
        // Every event must belong to at least one component signature.
        if !t
            .iter()
            .all(|a| self.sig1.contains(a) || self.sig2.contains(a))
        {
            return false;
        }
        let t1 = t.project(|a| self.sig1.contains(a));
        let t2 = t.project(|a| self.sig2.contains(a));
        self.prop1.holds(&t1) && self.prop2.holds(&t2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Evens;
    impl Signature<u32> for Evens {
        fn polarity(&self, a: &u32) -> Option<Polarity> {
            a.is_multiple_of(2).then_some(Polarity::Output)
        }
    }

    struct Odds;
    impl Signature<u32> for Odds {
        fn polarity(&self, a: &u32) -> Option<Polarity> {
            (!a.is_multiple_of(2)).then_some(Polarity::Input)
        }
    }

    #[test]
    fn closure_predicates() {
        assert!(Evens.contains(&2));
        assert!(Evens.is_output(&2));
        assert!(!Evens.is_input(&2));
        assert!(!Evens.contains(&3));
    }

    #[test]
    fn admits_trace_checks_all_events() {
        let t = Trace::from_actions(vec![2u32, 4, 6]);
        assert!(Evens.admits_trace(&t));
        let t2 = Trace::from_actions(vec![2u32, 3]);
        assert!(!Evens.admits_trace(&t2));
    }

    #[test]
    fn compatibility_on_witnesses() {
        let t = Trace::from_actions(vec![1u32, 2, 3]);
        assert!(Evens.compatible_on(&Odds, &t));
    }

    #[test]
    fn composition_projects_and_checks_both() {
        // prop1: all even events are <= 4; prop2: at most one odd event.
        let p1 = |t: &Trace<u32>| t.iter().all(|a| *a <= 4);
        let p2 = |t: &Trace<u32>| t.len() <= 1;
        let comp = Compose::new(Evens, p1, Odds, p2);
        assert!(comp.holds(&Trace::from_actions(vec![2u32, 3, 4])));
        assert!(!comp.holds(&Trace::from_actions(vec![6u32, 3])));
        assert!(!comp.holds(&Trace::from_actions(vec![2u32, 3, 5])));
    }

    #[test]
    fn satisfies_reports_first_violation() {
        let traces = vec![
            Trace::from_actions(vec![2u32]),
            Trace::from_actions(vec![3u32]),
        ];
        let all_even = |t: &Trace<u32>| t.iter().all(|a| a % 2 == 0);
        assert_eq!(satisfies(&traces, &all_even), Err(1));
    }
}
