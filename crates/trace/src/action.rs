//! The action alphabet of concurrent objects and speculation phases.
//!
//! Section 4.2 of the paper models the interface of a concurrent object of an
//! ADT `T` by invocation actions `inv(c, n, in)` and response actions
//! `res(c, n, in, out)`; Section 5.1 adds switch actions `swi(c, n, in, v)`
//! carrying a *switch value* `v` from one speculation phase to the next.
//!
//! The second parameter `n` is the *phase number* ([`PhaseId`]): a switch
//! action labelled with phase `n` transfers the pending input of a client
//! *into* phase `n` (it is an output of phase `n − 1` and an input of phase
//! `n`).

use std::fmt;

/// Identifier of a sequential client process.
///
/// Clients are asynchronous and sequential: a client never invokes the object
/// before its preceding invocation returned (paper Section 2.2).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ClientId(u32);

impl ClientId {
    /// Creates a client identifier from its numeric value.
    pub fn new(id: u32) -> Self {
        ClientId(id)
    }

    /// The numeric value of this identifier.
    pub fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl From<u32> for ClientId {
    fn from(id: u32) -> Self {
        ClientId(id)
    }
}

/// Identifier of a speculation phase (a natural number, 1-based).
///
/// Speculation phase `n` may only switch to speculation phase `n + 1`
/// (paper Section 5.1); clients start in phase [`PhaseId::FIRST`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhaseId(u32);

impl PhaseId {
    /// The first speculation phase (phase 1). Clients start here.
    pub const FIRST: PhaseId = PhaseId(1);

    /// Creates a phase identifier.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`; phases are numbered starting at 1.
    pub fn new(n: u32) -> Self {
        assert!(n > 0, "phase identifiers are 1-based");
        PhaseId(n)
    }

    /// The numeric value of this phase.
    pub fn value(self) -> u32 {
        self.0
    }

    /// The next phase, `n + 1` — the only phase this one may switch to.
    pub fn next(self) -> PhaseId {
        PhaseId(self.0 + 1)
    }

    /// The previous phase, `n - 1`.
    ///
    /// # Panics
    ///
    /// Panics when called on phase 1.
    pub fn prev(self) -> PhaseId {
        assert!(self.0 > 1, "phase 1 has no predecessor");
        PhaseId(self.0 - 1)
    }

    /// Whether this phase lies in the closed interval `[m..n]`.
    pub fn in_range(self, m: PhaseId, n: PhaseId) -> bool {
        m.0 <= self.0 && self.0 <= n.0
    }
}

impl fmt::Debug for PhaseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ph{}", self.0)
    }
}

impl fmt::Display for PhaseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for PhaseId {
    fn from(n: u32) -> Self {
        PhaseId::new(n)
    }
}

/// An event at the interface between clients and a (speculative)
/// implementation of a concurrent object.
///
/// `I` is the ADT input type, `O` the ADT output type and `V` the switch
/// value type (use `()` when the object has a single phase and no switches).
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Action<I, O, V> {
    /// `inv(c, n, in)` — client `c` invokes input `in` in phase `n`.
    Invoke {
        /// The invoking client.
        client: ClientId,
        /// The phase receiving the invocation.
        phase: PhaseId,
        /// The ADT input submitted.
        input: I,
    },
    /// `res(c, n, in, out)` — phase `n` responds `out` to client `c`'s
    /// pending input `in`.
    Respond {
        /// The client receiving the response.
        client: ClientId,
        /// The phase producing the response.
        phase: PhaseId,
        /// The pending input being answered.
        input: I,
        /// The ADT output returned.
        output: O,
    },
    /// `swi(c, n, in, v)` — client `c` switches *into* phase `n`, carrying
    /// its pending input `in` and switch value `v`.
    Switch {
        /// The switching client.
        client: ClientId,
        /// The destination phase (source phase is `n − 1`).
        phase: PhaseId,
        /// The pending input transferred to the next phase.
        input: I,
        /// The switch value interpreted through the common relation `rinit`.
        value: V,
    },
}

impl<I, O, V> Action<I, O, V> {
    /// Builds an invocation action.
    pub fn invoke(client: ClientId, phase: PhaseId, input: I) -> Self {
        Action::Invoke {
            client,
            phase,
            input,
        }
    }

    /// Builds a response action.
    pub fn respond(client: ClientId, phase: PhaseId, input: I, output: O) -> Self {
        Action::Respond {
            client,
            phase,
            input,
            output,
        }
    }

    /// Builds a switch action into `phase`.
    pub fn switch(client: ClientId, phase: PhaseId, input: I, value: V) -> Self {
        Action::Switch {
            client,
            phase,
            input,
            value,
        }
    }

    /// The client performing this action.
    pub fn client(&self) -> ClientId {
        match self {
            Action::Invoke { client, .. }
            | Action::Respond { client, .. }
            | Action::Switch { client, .. } => *client,
        }
    }

    /// The phase label of this action.
    pub fn phase(&self) -> PhaseId {
        match self {
            Action::Invoke { phase, .. }
            | Action::Respond { phase, .. }
            | Action::Switch { phase, .. } => *phase,
        }
    }

    /// The ADT input carried by this action.
    pub fn input(&self) -> &I {
        match self {
            Action::Invoke { input, .. }
            | Action::Respond { input, .. }
            | Action::Switch { input, .. } => input,
        }
    }

    /// Whether this is an invocation action.
    pub fn is_invoke(&self) -> bool {
        matches!(self, Action::Invoke { .. })
    }

    /// Whether this is a response action.
    pub fn is_respond(&self) -> bool {
        matches!(self, Action::Respond { .. })
    }

    /// Whether this is a switch action.
    pub fn is_switch(&self) -> bool {
        matches!(self, Action::Switch { .. })
    }

    /// The output carried by a response action, if any.
    pub fn output(&self) -> Option<&O> {
        match self {
            Action::Respond { output, .. } => Some(output),
            _ => None,
        }
    }

    /// The switch value carried by a switch action, if any.
    pub fn switch_value(&self) -> Option<&V> {
        match self {
            Action::Switch { value, .. } => Some(value),
            _ => None,
        }
    }
}

impl<I: fmt::Debug, O: fmt::Debug, V: fmt::Debug> fmt::Debug for Action<I, O, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Invoke {
                client,
                phase,
                input,
            } => write!(f, "inv({client:?}, {phase:?}, {input:?})"),
            Action::Respond {
                client,
                phase,
                input,
                output,
            } => write!(f, "res({client:?}, {phase:?}, {input:?}, {output:?})"),
            Action::Switch {
                client,
                phase,
                input,
                value,
            } => write!(f, "swi({client:?}, {phase:?}, {input:?}, {value:?})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type A = Action<u32, u32, &'static str>;

    #[test]
    fn accessors_return_constituents() {
        let c = ClientId::new(3);
        let inv: A = Action::invoke(c, PhaseId::FIRST, 10);
        let res: A = Action::respond(c, PhaseId::FIRST, 10, 42);
        let swi: A = Action::switch(c, PhaseId::new(2), 10, "v");
        assert_eq!(inv.client(), c);
        assert_eq!(res.phase(), PhaseId::FIRST);
        assert_eq!(*swi.input(), 10);
        assert_eq!(res.output(), Some(&42));
        assert_eq!(inv.output(), None);
        assert_eq!(swi.switch_value(), Some(&"v"));
        assert!(inv.is_invoke() && res.is_respond() && swi.is_switch());
    }

    #[test]
    fn phase_arithmetic() {
        let p = PhaseId::FIRST;
        assert_eq!(p.next(), PhaseId::new(2));
        assert!(PhaseId::new(2).in_range(PhaseId::new(1), PhaseId::new(3)));
        assert!(!PhaseId::new(4).in_range(PhaseId::new(1), PhaseId::new(3)));
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn phase_zero_rejected() {
        let _ = PhaseId::new(0);
    }

    #[test]
    fn debug_rendering_is_compact() {
        let a: A = Action::invoke(ClientId::new(1), PhaseId::FIRST, 5);
        assert_eq!(format!("{a:?}"), "inv(c1, ph1, 5)");
    }
}
