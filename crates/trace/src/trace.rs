//! Traces: finite sequences of actions (paper Section 3, "Trace Properties").

use std::fmt;
use std::ops::Index;

/// A finite sequence of actions observed at the interface between a system
/// and its environment.
///
/// Indexing follows Rust conventions (0-based) while the paper is 1-based;
/// all documentation in this workspace uses 0-based indices.
///
/// # Example
///
/// ```
/// use slin_trace::{Action, ClientId, PhaseId, Trace};
///
/// let c = ClientId::new(1);
/// let mut t: Trace<Action<u8, u8, ()>> = Trace::new();
/// t.push(Action::invoke(c, PhaseId::FIRST, 7));
/// t.push(Action::respond(c, PhaseId::FIRST, 7, 7));
/// let invs = t.project(|a| a.is_invoke());
/// assert_eq!(invs.len(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Trace<A> {
    actions: Vec<A>,
}

impl<A> Trace<A> {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace {
            actions: Vec::new(),
        }
    }

    /// Creates a trace from a vector of actions.
    pub fn from_actions(actions: Vec<A>) -> Self {
        Trace { actions }
    }

    /// Number of events in the trace (`|t|`).
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether the trace contains no events.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Appends an event (`t :: a`).
    pub fn push(&mut self, action: A) {
        self.actions.push(action);
    }

    /// The actions as a slice.
    pub fn as_slice(&self) -> &[A] {
        &self.actions
    }

    /// Consumes the trace and returns the underlying vector.
    pub fn into_inner(self) -> Vec<A> {
        self.actions
    }

    /// Iterates over the events in order.
    pub fn iter(&self) -> std::slice::Iter<'_, A> {
        self.actions.iter()
    }

    /// The truncation `t|m`: the first `m` events.
    ///
    /// # Panics
    ///
    /// Panics if `m > self.len()`.
    pub fn truncate_to(&self, m: usize) -> Trace<A>
    where
        A: Clone,
    {
        Trace {
            actions: self.actions[..m].to_vec(),
        }
    }

    /// The projection `proj(t, A)` of the trace onto the actions satisfying
    /// `keep`: removes every event not selected, preserving order.
    pub fn project<F>(&self, mut keep: F) -> Trace<A>
    where
        A: Clone,
        F: FnMut(&A) -> bool,
    {
        Trace {
            actions: self.actions.iter().filter(|a| keep(a)).cloned().collect(),
        }
    }

    /// Like [`Trace::project`], additionally returning for each kept event
    /// its index in `self` (the `pos'` correspondence used throughout the
    /// paper's composition proof, Appendix C).
    pub fn project_indexed<F>(&self, mut keep: F) -> (Trace<A>, Vec<usize>)
    where
        A: Clone,
        F: FnMut(&A) -> bool,
    {
        let mut kept = Vec::new();
        let mut pos = Vec::new();
        for (i, a) in self.actions.iter().enumerate() {
            if keep(a) {
                kept.push(a.clone());
                pos.push(i);
            }
        }
        (Trace { actions: kept }, pos)
    }

    /// Concatenation `t ::: t2`.
    pub fn concat(&self, t2: &Trace<A>) -> Trace<A>
    where
        A: Clone,
    {
        let mut actions = self.actions.clone();
        actions.extend_from_slice(&t2.actions);
        Trace { actions }
    }
}

impl<A> Default for Trace<A> {
    fn default() -> Self {
        Trace::new()
    }
}

impl<A> Index<usize> for Trace<A> {
    type Output = A;

    fn index(&self, i: usize) -> &A {
        &self.actions[i]
    }
}

impl<A> FromIterator<A> for Trace<A> {
    fn from_iter<I: IntoIterator<Item = A>>(iter: I) -> Self {
        Trace {
            actions: iter.into_iter().collect(),
        }
    }
}

impl<A> Extend<A> for Trace<A> {
    fn extend<I: IntoIterator<Item = A>>(&mut self, iter: I) {
        self.actions.extend(iter);
    }
}

impl<A> IntoIterator for Trace<A> {
    type Item = A;
    type IntoIter = std::vec::IntoIter<A>;

    fn into_iter(self) -> Self::IntoIter {
        self.actions.into_iter()
    }
}

impl<'a, A> IntoIterator for &'a Trace<A> {
    type Item = &'a A;
    type IntoIter = std::slice::Iter<'a, A>;

    fn into_iter(self) -> Self::IntoIter {
        self.actions.iter()
    }
}

impl<A: fmt::Debug> fmt::Debug for Trace<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.actions.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Action, ClientId, PhaseId};

    type A = Action<u32, u32, ()>;

    fn sample() -> Trace<A> {
        let c1 = ClientId::new(1);
        let c2 = ClientId::new(2);
        Trace::from_actions(vec![
            Action::invoke(c1, PhaseId::FIRST, 1),
            Action::invoke(c2, PhaseId::FIRST, 2),
            Action::respond(c2, PhaseId::FIRST, 2, 2),
            Action::respond(c1, PhaseId::FIRST, 1, 2),
        ])
    }

    #[test]
    fn projection_preserves_order() {
        let t = sample();
        let c1 = ClientId::new(1);
        let p = t.project(|a| a.client() == c1);
        assert_eq!(p.len(), 2);
        assert!(p[0].is_invoke() && p[1].is_respond());
    }

    #[test]
    fn project_indexed_reports_positions() {
        let t = sample();
        let (p, pos) = t.project_indexed(|a| a.is_respond());
        assert_eq!(p.len(), 2);
        assert_eq!(pos, vec![2, 3]);
    }

    #[test]
    fn truncate_to_is_paper_truncation() {
        let t = sample();
        let t2 = t.truncate_to(2);
        assert_eq!(t2.len(), 2);
        assert!(t2[1].is_invoke());
    }

    #[test]
    fn concat_appends() {
        let t = sample();
        let both = t.concat(&t);
        assert_eq!(both.len(), 8);
    }

    #[test]
    fn collects_from_iterator() {
        let t: Trace<A> = sample().into_iter().filter(|a| a.is_invoke()).collect();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn empty_projection_of_empty_trace() {
        let t: Trace<A> = Trace::new();
        assert!(t.project(|_| true).is_empty());
        assert!(t.is_empty());
    }
}
