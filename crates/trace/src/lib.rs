//! Trace-theoretic substrate for speculative linearizability.
//!
//! This crate implements Section 3 of *Speculative Linearizability*
//! (Guerraoui, Kuncak, Losa — PLDI 2012): finite sequences and their prefix
//! order, multisets with the union (`∪`, pointwise max) and sum (`⊎`,
//! pointwise addition) operations, the action alphabet of concurrent objects
//! and speculation phases (`inv`/`res`/`swi`), signatures classifying actions
//! into inputs and outputs, traces, projections, and the well-formedness
//! conditions of Sections 4.5 and 5.4 of the paper.
//!
//! Everything here is deliberately independent of any particular abstract
//! data type: actions are generic over the input type `I`, the output type
//! `O`, and the switch-value type `V`.
//!
//! # Example
//!
//! ```
//! use slin_trace::{Action, ClientId, PhaseId, Trace};
//!
//! let c1 = ClientId::new(1);
//! let t: Trace<Action<&str, &str, ()>> = Trace::from_actions(vec![
//!     Action::invoke(c1, PhaseId::FIRST, "propose(1)"),
//!     Action::respond(c1, PhaseId::FIRST, "propose(1)", "decide(1)"),
//! ]);
//! assert!(slin_trace::wf::is_well_formed(&t));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod multiset;
pub mod pmultiset;
pub mod prop;
pub mod seq;
pub mod sig;
pub mod trace;
pub mod wf;

pub use action::{Action, ClientId, PhaseId};
pub use multiset::Multiset;
pub use pmultiset::PersistentMultiset;
pub use prop::{Polarity, Signature, TraceProperty};
pub use sig::PhaseSignature;
pub use trace::Trace;
