//! Multisets (paper Section 3, "Multisets").
//!
//! The paper represents multisets of elements of a set `E` by multiplicity
//! functions `E → ℕ` and uses three operations:
//!
//! * `(m1 ∪ m2)(e) = max(m1(e), m2(e))` — [`Multiset::union_max`];
//! * `(m1 ⊎ m2)(e) = m1(e) + m2(e)` — [`Multiset::sum`];
//! * `m1 ⊆ m2 ⟺ ∀e. m1(e) ≤ m2(e)` — [`Multiset::is_subset_of`].
//!
//! The `elems` function mapping a sequence to the multiset of its elements is
//! [`Multiset::from_iter`] / [`Multiset::elems`].

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

/// A finite multiset over an element type `E`, represented by its
/// multiplicity function.
///
/// Entries with multiplicity zero are never stored, so structural equality of
/// the underlying maps coincides with multiset equality.
///
/// # Example
///
/// ```
/// use slin_trace::Multiset;
///
/// let a: Multiset<&str> = ["x", "x", "y"].into_iter().collect();
/// let b: Multiset<&str> = ["x", "y", "y"].into_iter().collect();
/// assert_eq!(a.count(&"x"), 2);
/// assert_eq!(a.union_max(&b).count(&"y"), 2);
/// assert_eq!(a.sum(&b).count(&"x"), 3);
/// assert!(!a.is_subset_of(&b));
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Multiset<E: Eq + Hash> {
    counts: HashMap<E, usize>,
}

impl<E: Eq + Hash> Multiset<E> {
    /// Creates an empty multiset.
    pub fn new() -> Self {
        Multiset {
            counts: HashMap::new(),
        }
    }

    /// The multiset of elements of a sequence (the paper's `elems`).
    pub fn elems(seq: &[E]) -> Self
    where
        E: Clone,
    {
        seq.iter().cloned().collect()
    }

    /// The multiplicity of `e` (zero if absent).
    pub fn count(&self, e: &E) -> usize {
        self.counts.get(e).copied().unwrap_or(0)
    }

    /// Whether `e` occurs at least once (the paper writes `e ∈ s` for
    /// `elems(s)(e) > 0`).
    pub fn contains(&self, e: &E) -> bool {
        self.count(e) > 0
    }

    /// Inserts one occurrence of `e`.
    pub fn insert(&mut self, e: E) {
        *self.counts.entry(e).or_insert(0) += 1;
    }

    /// Removes one occurrence of `e`; returns `false` if `e` was absent.
    pub fn remove(&mut self, e: &E) -> bool
    where
        E: Clone,
    {
        match self.counts.get_mut(e) {
            Some(c) if *c > 1 => {
                *c -= 1;
                true
            }
            Some(_) => {
                self.counts.remove(e);
                true
            }
            None => false,
        }
    }

    /// Total number of element occurrences.
    pub fn len(&self) -> usize {
        self.counts.values().sum()
    }

    /// Whether the multiset is empty.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Number of *distinct* elements.
    pub fn distinct_len(&self) -> usize {
        self.counts.len()
    }

    /// Pointwise maximum `m1 ∪ m2` (the paper's multiset union).
    pub fn union_max(&self, other: &Self) -> Self
    where
        E: Clone,
    {
        let mut out = self.clone();
        for (e, &c) in &other.counts {
            let cur = out.counts.entry(e.clone()).or_insert(0);
            *cur = (*cur).max(c);
        }
        out
    }

    /// Pointwise sum `m1 ⊎ m2`.
    pub fn sum(&self, other: &Self) -> Self
    where
        E: Clone,
    {
        let mut out = self.clone();
        for (e, &c) in &other.counts {
            *out.counts.entry(e.clone()).or_insert(0) += c;
        }
        out
    }

    /// Multiset inclusion `self ⊆ other`.
    pub fn is_subset_of(&self, other: &Self) -> bool {
        self.counts.iter().all(|(e, &c)| c <= other.count(e))
    }

    /// Iterates over `(element, multiplicity)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&E, usize)> {
        self.counts.iter().map(|(e, &c)| (e, c))
    }
}

impl<E: Eq + Hash> FromIterator<E> for Multiset<E> {
    fn from_iter<I: IntoIterator<Item = E>>(iter: I) -> Self {
        let mut m = Multiset::new();
        for e in iter {
            m.insert(e);
        }
        m
    }
}

impl<E: Eq + Hash> Extend<E> for Multiset<E> {
    fn extend<I: IntoIterator<Item = E>>(&mut self, iter: I) {
        for e in iter {
            self.insert(e);
        }
    }
}

impl<E: Eq + Hash + fmt::Debug> fmt::Debug for Multiset<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.counts.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(items: &[u32]) -> Multiset<u32> {
        items.iter().copied().collect()
    }

    #[test]
    fn empty_has_no_elements() {
        let m: Multiset<u32> = Multiset::new();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.count(&7), 0);
        assert!(!m.contains(&7));
    }

    #[test]
    fn elems_counts_occurrences() {
        let m = Multiset::elems(&[1, 1, 2]);
        assert_eq!(m.count(&1), 2);
        assert_eq!(m.count(&2), 1);
        assert_eq!(m.len(), 3);
        assert_eq!(m.distinct_len(), 2);
    }

    #[test]
    fn union_is_pointwise_max() {
        let a = ms(&[1, 1, 2]);
        let b = ms(&[1, 2, 2, 3]);
        let u = a.union_max(&b);
        assert_eq!(u.count(&1), 2);
        assert_eq!(u.count(&2), 2);
        assert_eq!(u.count(&3), 1);
    }

    #[test]
    fn sum_is_pointwise_addition() {
        let a = ms(&[1, 1]);
        let b = ms(&[1, 2]);
        let s = a.sum(&b);
        assert_eq!(s.count(&1), 3);
        assert_eq!(s.count(&2), 1);
    }

    #[test]
    fn subset_respects_multiplicity() {
        assert!(ms(&[1]).is_subset_of(&ms(&[1, 1])));
        assert!(!ms(&[1, 1]).is_subset_of(&ms(&[1])));
        assert!(ms(&[]).is_subset_of(&ms(&[])));
        assert!(!ms(&[9]).is_subset_of(&ms(&[1])));
    }

    #[test]
    fn remove_decrements_and_cleans_up() {
        let mut m = ms(&[4, 4]);
        assert!(m.remove(&4));
        assert_eq!(m.count(&4), 1);
        assert!(m.remove(&4));
        assert!(!m.contains(&4));
        assert!(!m.remove(&4));
        assert!(m.is_empty());
    }

    #[test]
    fn equality_ignores_insertion_order() {
        assert_eq!(ms(&[1, 2, 1]), ms(&[1, 1, 2]));
        assert_ne!(ms(&[1, 2]), ms(&[1, 1, 2]));
    }

    #[test]
    fn union_idempotent_and_commutative() {
        let a = ms(&[1, 2, 2]);
        let b = ms(&[2, 3]);
        assert_eq!(a.union_max(&a), a);
        assert_eq!(a.union_max(&b), b.union_max(&a));
    }
}
