//! Concrete signatures for concurrent objects and speculation phases
//! (paper Section 4.2 and Definition 16).

use crate::action::{Action, PhaseId};
use crate::prop::{Polarity, Signature};

/// The signature `sigT(m, n, Init)` of a speculation phase `(m, n)`.
///
/// A phase `(m, n)` comprises the sub-phases numbered `m` to `n − 1`:
/// its invocation and response actions are labelled in `[m..n-1]`, while its
/// switch actions are labelled in `[m..n]` (the switch labelled `m` enters
/// the phase, the one labelled `n` leaves it). This labelling is what makes
/// the Appendix C projections tile: `acts(sig(m, n)) ∪ acts(sig(n, o)) =
/// acts(sig(m, o))` with responses of consecutive phases disjoint, and the
/// shared switch actions labelled `n` appearing in both.
///
/// Polarity: invocations are inputs; responses are outputs; a switch action
/// labelled `m` is an input (it is produced by the preceding phase), while
/// switch actions labelled in `(m..n]` are outputs. The plain object
/// signature `sigT` of Section 4.2 is recovered by
/// [`PhaseSignature::object`], which excludes switch actions altogether.
///
/// # Example
///
/// ```
/// use slin_trace::{Action, ClientId, PhaseId, PhaseSignature};
/// use slin_trace::prop::Signature;
///
/// let sig = PhaseSignature::new(PhaseId::new(1), PhaseId::new(2));
/// let c = ClientId::new(1);
/// let swi: Action<u8, u8, u8> = Action::switch(c, PhaseId::new(2), 0, 9);
/// assert!(sig.is_output(&swi));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PhaseSignature {
    m: PhaseId,
    n: PhaseId,
    include_switches: bool,
}

impl PhaseSignature {
    /// The signature of speculation phase `(m, n)`.
    ///
    /// # Panics
    ///
    /// Panics unless `m < n`.
    pub fn new(m: PhaseId, n: PhaseId) -> Self {
        assert!(m < n, "a speculation phase (m, n) requires m < n");
        PhaseSignature {
            m,
            n,
            include_switches: true,
        }
    }

    /// The plain object signature `sigT` restricted to phases `[m..n]`,
    /// with switch actions *excluded* — used to state Theorem 2
    /// (`proj(SLinT(1, m), acts(sigT)) = LinT`).
    pub fn object(m: PhaseId, n: PhaseId) -> Self {
        PhaseSignature {
            m,
            n,
            include_switches: false,
        }
    }

    /// The lower phase bound `m`.
    pub fn lower(&self) -> PhaseId {
        self.m
    }

    /// The upper phase bound `n`.
    pub fn upper(&self) -> PhaseId {
        self.n
    }

    /// Whether switch actions belong to this signature.
    pub fn includes_switches(&self) -> bool {
        self.include_switches
    }
}

impl<I, O, V> Signature<Action<I, O, V>> for PhaseSignature {
    fn polarity(&self, action: &Action<I, O, V>) -> Option<Polarity> {
        let o = action.phase();
        // A phase (m, n) owns invocations/responses labelled [m..n-1]; the
        // switch-free object signature keeps the full inclusive range.
        let hi = if self.include_switches {
            self.n.prev()
        } else {
            self.n
        };
        match action {
            Action::Invoke { .. } => o.in_range(self.m, hi).then_some(Polarity::Input),
            Action::Respond { .. } => o.in_range(self.m, hi).then_some(Polarity::Output),
            Action::Switch { .. } => {
                if !self.include_switches || !o.in_range(self.m, self.n) {
                    None
                } else if o == self.m {
                    Some(Polarity::Input)
                } else {
                    Some(Polarity::Output)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ClientId;

    type A = Action<u8, u8, u8>;

    fn c() -> ClientId {
        ClientId::new(1)
    }

    #[test]
    fn invocations_are_inputs_responses_outputs() {
        let sig = PhaseSignature::new(PhaseId::new(1), PhaseId::new(3));
        let inv: A = Action::invoke(c(), PhaseId::new(2), 0);
        let res: A = Action::respond(c(), PhaseId::new(2), 0, 1);
        assert!(sig.is_input(&inv));
        assert!(sig.is_output(&res));
        // Responses labelled n belong to the next phase.
        let res_n: A = Action::respond(c(), PhaseId::new(3), 0, 1);
        assert!(!sig.contains(&res_n));
    }

    #[test]
    fn switch_polarity_depends_on_phase_label() {
        let sig = PhaseSignature::new(PhaseId::new(2), PhaseId::new(4));
        let incoming: A = Action::switch(c(), PhaseId::new(2), 0, 9);
        let interior: A = Action::switch(c(), PhaseId::new(3), 0, 9);
        let outgoing: A = Action::switch(c(), PhaseId::new(4), 0, 9);
        assert!(sig.is_input(&incoming));
        assert!(sig.is_output(&interior));
        assert!(sig.is_output(&outgoing));
    }

    #[test]
    fn out_of_range_actions_excluded() {
        let sig = PhaseSignature::new(PhaseId::new(2), PhaseId::new(3));
        let inv: A = Action::invoke(c(), PhaseId::new(1), 0);
        let inv3: A = Action::invoke(c(), PhaseId::new(3), 0);
        let swi: A = Action::switch(c(), PhaseId::new(4), 0, 9);
        assert!(!sig.contains(&inv));
        assert!(!sig.contains(&inv3));
        assert!(!sig.contains(&swi));
    }

    #[test]
    fn object_signature_excludes_switches() {
        let sig = PhaseSignature::object(PhaseId::new(1), PhaseId::new(3));
        let swi: A = Action::switch(c(), PhaseId::new(2), 0, 9);
        let inv: A = Action::invoke(c(), PhaseId::new(2), 0);
        assert!(!sig.contains(&swi));
        assert!(sig.contains(&inv));
    }

    #[test]
    fn consecutive_signatures_union_covers_composed_range() {
        // acts(sig(m,n)) ∪ acts(sig(n,o)) = acts(sig(m,o)) — checked on a
        // handful of witness actions.
        let s12 = PhaseSignature::new(PhaseId::new(1), PhaseId::new(2));
        let s23 = PhaseSignature::new(PhaseId::new(2), PhaseId::new(3));
        let s13 = PhaseSignature::new(PhaseId::new(1), PhaseId::new(3));
        for ph in 1..=3u32 {
            let acts: Vec<A> = vec![
                Action::invoke(c(), PhaseId::new(ph), 0),
                Action::respond(c(), PhaseId::new(ph), 0, 1),
                Action::switch(c(), PhaseId::new(ph), 0, 9),
            ];
            for a in &acts {
                assert_eq!(s13.contains(a), s12.contains(a) || s23.contains(a));
            }
        }
    }

    #[test]
    #[should_panic(expected = "m < n")]
    fn degenerate_phase_rejected() {
        let _ = PhaseSignature::new(PhaseId::new(2), PhaseId::new(2));
    }
}
