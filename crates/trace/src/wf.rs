//! Well-formedness of traces (paper Definitions 13–15 and 33–35).
//!
//! A client is sequential: it never invokes the object before its preceding
//! invocation returned. Well-formedness captures this per-client alternation,
//! and — for speculation phases `(m, n)` — the switching discipline: a client
//! enters the phase either by an invocation (when `m = 1`) or by exactly one
//! *init* switch action labelled `m`, and an *abort* switch action labelled
//! `n` is the last event of the client's sub-trace.
//!
//! Following the paper, the `(m, n)`-client-sub-trace keeps only switch
//! actions labelled `m` or `n`; interior switches are projected away
//! (Definition 33).

use crate::action::{Action, ClientId, PhaseId};
use crate::trace::Trace;
use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

/// A well-formedness violation, reporting the offending client and a reason.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WellFormednessError {
    client: ClientId,
    reason: String,
}

impl WellFormednessError {
    fn new(client: ClientId, reason: impl Into<String>) -> Self {
        WellFormednessError {
            client,
            reason: reason.into(),
        }
    }

    /// The client whose sub-trace violates well-formedness.
    pub fn client(&self) -> ClientId {
        self.client
    }

    /// A human-readable description of the violation.
    pub fn reason(&self) -> &str {
        &self.reason
    }
}

impl fmt::Display for WellFormednessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "client {} sub-trace ill-formed: {}",
            self.client, self.reason
        )
    }
}

impl Error for WellFormednessError {}

/// The set of clients appearing in a trace.
pub fn clients<I, O, V>(t: &Trace<Action<I, O, V>>) -> BTreeSet<ClientId> {
    t.iter().map(|a| a.client()).collect()
}

/// The client sub-trace `sub(t, c)` (Definition 13): the projection of `t`
/// onto client `c`'s actions. For phase traces, keeps only switch actions
/// labelled `m` or `n` (Definition 33); pass `None` to keep all actions.
pub fn client_subtrace<I: Clone, O: Clone, V: Clone>(
    t: &Trace<Action<I, O, V>>,
    c: ClientId,
    phase_bounds: Option<(PhaseId, PhaseId)>,
) -> Trace<Action<I, O, V>> {
    t.project(|a| {
        a.client() == c
            && match (a, phase_bounds) {
                (Action::Switch { phase, .. }, Some((m, n))) => *phase == m || *phase == n,
                // Invocations and responses of phase (m, n) carry labels in
                // [m..n-1]; labels equal to n belong to the next phase.
                (_, Some((m, n))) => a.phase().in_range(m, n.prev()),
                (_, None) => true,
            }
    })
}

/// Checks classical well-formedness (Definitions 13–15): every client
/// sub-trace starts with an invocation and strictly alternates invocations
/// with matching responses. Switch actions are not part of the object
/// signature and render the trace ill-formed.
///
/// # Errors
///
/// Returns a [`WellFormednessError`] naming the first offending client.
///
/// # Example
///
/// ```
/// use slin_trace::{Action, ClientId, PhaseId, Trace};
/// use slin_trace::wf::check_well_formed;
///
/// let c = ClientId::new(1);
/// let t: Trace<Action<u8, u8, ()>> = Trace::from_actions(vec![
///     Action::invoke(c, PhaseId::FIRST, 3),
///     Action::respond(c, PhaseId::FIRST, 3, 3),
/// ]);
/// check_well_formed(&t)?;
/// # Ok::<(), slin_trace::wf::WellFormednessError>(())
/// ```
pub fn check_well_formed<I, O, V>(t: &Trace<Action<I, O, V>>) -> Result<(), WellFormednessError>
where
    I: Clone + PartialEq,
    O: Clone,
    V: Clone,
{
    for c in clients(t) {
        let sub = client_subtrace(t, c, None);
        check_client_alternation(&sub, c, None)?;
    }
    Ok(())
}

/// Boolean form of [`check_well_formed`].
pub fn is_well_formed<I, O, V>(t: &Trace<Action<I, O, V>>) -> bool
where
    I: Clone + PartialEq,
    O: Clone,
    V: Clone,
{
    check_well_formed(t).is_ok()
}

/// Checks `(m, n)`-well-formedness (Definitions 33–35).
///
/// For every client `c`, the `(m, n)`-client-sub-trace must be empty or:
///
/// * if `m = 1`, start with an invocation and contain no init actions;
///   if `m ≠ 1`, start with the client's unique init action `swi(c, m, …)`;
/// * strictly alternate pending inputs (from invocations or the init action)
///   with responses or the abort action, with matching inputs;
/// * contain the abort action `swi(c, n, …)` only as its last element.
///
/// # Errors
///
/// Returns a [`WellFormednessError`] naming the first offending client.
pub fn check_phase_well_formed<I, O, V>(
    t: &Trace<Action<I, O, V>>,
    m: PhaseId,
    n: PhaseId,
) -> Result<(), WellFormednessError>
where
    I: Clone + PartialEq,
    O: Clone,
    V: Clone,
{
    assert!(m < n, "a speculation phase (m, n) requires m < n");
    for c in clients(t) {
        let sub = client_subtrace(t, c, Some((m, n)));
        check_client_alternation(&sub, c, Some((m, n)))?;
    }
    Ok(())
}

/// Boolean form of [`check_phase_well_formed`].
pub fn is_phase_well_formed<I, O, V>(t: &Trace<Action<I, O, V>>, m: PhaseId, n: PhaseId) -> bool
where
    I: Clone + PartialEq,
    O: Clone,
    V: Clone,
{
    check_phase_well_formed(t, m, n).is_ok()
}

/// Shared alternation automaton over one client's sub-trace.
fn check_client_alternation<I, O, V>(
    sub: &Trace<Action<I, O, V>>,
    c: ClientId,
    phase_bounds: Option<(PhaseId, PhaseId)>,
) -> Result<(), WellFormednessError>
where
    I: Clone + PartialEq,
    O: Clone,
    V: Clone,
{
    if sub.is_empty() {
        return Ok(());
    }
    let err = |reason: &str| Err(WellFormednessError::new(c, reason));
    // pending = Some(input) while an input awaits a response or abort.
    let mut pending: Option<I> = None;
    let mut aborted = false;
    let mut seen_init = false;
    for (i, a) in sub.iter().enumerate() {
        if aborted {
            return err("events after the abort switch action");
        }
        match a {
            Action::Invoke { input, .. } => {
                if i == 0 {
                    if let Some((m, _)) = phase_bounds {
                        if m != PhaseId::FIRST {
                            return err("first event must be the init switch action when m ≠ 1");
                        }
                    }
                }
                if pending.is_some() {
                    return err("invocation while a previous input is pending");
                }
                pending = Some(input.clone());
            }
            Action::Respond { input, .. } => match pending.take() {
                None => return err("response with no pending input"),
                Some(p) if p != *input => return err("response input differs from pending input"),
                Some(_) => {}
            },
            Action::Switch { phase, input, .. } => {
                let (m, n) = match phase_bounds {
                    None => return err("switch action in a plain object trace"),
                    Some(b) => b,
                };
                if *phase == m {
                    // Init action: enters the phase with a pending input.
                    if m == PhaseId::FIRST {
                        return err("init actions are impossible when m = 1");
                    }
                    if i != 0 || seen_init {
                        return err("init action must be the unique first event");
                    }
                    seen_init = true;
                    pending = Some(input.clone());
                } else if *phase == n {
                    // Abort action: carries the pending input out of the phase.
                    match pending.take() {
                        None => return err("abort switch with no pending input"),
                        Some(p) if p != *input => {
                            return err("abort switch input differs from pending input")
                        }
                        Some(_) => {}
                    }
                    aborted = true;
                } else {
                    // Interior switches were projected away by the caller.
                    return err("interior switch action in client sub-trace");
                }
            }
        }
    }
    Ok(())
}

/// Returns each client's pending invocation, if any: the input of the last
/// invocation (or init action) that has no subsequent response or abort in
/// the client's sub-trace. Only meaningful on well-formed traces.
pub fn pending_inputs<I, O, V>(
    t: &Trace<Action<I, O, V>>,
    phase_bounds: Option<(PhaseId, PhaseId)>,
) -> Vec<(ClientId, I)>
where
    I: Clone + PartialEq,
    O: Clone,
    V: Clone,
{
    let mut out = Vec::new();
    for c in clients(t) {
        let sub = client_subtrace(t, c, phase_bounds);
        let mut pending: Option<I> = None;
        for a in sub.iter() {
            match (a, phase_bounds) {
                (Action::Invoke { input, .. }, _) => pending = Some(input.clone()),
                (Action::Respond { .. }, _) => pending = None,
                (Action::Switch { phase, input, .. }, Some((m, n))) => {
                    if *phase == m {
                        pending = Some(input.clone());
                    } else if *phase == n {
                        pending = None;
                    }
                }
                (Action::Switch { .. }, None) => {}
            }
        }
        if let Some(input) = pending {
            out.push((c, input));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    type A = Action<u32, u32, u32>;

    fn c1() -> ClientId {
        ClientId::new(1)
    }
    fn c2() -> ClientId {
        ClientId::new(2)
    }
    fn p(n: u32) -> PhaseId {
        PhaseId::new(n)
    }

    #[test]
    fn empty_trace_is_well_formed() {
        let t: Trace<A> = Trace::new();
        assert!(is_well_formed(&t));
        assert!(is_phase_well_formed(&t, p(1), p(2)));
    }

    #[test]
    fn matched_pair_is_well_formed() {
        let t: Trace<A> = Trace::from_actions(vec![
            Action::invoke(c1(), p(1), 5),
            Action::respond(c1(), p(1), 5, 5),
        ]);
        assert!(is_well_formed(&t));
    }

    #[test]
    fn pending_invocation_allowed() {
        let t: Trace<A> = Trace::from_actions(vec![Action::invoke(c1(), p(1), 5)]);
        assert!(is_well_formed(&t));
        assert_eq!(pending_inputs(&t, None), vec![(c1(), 5)]);
    }

    #[test]
    fn response_without_invocation_rejected() {
        let t: Trace<A> = Trace::from_actions(vec![Action::respond(c1(), p(1), 5, 5)]);
        let e = check_well_formed(&t).unwrap_err();
        assert_eq!(e.client(), c1());
        assert!(e.reason().contains("no pending"));
    }

    #[test]
    fn double_invocation_rejected() {
        let t: Trace<A> = Trace::from_actions(vec![
            Action::invoke(c1(), p(1), 5),
            Action::invoke(c1(), p(1), 6),
        ]);
        assert!(!is_well_formed(&t));
    }

    #[test]
    fn mismatched_response_input_rejected() {
        let t: Trace<A> = Trace::from_actions(vec![
            Action::invoke(c1(), p(1), 5),
            Action::respond(c1(), p(1), 6, 6),
        ]);
        assert!(!is_well_formed(&t));
    }

    #[test]
    fn interleaved_clients_are_independent() {
        let t: Trace<A> = Trace::from_actions(vec![
            Action::invoke(c1(), p(1), 5),
            Action::invoke(c2(), p(1), 6),
            Action::respond(c2(), p(1), 6, 6),
            Action::respond(c1(), p(1), 5, 6),
        ]);
        assert!(is_well_formed(&t));
    }

    #[test]
    fn switch_in_plain_trace_rejected() {
        let t: Trace<A> = Trace::from_actions(vec![
            Action::invoke(c1(), p(1), 5),
            Action::switch(c1(), p(2), 5, 9),
        ]);
        assert!(!is_well_formed(&t));
        assert!(is_phase_well_formed(&t, p(1), p(2)));
    }

    #[test]
    fn abort_must_be_last() {
        let t: Trace<A> = Trace::from_actions(vec![
            Action::invoke(c1(), p(1), 5),
            Action::switch(c1(), p(2), 5, 9),
            Action::invoke(c1(), p(1), 6),
        ]);
        assert!(!is_phase_well_formed(&t, p(1), p(2)));
    }

    #[test]
    fn abort_carries_pending_input() {
        let t: Trace<A> = Trace::from_actions(vec![
            Action::invoke(c1(), p(1), 5),
            Action::switch(c1(), p(2), 6, 9),
        ]);
        assert!(!is_phase_well_formed(&t, p(1), p(2)));
    }

    #[test]
    fn second_phase_starts_with_init() {
        let good: Trace<A> = Trace::from_actions(vec![
            Action::switch(c1(), p(2), 5, 9),
            Action::respond(c1(), p(2), 5, 5),
        ]);
        assert!(is_phase_well_formed(&good, p(2), p(3)));
        let bad: Trace<A> = Trace::from_actions(vec![
            Action::invoke(c1(), p(2), 5),
            Action::respond(c1(), p(2), 5, 5),
        ]);
        assert!(!is_phase_well_formed(&bad, p(2), p(3)));
    }

    #[test]
    fn duplicate_init_rejected() {
        let t: Trace<A> = Trace::from_actions(vec![
            Action::switch(c1(), p(2), 5, 9),
            Action::respond(c1(), p(2), 5, 5),
            Action::switch(c1(), p(2), 6, 9),
        ]);
        assert!(!is_phase_well_formed(&t, p(2), p(3)));
    }

    #[test]
    fn interior_switches_projected_away_in_composed_phase() {
        // Composed phase (1, 3): the interior switch at phase 2 disappears
        // from client sub-traces; the client continues in phase 2.
        let t: Trace<A> = Trace::from_actions(vec![
            Action::invoke(c1(), p(1), 5),
            Action::switch(c1(), p(2), 5, 9),
            Action::respond(c1(), p(2), 5, 5),
            Action::invoke(c1(), p(2), 6),
            Action::respond(c1(), p(2), 6, 5),
        ]);
        assert!(is_phase_well_formed(&t, p(1), p(3)));
    }

    #[test]
    fn init_then_abort_composes() {
        // Phase (2, 3) trace: init in, abort out.
        let t: Trace<A> = Trace::from_actions(vec![
            Action::switch(c1(), p(2), 5, 9),
            Action::switch(c1(), p(3), 5, 11),
        ]);
        assert!(is_phase_well_formed(&t, p(2), p(3)));
    }

    #[test]
    fn pending_inputs_through_switches() {
        let t: Trace<A> = Trace::from_actions(vec![
            Action::invoke(c1(), p(1), 5),
            Action::switch(c1(), p(2), 5, 9),
            Action::invoke(c2(), p(1), 7),
        ]);
        // In phase (1, 2): c1's input left with the abort; c2's is pending.
        let pend = pending_inputs(&t, Some((p(1), p(2))));
        assert_eq!(pend, vec![(c2(), 7)]);
        // In phase (2, 3): c1's input arrived with the init and is pending.
        let pend2 = pending_inputs(&t, Some((p(2), p(3))));
        assert_eq!(pend2, vec![(c1(), 5)]);
    }
}
