//! Structure-sharing persistent multisets.
//!
//! [`PersistentMultiset`] exposes the same multiset algebra as
//! [`crate::Multiset`] — `union_max` (`∪`, pointwise max), `sum` (`⊎`,
//! pointwise addition), `is_subset_of` (`⊆`), `count`, `elems` — but is
//! backed by a hash-array-mapped trie whose nodes are shared between
//! versions through [`Arc`]. Cloning is O(1) and inserting or removing one
//! occurrence copies only the O(log distinct) path to the touched leaf, so
//! a *sequence* of cumulative snapshots (one per trace index, the
//! checkers' validity bounds) costs O(n) total instead of
//! O(n · alphabet).
//!
//! Two extra properties matter to the checker engines:
//!
//! * **Semantic equality and hashing.** Two multisets with equal
//!   multiplicity functions are `==` and hash identically regardless of
//!   construction order: the hash is an incrementally-maintained
//!   commutative fingerprint over `(element, multiplicity)` pairs, so a
//!   `PersistentMultiset` can sit directly inside a `HashSet` memo key —
//!   no sorting into a canonical `Vec` per lookup.
//! * **Deterministic iteration.** [`PersistentMultiset::iter`] walks the
//!   trie in hash order, which is a pure function of the elements (the
//!   hasher is fixed-key), never of insertion order.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Bits consumed per trie level; 16-way branching.
const BITS: u32 = 4;
const FANOUT: usize = 1 << BITS;
/// Levels before the full 64-bit hash is exhausted (equal hashes share a
/// collision-bucket leaf).
const MAX_LEVEL: u32 = 64 / BITS;

/// The stable per-element hash the trie is addressed by.
fn elem_hash<E: Hash>(e: &E) -> u64 {
    let mut h = DefaultHasher::new();
    e.hash(&mut h);
    h.finish()
}

/// `splitmix64` finalizer: decorrelates the commutative fingerprint terms.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One entry's fingerprint term; summed (wrapping) over all entries, it is
/// order-independent and updates in O(1) when one multiplicity changes.
fn term(hash: u64, count: usize) -> u64 {
    if count == 0 {
        0
    } else {
        mix(hash ^ mix(count as u64))
    }
}

enum Node<E> {
    Branch {
        children: [Option<Arc<Node<E>>>; FANOUT],
    },
    /// All entries share the same full 64-bit `hash` (collision bucket; a
    /// single entry in the overwhelmingly common case).
    Leaf { hash: u64, entries: Vec<(E, usize)> },
}

impl<E> Node<E> {
    fn empty_branch() -> Self {
        Node::Branch {
            children: Default::default(),
        }
    }
}

/// A finite multiset with O(1) clone and structure sharing between
/// versions. See the [module docs](self) for how it differs from
/// [`crate::Multiset`].
///
/// # Example
///
/// ```
/// use slin_trace::PersistentMultiset;
///
/// let a: PersistentMultiset<&str> = ["x", "x", "y"].into_iter().collect();
/// let snapshot = a.clone(); // O(1): shares every node
/// let mut b = a.clone();
/// b.insert("y");
/// assert_eq!(a.count(&"x"), 2);
/// assert_eq!(a, snapshot);
/// assert_eq!(b.count(&"y"), 2);
/// assert!(a.is_subset_of(&b));
/// ```
pub struct PersistentMultiset<E> {
    root: Option<Arc<Node<E>>>,
    len: usize,
    distinct: usize,
    fingerprint: u64,
}

impl<E> Clone for PersistentMultiset<E> {
    fn clone(&self) -> Self {
        PersistentMultiset {
            root: self.root.clone(),
            len: self.len,
            distinct: self.distinct,
            fingerprint: self.fingerprint,
        }
    }
}

impl<E> Default for PersistentMultiset<E> {
    fn default() -> Self {
        PersistentMultiset::new()
    }
}

impl<E> PersistentMultiset<E> {
    /// Creates an empty multiset.
    pub fn new() -> Self {
        PersistentMultiset {
            root: None,
            len: 0,
            distinct: 0,
            fingerprint: 0,
        }
    }

    /// Total number of element occurrences.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the multiset is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of *distinct* elements.
    pub fn distinct_len(&self) -> usize {
        self.distinct
    }

    /// Iterates over `(element, multiplicity)` pairs in trie (hash) order —
    /// deterministic for a given element set, independent of insertion
    /// order.
    pub fn iter(&self) -> Iter<'_, E> {
        Iter {
            stack: self.root.iter().map(|n| (&**n, 0)).collect(),
        }
    }

    /// Records the address of every trie node reachable from this multiset
    /// into `seen`, skipping already-visited (shared) subtrees. The
    /// resulting set size is the structure-sharing-aware memory proxy the
    /// streaming monitor reports: nodes shared between retained snapshots
    /// are counted once.
    pub fn mark_nodes(&self, seen: &mut HashSet<usize>) {
        fn walk<E>(node: &Arc<Node<E>>, seen: &mut HashSet<usize>) {
            if !seen.insert(Arc::as_ptr(node) as usize) {
                return;
            }
            if let Node::Branch { children } = &**node {
                for child in children.iter().flatten() {
                    walk(child, seen);
                }
            }
        }
        if let Some(root) = &self.root {
            walk(root, seen);
        }
    }
}

impl<E: Eq + Hash> PersistentMultiset<E> {
    /// The multiset of elements of a sequence (the paper's `elems`).
    pub fn elems(seq: &[E]) -> Self
    where
        E: Clone,
    {
        seq.iter().cloned().collect()
    }

    /// The multiplicity of `e` (zero if absent).
    pub fn count(&self, e: &E) -> usize {
        let hash = elem_hash(e);
        let mut node = self.root.as_deref();
        let mut level = 0;
        while let Some(n) = node {
            match n {
                Node::Branch { children } => {
                    node = children[nibble(hash, level)].as_deref();
                    level += 1;
                }
                Node::Leaf { hash: lh, entries } => {
                    if *lh != hash {
                        return 0;
                    }
                    return entries
                        .iter()
                        .find(|(x, _)| x == e)
                        .map(|(_, c)| *c)
                        .unwrap_or(0);
                }
            }
        }
        0
    }

    /// Whether `e` occurs at least once.
    pub fn contains(&self, e: &E) -> bool {
        self.count(e) > 0
    }

    /// Multiset inclusion `self ⊆ other` (pointwise `≤`).
    pub fn is_subset_of(&self, other: &Self) -> bool {
        if self.len > other.len {
            return false;
        }
        if let (Some(a), Some(b)) = (&self.root, &other.root) {
            if Arc::ptr_eq(a, b) {
                return true;
            }
        }
        self.iter().all(|(e, c)| c <= other.count(e))
    }
}

impl<E: Eq + Hash + Clone> PersistentMultiset<E> {
    /// Inserts one occurrence of `e`. O(log distinct) path copy.
    pub fn insert(&mut self, e: E) {
        self.add(e, 1);
    }

    /// Inserts `n` occurrences of `e`.
    pub fn add(&mut self, e: E, n: usize) {
        if n == 0 {
            return;
        }
        let hash = elem_hash(&e);
        let (root, old_count) = insert_node(self.root.as_ref(), 0, hash, e, n);
        self.root = Some(root);
        if old_count == 0 {
            self.distinct += 1;
        }
        self.len += n;
        self.fingerprint = self
            .fingerprint
            .wrapping_sub(term(hash, old_count))
            .wrapping_add(term(hash, old_count + n));
    }

    /// Removes one occurrence of `e`; returns `false` if `e` was absent.
    pub fn remove(&mut self, e: &E) -> bool {
        let hash = elem_hash(e);
        let Some(root) = self.root.as_ref() else {
            return false;
        };
        let Some((new_root, old_count)) = remove_node(root, 0, hash, e) else {
            return false;
        };
        self.root = new_root;
        self.len -= 1;
        if old_count == 1 {
            self.distinct -= 1;
        }
        self.fingerprint = self
            .fingerprint
            .wrapping_sub(term(hash, old_count))
            .wrapping_add(term(hash, old_count - 1));
        true
    }

    /// Pointwise maximum `m1 ∪ m2` (the paper's multiset union).
    pub fn union_max(&self, other: &Self) -> Self {
        let mut out = self.clone();
        for (e, c) in other.iter() {
            let cur = out.count(e);
            if c > cur {
                out.add(e.clone(), c - cur);
            }
        }
        out
    }

    /// Pointwise sum `m1 ⊎ m2`.
    pub fn sum(&self, other: &Self) -> Self {
        let mut out = self.clone();
        for (e, c) in other.iter() {
            out.add(e.clone(), c);
        }
        out
    }
}

/// Path-copying insert: returns the new subtree root and the element's
/// previous multiplicity.
fn insert_node<E: Eq + Hash + Clone>(
    node: Option<&Arc<Node<E>>>,
    level: u32,
    hash: u64,
    e: E,
    n: usize,
) -> (Arc<Node<E>>, usize) {
    match node.map(|n| &**n) {
        None => (
            Arc::new(Node::Leaf {
                hash,
                entries: vec![(e, n)],
            }),
            0,
        ),
        Some(Node::Leaf {
            hash: lh,
            entries: old,
        }) => {
            if *lh == hash {
                let mut entries = old.clone();
                match entries.iter_mut().find(|(x, _)| *x == e) {
                    Some((_, c)) => {
                        let prev = *c;
                        *c += n;
                        (Arc::new(Node::Leaf { hash, entries }), prev)
                    }
                    None => {
                        entries.push((e, n));
                        (Arc::new(Node::Leaf { hash, entries }), 0)
                    }
                }
            } else {
                debug_assert!(level < MAX_LEVEL, "distinct hashes diverge in 16 levels");
                // Split: push the existing leaf one level down, then insert.
                let mut branch = Node::empty_branch();
                if let Node::Branch { children } = &mut branch {
                    children[nibble(*lh, level)] = node.cloned();
                }
                let branch = Arc::new(branch);
                insert_node(Some(&branch), level, hash, e, n)
            }
        }
        Some(Node::Branch { children }) => {
            let slot = nibble(hash, level);
            let (child, prev) = insert_node(children[slot].as_ref(), level + 1, hash, e, n);
            let mut children = children.clone();
            children[slot] = Some(child);
            (Arc::new(Node::Branch { children }), prev)
        }
    }
}

/// Path-copying removal of one occurrence: `None` when the element is
/// absent, otherwise the new subtree (or `None` when it emptied) plus the
/// previous multiplicity.
#[allow(clippy::type_complexity)]
fn remove_node<E: Eq + Hash + Clone>(
    node: &Arc<Node<E>>,
    level: u32,
    hash: u64,
    e: &E,
) -> Option<(Option<Arc<Node<E>>>, usize)> {
    match &**node {
        Node::Leaf { hash: lh, entries } => {
            if *lh != hash {
                return None;
            }
            let pos = entries.iter().position(|(x, _)| x == e)?;
            let prev = entries[pos].1;
            let mut entries = entries.clone();
            if prev == 1 {
                entries.remove(pos);
            } else {
                entries[pos].1 -= 1;
            }
            let next = if entries.is_empty() {
                None
            } else {
                Some(Arc::new(Node::Leaf { hash, entries }))
            };
            Some((next, prev))
        }
        Node::Branch { children } => {
            let slot = nibble(hash, level);
            let child = children[slot].as_ref()?;
            let (new_child, prev) = remove_node(child, level + 1, hash, e)?;
            let mut children = children.clone();
            children[slot] = new_child;
            let next = if children.iter().all(|c| c.is_none()) {
                None
            } else {
                Some(Arc::new(Node::Branch { children }))
            };
            Some((next, prev))
        }
    }
}

fn nibble(hash: u64, level: u32) -> usize {
    if level >= MAX_LEVEL {
        // Hash bits exhausted: everything still colliding shares a bucket.
        0
    } else {
        ((hash >> (level * BITS)) & (FANOUT as u64 - 1)) as usize
    }
}

/// Iterator over `(&element, multiplicity)` pairs in trie order.
pub struct Iter<'a, E> {
    /// `(node, next child / entry index)` stack.
    stack: Vec<(&'a Node<E>, usize)>,
}

impl<'a, E> Iterator for Iter<'a, E> {
    type Item = (&'a E, usize);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some((node, pos)) = self.stack.last_mut() {
            match node {
                Node::Leaf { entries, .. } => {
                    if *pos < entries.len() {
                        let (e, c) = &entries[*pos];
                        *pos += 1;
                        return Some((e, *c));
                    }
                    self.stack.pop();
                }
                Node::Branch { children } => {
                    let mut advanced = false;
                    while *pos < FANOUT {
                        let slot = *pos;
                        *pos += 1;
                        if let Some(child) = &children[slot] {
                            self.stack.push((&**child, 0));
                            advanced = true;
                            break;
                        }
                    }
                    if !advanced {
                        // Re-borrow check: the push above invalidated
                        // `node`/`pos`; only pop when nothing was pushed.
                        if let Some((Node::Branch { .. }, p)) = self.stack.last() {
                            if *p >= FANOUT {
                                self.stack.pop();
                            }
                        }
                    }
                }
            }
        }
        None
    }
}

impl<E: Eq + Hash> PartialEq for PersistentMultiset<E> {
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len
            || self.distinct != other.distinct
            || self.fingerprint != other.fingerprint
        {
            return false;
        }
        match (&self.root, &other.root) {
            (None, None) => true,
            (Some(a), Some(b)) if Arc::ptr_eq(a, b) => true,
            // The fingerprint is a fast filter, not a proof: verify
            // pointwise so a hash collision can never alias two multisets.
            _ => self.iter().all(|(e, c)| other.count(e) == c),
        }
    }
}

impl<E: Eq + Hash> Eq for PersistentMultiset<E> {}

impl<E> Hash for PersistentMultiset<E> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.fingerprint);
        state.write_usize(self.len);
        state.write_usize(self.distinct);
    }
}

impl<E: Eq + Hash + Clone> FromIterator<E> for PersistentMultiset<E> {
    fn from_iter<I: IntoIterator<Item = E>>(iter: I) -> Self {
        let mut m = PersistentMultiset::new();
        for e in iter {
            m.insert(e);
        }
        m
    }
}

impl<E: Eq + Hash + Clone> Extend<E> for PersistentMultiset<E> {
    fn extend<I: IntoIterator<Item = E>>(&mut self, iter: I) {
        for e in iter {
            self.insert(e);
        }
    }
}

impl<E: Eq + Hash + fmt::Debug> fmt::Debug for PersistentMultiset<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<E: Eq + Hash + Clone> From<&crate::Multiset<E>> for PersistentMultiset<E> {
    fn from(m: &crate::Multiset<E>) -> Self {
        let mut out = PersistentMultiset::new();
        for (e, c) in m.iter() {
            out.add(e.clone(), c);
        }
        out
    }
}

impl<E: Eq + Hash + Clone> From<&PersistentMultiset<E>> for crate::Multiset<E> {
    fn from(m: &PersistentMultiset<E>) -> Self {
        let mut out = crate::Multiset::new();
        for (e, c) in m.iter() {
            for _ in 0..c {
                out.insert(e.clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(items: &[u32]) -> PersistentMultiset<u32> {
        items.iter().copied().collect()
    }

    #[test]
    fn empty_has_no_elements() {
        let m: PersistentMultiset<u32> = PersistentMultiset::new();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.count(&7), 0);
        assert!(!m.contains(&7));
        assert_eq!(m.iter().count(), 0);
    }

    #[test]
    fn elems_counts_occurrences() {
        let m = PersistentMultiset::elems(&[1, 1, 2]);
        assert_eq!(m.count(&1), 2);
        assert_eq!(m.count(&2), 1);
        assert_eq!(m.len(), 3);
        assert_eq!(m.distinct_len(), 2);
    }

    #[test]
    fn union_is_pointwise_max() {
        let a = ms(&[1, 1, 2]);
        let b = ms(&[1, 2, 2, 3]);
        let u = a.union_max(&b);
        assert_eq!(u.count(&1), 2);
        assert_eq!(u.count(&2), 2);
        assert_eq!(u.count(&3), 1);
    }

    #[test]
    fn sum_is_pointwise_addition() {
        let a = ms(&[1, 1]);
        let b = ms(&[1, 2]);
        let s = a.sum(&b);
        assert_eq!(s.count(&1), 3);
        assert_eq!(s.count(&2), 1);
    }

    #[test]
    fn subset_respects_multiplicity() {
        assert!(ms(&[1]).is_subset_of(&ms(&[1, 1])));
        assert!(!ms(&[1, 1]).is_subset_of(&ms(&[1])));
        assert!(ms(&[]).is_subset_of(&ms(&[])));
        assert!(!ms(&[9]).is_subset_of(&ms(&[1])));
    }

    #[test]
    fn remove_decrements_and_cleans_up() {
        let mut m = ms(&[4, 4]);
        assert!(m.remove(&4));
        assert_eq!(m.count(&4), 1);
        assert!(m.remove(&4));
        assert!(!m.contains(&4));
        assert!(!m.remove(&4));
        assert!(m.is_empty());
        assert!(m.root.is_none(), "empty trie drops every node");
    }

    #[test]
    fn equality_and_hash_ignore_insertion_order() {
        use std::collections::hash_map::DefaultHasher;
        let a = ms(&[1, 2, 1]);
        let b = ms(&[1, 1, 2]);
        assert_eq!(a, b);
        let hash = |m: &PersistentMultiset<u32>| {
            let mut h = DefaultHasher::new();
            m.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
        assert_ne!(ms(&[1, 2]), ms(&[1, 1, 2]));
    }

    #[test]
    fn clone_shares_structure_and_stays_immutable() {
        let a: PersistentMultiset<u32> = (0..100).collect();
        let snapshot = a.clone();
        let mut b = a.clone();
        b.insert(7);
        b.remove(&13);
        assert_eq!(a, snapshot);
        assert_eq!(a.count(&7), 1);
        assert_eq!(b.count(&7), 2);
        assert_eq!(b.count(&13), 0);

        // Shared nodes are counted once across versions.
        let mut seen = HashSet::new();
        a.mark_nodes(&mut seen);
        let alone = seen.len();
        snapshot.mark_nodes(&mut seen);
        assert_eq!(seen.len(), alone, "a full clone adds zero nodes");
        b.mark_nodes(&mut seen);
        assert!(
            seen.len() < alone * 2,
            "a one-element delta shares most of the trie"
        );
    }

    #[test]
    fn snapshots_share_sublinearly() {
        // The tentpole memory shape: n cumulative snapshots of an n-element
        // build hold O(n log n) unique nodes, not O(n²).
        let mut cur: PersistentMultiset<u32> = PersistentMultiset::new();
        let mut snaps = Vec::new();
        for i in 0..256u32 {
            cur.insert(i % 16);
            snaps.push(cur.clone());
        }
        let mut seen = HashSet::new();
        for s in &snaps {
            s.mark_nodes(&mut seen);
        }
        assert!(
            seen.len() < 256 * 16,
            "unique nodes {} must stay far below copies × alphabet",
            seen.len()
        );
    }

    #[test]
    fn iteration_is_deterministic_and_complete() {
        let a = ms(&[5, 3, 3, 9, 1]);
        let b = ms(&[1, 3, 9, 3, 5]);
        let va: Vec<(u32, usize)> = a.iter().map(|(e, c)| (*e, c)).collect();
        let vb: Vec<(u32, usize)> = b.iter().map(|(e, c)| (*e, c)).collect();
        assert_eq!(va, vb, "iteration order is insertion-order independent");
        assert_eq!(va.iter().map(|(_, c)| c).sum::<usize>(), 5);
    }

    #[test]
    fn converts_to_and_from_hash_multiset() {
        let m: crate::Multiset<u32> = [1, 1, 2, 3].into_iter().collect();
        let p = PersistentMultiset::from(&m);
        assert_eq!(p.len(), 4);
        assert_eq!(p.count(&1), 2);
        let back = crate::Multiset::from(&p);
        assert_eq!(back, m);
    }

    #[test]
    fn deep_collisions_fall_into_buckets() {
        // Force many elements through the trie; with only 16 slots per
        // level the test exercises splits at several depths.
        let mut m: PersistentMultiset<u64> = PersistentMultiset::new();
        for i in 0..2000u64 {
            m.add(i, (i as usize % 3) + 1);
        }
        for i in 0..2000u64 {
            assert_eq!(m.count(&i), (i as usize % 3) + 1, "i={i}");
        }
        assert_eq!(m.distinct_len(), 2000);
    }
}
