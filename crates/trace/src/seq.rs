//! Finite sequences and the prefix order (paper Section 3, "Sequences").
//!
//! The paper writes `s|m` for truncation, `s:::s'` for concatenation, and
//! defines the *longest common prefix* of a set of sequences. Histories
//! (sequences of ADT inputs) use exactly these operations, so they are kept
//! generic over the element type.

/// Returns `true` iff `p` is a (non-strict) prefix of `s`.
///
/// Every sequence is a prefix of itself, and the empty sequence is a prefix
/// of every sequence.
///
/// # Example
///
/// ```
/// use slin_trace::seq::is_prefix;
/// assert!(is_prefix(&[1, 2], &[1, 2, 3]));
/// assert!(is_prefix::<i32>(&[], &[]));
/// assert!(!is_prefix(&[2], &[1, 2]));
/// ```
pub fn is_prefix<T: PartialEq>(p: &[T], s: &[T]) -> bool {
    p.len() <= s.len() && p.iter().zip(s.iter()).all(|(a, b)| a == b)
}

/// Returns `true` iff `p` is a *strict* prefix of `s`, i.e. a prefix with
/// `p.len() < s.len()`.
///
/// # Example
///
/// ```
/// use slin_trace::seq::is_strict_prefix;
/// assert!(is_strict_prefix(&[1], &[1, 2]));
/// assert!(!is_strict_prefix(&[1, 2], &[1, 2]));
/// ```
pub fn is_strict_prefix<T: PartialEq>(p: &[T], s: &[T]) -> bool {
    p.len() < s.len() && is_prefix(p, s)
}

/// Returns `true` iff one of `a`, `b` is a prefix of the other
/// (the comparability requirement of the paper's Commit-Order predicate).
pub fn comparable<T: PartialEq>(a: &[T], b: &[T]) -> bool {
    is_prefix(a, b) || is_prefix(b, a)
}

/// Length of the longest common prefix of two sequences.
pub fn common_prefix_len<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

/// The longest common prefix of a collection of sequences.
///
/// Following the paper's convention (Definition 31), the longest common
/// prefix of an *empty* collection is the empty sequence.
///
/// # Example
///
/// ```
/// use slin_trace::seq::longest_common_prefix;
/// let hs: Vec<Vec<u32>> = vec![vec![1, 2, 3], vec![1, 2], vec![1, 2, 9]];
/// assert_eq!(longest_common_prefix(hs.iter().map(|h| h.as_slice())), vec![1, 2]);
/// let none: Vec<&[u32]> = Vec::new();
/// assert_eq!(longest_common_prefix(none.into_iter()), Vec::<u32>::new());
/// ```
pub fn longest_common_prefix<'a, T, I>(mut seqs: I) -> Vec<T>
where
    T: Clone + PartialEq + 'a,
    I: Iterator<Item = &'a [T]>,
{
    let first = match seqs.next() {
        None => return Vec::new(),
        Some(f) => f,
    };
    let mut len = first.len();
    for s in seqs {
        len = len.min(common_prefix_len(&first[..len], s));
        if len == 0 {
            return Vec::new();
        }
    }
    first[..len].to_vec()
}

/// Concatenation `s ::: s'` returning an owned sequence.
pub fn concat<T: Clone>(s: &[T], s2: &[T]) -> Vec<T> {
    let mut out = Vec::with_capacity(s.len() + s2.len());
    out.extend_from_slice(s);
    out.extend_from_slice(s2);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_prefix_of_everything() {
        assert!(is_prefix::<u8>(&[], &[]));
        assert!(is_prefix(&[], &[1, 2, 3]));
    }

    #[test]
    fn prefix_reflexive_not_strict() {
        let s = [1, 2, 3];
        assert!(is_prefix(&s, &s));
        assert!(!is_strict_prefix(&s, &s));
    }

    #[test]
    fn strict_prefix_implies_prefix() {
        assert!(is_strict_prefix(&[1], &[1, 2]));
        assert!(is_prefix(&[1], &[1, 2]));
    }

    #[test]
    fn non_prefix_detected() {
        assert!(!is_prefix(&[1, 3], &[1, 2, 3]));
        assert!(!is_prefix(&[1, 2, 3, 4], &[1, 2, 3]));
    }

    #[test]
    fn comparable_in_both_directions() {
        assert!(comparable(&[1], &[1, 2]));
        assert!(comparable(&[1, 2], &[1]));
        assert!(!comparable(&[1, 2], &[1, 3]));
    }

    #[test]
    fn lcp_of_singleton_is_itself() {
        let hs = [vec![5, 6, 7]];
        assert_eq!(
            longest_common_prefix(hs.iter().map(|h| h.as_slice())),
            vec![5, 6, 7]
        );
    }

    #[test]
    fn lcp_of_disjoint_is_empty() {
        let hs = [vec![1], vec![2]];
        assert_eq!(
            longest_common_prefix(hs.iter().map(|h| h.as_slice())),
            Vec::<i32>::new()
        );
    }

    #[test]
    fn lcp_handles_contained_sequences() {
        let hs = [vec![1, 2, 3, 4], vec![1, 2]];
        assert_eq!(
            longest_common_prefix(hs.iter().map(|h| h.as_slice())),
            vec![1, 2]
        );
    }

    #[test]
    fn concat_orders_operands() {
        assert_eq!(concat(&[1, 2], &[3]), vec![1, 2, 3]);
        assert_eq!(concat::<u8>(&[], &[]), Vec::<u8>::new());
    }

    #[test]
    fn common_prefix_len_basic() {
        assert_eq!(common_prefix_len(&[1, 2, 3], &[1, 2, 9]), 2);
        assert_eq!(common_prefix_len::<u8>(&[], &[1]), 0);
    }
}
