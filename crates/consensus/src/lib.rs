//! Message-passing speculative consensus (paper Section 2.1).
//!
//! This crate implements, over the [`slin_sim`] substrate:
//!
//! * the **Quorum** speculation phase — decides in two message delays when
//!   the execution is fault-free and contention-free, and otherwise switches
//!   to the next phase;
//! * the **Backup** phase — full single-decree **Paxos** (clients act as
//!   proposers and learners, servers as acceptors), which treats incoming
//!   switch values as proposals;
//! * the **composed protocol** — an N-phase chain of Quorum phases ending
//!   in Paxos, exercising the paper's claim that phases compose without
//!   modifying one another (clients switch independently, no agreement on
//!   the switch point);
//! * a **scenario harness** that runs configurations (crashes, message
//!   loss, contention, delays) and extracts the object-interface trace for
//!   the `slin-core` checkers, plus latency and message-count metrics.
//!
//! # Example
//!
//! ```
//! use slin_consensus::harness::{run_scenario, Scenario};
//!
//! // Three servers, one client, fault-free: Quorum decides in 2 delays.
//! let outcome = run_scenario(&Scenario::fault_free(3, &[(1, 0)]));
//! assert_eq!(outcome.decisions.len(), 1);
//! assert_eq!(outcome.latencies[0].1, Some(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod harness;
pub mod msg;
pub mod paxos;
pub mod quorum;
pub mod server;

pub use client::{Client, ClientConfig};
pub use harness::{run_scenario, RunOutcome, Scenario};
pub use msg::{Ballot, Msg};
pub use server::Server;

use slin_adt::consensus::{ConsInput, ConsOutput, Value};
use slin_trace::Action;

/// The object-interface action type recorded by the protocol: consensus
/// inputs/outputs with proposal values as switch values.
pub type ConsAction = Action<ConsInput, ConsOutput, Value>;
