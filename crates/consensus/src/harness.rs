//! Scenario harness: build, run and measure consensus executions.
//!
//! A [`Scenario`] describes servers, clients (value and invocation time),
//! the fast-phase chain length, network behaviour (delays, loss) and crash
//! injection. [`run_scenario`] executes it deterministically and returns the
//! object-interface trace (for the `slin-core` checkers) together with the
//! metrics the benchmarks report: per-client decision latency in simulated
//! time (= message delays when delays are unit) and total message count.

use crate::client::{Client, ClientConfig};
use crate::msg::Msg;
use crate::server::Server;
use crate::ConsAction;
use slin_adt::consensus::Value;
use slin_adt::Consensus;
use slin_core::compose::{verify_phase_chain, PhaseChainVerification};
use slin_core::initrel::ConsensusInit;
use slin_sim::{ProcessId, SimConfig, Simulation, Time};
use slin_trace::{ClientId, Trace};

/// A consensus execution scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Number of server processes.
    pub servers: usize,
    /// One `(proposal value, invocation time)` pair per client.
    pub clients: Vec<(u64, Time)>,
    /// Number of Quorum fast phases before Paxos (0 = pure Paxos).
    pub fast_phases: u32,
    /// Fast-phase and Paxos retry timeout.
    pub timeout: Time,
    /// Server crashes: `(server index, crash time)`.
    pub crashes: Vec<(usize, Time)>,
    /// RNG seed.
    pub seed: u64,
    /// Message delay bounds.
    pub delay: (Time, Time),
    /// Message drop probability.
    pub drop_prob: f64,
    /// Cap on Paxos ballots per client.
    pub max_paxos_rounds: u32,
    /// Safety bound on simulation steps.
    pub max_steps: usize,
}

impl Scenario {
    /// Fault-free, loss-free, unit-delay scenario with one Quorum phase:
    /// the paper's common case.
    pub fn fault_free(servers: usize, clients: &[(u64, Time)]) -> Self {
        Scenario {
            servers,
            clients: clients.to_vec(),
            fast_phases: 1,
            timeout: 12,
            crashes: Vec::new(),
            seed: 0,
            delay: (1, 1),
            drop_prob: 0.0,
            max_paxos_rounds: 64,
            max_steps: 200_000,
        }
    }

    /// Pure-Paxos baseline (no fast phase) in the same conditions.
    pub fn pure_paxos(servers: usize, clients: &[(u64, Time)]) -> Self {
        Scenario {
            fast_phases: 0,
            ..Scenario::fault_free(servers, clients)
        }
    }

    /// Fault-free but contended: all clients invoke at time 0 with random
    /// delays, so servers may adopt different first proposals.
    pub fn contended(servers: usize, values: &[u64], seed: u64) -> Self {
        Scenario {
            seed,
            delay: (1, 4),
            ..Scenario::fault_free(servers, &values.iter().map(|&v| (v, 0)).collect::<Vec<_>>())
        }
    }

    /// Crash-prone: the given servers crash at the given times.
    pub fn with_crashes(mut self, crashes: &[(usize, Time)]) -> Self {
        self.crashes = crashes.to_vec();
        self
    }

    /// Lossy network with the given drop probability.
    pub fn with_loss(mut self, drop_prob: f64, seed: u64) -> Self {
        self.drop_prob = drop_prob;
        self.seed = seed;
        self
    }

    /// Overrides the number of fast phases.
    pub fn with_fast_phases(mut self, fast_phases: u32) -> Self {
        self.fast_phases = fast_phases;
        self
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The result of running a scenario.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The object-interface trace, in event order.
    pub trace: Trace<ConsAction>,
    /// Each client's decision, in decision order.
    pub decisions: Vec<(ClientId, Value)>,
    /// Per client: decision latency (response time − invocation time), or
    /// `None` when the client never decided.
    pub latencies: Vec<(ClientId, Option<Time>)>,
    /// Final simulated time.
    pub sim_time: Time,
    /// Messages handed to the network.
    pub messages: usize,
    /// Simulation steps processed.
    pub steps: usize,
}

impl RunOutcome {
    /// Whether all decided values agree (consensus agreement).
    pub fn agreement(&self) -> bool {
        self.decisions.windows(2).all(|w| w[0].1 == w[1].1)
    }

    /// The common decided value, if any client decided.
    pub fn decided_value(&self) -> Option<Value> {
        self.decisions.first().map(|(_, v)| *v)
    }

    /// Verifies the recorded trace through the shared checker engine: every
    /// speculation phase `(k, k+1)` of a chain with `fast_phases` Quorum
    /// phases before the Paxos backup, plus plain linearizability of the
    /// object projection, with aggregated
    /// [search statistics](slin_core::engine::SearchStats).
    pub fn verify(&self, fast_phases: u32) -> PhaseChainVerification {
        verify_phase_chain(
            &Consensus,
            ConsensusInit::new(),
            &self.trace,
            1,
            fast_phases + 1,
        )
    }
}

/// Engine-backed verification of a scenario run (phases derived from the
/// scenario's chain length). See [`RunOutcome::verify`].
pub fn verify_run(scenario: &Scenario, out: &RunOutcome) -> PhaseChainVerification {
    out.verify(scenario.fast_phases)
}

/// Builds and runs a scenario to quiescence.
///
/// # Example
///
/// ```
/// use slin_consensus::harness::{run_scenario, Scenario};
/// let out = run_scenario(&Scenario::fault_free(3, &[(7, 0), (9, 40)]));
/// // Sequential, fault-free: both decide the first value, in 2 delays each.
/// assert!(out.agreement());
/// assert_eq!(out.latencies[0].1, Some(2));
/// assert_eq!(out.latencies[1].1, Some(2));
/// ```
pub fn run_scenario(scenario: &Scenario) -> RunOutcome {
    let mut sim: Simulation<Msg, ConsAction> = Simulation::new(SimConfig {
        seed: scenario.seed,
        min_delay: scenario.delay.0,
        max_delay: scenario.delay.1,
        drop_prob: scenario.drop_prob,
        max_steps: scenario.max_steps,
    });
    let servers: Vec<ProcessId> = (0..scenario.servers)
        .map(|_| sim.add_process(Box::new(Server::new())))
        .collect();
    for (k, &(value, invoke_at)) in scenario.clients.iter().enumerate() {
        let cfg = ClientConfig {
            index: k as u32 + 1,
            proposal: Value::new(value),
            servers: servers.clone(),
            invoke_at,
            timeout: scenario.timeout,
            fast_phases: scenario.fast_phases,
            max_paxos_rounds: scenario.max_paxos_rounds,
        };
        sim.add_process(Box::new(Client::new(cfg)));
    }
    for &(server_idx, at) in &scenario.crashes {
        sim.crash_at(servers[server_idx], at);
    }
    sim.run();

    let sim_time = sim.now();
    let messages = sim.messages_sent();
    let steps = sim.steps();
    let record_times = sim.record_times().to_vec();
    let records = sim.into_records();

    let mut decisions = Vec::new();
    let mut invoke_time = std::collections::HashMap::new();
    let mut latencies: Vec<(ClientId, Option<Time>)> = (1..=scenario.clients.len() as u32)
        .map(|k| (ClientId::new(k), None))
        .collect();
    for (a, &at) in records.iter().zip(record_times.iter()) {
        match a {
            slin_trace::Action::Invoke { client, .. } => {
                invoke_time.insert(*client, at);
            }
            slin_trace::Action::Respond { client, output, .. } => {
                decisions.push((*client, output.value()));
                if let Some(&t0) = invoke_time.get(client) {
                    latencies[client.value() as usize - 1].1 = Some(at - t0);
                }
            }
            slin_trace::Action::Switch { .. } => {}
        }
    }

    RunOutcome {
        trace: Trace::from_actions(records),
        decisions,
        latencies,
        sim_time,
        messages,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slin_core::invariants;

    #[test]
    fn fault_free_single_client_decides_in_two_delays() {
        let out = run_scenario(&Scenario::fault_free(3, &[(5, 0)]));
        assert_eq!(out.decisions.len(), 1);
        assert_eq!(out.decided_value(), Some(Value::new(5)));
        assert_eq!(out.latencies[0].1, Some(2));
        // No switches in the fault-free, contention-free case.
        assert!(out.trace.iter().all(|a| !a.is_switch()));
    }

    #[test]
    fn sequential_clients_decide_first_value() {
        // Contention-free (non-overlapping): both decide in the fast phase.
        let out = run_scenario(&Scenario::fault_free(5, &[(7, 0), (9, 50)]));
        assert_eq!(out.decisions.len(), 2);
        assert!(out.agreement());
        assert_eq!(out.decided_value(), Some(Value::new(7)));
        assert_eq!(out.latencies[1].1, Some(2));
    }

    #[test]
    fn pure_paxos_single_client_takes_four_delays() {
        // Two round trips: Prepare/Promise + Accept2a/Accepted2b.
        let out = run_scenario(&Scenario::pure_paxos(3, &[(5, 0)]));
        assert_eq!(out.decisions.len(), 1);
        assert_eq!(out.latencies[0].1, Some(4));
    }

    #[test]
    fn contention_falls_back_and_agrees() {
        let mut fallback_seen = false;
        for seed in 0..25 {
            let out = run_scenario(&Scenario::contended(3, &[1, 2, 3], seed));
            assert!(out.agreement(), "seed {seed}: {:?}", out.decisions);
            assert_eq!(out.decisions.len(), 3, "seed {seed}: all must decide");
            fallback_seen |= out.trace.iter().any(|a| a.is_switch());
            // The paper's invariants hold on every run.
            assert!(invariants::i2(&out.trace), "seed {seed}");
            assert!(invariants::i3(&out.trace), "seed {seed}");
            assert!(
                invariants::consensus_linearizable(&out.trace),
                "seed {seed}"
            );
        }
        assert!(fallback_seen, "contention should trigger some switches");
    }

    #[test]
    fn server_crash_forces_backup_which_still_decides() {
        // One of three servers crashes immediately: unanimity is impossible,
        // Quorum times out, Paxos (majority 2/3 alive) decides.
        let out = run_scenario(&Scenario::fault_free(3, &[(4, 0)]).with_crashes(&[(0, 0)]));
        assert_eq!(out.decisions.len(), 1);
        assert!(out.trace.iter().any(|a| a.is_switch()));
        assert!(invariants::consensus_linearizable(&out.trace));
    }

    #[test]
    fn majority_crash_blocks_everything_safely() {
        let out = run_scenario(&Scenario::fault_free(3, &[(4, 0)]).with_crashes(&[(0, 0), (1, 0)]));
        assert!(out.decisions.is_empty());
        // Safety: the trace (with a pending invocation) is still fine.
        assert!(invariants::consensus_linearizable(&out.trace));
    }

    #[test]
    fn lossy_network_eventually_decides_and_agrees() {
        for seed in 0..15 {
            let out =
                run_scenario(&Scenario::fault_free(3, &[(1, 0), (2, 0)]).with_loss(0.2, seed));
            assert!(out.agreement(), "seed {seed}");
            assert!(
                invariants::consensus_linearizable(&out.trace),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn multi_phase_chain_still_agrees() {
        for seed in 0..10 {
            let out = run_scenario(&Scenario::contended(3, &[1, 2], seed).with_fast_phases(3));
            assert!(out.agreement(), "seed {seed}");
            assert_eq!(out.decisions.len(), 2, "seed {seed}");
            assert!(
                invariants::consensus_linearizable(&out.trace),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn engine_verification_accepts_contended_runs() {
        for seed in 0..10 {
            let scenario = Scenario::contended(3, &[1, 2], seed);
            let out = run_scenario(&scenario);
            let v = verify_run(&scenario, &out);
            assert!(v.all_ok(), "seed {seed}: {v:?}");
            assert_eq!(v.phases.len(), 2, "phases (1,2) and (2,3)");
            assert!(v.stats.nodes > 0, "seed {seed}");
        }
    }

    #[test]
    fn engine_verification_covers_longer_chains() {
        let scenario = Scenario::contended(3, &[1, 2], 3).with_fast_phases(3);
        let out = run_scenario(&scenario);
        let v = verify_run(&scenario, &out);
        assert_eq!(v.phases.len(), 4, "phases (1,2) .. (4,5)");
        assert!(v.all_ok(), "{v:?}");
    }

    #[test]
    fn runs_are_deterministic() {
        let s = Scenario::contended(3, &[1, 2, 3], 9);
        let a = run_scenario(&s);
        let b = run_scenario(&s);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.sim_time, b.sim_time);
        assert_eq!(a.messages, b.messages);
    }
}
