//! Single-decree Paxos, client (proposer/learner) side.
//!
//! The Backup phase of Section 2.1: "Lamport's Paxos algorithm where clients
//! have the role of proposers and learners, while servers have the role of
//! acceptors. Backup treats the switch calls from Quorum as regular
//! proposals."
//!
//! The proposer runs the classic two phases with unique ballots
//! (round, client):
//!
//! 1. broadcast `Prepare(b)`; on a majority of promises, propose the value
//!    accepted at the highest ballot (or its own if none);
//! 2. broadcast `Accept2a(b, v)`; on a majority of accepts, **decide `v`**.
//!
//! Rejections and timeouts restart with a strictly higher ballot; the
//! embedding client adds per-client backoff to damp duels. Safety is
//! Paxos's: a value chosen at some ballot is adopted by every higher-ballot
//! phase 1, so decisions never diverge (tolerates any minority of acceptor
//! crashes).

use crate::msg::{Ballot, Msg};
use slin_adt::consensus::Value;
use slin_sim::{Context, ProcessId};
use std::collections::{HashMap, HashSet};

/// What the embedding client must do after feeding an event to the
/// proposer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaxosStep {
    /// Keep waiting.
    Continue,
    /// The value was chosen and learned: respond to the application.
    Decide(Value),
    /// The ballot was rejected: back off, then call
    /// [`PaxosProposer::retry`].
    Backoff,
}

#[derive(Debug, Clone)]
enum Round {
    /// Waiting for phase-1b promises.
    Prepare {
        promises: HashMap<ProcessId, Option<(Ballot, Value)>>,
    },
    /// Waiting for phase-2b accepts of `value`.
    Accept {
        value: Value,
        acks: HashSet<ProcessId>,
    },
}

/// Client-side state of a Paxos proposer/learner.
#[derive(Debug, Clone)]
pub struct PaxosProposer {
    ballot: Ballot,
    proposal: Value,
    servers: Vec<ProcessId>,
    round: Round,
    highest_rejection: Option<Ballot>,
    rounds_started: u32,
}

impl PaxosProposer {
    /// Creates a proposer for `client_index` proposing `proposal` to the
    /// acceptors `servers`.
    pub fn new(client_index: u32, proposal: Value, servers: Vec<ProcessId>) -> Self {
        assert!(!servers.is_empty(), "at least one acceptor");
        PaxosProposer {
            ballot: Ballot::first(client_index),
            proposal,
            servers,
            round: Round::Prepare {
                promises: HashMap::new(),
            },
            highest_rejection: None,
            rounds_started: 1,
        }
    }

    /// The majority threshold.
    fn majority(&self) -> usize {
        self.servers.len() / 2 + 1
    }

    /// The current ballot.
    pub fn ballot(&self) -> Ballot {
        self.ballot
    }

    /// How many ballots this proposer has started.
    pub fn rounds_started(&self) -> u32 {
        self.rounds_started
    }

    /// Broadcasts the phase-1a prepare for the current ballot.
    pub fn begin<E>(&self, ctx: &mut Context<'_, Msg, E>) {
        ctx.broadcast(
            self.servers.iter().copied(),
            Msg::Prepare {
                ballot: self.ballot,
            },
        );
    }

    /// Starts a fresh round with a ballot above everything seen.
    pub fn retry<E>(&mut self, ctx: &mut Context<'_, Msg, E>) {
        let floor = self.highest_rejection.unwrap_or(self.ballot);
        self.ballot = self.ballot.above(floor);
        self.round = Round::Prepare {
            promises: HashMap::new(),
        };
        self.rounds_started += 1;
        self.begin(ctx);
    }

    /// Feeds a message from an acceptor.
    pub fn on_message<E>(
        &mut self,
        ctx: &mut Context<'_, Msg, E>,
        from: ProcessId,
        msg: Msg,
    ) -> PaxosStep {
        match msg {
            Msg::Promise { ballot, accepted } if ballot == self.ballot => {
                let majority = self.majority();
                if let Round::Prepare { promises } = &mut self.round {
                    promises.insert(from, accepted);
                    if promises.len() >= majority {
                        // Adopt the value accepted at the highest ballot, if
                        // any — the heart of Paxos safety.
                        let adopted = promises
                            .values()
                            .flatten()
                            .max_by_key(|(b, _)| *b)
                            .map(|(_, v)| *v)
                            .unwrap_or(self.proposal);
                        self.round = Round::Accept {
                            value: adopted,
                            acks: HashSet::new(),
                        };
                        ctx.broadcast(
                            self.servers.iter().copied(),
                            Msg::Accept2a {
                                ballot: self.ballot,
                                value: adopted,
                            },
                        );
                    }
                }
                PaxosStep::Continue
            }
            Msg::Accepted2b { ballot } if ballot == self.ballot => {
                let majority = self.majority();
                if let Round::Accept { value, acks } = &mut self.round {
                    acks.insert(from);
                    if acks.len() >= majority {
                        return PaxosStep::Decide(*value);
                    }
                }
                PaxosStep::Continue
            }
            Msg::Reject { promised } => {
                if promised > self.ballot {
                    self.highest_rejection =
                        Some(self.highest_rejection.map_or(promised, |h| h.max(promised)));
                    return PaxosStep::Backoff;
                }
                PaxosStep::Continue
            }
            // Stale or foreign messages.
            _ => PaxosStep::Continue,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Server;
    use crate::ConsAction;
    use slin_sim::{Process, SimConfig, Simulation};

    /// Minimal learner client: runs one proposer to completion.
    struct Learner {
        proposer: Option<PaxosProposer>,
        proposal: Value,
        index: u32,
        servers: Vec<ProcessId>,
    }

    impl Process<Msg, ConsAction> for Learner {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg, ConsAction>) {
            let p = PaxosProposer::new(self.index, self.proposal, self.servers.clone());
            p.begin(ctx);
            self.proposer = Some(p);
        }
        fn on_message(
            &mut self,
            ctx: &mut Context<'_, Msg, ConsAction>,
            from: ProcessId,
            msg: Msg,
        ) {
            if let Some(p) = &mut self.proposer {
                match p.on_message(ctx, from, msg) {
                    PaxosStep::Decide(v) => {
                        ctx.record(slin_trace::Action::respond(
                            slin_trace::ClientId::new(self.index),
                            slin_trace::PhaseId::FIRST,
                            slin_adt::ConsInput::propose(self.proposal),
                            slin_adt::ConsOutput::decide(v.get()),
                        ));
                        self.proposer = None;
                    }
                    PaxosStep::Backoff => {
                        if p.rounds_started() < 50 {
                            p.retry(ctx);
                        }
                    }
                    PaxosStep::Continue => {}
                }
            }
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, Msg, ConsAction>, _t: u64) {
            if let Some(p) = &mut self.proposer {
                p.retry(ctx);
            }
        }
    }

    fn run_paxos(
        n_servers: usize,
        proposals: &[u64],
        seed: u64,
        crashes: &[usize],
    ) -> Vec<ConsAction> {
        let mut sim: Simulation<Msg, ConsAction> = Simulation::new(SimConfig {
            seed,
            min_delay: 1,
            max_delay: 3,
            ..SimConfig::default()
        });
        let servers: Vec<ProcessId> = (0..n_servers)
            .map(|_| sim.add_process(Box::new(Server::new())))
            .collect();
        for (k, &v) in proposals.iter().enumerate() {
            sim.add_process(Box::new(Learner {
                proposer: None,
                proposal: Value::new(v),
                index: k as u32 + 1,
                servers: servers.clone(),
            }));
        }
        for &k in crashes {
            sim.crash_at(servers[k], 0);
        }
        sim.run();
        sim.into_records()
    }

    fn decisions(records: &[ConsAction]) -> Vec<u64> {
        records
            .iter()
            .filter_map(|a| a.output().map(|o| o.value().get()))
            .collect()
    }

    #[test]
    fn single_proposer_decides_own_value() {
        let rec = run_paxos(3, &[42], 0, &[]);
        assert_eq!(decisions(&rec), vec![42]);
    }

    #[test]
    fn contending_proposers_agree() {
        for seed in 0..20 {
            let rec = run_paxos(3, &[1, 2], seed, &[]);
            let ds = decisions(&rec);
            assert_eq!(ds.len(), 2, "seed {seed}: both should learn");
            assert_eq!(ds[0], ds[1], "seed {seed}: agreement violated");
        }
    }

    #[test]
    fn tolerates_minority_crashes() {
        let rec = run_paxos(5, &[9], 3, &[0, 1]);
        assert_eq!(decisions(&rec), vec![9]);
    }

    #[test]
    fn majority_crash_prevents_decision() {
        let rec = run_paxos(3, &[9], 3, &[0, 1]);
        assert!(decisions(&rec).is_empty());
    }

    #[test]
    fn three_way_contention_agrees() {
        for seed in 0..10 {
            let rec = run_paxos(5, &[1, 2, 3], seed, &[]);
            let ds = decisions(&rec);
            assert!(!ds.is_empty(), "seed {seed}");
            assert!(ds.windows(2).all(|w| w[0] == w[1]), "seed {seed}: {ds:?}");
        }
    }
}
