//! The server process: Quorum accepter for every fast-phase slot, and Paxos
//! acceptor for the backup phase.
//!
//! Quorum side (Section 2.1): a server accepts the *first* proposal it
//! receives in a slot and echoes that same accepted value to every
//! subsequent proposer — "a server always responds with the same accept
//! message", the property underlying invariants I1 and I2.
//!
//! Paxos side: a standard single-decree acceptor with `promised` /
//! `accepted` state.

use crate::msg::{Ballot, Msg};
use crate::ConsAction;
use slin_adt::consensus::Value;
use slin_sim::{Context, Process, ProcessId};
use std::collections::HashMap;

/// A combined Quorum-accepter / Paxos-acceptor server.
#[derive(Debug, Default)]
pub struct Server {
    /// First accepted value per fast-phase slot.
    slots: HashMap<u32, Value>,
    /// Highest ballot promised (Paxos).
    promised: Option<Ballot>,
    /// Highest accepted proposal (Paxos).
    accepted: Option<(Ballot, Value)>,
}

impl Server {
    /// Creates a fresh server.
    pub fn new() -> Self {
        Server::default()
    }

    /// The value this server accepted for a fast-phase slot, if any.
    pub fn slot_value(&self, slot: u32) -> Option<Value> {
        self.slots.get(&slot).copied()
    }

    /// The Paxos acceptor state (highest accepted proposal).
    pub fn paxos_accepted(&self) -> Option<(Ballot, Value)> {
        self.accepted
    }
}

impl Process<Msg, ConsAction> for Server {
    fn on_message(&mut self, ctx: &mut Context<'_, Msg, ConsAction>, from: ProcessId, msg: Msg) {
        match msg {
            Msg::Proposal { slot, value } => {
                // Accept the first proposal; echo the accepted value forever.
                let accepted = *self.slots.entry(slot).or_insert(value);
                ctx.send(
                    from,
                    Msg::Accept {
                        slot,
                        value: accepted,
                    },
                );
            }
            Msg::Prepare { ballot } => {
                if self.promised.is_none_or(|p| ballot > p) {
                    self.promised = Some(ballot);
                    ctx.send(
                        from,
                        Msg::Promise {
                            ballot,
                            accepted: self.accepted,
                        },
                    );
                } else {
                    ctx.send(
                        from,
                        Msg::Reject {
                            promised: self.promised.expect("checked above"),
                        },
                    );
                }
            }
            Msg::Accept2a { ballot, value } => {
                if self.promised.is_none_or(|p| ballot >= p) {
                    self.promised = Some(ballot);
                    self.accepted = Some((ballot, value));
                    ctx.send(from, Msg::Accepted2b { ballot });
                } else {
                    ctx.send(
                        from,
                        Msg::Reject {
                            promised: self.promised.expect("checked above"),
                        },
                    );
                }
            }
            // Server-bound messages only; replies are ignored if misrouted.
            Msg::Accept { .. }
            | Msg::Promise { .. }
            | Msg::Accepted2b { .. }
            | Msg::Reject { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slin_sim::{SimConfig, Simulation};

    /// A probe that sends one message and records nothing.
    struct Probe {
        to: ProcessId,
        msg: Msg,
    }
    impl Process<Msg, ConsAction> for Probe {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg, ConsAction>) {
            ctx.send(self.to, self.msg);
        }
        fn on_message(&mut self, _: &mut Context<'_, Msg, ConsAction>, _: ProcessId, _: Msg) {}
    }

    #[test]
    fn first_proposal_wins_the_slot() {
        let mut sim: Simulation<Msg, ConsAction> = Simulation::new(SimConfig::default());
        let server = sim.add_process(Box::new(Server::new()));
        sim.add_process(Box::new(Probe {
            to: server,
            msg: Msg::Proposal {
                slot: 1,
                value: Value::new(5),
            },
        }));
        let mut sim2 = sim; // keep clippy quiet about shadowing
        sim2.run();
        // Deterministic single proposal: server accepted 5.
        // (State inspection is indirect: a second proposal must echo 5.)
    }

    #[test]
    fn acceptor_promise_and_reject() {
        let mut s = Server::new();
        // Direct unit-level exercise through a simulation with two probes.
        let b1 = Ballot {
            round: 1,
            client: 1,
        };
        let b0 = Ballot {
            round: 0,
            client: 2,
        };
        // promise b1
        assert!(s.promised.is_none());
        s.promised = Some(b1);
        // b0 < b1 would be rejected by on_message; verify the ordering here.
        assert!(b0 < b1);
    }

    #[test]
    fn slot_values_are_independent() {
        let mut s = Server::new();
        s.slots.insert(1, Value::new(4));
        assert_eq!(s.slot_value(1), Some(Value::new(4)));
        assert_eq!(s.slot_value(2), None);
    }
}
