//! The Quorum speculation phase (client side).
//!
//! Section 2.1: a client broadcasts its proposal to all servers and waits.
//! A server accepts the first proposal it receives for the phase and echoes
//! it to everyone. The client:
//!
//! * **decides `v`** on unanimous `accept(v)` from *all* servers
//!   (two message delays end to end);
//! * **switches with its own proposal** upon seeing two different accept
//!   values (contention detected);
//! * **switches with a received accept value** when its timer expires while
//!   at least one accept has arrived (faults or loss suspected);
//! * **retries the broadcast** when the timer expires with no accepts.
//!
//! The state machine is synchronous-code-free: it consumes events and
//! returns a [`QuorumStep`] telling the embedding client what to do.

use crate::msg::Msg;
use slin_adt::consensus::Value;
use slin_sim::{Context, ProcessId};
use std::collections::HashMap;

/// What the embedding client must do after feeding an event to the phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuorumStep {
    /// Keep waiting.
    Continue,
    /// Decide the value (respond to the application).
    Decide(Value),
    /// Switch to the next phase with the given switch value.
    Switch(Value),
    /// Re-broadcast the proposal and re-arm the timer (timeout, nothing
    /// received yet).
    Rebroadcast,
}

/// Client-side state of one Quorum fast phase.
#[derive(Debug, Clone)]
pub struct QuorumPhase {
    slot: u32,
    proposal: Value,
    servers: Vec<ProcessId>,
    accepts: HashMap<ProcessId, Value>,
}

impl QuorumPhase {
    /// Creates the phase for fast-phase `slot`, proposing `proposal` to
    /// `servers`.
    pub fn new(slot: u32, proposal: Value, servers: Vec<ProcessId>) -> Self {
        assert!(!servers.is_empty(), "at least one server");
        QuorumPhase {
            slot,
            proposal,
            servers,
            accepts: HashMap::new(),
        }
    }

    /// The phase's slot.
    pub fn slot(&self) -> u32 {
        self.slot
    }

    /// The value this client proposes in the phase.
    pub fn proposal(&self) -> Value {
        self.proposal
    }

    /// Broadcasts the proposal to all servers.
    pub fn begin<E>(&self, ctx: &mut Context<'_, Msg, E>) {
        ctx.broadcast(
            self.servers.iter().copied(),
            Msg::Proposal {
                slot: self.slot,
                value: self.proposal,
            },
        );
    }

    /// Feeds an accept message for this slot.
    pub fn on_accept(&mut self, from: ProcessId, value: Value) -> QuorumStep {
        self.accepts.insert(from, value);
        let mut values = self.accepts.values();
        let first = *values.next().expect("just inserted");
        if values.any(|v| *v != first) {
            // Two different accepts: contention — switch with own proposal.
            return QuorumStep::Switch(self.proposal);
        }
        if self.accepts.len() == self.servers.len() {
            // Unanimous accepts from all servers: decide.
            return QuorumStep::Decide(first);
        }
        QuorumStep::Continue
    }

    /// Feeds a timer expiry.
    pub fn on_timeout(&mut self) -> QuorumStep {
        match self.accepts.values().next() {
            // Some accept received: switch with that value.
            Some(v) => QuorumStep::Switch(*v),
            // Nothing yet: retry (the paper's client waits; retrying is
            // equivalent since servers answer idempotently).
            None => QuorumStep::Rebroadcast,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn servers(n: u32) -> Vec<ProcessId> {
        // ProcessId construction is private; obtain ids from a simulation.
        let mut sim: slin_sim::Simulation<Msg, ()> =
            slin_sim::Simulation::new(slin_sim::SimConfig::default());
        (0..n).map(|_| sim.add_process(Box::new(Sink))).collect()
    }

    struct Sink;
    impl slin_sim::Process<Msg, ()> for Sink {
        fn on_message(&mut self, _: &mut Context<'_, Msg, ()>, _: ProcessId, _: Msg) {}
    }

    #[test]
    fn unanimous_accepts_decide() {
        let ss = servers(3);
        let mut q = QuorumPhase::new(1, Value::new(7), ss.clone());
        assert_eq!(q.on_accept(ss[0], Value::new(7)), QuorumStep::Continue);
        assert_eq!(q.on_accept(ss[1], Value::new(7)), QuorumStep::Continue);
        assert_eq!(
            q.on_accept(ss[2], Value::new(7)),
            QuorumStep::Decide(Value::new(7))
        );
    }

    #[test]
    fn client_may_decide_anothers_value() {
        let ss = servers(2);
        let mut q = QuorumPhase::new(1, Value::new(7), ss.clone());
        assert_eq!(q.on_accept(ss[0], Value::new(3)), QuorumStep::Continue);
        assert_eq!(
            q.on_accept(ss[1], Value::new(3)),
            QuorumStep::Decide(Value::new(3))
        );
    }

    #[test]
    fn conflicting_accepts_switch_with_own_proposal() {
        let ss = servers(3);
        let mut q = QuorumPhase::new(1, Value::new(7), ss.clone());
        q.on_accept(ss[0], Value::new(1));
        assert_eq!(
            q.on_accept(ss[1], Value::new(2)),
            QuorumStep::Switch(Value::new(7))
        );
    }

    #[test]
    fn timeout_with_accepts_switches_with_accept_value() {
        let ss = servers(3);
        let mut q = QuorumPhase::new(1, Value::new(7), ss.clone());
        q.on_accept(ss[0], Value::new(3));
        assert_eq!(q.on_timeout(), QuorumStep::Switch(Value::new(3)));
    }

    #[test]
    fn timeout_without_accepts_rebroadcasts() {
        let ss = servers(3);
        let mut q = QuorumPhase::new(1, Value::new(7), ss);
        assert_eq!(q.on_timeout(), QuorumStep::Rebroadcast);
    }

    #[test]
    fn duplicate_accepts_do_not_decide_early() {
        let ss = servers(3);
        let mut q = QuorumPhase::new(1, Value::new(7), ss.clone());
        q.on_accept(ss[0], Value::new(7));
        assert_eq!(q.on_accept(ss[0], Value::new(7)), QuorumStep::Continue);
    }
}
