//! Protocol messages: Quorum proposals/accepts and Paxos ballots.

use slin_adt::consensus::Value;
use std::fmt;

/// A Paxos ballot: totally ordered, unique per client (the client index
/// breaks ties between rounds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ballot {
    /// The retry round.
    pub round: u32,
    /// The proposing client's index (tie breaker).
    pub client: u32,
}

impl Ballot {
    /// The smallest ballot of a client (round 0).
    pub fn first(client: u32) -> Self {
        Ballot { round: 0, client }
    }

    /// The next ballot of the same client strictly greater than `other`.
    pub fn above(&self, other: Ballot) -> Ballot {
        Ballot {
            round: self.round.max(other.round) + 1,
            client: self.client,
        }
    }
}

impl fmt::Debug for Ballot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}.{}", self.round, self.client)
    }
}

/// Messages exchanged between clients and servers.
///
/// Quorum messages carry a `slot` identifying which fast phase they belong
/// to (the composed protocol may chain several Quorum phases); Paxos runs as
/// the single final phase.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Msg {
    /// Quorum: a client broadcasts its proposal for fast-phase `slot`.
    Proposal {
        /// The fast-phase index (1-based).
        slot: u32,
        /// The proposed value.
        value: Value,
    },
    /// Quorum: a server echoes the first value it accepted in `slot`.
    Accept {
        /// The fast-phase index.
        slot: u32,
        /// The server's accepted value for the slot.
        value: Value,
    },
    /// Paxos phase 1a: a proposer asks for promises.
    Prepare {
        /// The proposer's ballot.
        ballot: Ballot,
    },
    /// Paxos phase 1b: an acceptor promises and reports its accepted value.
    Promise {
        /// The ballot being promised.
        ballot: Ballot,
        /// The acceptor's highest accepted (ballot, value), if any.
        accepted: Option<(Ballot, Value)>,
    },
    /// Paxos phase 2a: the proposer asks acceptors to accept `value`.
    Accept2a {
        /// The proposer's ballot.
        ballot: Ballot,
        /// The value to accept.
        value: Value,
    },
    /// Paxos phase 2b: an acceptor accepted the proposal.
    Accepted2b {
        /// The accepted ballot.
        ballot: Ballot,
    },
    /// Paxos: an acceptor refuses a stale ballot, reporting its promise.
    Reject {
        /// The acceptor's current promised ballot.
        promised: Ballot,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ballots_order_by_round_then_client() {
        assert!(
            Ballot {
                round: 1,
                client: 0
            } > Ballot {
                round: 0,
                client: 9
            }
        );
        assert!(
            Ballot {
                round: 1,
                client: 2
            } > Ballot {
                round: 1,
                client: 1
            }
        );
    }

    #[test]
    fn above_is_strictly_greater_and_keeps_client() {
        let mine = Ballot::first(3);
        let theirs = Ballot {
            round: 7,
            client: 5,
        };
        let next = mine.above(theirs);
        assert!(next > theirs);
        assert!(next > mine);
        assert_eq!(next.client, 3);
    }

    #[test]
    fn first_ballots_are_distinct_across_clients() {
        assert_ne!(Ballot::first(1), Ballot::first(2));
    }
}
