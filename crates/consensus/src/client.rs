//! The composed speculative client: a chain of Quorum fast phases ending in
//! the Paxos backup.
//!
//! Each client proposes once. It starts in fast phase 1 and, whenever a
//! phase aborts, records a switch action and independently moves to the
//! next phase, carrying the switch value as its new proposal — no agreement
//! with other clients on when (or whether) to switch, exactly as the
//! framework demands. With `fast_phases = 0` the client runs pure Paxos
//! (the unoptimized baseline); with `fast_phases = 1` it is the paper's
//! Quorum + Backup composition.
//!
//! Every object-interface event is recorded as a [`crate::ConsAction`]:
//! `inv` at invocation, `swi(c, k+1, in, v)` at each switch, and
//! `res(c, k, in, d(v))` at the decision in phase `k`.

use crate::msg::Msg;
use crate::paxos::{PaxosProposer, PaxosStep};
use crate::quorum::{QuorumPhase, QuorumStep};
use crate::ConsAction;
use slin_adt::consensus::{ConsInput, ConsOutput, Value};
use slin_sim::{Context, Process, ProcessId, Time, TimerId};
use slin_trace::{Action, ClientId, PhaseId};

/// Configuration of a composed client.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// The client's 1-based index (also its [`ClientId`] and Paxos ballot
    /// tie-breaker).
    pub index: u32,
    /// The value this client proposes.
    pub proposal: Value,
    /// The server processes.
    pub servers: Vec<ProcessId>,
    /// Absolute simulated time of the invocation.
    pub invoke_at: Time,
    /// Fast-phase timeout (simulated time units).
    pub timeout: Time,
    /// Number of Quorum fast phases before the Paxos backup (0 = pure
    /// Paxos).
    pub fast_phases: u32,
    /// Cap on Paxos ballots (livelock guard in adversarial scenarios).
    pub max_paxos_rounds: u32,
}

impl ClientConfig {
    /// A standard configuration: one fast phase, then Paxos.
    pub fn new(index: u32, proposal: impl Into<Value>, servers: Vec<ProcessId>) -> Self {
        ClientConfig {
            index,
            proposal: proposal.into(),
            servers,
            invoke_at: 0,
            timeout: 10,
            fast_phases: 1,
            max_paxos_rounds: 64,
        }
    }
}

#[derive(Debug)]
enum State {
    Idle,
    Fast { phase_no: u32, q: QuorumPhase },
    Backup { p: PaxosProposer },
    Done,
}

/// The composed speculative client process.
#[derive(Debug)]
pub struct Client {
    cfg: ClientConfig,
    state: State,
    /// Timer epoch: stale timers are ignored.
    epoch: TimerId,
    decided: Option<Value>,
}

impl Client {
    /// Creates the client.
    pub fn new(cfg: ClientConfig) -> Self {
        Client {
            cfg,
            state: State::Idle,
            epoch: 0,
            decided: None,
        }
    }

    /// The decided value, once the client responded.
    pub fn decided(&self) -> Option<Value> {
        self.decided
    }

    fn client_id(&self) -> ClientId {
        ClientId::new(self.cfg.index)
    }

    fn input(&self) -> ConsInput {
        ConsInput::propose(self.cfg.proposal)
    }

    fn arm_timer(&mut self, ctx: &mut Context<'_, Msg, ConsAction>, delay: Time) {
        self.epoch += 1;
        ctx.set_timer(delay, self.epoch);
    }

    fn invoke(&mut self, ctx: &mut Context<'_, Msg, ConsAction>) {
        ctx.record(Action::invoke(
            self.client_id(),
            PhaseId::new(1),
            self.input(),
        ));
        if self.cfg.fast_phases >= 1 {
            let q = QuorumPhase::new(1, self.cfg.proposal, self.cfg.servers.clone());
            q.begin(ctx);
            self.state = State::Fast { phase_no: 1, q };
            let t = self.cfg.timeout;
            self.arm_timer(ctx, t);
        } else {
            self.enter_backup(ctx, self.cfg.proposal);
        }
    }

    fn enter_backup(&mut self, ctx: &mut Context<'_, Msg, ConsAction>, proposal: Value) {
        let p = PaxosProposer::new(self.cfg.index, proposal, self.cfg.servers.clone());
        p.begin(ctx);
        self.state = State::Backup { p };
        let t = self.cfg.timeout;
        self.arm_timer(ctx, t);
    }

    fn decide(&mut self, ctx: &mut Context<'_, Msg, ConsAction>, phase_no: u32, v: Value) {
        ctx.record(Action::respond(
            self.client_id(),
            PhaseId::new(phase_no),
            self.input(),
            ConsOutput::decide(v),
        ));
        self.decided = Some(v);
        self.state = State::Done;
        self.epoch += 1; // cancel outstanding timers
    }

    fn switch(&mut self, ctx: &mut Context<'_, Msg, ConsAction>, from_phase: u32, value: Value) {
        ctx.record(Action::switch(
            self.client_id(),
            PhaseId::new(from_phase + 1),
            self.input(),
            value,
        ));
        if from_phase < self.cfg.fast_phases {
            let q = QuorumPhase::new(from_phase + 1, value, self.cfg.servers.clone());
            q.begin(ctx);
            self.state = State::Fast {
                phase_no: from_phase + 1,
                q,
            };
            let t = self.cfg.timeout;
            self.arm_timer(ctx, t);
        } else {
            self.enter_backup(ctx, value);
        }
    }
}

impl Process<Msg, ConsAction> for Client {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg, ConsAction>) {
        if self.cfg.invoke_at == 0 {
            self.invoke(ctx);
        } else {
            let at = self.cfg.invoke_at;
            self.arm_timer(ctx, at);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Msg, ConsAction>, from: ProcessId, msg: Msg) {
        match &mut self.state {
            State::Fast { phase_no, q } => {
                let phase_no = *phase_no;
                if let Msg::Accept { slot, value } = msg {
                    if slot != q.slot() {
                        return; // stale accept from an earlier fast phase
                    }
                    match q.on_accept(from, value) {
                        QuorumStep::Continue => {}
                        QuorumStep::Decide(v) => self.decide(ctx, phase_no, v),
                        QuorumStep::Switch(v) => self.switch(ctx, phase_no, v),
                        QuorumStep::Rebroadcast => unreachable!("accepts never rebroadcast"),
                    }
                }
            }
            State::Backup { p } => match p.on_message(ctx, from, msg) {
                PaxosStep::Continue => {}
                PaxosStep::Decide(v) => {
                    let phase_no = self.cfg.fast_phases + 1;
                    self.decide(ctx, phase_no, v);
                }
                PaxosStep::Backoff => {
                    if p.rounds_started() < self.cfg.max_paxos_rounds {
                        // Damp duels: back off proportionally to the index.
                        let delay = self.cfg.timeout / 2 + self.cfg.index as Time;
                        self.arm_timer(ctx, delay.max(1));
                    }
                }
            },
            State::Idle | State::Done => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Msg, ConsAction>, timer: TimerId) {
        if timer != self.epoch {
            return; // stale timer from an earlier state
        }
        match &mut self.state {
            State::Idle => self.invoke(ctx),
            State::Fast { phase_no, q } => {
                let phase_no = *phase_no;
                match q.on_timeout() {
                    QuorumStep::Switch(v) => self.switch(ctx, phase_no, v),
                    QuorumStep::Rebroadcast => {
                        q.begin(ctx);
                        let t = self.cfg.timeout;
                        self.arm_timer(ctx, t);
                    }
                    QuorumStep::Continue | QuorumStep::Decide(_) => {
                        unreachable!("timeout never continues or decides")
                    }
                }
            }
            State::Backup { p } => {
                if p.rounds_started() < self.cfg.max_paxos_rounds {
                    p.retry(ctx);
                    let t = self.cfg.timeout;
                    self.arm_timer(ctx, t);
                }
            }
            State::Done => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let cfg = ClientConfig::new(1, 5, vec![]);
        assert_eq!(cfg.fast_phases, 1);
        assert!(cfg.timeout > 0);
        assert_eq!(cfg.proposal, Value::new(5));
    }
}
