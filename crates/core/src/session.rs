//! The unified checker surface: one builder, one [`Session`], one
//! [`Verdict`] — strategy is configuration, not a method-name matrix.
//!
//! Three PRs of growth scattered the checking surface over
//! `check`/`check_with_stats`/`check_sequential`/`check_partitioned{,_with_report}`/
//! `check_split_with_report` — twice, once per checker — plus a separate
//! monitor pair. This module replaces that matrix with a builder-style
//! facade over any [`ConsistencyModel`]: pick a [`Strategy`], get a
//! [`Session`], call [`Session::check`] for closed traces or
//! [`Session::ingest`] for live streams, and read one [`Verdict`] type
//! either way.
//!
//! * [`Strategy::Monolithic`] — one chain search over the whole trace;
//! * [`Strategy::Partitioned`] — P-compositional checking along the
//!   supplied [`Partitioner`] (byte-identical verdicts and witnesses,
//!   fewer nodes — see [`crate::partition`]);
//! * [`Strategy::Streaming`] — the sharded incremental monitor of
//!   [`crate::stream`], with an optional bounded GC window;
//! * [`Strategy::Auto`] (the default) — partitioned exactly when a
//!   partitioner was supplied and the trace has no switch actions,
//!   monolithic otherwise.
//!
//! Sessions own their model (see `crate::model` — "Model ownership"), so a
//! built [`Session`] is `'static` and can be moved into threads, stored in
//! tenant tables, and returned from constructors without borrowing.
//!
//! # Example
//!
//! ```
//! use slin_adt::{KvInput, KvKeyPartitioner, KvOutput, KvStore};
//! use slin_core::lin::LinChecker;
//! use slin_core::session::{Checker, Strategy, StrategyUsed};
//! use slin_trace::{Action, ClientId, PhaseId, Trace};
//!
//! let (c1, c2, ph) = (ClientId::new(1), ClientId::new(2), PhaseId::FIRST);
//! let t: Trace<Action<KvInput, KvOutput, ()>> = Trace::from_actions(vec![
//!     Action::invoke(c1, ph, KvInput::Put(1, 5)),
//!     Action::invoke(c2, ph, KvInput::Put(2, 6)),
//!     Action::respond(c2, ph, KvInput::Put(2, 6), KvOutput::Ack),
//!     Action::respond(c1, ph, KvInput::Put(1, 5), KvOutput::Ack),
//! ]);
//!
//! // Batch: Auto picks the partitioned path (partitioner + switch-free).
//! let mut session = Checker::builder(LinChecker::owned(KvStore))
//!     .partitioner(KvKeyPartitioner)
//!     .build();
//! let verdict = session.check(&t);
//! assert!(verdict.outcome.is_ok());
//! assert_eq!(verdict.strategy, StrategyUsed::Partitioned);
//!
//! // Streaming: the same builder, one event at a time.
//! let mut live = Checker::builder(LinChecker::owned(KvStore))
//!     .partitioner(KvKeyPartitioner)
//!     .strategy(Strategy::Streaming { window: None })
//!     .build();
//! for a in t.iter() {
//!     live.ingest(a.clone());
//! }
//! let verdict = live.check(&Trace::new()); // drain + report
//! assert!(verdict.outcome.is_ok());
//! assert_eq!(verdict.strategy, StrategyUsed::Streaming);
//! ```

use crate::engine::SearchStats;
use crate::model::{self, ConsistencyModel};
use crate::partition::FallbackReason;
use crate::partition::{self, PartitionReport};
use crate::stream::{
    GcPolicy, IngestOutcome, Monitor, MonitorConfig, MonitorReport, MonitorStatus, StreamModel,
};
use crate::ObjAction;
use slin_adt::{Adt, IdentityPartitioner, Partitioner};
use slin_analysis::{short_type_name, CertError, CertStore, Certificate, SwitchCert};
use slin_obs::{EngineSearchEvent, Obs};
use slin_trace::Trace;
use std::marker::PhantomData;

/// How a [`Session`] decides a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Partitioned when a sound [`Partitioner`] was supplied and the trace
    /// has no switch actions; monolithic otherwise.
    #[default]
    Auto,
    /// One chain search over the whole trace.
    Monolithic,
    /// P-compositional checking along the supplied partitioner (identity
    /// fallback when none was supplied or the trace is partition-hostile).
    Partitioned,
    /// The sharded incremental monitor: [`Session::ingest`] events live,
    /// [`Session::check`] drains a trace and reports.
    Streaming {
        /// Bounded-window GC: retire quiescent prefixes past this many
        /// events per shard (`None` keeps reports byte-identical to the
        /// batch path).
        window: Option<usize>,
    },
}

/// What a session does with a partitioner that carries no soundness
/// certificate (see `slin-analysis`: `slin-analyze --all` certifies the
/// shipped partitioners, [`SessionBuilder::partitioner_certified`] and
/// [`SessionBuilder::cert_store`] install the proof).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CertPolicy {
    /// Trust the caller (the historical behaviour): the partitioner is
    /// used as supplied. The soundness contract is still binding — it is
    /// just not machine-checked at build time.
    #[default]
    Trust,
    /// Keep the session but drop the uncertified partitioner: checking
    /// falls back to the monolithic path and every [`Verdict`] carries
    /// [`Verdict::cert_downgraded`] so the degradation is observable.
    WarnMonolithic,
    /// Refuse to build: [`SessionBuilder::try_build`] returns
    /// [`CertError::Uncertified`]. The daemon's `require_cert` tenant
    /// policy builds with this.
    Require,
}

/// Which concrete code path a [`Verdict`] came from (what
/// [`Strategy::Auto`] resolved to).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyUsed {
    /// One monolithic chain search ran.
    Monolithic,
    /// The partitioned fan-out ran (possibly on one identity partition).
    Partitioned,
    /// The streaming monitor produced the verdict.
    Streaming,
}

/// The one report type of the unified surface: verdict + witness +
/// [`SearchStats`] + [`PartitionReport`] when applicable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict<W, E> {
    /// The model's verdict: a witness, or why the check failed.
    pub outcome: Result<W, E>,
    /// Engine counters absorbed over the whole check.
    pub stats: SearchStats,
    /// Partition accounting, when the partitioned path ran.
    pub partition: Option<PartitionReport>,
    /// The concrete code path that produced this verdict.
    pub strategy: StrategyUsed,
    /// Whether [`CertPolicy::WarnMonolithic`] dropped an uncertified
    /// partitioner when this session was built — the verdict is sound but
    /// came from the slower monolithic path.
    pub cert_downgraded: bool,
}

impl<W, E> Verdict<W, E> {
    /// Whether the trace satisfies the model's criterion.
    pub fn is_ok(&self) -> bool {
        self.outcome.is_ok()
    }

    /// The witness, when the check succeeded.
    pub fn witness(&self) -> Option<&W> {
        self.outcome.as_ref().ok()
    }
}

/// A cheap status delta from [`Session::poll_verdict`]: the rolling
/// verdict plus whether it moved since the previous poll. Built for
/// periodic snapshotting (a daemon's verdict loop) — no report is
/// computed, no state is consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerdictDelta {
    /// The rolling status at poll time ([`MonitorStatus::Ok`] on a batch
    /// session that has not started streaming).
    pub status: MonitorStatus,
    /// Whether `status` differs from the previous poll. A fresh session
    /// baselines at [`MonitorStatus::Ok`], so a healthy stream polls
    /// `changed == false` from the start.
    pub changed: bool,
    /// Events ingested so far on the streaming path.
    pub events: usize,
}

/// Entry point of the unified surface: `Checker::builder(model)`.
///
/// The type parameter is the [`ConsistencyModel`]
/// ([`crate::lin::LinChecker`] or [`crate::slin::SlinChecker`]) and is
/// inferred from the builder argument.
pub struct Checker<M> {
    _model: PhantomData<M>,
}

impl<M> Checker<M> {
    /// Starts a [`SessionBuilder`] around a model. Strategy defaults to
    /// [`Strategy::Auto`] with no partitioner (monolithic checking).
    pub fn builder(model: M) -> SessionBuilder<M, IdentityPartitioner> {
        SessionBuilder {
            model,
            partitioner: None,
            strategy: Strategy::Auto,
            budget: None,
            threads: None,
            window: None,
            gc: None,
            obs: Obs::noop(),
            cert: None,
            switch_cert: None,
            cert_store: None,
            cert_policy: CertPolicy::Trust,
        }
    }
}

/// Configures and builds a [`Session`]. See the [module docs](self).
pub struct SessionBuilder<M, P> {
    model: M,
    partitioner: Option<P>,
    strategy: Strategy,
    budget: Option<usize>,
    threads: Option<usize>,
    window: Option<usize>,
    gc: Option<GcPolicy>,
    obs: Obs,
    /// Explicit certificate from [`SessionBuilder::partitioner_certified`]
    /// (hash and partitioner name already verified; the ADT name is
    /// checked at build time, when `M::Adt` is nameable).
    cert: Option<Certificate>,
    /// Explicit switch-independence certificate from
    /// [`SessionBuilder::switch_certified`] (hash and partitioner name
    /// already verified; ADT and init-relation names are checked at build
    /// time).
    switch_cert: Option<SwitchCert>,
    cert_store: Option<CertStore>,
    cert_policy: CertPolicy,
}

impl<M, P> SessionBuilder<M, P> {
    /// Overrides the model's search node budget (per partition /
    /// interpretation).
    pub fn budget(mut self, budget: usize) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Overrides the model's worker-thread count (0 = one per core,
    /// 1 = sequential).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Picks the checking [`Strategy`] (default: [`Strategy::Auto`]).
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Bounds the streaming GC window to `window` events per shard,
    /// wherever this session ends up streaming — whether born with
    /// [`Strategy::Streaming`] or upgraded on the first
    /// [`Session::ingest`]. Takes precedence over the window embedded in
    /// [`Strategy::Streaming`].
    pub fn window(mut self, window: usize) -> Self {
        self.window = Some(window);
        self
    }

    /// Sets the streaming garbage-collection policy knobs (epoch cuts,
    /// lossy forcing, frontier cap, retirement budgets) for this session's
    /// monitor. See [`GcPolicy`]. Budget, threads, and window supplied on
    /// this builder are unaffected.
    pub fn gc_policy(mut self, gc: GcPolicy) -> Self {
        self.gc = Some(gc);
        self
    }

    /// Installs an observer handle ([`slin_obs::Obs`]): the session's
    /// batch checks and its streaming monitor (current or future — the
    /// handle survives the batch → streaming upgrade) report engine
    /// searches, shard ingests, and GC cuts through it. The default noop
    /// handle keeps every instrumentation site a single pointer test.
    pub fn observer(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Supplies a [`Partitioner`], enabling the partitioned path (and
    /// per-key sharding on the streaming path). The partitioner must
    /// uphold the soundness contract documented in [`slin_adt::partition`];
    /// to have that contract machine-checked instead of trusted, pass the
    /// analyzer's proof via [`SessionBuilder::partitioner_certified`] (or
    /// register it in a [`SessionBuilder::cert_store`]) — `slin-analyze
    /// --all` produces certificates for every shipped partitioner.
    pub fn partitioner<Q>(self, partitioner: Q) -> SessionBuilder<M, Q> {
        SessionBuilder {
            model: self.model,
            partitioner: Some(partitioner),
            strategy: self.strategy,
            budget: self.budget,
            threads: self.threads,
            window: self.window,
            gc: self.gc,
            obs: self.obs,
            // A fresh partitioner invalidates any explicit certificate;
            // the store (keyed by type names) remains authoritative.
            cert: None,
            switch_cert: None,
            cert_store: self.cert_store,
            cert_policy: self.cert_policy,
        }
    }

    /// Supplies a [`Partitioner`] together with its soundness
    /// [`Certificate`] (produced by `slin_analysis::certify` or read back
    /// from `analysis/certs/`). The certificate's content hash and
    /// partitioner name are verified here; its ADT name is verified at
    /// [`SessionBuilder::try_build`], where the model's ADT is nameable.
    ///
    /// # Example
    ///
    /// ```
    /// use slin_adt::{KvKeyPartitioner, KvStore};
    /// use slin_analysis::{certify, AnalyzeConfig};
    /// use slin_core::lin::LinChecker;
    /// use slin_core::session::Checker;
    ///
    /// let cert = certify(&KvStore, &KvKeyPartitioner, &AnalyzeConfig::default()).unwrap();
    /// let mut session = Checker::builder(LinChecker::owned(KvStore))
    ///     .partitioner_certified(KvKeyPartitioner, &cert)
    ///     .unwrap()
    ///     .build::<()>();
    /// ```
    pub fn partitioner_certified<Q>(
        self,
        partitioner: Q,
        cert: &Certificate,
    ) -> Result<SessionBuilder<M, Q>, CertError> {
        if !cert.verify() {
            return Err(CertError::BadHash);
        }
        let expected = short_type_name::<Q>();
        if cert.partitioner != expected {
            return Err(CertError::PartitionerMismatch {
                expected: expected.to_string(),
                found: cert.partitioner.clone(),
            });
        }
        let mut next = self.partitioner(partitioner);
        next.cert = Some(cert.clone());
        Ok(next)
    }

    /// Supplies a **switch-independence certificate** (`slin-cert/v2`,
    /// produced by `slin_analysis::certify_switch` or read back from
    /// `analysis/certs/`) for the already-supplied partitioner: with it the
    /// session keeps the partitioned (and per-key streaming) fast path
    /// across **switch actions**, classifying each switch by its pending
    /// input and its value's per-class interpretation instead of engaging
    /// the identity fallback. The certificate's content hash and
    /// partitioner name are verified here; its ADT and init-relation names
    /// are verified at [`SessionBuilder::try_build`], where the model is
    /// nameable. Call after [`SessionBuilder::partitioner`].
    pub fn switch_certified(mut self, cert: &SwitchCert) -> Result<Self, CertError> {
        if !cert.verify() {
            return Err(CertError::BadHash);
        }
        let expected = short_type_name::<P>();
        if cert.partitioner != expected {
            return Err(CertError::PartitionerMismatch {
                expected: expected.to_string(),
                found: cert.partitioner.clone(),
            });
        }
        self.switch_cert = Some(cert.clone());
        Ok(self)
    }

    /// Installs a [`CertStore`]: at build time the `(ADT, partitioner)`
    /// pair is looked up by type name, and an absent certificate is
    /// handled per [`SessionBuilder::cert_policy`].
    pub fn cert_store(mut self, store: CertStore) -> Self {
        self.cert_store = Some(store);
        self
    }

    /// What to do when the partitioner has no verified certificate
    /// (default: [`CertPolicy::Trust`], the historical behaviour).
    pub fn cert_policy(mut self, policy: CertPolicy) -> Self {
        self.cert_policy = policy;
        self
    }

    /// Builds the [`Session`], panicking if the certification policy
    /// rejects the partitioner — use [`SessionBuilder::try_build`] to
    /// handle [`CertError`]s. Infallible under the default
    /// [`CertPolicy::Trust`] with no explicit certificate.
    pub fn build<V>(self) -> Session<M, V, P>
    where
        M: StreamModel<V>,
        <M::Adt as Adt>::Input: Ord,
        V: Clone + PartialEq,
        P: Partitioner<M::Adt>,
    {
        self.try_build()
            .expect("certification policy rejected the partitioner")
    }

    /// Builds the [`Session`], applying the certification policy.
    ///
    /// Fails with [`CertError::BadHash`] / [`CertError::AdtMismatch`] /
    /// [`CertError::PartitionerMismatch`] when an installed certificate
    /// does not cover this session's `(ADT, partitioner)` pair, and with
    /// [`CertError::Uncertified`] when no certificate exists under
    /// [`CertPolicy::Require`]. Under [`CertPolicy::WarnMonolithic`] an
    /// uncertified partitioner is dropped instead: the session builds,
    /// checks monolithically, and flags [`Verdict::cert_downgraded`].
    pub fn try_build<V>(mut self) -> Result<Session<M, V, P>, CertError>
    where
        M: StreamModel<V>,
        <M::Adt as Adt>::Input: Ord,
        V: Clone + PartialEq,
        P: Partitioner<M::Adt>,
    {
        let adt_name = short_type_name::<M::Adt>();
        let certified = if let Some(cert) = &self.cert {
            // Hash and partitioner name were verified on install.
            if cert.adt != adt_name {
                return Err(CertError::AdtMismatch {
                    expected: adt_name.to_string(),
                    found: cert.adt.clone(),
                });
            }
            true
        } else {
            self.cert_store
                .as_ref()
                .is_some_and(|store| store.is_certified(adt_name, short_type_name::<P>()))
        };
        // The keyed fast path engages only with a verified
        // switch-independence certificate naming this exact
        // `(ADT, partitioner, init relation)` triple.
        let keyed = if let Some(cert) = &self.switch_cert {
            if cert.adt != adt_name {
                return Err(CertError::AdtMismatch {
                    expected: adt_name.to_string(),
                    found: cert.adt.clone(),
                });
            }
            match self.model.init_relation_name() {
                Some(rinit) if rinit == cert.rinit => self.partitioner.is_some(),
                Some(rinit) => {
                    return Err(CertError::RelationMismatch {
                        expected: rinit.to_string(),
                        found: cert.rinit.clone(),
                    });
                }
                // Criteria without switches have no keyed path to unlock.
                None => false,
            }
        } else {
            self.partitioner.is_some()
                && match (self.cert_store.as_ref(), self.model.init_relation_name()) {
                    (Some(store), Some(rinit)) => {
                        store.is_switch_certified(adt_name, short_type_name::<P>(), rinit)
                    }
                    _ => false,
                }
        };
        let mut cert_downgraded = false;
        if self.partitioner.is_some() && !certified {
            match self.cert_policy {
                CertPolicy::Trust => {}
                CertPolicy::WarnMonolithic => {
                    self.partitioner = None;
                    cert_downgraded = true;
                }
                CertPolicy::Require => {
                    return Err(CertError::Uncertified {
                        adt: adt_name.to_string(),
                        partitioner: short_type_name::<P>().to_string(),
                    });
                }
            }
        }
        if let Some(budget) = self.budget {
            self.model.set_budget(budget);
        }
        if let Some(threads) = self.threads {
            self.model.set_threads(threads);
        }
        // WarnMonolithic may have dropped the partitioner above; a keyed
        // certificate is useless without one.
        let keyed = keyed && self.partitioner.is_some();
        let strategy = self.strategy;
        let window = self.window.or(match strategy {
            Strategy::Streaming { window } => window,
            _ => None,
        });
        let gc = self.gc;
        let obs = self.obs;
        let mode = match strategy {
            Strategy::Streaming { .. } => Mode::Streaming(Box::new(Self::monitor(
                self.model,
                self.partitioner,
                window,
                gc,
                obs.clone(),
                keyed,
            ))),
            _ => Mode::Batch {
                model: self.model,
                partitioner: self.partitioner,
            },
        };
        Ok(Session {
            mode,
            strategy,
            window,
            gc,
            obs,
            cert_downgraded,
            keyed,
            last_polled: MonitorStatus::Ok,
        })
    }

    fn monitor<V>(
        model: M,
        partitioner: Option<P>,
        window: Option<usize>,
        gc: Option<GcPolicy>,
        obs: Obs,
        keyed: bool,
    ) -> Monitor<M, V, P>
    where
        M: StreamModel<V>,
        <M::Adt as Adt>::Input: Ord,
        V: Clone + PartialEq,
        P: Partitioner<M::Adt>,
    {
        let mut config = MonitorConfig {
            budget: model.budget(),
            threads: model.threads(),
            window,
            keyed,
            ..MonitorConfig::default()
        };
        if let Some(gc) = gc {
            config = config.with_gc_policy(gc);
        }
        Monitor::from_model(model, partitioner, config).with_observer(obs)
    }
}

/// The session's execution state: configured batch checking, or a live
/// streaming monitor.
enum Mode<M, V, P>
where
    M: ConsistencyModel<V>,
    P: Partitioner<M::Adt>,
{
    Batch {
        model: M,
        partitioner: Option<P>,
    },
    Streaming(Box<Monitor<M, V, P>>),
    /// Transient placeholder during the batch → streaming upgrade; never
    /// observable.
    Transitioning,
}

/// A configured checking session over one [`ConsistencyModel`]: the
/// unified entry point for monolithic, partitioned, and streaming
/// checking. Owns its model, so it is free of borrows (`'static` when the
/// type parameters are). Built by [`Checker::builder`]; see the
/// [module docs](self) for an example.
pub struct Session<M, V, P>
where
    M: ConsistencyModel<V>,
    P: Partitioner<M::Adt>,
{
    mode: Mode<M, V, P>,
    strategy: Strategy,
    window: Option<usize>,
    gc: Option<GcPolicy>,
    obs: Obs,
    /// [`CertPolicy::WarnMonolithic`] dropped an uncertified partitioner
    /// at build time; every verdict reports it.
    cert_downgraded: bool,
    /// A verified switch-independence certificate covers this session's
    /// `(ADT, partitioner, init relation)`: phase traces keep the
    /// partitioned/streaming fast path across switch actions.
    keyed: bool,
    last_polled: MonitorStatus,
}

impl<M, V, P> Session<M, V, P>
where
    M: StreamModel<V> + Sync,
    M::Adt: Sync,
    <M::Adt as Adt>::Input: Ord + Send + Sync,
    <M::Adt as Adt>::Output: Sync,
    M::Witness: Send,
    M::Error: Send,
    V: Clone + PartialEq + Sync,
    P: Partitioner<M::Adt>,
{
    /// Checks a closed trace under the configured strategy.
    ///
    /// On a batch session this runs the monolithic or partitioned search
    /// ([`Strategy::Auto`] resolves per trace); verdicts and witnesses are
    /// byte-identical across all three batch resolutions. On a streaming
    /// session this ingests the trace's events after anything already
    /// ingested and reports on the combined stream.
    pub fn check(&mut self, t: &Trace<ObjAction<M::Adt, V>>) -> Verdict<M::Witness, M::Error> {
        match &mut self.mode {
            Mode::Batch { model, partitioner } => {
                let t0 = self.obs.t0();
                let has_switch = t.iter().any(|a| a.is_switch());
                let partitioned = match self.strategy {
                    Strategy::Monolithic => false,
                    Strategy::Partitioned => true,
                    // Auto: partitioned exactly when a partitioner was
                    // supplied and either the trace has no switch actions
                    // or a switch-independence certificate unlocked the
                    // keyed path (uncertified switch values may couple
                    // independence classes through `rinit`, and the split
                    // would only fall back).
                    _ => partitioner.is_some() && (!has_switch || self.keyed),
                };
                if !partitioned {
                    let (outcome, stats) = model.check_monolithic(t);
                    self.obs.engine_search(EngineSearchEvent {
                        site: "session.check",
                        nodes: stats.nodes as u64,
                        memo_hits: stats.memo_hits as u64,
                        budget_exhausted: outcome.is_err() && stats.nodes >= model.budget(),
                        t0,
                    });
                    return Verdict {
                        outcome,
                        stats,
                        partition: None,
                        strategy: StrategyUsed::Monolithic,
                        cert_downgraded: self.cert_downgraded,
                    };
                }
                // The keyed phase-trace path: certified switch
                // classification instead of the identity fallback.
                if has_switch && self.keyed {
                    if let Some(sv) = partitioner.as_ref().and_then(|p| model.check_keyed(p, t)) {
                        self.obs.engine_search(EngineSearchEvent {
                            site: "session.check",
                            nodes: sv.report.stats.nodes as u64,
                            memo_hits: sv.report.stats.memo_hits as u64,
                            budget_exhausted: false,
                            t0,
                        });
                        return Verdict {
                            outcome: sv.verdict,
                            stats: sv.report.stats,
                            partition: Some(sv.report),
                            strategy: StrategyUsed::Partitioned,
                            cert_downgraded: self.cert_downgraded,
                        };
                    }
                }
                let split = match partitioner {
                    Some(p) => partition::split_trace(p, t),
                    None => partition::identity_split(t, FallbackReason::UnclassifiableInput),
                };
                let sv = model::check_split(model, &split, t);
                self.obs.engine_search(EngineSearchEvent {
                    site: "session.check",
                    nodes: sv.report.stats.nodes as u64,
                    memo_hits: sv.report.stats.memo_hits as u64,
                    budget_exhausted: false,
                    t0,
                });
                Verdict {
                    outcome: sv.verdict,
                    stats: sv.report.stats,
                    partition: Some(sv.report),
                    strategy: StrategyUsed::Partitioned,
                    cert_downgraded: self.cert_downgraded,
                }
            }
            Mode::Streaming(monitor) => {
                for action in t.iter() {
                    monitor.ingest(action.clone());
                }
                let report = monitor.report();
                Verdict {
                    outcome: report.verdict,
                    stats: report.stats,
                    partition: None,
                    strategy: StrategyUsed::Streaming,
                    cert_downgraded: self.cert_downgraded,
                }
            }
            Mode::Transitioning => unreachable!("transient mode is never observable"),
        }
    }

    /// Ingests one live event. A batch session upgrades to streaming mode
    /// on the first call (keeping any builder-supplied window and GC
    /// policy); [`Strategy::Streaming`] sessions are born streaming.
    pub fn ingest(&mut self, action: ObjAction<M::Adt, V>) -> IngestOutcome {
        self.ensure_streaming().ingest(action)
    }

    /// The exact rolling status of a streaming session (`None` before any
    /// event was ingested on a batch-built session).
    pub fn status(&self) -> Option<MonitorStatus> {
        match &self.mode {
            Mode::Streaming(monitor) => Some(monitor.status()),
            _ => None,
        }
    }

    /// Why this session's streaming monitor left the per-key fast path
    /// ([`FallbackReason`]), or `None` while it is still sharded — also
    /// `None` on a session that has not started streaming. A field read,
    /// cheap enough to poll per metrics tick.
    pub fn fallback(&self) -> Option<FallbackReason> {
        match &self.mode {
            Mode::Streaming(monitor) => monitor.fallback(),
            _ => None,
        }
    }

    /// Polls the rolling verdict without consuming anything: returns the
    /// current status, whether it moved since the previous poll, and the
    /// event count. Cheap enough to call per snapshot tick — it reads the
    /// monitor's cached status rather than computing a report. On a batch
    /// session that has not started streaming it reports
    /// [`MonitorStatus::Ok`] with zero events.
    pub fn poll_verdict(&mut self) -> VerdictDelta {
        let (status, events) = match &self.mode {
            Mode::Streaming(monitor) => (monitor.status(), monitor.events()),
            _ => (MonitorStatus::Ok, 0),
        };
        let changed = status != self.last_polled;
        self.last_polled = status;
        VerdictDelta {
            status,
            changed,
            events,
        }
    }

    /// Flips lossy epoch forcing (`epoch_force`) on this session's
    /// monitor — the backpressure shed: bounded memory is preserved at the
    /// cost of possible verdict downgrades to [`MonitorStatus::Unknown`].
    /// On a batch session the setting is remembered and applied when the
    /// session upgrades to streaming.
    pub fn set_lossy(&mut self, on: bool) {
        match &mut self.mode {
            Mode::Streaming(monitor) => monitor.set_epoch_force(on),
            _ => {
                let mut gc = self.gc.unwrap_or_default();
                gc.epoch_force = on;
                self.gc = Some(gc);
            }
        }
    }

    /// The streaming session's full forensic report (`None` before any
    /// event was ingested on a batch-built session).
    pub fn report(&mut self) -> Option<MonitorReport<M::Witness, M::Error>> {
        match &mut self.mode {
            Mode::Streaming(monitor) => Some(monitor.report()),
            _ => None,
        }
    }

    /// The underlying monitor, upgrading a batch session in place.
    fn ensure_streaming(&mut self) -> &mut Monitor<M, V, P> {
        if let Mode::Batch { .. } = &self.mode {
            let Mode::Batch { model, partitioner } =
                std::mem::replace(&mut self.mode, Mode::Transitioning)
            else {
                unreachable!("checked above");
            };
            self.mode = Mode::Streaming(Box::new(SessionBuilder::<M, P>::monitor(
                model,
                partitioner,
                self.window,
                self.gc,
                self.obs.clone(),
                self.keyed,
            )));
        }
        match &mut self.mode {
            Mode::Streaming(monitor) => monitor,
            _ => unreachable!("upgraded above"),
        }
    }
}
