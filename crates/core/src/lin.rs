//! The paper's new definition of linearizability (Section 4).
//!
//! A trace `t` is linearizable iff it is well-formed and admits a
//! *linearization function* `g` mapping every commit (response) index to a
//! history such that (Definitions 6–12):
//!
//! * **Explains** — `f_T(g(i))` equals the output returned at `i`;
//! * **Validity** — `elems(g(i)) ⊆ elems(inputs(t, i))` and `g(i)` ends
//!   with the input answered at `i`;
//! * **Commit-Order** — commit histories form a chain under the strict
//!   prefix order.
//!
//! [`LinChecker`] decides the existential as a thin frontend over the
//! shared [`crate::engine::CheckerEngine`]: the chain of
//! commit histories grows one element at a time, memoised on the reached
//! ADT state and the multiset of consumed inputs. Because the chain can
//! interleave *extra* inputs (inputs whose responses never commit, or
//! duplicated inputs — the definition allows repeated events), the search
//! alternates "append an extra input" and "commit a response" moves; see
//! [`crate::engine`] for the search itself.

use crate::engine::{Chain, CheckerEngine, EngineError, SearchBudget, SearchSeed, SearchStats};
use crate::model::{self, ConsistencyModel};
use crate::partition::{self, PartitionReport};
use crate::stream::{MonitorStatus, StreamFailure, StreamModel};
use crate::{ops, ObjAction};
use slin_adt::{Adt, Partitioner};
use slin_trace::wf::{self, WellFormednessError};
use slin_trace::{PersistentMultiset, PhaseId, Trace};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Default node budget for the backtracking search.
pub const DEFAULT_BUDGET: usize = SearchBudget::DEFAULT_MAX_NODES;

/// Why a trace failed the linearizability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinError {
    /// The trace is not well-formed (Definition 15).
    IllFormed(WellFormednessError),
    /// The trace contains a switch action; plain linearizability is defined
    /// on the object signature `sigT`, which has none. Use
    /// [`crate::slin::SlinChecker`] for phase traces.
    SwitchAction {
        /// Index of the offending switch action.
        index: usize,
    },
    /// No linearization function exists: the trace is not linearizable.
    NotLinearizable,
    /// The search exceeded its node budget before reaching a verdict.
    BudgetExhausted {
        /// Search nodes expanded when the budget tripped.
        nodes: usize,
    },
}

impl fmt::Display for LinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinError::IllFormed(e) => write!(f, "trace is ill-formed: {e}"),
            LinError::SwitchAction { index } => {
                write!(f, "switch action at index {index} in an object trace")
            }
            LinError::NotLinearizable => write!(f, "no linearization function exists"),
            LinError::BudgetExhausted { nodes } => {
                write!(f, "search budget exhausted after {nodes} nodes")
            }
        }
    }
}

impl Error for LinError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LinError::IllFormed(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WellFormednessError> for LinError {
    fn from(e: WellFormednessError) -> Self {
        LinError::IllFormed(e)
    }
}

impl From<EngineError> for LinError {
    fn from(e: EngineError) -> Self {
        match e {
            EngineError::BudgetExhausted { nodes } => LinError::BudgetExhausted { nodes },
        }
    }
}

/// A witness linearization function `g`: the commit history assigned to each
/// commit index, in chain order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinWitness<I> {
    assignments: Vec<(usize, Vec<I>)>,
}

impl<I> LinWitness<I> {
    /// Assembles a witness from `(commit index, history)` pairs in chain
    /// order — how the online monitor (`slin-monitor`) packages its
    /// window-relative merged chains.
    pub fn from_assignments(assignments: Vec<(usize, Vec<I>)>) -> Self {
        LinWitness { assignments }
    }

    /// The `(commit index, commit history)` pairs in chain (prefix) order.
    pub fn assignments(&self) -> &[(usize, Vec<I>)] {
        &self.assignments
    }

    /// The full linearization: the longest commit history.
    pub fn full_history(&self) -> &[I] {
        self.assignments
            .last()
            .map(|(_, h)| h.as_slice())
            .unwrap_or(&[])
    }
}

/// Checks the witness against the definition (used by tests to validate the
/// search itself).
pub fn witness_is_valid<T: Adt, V>(
    adt: &T,
    t: &Trace<ObjAction<T, V>>,
    w: &LinWitness<T::Input>,
) -> bool {
    let input_ms = ops::input_multisets::<T, V>(t);
    let commits = ops::commits::<T, V>(t);
    if w.assignments.len() != commits.len() {
        return false;
    }
    // Explains + Validity.
    for (idx, h) in &w.assignments {
        let Some(c) = commits.iter().find(|c| c.index == *idx) else {
            return false;
        };
        if adt.output(h) != Some(c.output.clone()) {
            return false;
        }
        if h.last() != Some(&c.input) {
            return false;
        }
        if !PersistentMultiset::elems(h).is_subset_of(&input_ms[*idx]) {
            return false;
        }
    }
    // Commit-Order: pairwise strict-prefix comparability.
    for (i, (_, h1)) in w.assignments.iter().enumerate() {
        for (_, h2) in &w.assignments[i + 1..] {
            if !(slin_trace::seq::is_strict_prefix(h1, h2)
                || slin_trace::seq::is_strict_prefix(h2, h1))
            {
                return false;
            }
        }
    }
    true
}

/// Decision procedure for the paper's new definition of linearizability.
///
/// # Example
///
/// ```
/// use slin_adt::{Consensus, ConsInput, ConsOutput};
/// use slin_core::lin::LinChecker;
/// use slin_trace::{Action, ClientId, PhaseId, Trace};
///
/// let c1 = ClientId::new(1);
/// let ph = PhaseId::FIRST;
/// let t: Trace<Action<ConsInput, ConsOutput, ()>> = Trace::from_actions(vec![
///     Action::invoke(c1, ph, ConsInput::propose(4)),
///     Action::respond(c1, ph, ConsInput::propose(4), ConsOutput::decide(4)),
/// ]);
/// let checker = LinChecker::owned(Consensus::new());
/// let witness = checker.check(&t)?;
/// assert_eq!(witness.full_history(), &[ConsInput::propose(4)]);
/// # Ok::<(), slin_core::lin::LinError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LinChecker<T> {
    adt: Arc<T>,
    budget: usize,
    /// Worker threads for partition fan-out (0 = one per core).
    threads: usize,
}

impl<T: Adt> LinChecker<T>
where
    T::Input: Ord,
{
    /// Creates a checker owning the given ADT, with the default search
    /// budget. The checker (and every `Session`/`Monitor` built from it)
    /// is `'static`, so it can live in long-lived tables — the daemon
    /// tenant-table setting.
    pub fn owned(adt: T) -> Self {
        Self::shared(Arc::new(adt))
    }

    /// Creates a checker over an already-shared ADT handle (many checkers
    /// can share one allocation).
    pub fn shared(adt: Arc<T>) -> Self {
        LinChecker {
            adt,
            budget: DEFAULT_BUDGET,
            threads: 0,
        }
    }

    /// Creates a checker for a borrowed ADT by cloning it (every repo ADT
    /// is a zero-sized unit struct, so the clone is free).
    #[deprecated(
        since = "0.1.0",
        note = "checkers own their model now: use `LinChecker::owned(adt)` \
                (or `shared(Arc<T>)` to share one allocation)"
    )]
    pub fn new(adt: &T) -> Self
    where
        T: Clone,
    {
        Self::owned(adt.clone())
    }

    /// Overrides the search node budget (per partition on the partitioned
    /// path).
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.budget = budget;
        self
    }

    /// Overrides the number of worker threads used by
    /// [`LinChecker::check_partitioned`] to fan partitions out (0 = one per
    /// available core; 1 = sequential). Verdicts and witnesses are
    /// byte-identical at every thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Checks the trace and returns a witness linearization function.
    ///
    /// This is the simple direct entry point; the full-featured surface
    /// (partitioning, streaming, budgets as configuration) is the
    /// [`crate::session`] builder.
    ///
    /// # Errors
    ///
    /// [`LinError::IllFormed`] or [`LinError::SwitchAction`] when the trace
    /// is outside the object signature; [`LinError::NotLinearizable`] when
    /// no linearization function exists; [`LinError::BudgetExhausted`] when
    /// the search gave up.
    pub fn check<V>(&self, t: &Trace<ObjAction<T, V>>) -> Result<LinWitness<T::Input>, LinError>
    where
        V: Clone + PartialEq,
    {
        self.check_with_stats_impl(t).0
    }

    /// Like [`LinChecker::check`], also reporting the engine's
    /// [`SearchStats`] (all-zero when the trace is rejected before the
    /// search starts).
    #[deprecated(
        since = "0.1.0",
        note = "use the `Session` facade: `Checker::builder(model).build().check(&t)` \
                returns a `Verdict` carrying the stats — see `slin_core::session`"
    )]
    pub fn check_with_stats<V>(
        &self,
        t: &Trace<ObjAction<T, V>>,
    ) -> (Result<LinWitness<T::Input>, LinError>, SearchStats)
    where
        V: Clone + PartialEq,
    {
        self.check_with_stats_impl(t)
    }

    /// The monolithic check: signature gate, well-formedness, engine
    /// search (the body every public entry point ends up in).
    pub(crate) fn check_with_stats_impl<V>(
        &self,
        t: &Trace<ObjAction<T, V>>,
    ) -> (Result<LinWitness<T::Input>, LinError>, SearchStats)
    where
        V: Clone + PartialEq,
    {
        if let Err(e) = self.validate(t) {
            return (Err(e), SearchStats::default());
        }
        self.engine_search(t)
    }

    /// The chain search on an already-validated (well-formed, switch-free)
    /// trace — the per-partition unit of work of the partitioned path.
    fn engine_search<V>(
        &self,
        t: &Trace<ObjAction<T, V>>,
    ) -> (Result<LinWitness<T::Input>, LinError>, SearchStats)
    where
        V: Clone + PartialEq,
    {
        let commits = ops::commits::<T, V>(t);
        let input_ms = ops::input_multisets::<T, V>(t);
        let total_inputs = input_ms
            .last()
            .cloned()
            .unwrap_or_else(PersistentMultiset::new);
        let engine = CheckerEngine::new(
            &*self.adt,
            &commits,
            &input_ms,
            total_inputs,
            SearchBudget::new(self.budget),
        )
        .with_extra_cap(t.len());
        // The leaf oracle is trivial: a completed chain *is* a linearization
        // function (speculative checking grafts abort feasibility here).
        match engine.run(SearchSeed::initial(&*self.adt), &mut |_, _| Some(())) {
            Ok(outcome) => {
                let stats = outcome.stats;
                match outcome.solution {
                    Some((chain, ())) => (Ok(LinWitness { assignments: chain }), stats),
                    None => (Err(LinError::NotLinearizable), stats),
                }
            }
            Err(e) => (Err(e.into()), SearchStats::default()),
        }
    }

    /// Boolean form of [`LinChecker::check`]; treats a budget exhaustion as
    /// "not linearizable" (conservative for assertions of linearizability).
    pub fn is_linearizable<V>(&self, t: &Trace<ObjAction<T, V>>) -> bool
    where
        V: Clone + PartialEq,
    {
        self.check(t).is_ok()
    }

    /// P-compositional form of [`LinChecker::check`]: splits the trace into
    /// independent sub-histories along `partitioner`, checks them across
    /// scoped worker threads, and merges the results.
    ///
    /// Verdicts and witnesses are **byte-identical** to [`LinChecker::check`]
    /// (see [`crate::partition`] for the argument), while the expanded node
    /// count drops from the product to the sum of the per-partition search
    /// spaces. The one caveat is [`LinError::BudgetExhausted`]: the node
    /// budget applies per partition, so a trace the monolithic search gives
    /// up on may well be decided here (that is the point).
    #[deprecated(
        since = "0.1.0",
        note = "use the `Session` facade: `Checker::builder(model).partitioner(p).build()` \
                — see `slin_core::session`"
    )]
    pub fn check_partitioned<V, P>(
        &self,
        partitioner: &P,
        t: &Trace<ObjAction<T, V>>,
    ) -> Result<LinWitness<T::Input>, LinError>
    where
        V: Clone + PartialEq + Sync,
        P: Partitioner<T>,
        T: Send + Sync,
        T::Input: Send + Sync,
        T::Output: Sync,
    {
        model::check_partitioned(self, partitioner, t).verdict
    }

    /// Like [`LinChecker::check_partitioned`], also reporting the
    /// [`PartitionReport`] (partition count, fallback engagement, merged
    /// [`SearchStats`]).
    ///
    /// One report-shape change versus the historical implementation: on a
    /// trace rejected before the search (switch action, ill-formed), the
    /// report now carries the split's actual `partitions`/`fallback`
    /// values instead of the former `partitions: 0, fallback: true`
    /// placeholder. Verdicts and witnesses are unchanged.
    #[deprecated(
        since = "0.1.0",
        note = "use the `Session` facade: the returned `Verdict` carries the \
                `PartitionReport` — see `slin_core::session`"
    )]
    pub fn check_partitioned_with_report<V, P>(
        &self,
        partitioner: &P,
        t: &Trace<ObjAction<T, V>>,
    ) -> (Result<LinWitness<T::Input>, LinError>, PartitionReport)
    where
        V: Clone + PartialEq + Sync,
        P: Partitioner<T>,
        T: Send + Sync,
        T::Input: Send + Sync,
        T::Output: Sync,
    {
        let sv = model::check_partitioned(self, partitioner, t);
        (sv.verdict, sv.report)
    }

    /// Like [`LinChecker::check_partitioned_with_report`], but over an
    /// already-computed [`partition::SplitOutcome`] maintained incrementally
    /// by the caller. (Same pre-search report-shape change as that
    /// method.)
    #[deprecated(
        since = "0.1.0",
        note = "use the generic `slin_core::model::check_split` — one code path \
                for every `ConsistencyModel`"
    )]
    pub fn check_split_with_report<V, K>(
        &self,
        split: &partition::SplitOutcome<T, V, K>,
        t: &Trace<ObjAction<T, V>>,
    ) -> (Result<LinWitness<T::Input>, LinError>, PartitionReport)
    where
        V: Clone + PartialEq + Sync,
        K: Sync,
        T: Send + Sync,
        T::Input: Send + Sync,
        T::Output: Sync,
    {
        let sv = model::check_split(self, split, t);
        (sv.verdict, sv.report)
    }
}

impl<T, V> ConsistencyModel<V> for LinChecker<T>
where
    T: Adt,
    T::Input: Ord,
    V: Clone + PartialEq,
{
    type Adt = T;
    type Witness = LinWitness<T::Input>;
    type Error = LinError;

    fn adt(&self) -> &T {
        &self.adt
    }

    fn adt_shared(&self) -> Arc<T> {
        Arc::clone(&self.adt)
    }

    fn budget(&self) -> usize {
        self.budget
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn set_budget(&mut self, budget: usize) {
        self.budget = budget;
    }

    fn set_threads(&mut self, threads: usize) {
        self.threads = threads;
    }

    fn phase_bounds(&self) -> Option<(PhaseId, PhaseId)> {
        None
    }

    fn validate(&self, t: &Trace<ObjAction<T, V>>) -> Result<(), LinError> {
        if let Some(index) = t.iter().position(|a| a.is_switch()) {
            return Err(LinError::SwitchAction { index });
        }
        wf::check_well_formed(t)?;
        Ok(())
    }

    fn check_monolithic(
        &self,
        t: &Trace<ObjAction<T, V>>,
    ) -> (Result<LinWitness<T::Input>, LinError>, SearchStats) {
        self.check_with_stats_impl(t)
    }

    fn check_partition(
        &self,
        sub: &Trace<ObjAction<T, V>>,
    ) -> (Result<LinWitness<T::Input>, LinError>, SearchStats) {
        self.engine_search(sub)
    }

    fn check_remerge(
        &self,
        t: &Trace<ObjAction<T, V>>,
    ) -> (Result<LinWitness<T::Input>, LinError>, SearchStats) {
        self.engine_search(t)
    }

    fn commit_chain(w: &LinWitness<T::Input>) -> &[(usize, Vec<T::Input>)] {
        w.assignments()
    }

    fn witness_from_chain(
        &self,
        chain: Chain<T::Input>,
        _report: &PartitionReport,
    ) -> LinWitness<T::Input> {
        LinWitness { assignments: chain }
    }

    fn witness_from_remerge(
        &self,
        mono: LinWitness<T::Input>,
        _interpretations_pre: usize,
        _report: &PartitionReport,
    ) -> LinWitness<T::Input> {
        mono
    }
}

impl<T, V> StreamModel<V> for LinChecker<T>
where
    T: Adt,
    T::Input: Ord,
    V: Clone + PartialEq,
{
    /// A switch action decides a plain-linearizability stream's verdict.
    const QUIET_STATUS: MonitorStatus = MonitorStatus::SwitchSeen;
    /// No lazy re-check is needed after a switch: the shards go quiet.
    const BUFFERS_ON_SWITCH: bool = false;

    fn status_of_error(e: &LinError) -> MonitorStatus {
        match e {
            LinError::NotLinearizable => MonitorStatus::Violation,
            LinError::IllFormed(_) => MonitorStatus::IllFormed,
            LinError::SwitchAction { .. } => MonitorStatus::SwitchSeen,
            LinError::BudgetExhausted { .. } => MonitorStatus::Unknown,
        }
    }

    fn stream_witness(&self, chain: Chain<T::Input>, _stats: &SearchStats) -> LinWitness<T::Input> {
        LinWitness::from_assignments(chain)
    }

    fn stream_error(&self, failure: StreamFailure) -> LinError {
        match failure {
            StreamFailure::Switch { index } => LinError::SwitchAction { index },
            StreamFailure::Foreign { .. } => {
                unreachable!("object streams have no phase signature")
            }
            StreamFailure::IllFormed(e) => LinError::IllFormed(e),
            StreamFailure::NotSatisfied => LinError::NotLinearizable,
            StreamFailure::BudgetExhausted { nodes } => LinError::BudgetExhausted { nodes },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slin_adt::{ConsInput, ConsOutput, Consensus, RegInput, RegOutput, Register};
    use slin_trace::{Action, ClientId, PhaseId};

    type CA = ObjAction<Consensus, ()>;

    fn c(n: u32) -> ClientId {
        ClientId::new(n)
    }
    fn ph() -> PhaseId {
        PhaseId::FIRST
    }
    fn p(v: u64) -> ConsInput {
        ConsInput::propose(v)
    }
    fn d(v: u64) -> ConsOutput {
        ConsOutput::decide(v)
    }

    fn checker() -> LinChecker<Consensus> {
        LinChecker::owned(Consensus)
    }

    #[test]
    fn empty_trace_linearizable() {
        let t: Trace<CA> = Trace::new();
        assert!(checker().check(&t).is_ok());
    }

    #[test]
    fn paper_section_2_2_linearizable_example() {
        // c1 proposes v1; c2 proposes v2; c2 decides v2; c1 decides v2.
        let t: Trace<CA> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(), p(1)),
            Action::invoke(c(2), ph(), p(2)),
            Action::respond(c(2), ph(), p(2), d(2)),
            Action::respond(c(1), ph(), p(1), d(2)),
        ]);
        let w = checker().check(&t).unwrap();
        assert!(witness_is_valid(&Consensus, &t, &w));
        assert_eq!(w.full_history(), &[p(2), p(1)]);
    }

    #[test]
    fn paper_section_2_2_non_linearizable_split_decision() {
        // c1 proposes v1, c2 proposes v2, c1 decides v1, c2 decides v2.
        let t: Trace<CA> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(), p(1)),
            Action::invoke(c(2), ph(), p(2)),
            Action::respond(c(1), ph(), p(1), d(1)),
            Action::respond(c(2), ph(), p(2), d(2)),
        ]);
        assert_eq!(checker().check(&t), Err(LinError::NotLinearizable));
    }

    #[test]
    fn paper_section_2_2_non_linearizable_future_value() {
        // c1 proposes v1, c1 decides v2 (before v2 was ever proposed).
        let t: Trace<CA> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(), p(1)),
            Action::respond(c(1), ph(), p(1), d(2)),
            Action::invoke(c(2), ph(), p(2)),
            Action::respond(c(2), ph(), p(2), d(2)),
        ]);
        assert_eq!(checker().check(&t), Err(LinError::NotLinearizable));
    }

    #[test]
    fn pending_invocations_are_fine() {
        let t: Trace<CA> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(), p(1)),
            Action::invoke(c(2), ph(), p(2)),
            Action::respond(c(2), ph(), p(2), d(2)),
        ]);
        // c2 decided 2 although c1 proposed first: only linearizable thanks
        // to c1's proposal being pending — v2 is linearized first.
        assert!(checker().check(&t).is_ok());
    }

    #[test]
    fn decision_can_depend_on_pending_proposal() {
        // c2 decides c1's pending value: the chain must interleave the
        // pending proposal p(1) as an extra input.
        let t: Trace<CA> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(), p(1)),
            Action::invoke(c(2), ph(), p(2)),
            Action::respond(c(2), ph(), p(2), d(1)),
        ]);
        let w = checker().check(&t).unwrap();
        assert!(witness_is_valid(&Consensus, &t, &w));
        assert_eq!(w.full_history(), &[p(1), p(2)]);
    }

    #[test]
    fn ill_formed_rejected() {
        let t: Trace<CA> = Trace::from_actions(vec![Action::respond(c(1), ph(), p(1), d(1))]);
        assert!(matches!(checker().check(&t), Err(LinError::IllFormed(_))));
    }

    #[test]
    fn switch_action_rejected() {
        let t: Trace<ObjAction<Consensus, u8>> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(), p(1)),
            Action::switch(c(1), PhaseId::new(2), p(1), 0),
        ]);
        assert_eq!(
            LinChecker::owned(Consensus).check(&t),
            Err(LinError::SwitchAction { index: 1 })
        );
    }

    #[test]
    fn repeated_inputs_are_supported() {
        // Both clients propose the same value; both decide it.
        let t: Trace<CA> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(), p(7)),
            Action::invoke(c(2), ph(), p(7)),
            Action::respond(c(1), ph(), p(7), d(7)),
            Action::respond(c(2), ph(), p(7), d(7)),
        ]);
        let w = checker().check(&t).unwrap();
        assert!(witness_is_valid(&Consensus, &t, &w));
    }

    #[test]
    fn register_read_must_see_latest_non_overlapping_write() {
        let chk = LinChecker::owned(Register::new());
        // wr(1) completes, then a read returns ⊥: not linearizable.
        let t: Trace<ObjAction<Register, ()>> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(), RegInput::Write(1)),
            Action::respond(c(1), ph(), RegInput::Write(1), RegOutput::Ack),
            Action::invoke(c(2), ph(), RegInput::Read),
            Action::respond(c(2), ph(), RegInput::Read, RegOutput::Value(None)),
        ]);
        assert_eq!(chk.check(&t), Err(LinError::NotLinearizable));
    }

    #[test]
    fn register_overlapping_write_read_both_orders_ok() {
        let chk = LinChecker::owned(Register::new());
        for seen in [None, Some(3)] {
            let t: Trace<ObjAction<Register, ()>> = Trace::from_actions(vec![
                Action::invoke(c(1), ph(), RegInput::Write(3)),
                Action::invoke(c(2), ph(), RegInput::Read),
                Action::respond(c(2), ph(), RegInput::Read, RegOutput::Value(seen)),
                Action::respond(c(1), ph(), RegInput::Write(3), RegOutput::Ack),
            ]);
            assert!(chk.check(&t).is_ok(), "seen={seen:?}");
        }
    }

    #[test]
    fn commit_order_rules_out_equal_histories() {
        // Two responses cannot share one commit history: the second decision
        // must extend the chain, which forces a second occurrence of p(5).
        let t: Trace<CA> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(), p(5)),
            Action::respond(c(1), ph(), p(5), d(5)),
            Action::invoke(c(1), ph(), p(5)),
            Action::respond(c(1), ph(), p(5), d(5)),
        ]);
        let w = checker().check(&t).unwrap();
        let hs: Vec<usize> = w.assignments().iter().map(|(_, h)| h.len()).collect();
        assert_eq!(hs, vec![1, 2]);
    }
}
