//! Phase projection and the intra-object composition theorem
//! (paper Section 5.6, Theorems 2, 3 and 5).
//!
//! Theorem 3 states: if `S1 ⊨ SLinT(m, n)` and `S2 ⊨ SLinT(n, o)` then
//! `proj(S1 ‖ S2, sigT(m, o, Init)) ⊨ SLinT(m, o)`. At the level of a single
//! observed trace `t` over `sigT(m, o, Init)` this instantiates to:
//!
//! > if `proj(t, sigT(m, n))` is `(m, n)`-speculatively linearizable and
//! > `proj(t, sigT(n, o))` is `(n, o)`-speculatively linearizable, then `t`
//! > is `(m, o)`-speculatively linearizable.
//!
//! [`check_composition`] evaluates all three checks and classifies the
//! outcome; the workspace property tests assert that
//! [`CompositionOutcome::TheoremViolated`] never occurs on generated traces.
//! A key hinge of the paper's proof (Lemma 6) is that the abort actions of
//! phase `(m, n)` *are* the init actions of phase `(n, o)`: both phases see
//! the same switch events labelled `n`.

use crate::initrel::InitRelation;
use crate::slin::{SlinChecker, SlinError};
use crate::ObjAction;
use slin_adt::Adt;
use slin_trace::prop::Signature;
use slin_trace::{PhaseId, PhaseSignature, Trace};

/// Projects a trace onto the signature of speculation phase `(m, n)`
/// (keeping invocations, responses and switch actions labelled in `[m..n]`).
pub fn project_phase<T: Adt, V: Clone>(
    t: &Trace<ObjAction<T, V>>,
    m: PhaseId,
    n: PhaseId,
) -> Trace<ObjAction<T, V>>
where
    T::Input: Clone,
    T::Output: Clone,
{
    let sig = PhaseSignature::new(m, n);
    t.project(|a| sig.contains(a))
}

/// Projects a trace onto the plain object signature `sigT` (dropping all
/// switch actions) — the `proj(…, acts(sigT))` of Theorem 2.
pub fn project_object<T: Adt, V: Clone>(t: &Trace<ObjAction<T, V>>) -> Trace<ObjAction<T, V>>
where
    T::Input: Clone,
    T::Output: Clone,
{
    t.project(|a| !a.is_switch())
}

/// The classification of a composition-theorem check on one trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompositionOutcome {
    /// A phase projection failed its speculative-linearizability check, so
    /// the theorem's premise does not apply to this trace.
    PremiseFailed {
        /// Which phase projection failed: `1` for `(m, n)`, `2` for `(n, o)`.
        phase: u8,
        /// The failure reported by the phase checker.
        error: SlinError,
    },
    /// Premises and conclusion both hold — the theorem is corroborated.
    Holds,
    /// Premises hold but the conclusion fails. The paper proves this cannot
    /// happen; observing it would falsify the implementation (or the
    /// theorem).
    TheoremViolated(SlinError),
}

impl CompositionOutcome {
    /// Whether the outcome is consistent with Theorem 3.
    pub fn is_consistent(&self) -> bool {
        !matches!(self, CompositionOutcome::TheoremViolated(_))
    }
}

/// Checks the composition theorem on a single trace over `sigT(m, o, Init)`.
///
/// # Example
///
/// ```
/// use slin_adt::{Consensus, ConsInput, ConsOutput, Value};
/// use slin_core::compose::{check_composition, CompositionOutcome};
/// use slin_core::initrel::ConsensusInit;
/// use slin_trace::{Action, ClientId, PhaseId, Trace};
///
/// let c1 = ClientId::new(1);
/// let (p1, p2, p3) = (PhaseId::new(1), PhaseId::new(2), PhaseId::new(3));
/// // c1 proposes in phase 1, aborts to phase 2, and decides there.
/// let t: Trace<Action<ConsInput, ConsOutput, Value>> = Trace::from_actions(vec![
///     Action::invoke(c1, p1, ConsInput::propose(4)),
///     Action::switch(c1, p2, ConsInput::propose(4), Value::new(4)),
///     Action::respond(c1, p2, ConsInput::propose(4), ConsOutput::decide(4)),
/// ]);
/// let out = check_composition(&Consensus::new(), ConsensusInit::new(), &t, p1, p2, p3);
/// assert_eq!(out, CompositionOutcome::Holds);
/// ```
pub fn check_composition<T, R>(
    adt: &T,
    rinit: R,
    t: &Trace<ObjAction<T, R::Value>>,
    m: PhaseId,
    n: PhaseId,
    o: PhaseId,
) -> CompositionOutcome
where
    T: Adt,
    T::Input: Ord,
    R: InitRelation<T::Input> + Clone,
{
    assert!(m < n && n < o, "phases must be ordered m < n < o");
    let t_mn = project_phase::<T, R::Value>(t, m, n);
    let t_no = project_phase::<T, R::Value>(t, n, o);
    if let Err(error) = SlinChecker::new(adt, rinit.clone(), m, n).check(&t_mn) {
        return CompositionOutcome::PremiseFailed { phase: 1, error };
    }
    if let Err(error) = SlinChecker::new(adt, rinit.clone(), n, o).check(&t_no) {
        return CompositionOutcome::PremiseFailed { phase: 2, error };
    }
    match SlinChecker::new(adt, rinit, m, o).check(t) {
        Ok(_) => CompositionOutcome::Holds,
        Err(error) => CompositionOutcome::TheoremViolated(error),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::initrel::ConsensusInit;
    use slin_adt::{ConsInput, ConsOutput, Consensus, Value};
    use slin_trace::{Action, ClientId};

    type CA = ObjAction<Consensus, Value>;

    fn c(n: u32) -> ClientId {
        ClientId::new(n)
    }
    fn ph(n: u32) -> PhaseId {
        PhaseId::new(n)
    }
    fn p(v: u64) -> ConsInput {
        ConsInput::propose(v)
    }
    fn d(v: u64) -> ConsOutput {
        ConsOutput::decide(v)
    }

    /// The canonical two-phase run: c1 decides in phase 1; c2 aborts to
    /// phase 2 with the decided value and decides there.
    fn two_phase_run() -> Trace<CA> {
        Trace::from_actions(vec![
            Action::invoke(c(1), ph(1), p(1)),
            Action::invoke(c(2), ph(1), p(2)),
            Action::respond(c(1), ph(1), p(1), d(1)),
            Action::switch(c(2), ph(2), p(2), Value::new(1)),
            Action::respond(c(2), ph(2), p(2), d(1)),
        ])
    }

    #[test]
    fn projections_partition_switch_labels() {
        let t = two_phase_run();
        let t12 = project_phase::<Consensus, Value>(&t, ph(1), ph(2));
        let t23 = project_phase::<Consensus, Value>(&t, ph(2), ph(3));
        // The switch labelled 2 appears in both projections (Lemma 6).
        assert_eq!(t12.iter().filter(|a| a.is_switch()).count(), 1);
        assert_eq!(t23.iter().filter(|a| a.is_switch()).count(), 1);
        assert_eq!(t12.len(), 4);
        assert_eq!(t23.len(), 2);
    }

    #[test]
    fn object_projection_drops_switches() {
        let t = two_phase_run();
        let obj = project_object::<Consensus, Value>(&t);
        assert!(obj.iter().all(|a| !a.is_switch()));
        assert_eq!(obj.len(), 4);
    }

    #[test]
    fn theorem_holds_on_canonical_run() {
        let out = check_composition(
            &Consensus,
            ConsensusInit::new(),
            &two_phase_run(),
            ph(1),
            ph(2),
            ph(3),
        );
        assert_eq!(out, CompositionOutcome::Holds);
    }

    #[test]
    fn premise_failure_classified() {
        // Phase 1 misbehaves: decides 1 but c2 switches with 2.
        let t: Trace<CA> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(1), p(1)),
            Action::invoke(c(2), ph(1), p(2)),
            Action::respond(c(1), ph(1), p(1), d(1)),
            Action::switch(c(2), ph(2), p(2), Value::new(2)),
            Action::respond(c(2), ph(2), p(2), d(2)),
        ]);
        let out = check_composition(&Consensus, ConsensusInit::new(), &t, ph(1), ph(2), ph(3));
        assert!(matches!(
            out,
            CompositionOutcome::PremiseFailed { phase: 1, .. }
        ));
        assert!(out.is_consistent());
    }

    #[test]
    fn second_phase_premise_failure_classified() {
        // Phase 2 decides a value that was never a switch value.
        let t: Trace<CA> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(1), p(1)),
            Action::switch(c(1), ph(2), p(1), Value::new(1)),
            Action::respond(c(1), ph(2), p(1), d(7)),
            Action::invoke(c(2), ph(1), p(7)),
        ]);
        let out = check_composition(&Consensus, ConsensusInit::new(), &t, ph(1), ph(2), ph(3));
        assert!(matches!(
            out,
            CompositionOutcome::PremiseFailed { phase: 2, .. }
        ));
    }

    #[test]
    fn no_switch_single_phase_run_holds() {
        let t: Trace<CA> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(1), p(1)),
            Action::respond(c(1), ph(1), p(1), d(1)),
        ]);
        let out = check_composition(&Consensus, ConsensusInit::new(), &t, ph(1), ph(2), ph(3));
        assert_eq!(out, CompositionOutcome::Holds);
    }
}
