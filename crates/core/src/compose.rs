//! Phase projection and the intra-object composition theorem
//! (paper Section 5.6, Theorems 2, 3 and 5).
//!
//! Theorem 3 states: if `S1 ⊨ SLinT(m, n)` and `S2 ⊨ SLinT(n, o)` then
//! `proj(S1 ‖ S2, sigT(m, o, Init)) ⊨ SLinT(m, o)`. At the level of a single
//! observed trace `t` over `sigT(m, o, Init)` this instantiates to:
//!
//! > if `proj(t, sigT(m, n))` is `(m, n)`-speculatively linearizable and
//! > `proj(t, sigT(n, o))` is `(n, o)`-speculatively linearizable, then `t`
//! > is `(m, o)`-speculatively linearizable.
//!
//! [`check_composition`] evaluates all three checks and classifies the
//! outcome; the workspace property tests assert that
//! [`CompositionOutcome::TheoremViolated`] never occurs on generated traces.
//! A key hinge of the paper's proof (Lemma 6) is that the abort actions of
//! phase `(m, n)` *are* the init actions of phase `(n, o)`: both phases see
//! the same switch events labelled `n`.

use crate::engine::{SearchBudget, SearchStats};
use crate::initrel::InitRelation;
use crate::lin::LinChecker;
use crate::slin::{SlinChecker, SlinError};
use crate::ObjAction;
use slin_adt::Adt;
use slin_trace::prop::Signature;
use slin_trace::{PhaseId, PhaseSignature, Trace};

/// Projects a trace onto the signature of speculation phase `(m, n)`
/// (keeping invocations, responses and switch actions labelled in `[m..n]`).
pub fn project_phase<T: Adt, V: Clone>(
    t: &Trace<ObjAction<T, V>>,
    m: PhaseId,
    n: PhaseId,
) -> Trace<ObjAction<T, V>>
where
    T::Input: Clone,
    T::Output: Clone,
{
    let sig = PhaseSignature::new(m, n);
    t.project(|a| sig.contains(a))
}

/// Projects a trace onto the plain object signature `sigT` (dropping all
/// switch actions) — the `proj(…, acts(sigT))` of Theorem 2.
pub fn project_object<T: Adt, V: Clone>(t: &Trace<ObjAction<T, V>>) -> Trace<ObjAction<T, V>>
where
    T::Input: Clone,
    T::Output: Clone,
{
    t.project(|a| !a.is_switch())
}

/// The classification of a composition-theorem check on one trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompositionOutcome {
    /// A phase projection failed its speculative-linearizability check, so
    /// the theorem's premise does not apply to this trace.
    PremiseFailed {
        /// Which phase projection failed: `1` for `(m, n)`, `2` for `(n, o)`.
        phase: u8,
        /// The failure reported by the phase checker.
        error: SlinError,
    },
    /// Premises and conclusion both hold — the theorem is corroborated.
    Holds,
    /// Premises hold but the conclusion fails. The paper proves this cannot
    /// happen; observing it would falsify the implementation (or the
    /// theorem).
    TheoremViolated(SlinError),
}

impl CompositionOutcome {
    /// Whether the outcome is consistent with Theorem 3.
    pub fn is_consistent(&self) -> bool {
        !matches!(self, CompositionOutcome::TheoremViolated(_))
    }
}

/// Checks the composition theorem on a single trace over `sigT(m, o, Init)`.
///
/// # Example
///
/// ```
/// use slin_adt::{Consensus, ConsInput, ConsOutput, Value};
/// use slin_core::compose::{check_composition, CompositionOutcome};
/// use slin_core::initrel::ConsensusInit;
/// use slin_trace::{Action, ClientId, PhaseId, Trace};
///
/// let c1 = ClientId::new(1);
/// let (p1, p2, p3) = (PhaseId::new(1), PhaseId::new(2), PhaseId::new(3));
/// // c1 proposes in phase 1, aborts to phase 2, and decides there.
/// let t: Trace<Action<ConsInput, ConsOutput, Value>> = Trace::from_actions(vec![
///     Action::invoke(c1, p1, ConsInput::propose(4)),
///     Action::switch(c1, p2, ConsInput::propose(4), Value::new(4)),
///     Action::respond(c1, p2, ConsInput::propose(4), ConsOutput::decide(4)),
/// ]);
/// let out = check_composition(&Consensus::new(), ConsensusInit::new(), &t, p1, p2, p3);
/// assert_eq!(out, CompositionOutcome::Holds);
/// ```
pub fn check_composition<T, R>(
    adt: &T,
    rinit: R,
    t: &Trace<ObjAction<T, R::Value>>,
    m: PhaseId,
    n: PhaseId,
    o: PhaseId,
) -> CompositionOutcome
where
    T: Adt + Clone + Send + Sync,
    T::Input: Ord + Send + Sync,
    T::Output: Sync,
    R: InitRelation<T::Input> + Clone + Sync,
    R::Value: Sync,
{
    assert!(m < n && n < o, "phases must be ordered m < n < o");
    let t_mn = project_phase::<T, R::Value>(t, m, n);
    let t_no = project_phase::<T, R::Value>(t, n, o);
    if let Err(error) = SlinChecker::owned(adt.clone(), rinit.clone(), m, n).check(&t_mn) {
        return CompositionOutcome::PremiseFailed { phase: 1, error };
    }
    if let Err(error) = SlinChecker::owned(adt.clone(), rinit.clone(), n, o).check(&t_no) {
        return CompositionOutcome::PremiseFailed { phase: 2, error };
    }
    match SlinChecker::owned(adt.clone(), rinit, m, o).check(t) {
        Ok(_) => CompositionOutcome::Holds,
        Err(error) => CompositionOutcome::TheoremViolated(error),
    }
}

/// The outcome of verifying a whole chained run: every speculation phase
/// `(k, k+1)` of the chain plus the object projection, all through the
/// shared [`CheckerEngine`](crate::engine::CheckerEngine), with aggregated
/// [`SearchStats`]. This is the harness-facing engine API: the consensus
/// and shared-memory scenario harnesses expose it over their recorded
/// traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseChainVerification {
    /// Per phase `(m, n, verdict)`: whether the `(m, n)` projection is
    /// `(m, n)`-speculatively linearizable.
    pub phases: Vec<(u32, u32, bool)>,
    /// The checker error behind every failed phase, `(m, n, error)` —
    /// distinguishing genuine violations
    /// ([`SlinError::NotSpeculativelyLinearizable`]) from resource limits
    /// ([`SlinError::BudgetExhausted`],
    /// [`SlinError::TooManyInterpretations`]).
    pub failures: Vec<(u32, u32, SlinError)>,
    /// Whether the object projection satisfies the paper's definition of
    /// linearizability.
    pub object_linearizable: bool,
    /// The object-projection checker error when it failed.
    pub object_error: Option<crate::lin::LinError>,
    /// Engine counters aggregated over every check performed.
    pub stats: SearchStats,
}

impl PhaseChainVerification {
    /// Whether every phase and the object projection passed.
    pub fn all_ok(&self) -> bool {
        self.object_linearizable && self.phases.iter().all(|&(_, _, ok)| ok)
    }

    /// Whether any failure is a resource limit (budget or interpretation
    /// cap) rather than a genuine violation — a `false` verdict with
    /// `resource_limited()` means "try a bigger [`crate::engine::SearchBudget`]",
    /// not "the protocol misbehaved".
    pub fn resource_limited(&self) -> bool {
        self.failures.iter().any(|(_, _, e)| {
            matches!(
                e,
                SlinError::BudgetExhausted { .. } | SlinError::TooManyInterpretations { .. }
            )
        }) || matches!(
            self.object_error,
            Some(crate::lin::LinError::BudgetExhausted { .. })
        )
    }
}

/// Verifies a chained run over phases `first ..= last`: each speculation
/// phase `(k, k+1)` on its projection, and plain linearizability on the
/// object projection.
///
/// # Example
///
/// ```
/// use slin_adt::{Consensus, ConsInput, ConsOutput, Value};
/// use slin_core::compose::verify_phase_chain;
/// use slin_core::initrel::ConsensusInit;
/// use slin_trace::{Action, ClientId, PhaseId, Trace};
///
/// let c1 = ClientId::new(1);
/// let t: Trace<Action<ConsInput, ConsOutput, Value>> = Trace::from_actions(vec![
///     Action::invoke(c1, PhaseId::new(1), ConsInput::propose(4)),
///     Action::switch(c1, PhaseId::new(2), ConsInput::propose(4), Value::new(4)),
///     Action::respond(c1, PhaseId::new(2), ConsInput::propose(4), ConsOutput::decide(4)),
/// ]);
/// let v = verify_phase_chain(&Consensus::new(), ConsensusInit::new(), &t, 1, 2);
/// assert!(v.all_ok());
/// assert!(v.stats.nodes > 0);
/// ```
pub fn verify_phase_chain<T, R>(
    adt: &T,
    rinit: R,
    t: &Trace<ObjAction<T, R::Value>>,
    first: u32,
    last: u32,
) -> PhaseChainVerification
where
    T: Adt + Clone + Send + Sync,
    T::Input: Ord + Send + Sync,
    T::Output: Sync,
    R: InitRelation<T::Input> + Clone + Sync,
    R::Value: Sync,
{
    verify_phase_chain_with_budget(adt, rinit, t, first, last, SearchBudget::default())
}

/// [`verify_phase_chain`] under an explicit per-search [`SearchBudget`].
pub fn verify_phase_chain_with_budget<T, R>(
    adt: &T,
    rinit: R,
    t: &Trace<ObjAction<T, R::Value>>,
    first: u32,
    last: u32,
    budget: SearchBudget,
) -> PhaseChainVerification
where
    T: Adt + Clone + Send + Sync,
    T::Input: Ord + Send + Sync,
    T::Output: Sync,
    R: InitRelation<T::Input> + Clone + Sync,
    R::Value: Sync,
{
    assert!(first <= last, "phase chain requires first <= last");
    let mut stats = SearchStats::default();
    let mut phases = Vec::new();
    let mut failures = Vec::new();
    for k in first..=last {
        let (m, n) = (PhaseId::new(k), PhaseId::new(k + 1));
        let proj = project_phase::<T, R::Value>(t, m, n);
        let ok = match SlinChecker::owned(adt.clone(), rinit.clone(), m, n)
            .with_budget(budget.max_nodes)
            .check(&proj)
        {
            Ok(report) => {
                stats.absorb(&report.stats);
                true
            }
            Err(error) => {
                failures.push((k, k + 1, error));
                false
            }
        };
        phases.push((k, k + 1, ok));
    }
    let obj = project_object::<T, R::Value>(t);
    let (lin_verdict, lin_stats) = LinChecker::owned(adt.clone())
        .with_budget(budget.max_nodes)
        .check_with_stats_impl(&obj);
    stats.absorb(&lin_stats);
    PhaseChainVerification {
        phases,
        failures,
        object_linearizable: lin_verdict.is_ok(),
        object_error: lin_verdict.err(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::initrel::ConsensusInit;
    use slin_adt::{ConsInput, ConsOutput, Consensus, Value};
    use slin_trace::{Action, ClientId};

    type CA = ObjAction<Consensus, Value>;

    fn c(n: u32) -> ClientId {
        ClientId::new(n)
    }
    fn ph(n: u32) -> PhaseId {
        PhaseId::new(n)
    }
    fn p(v: u64) -> ConsInput {
        ConsInput::propose(v)
    }
    fn d(v: u64) -> ConsOutput {
        ConsOutput::decide(v)
    }

    /// The canonical two-phase run: c1 decides in phase 1; c2 aborts to
    /// phase 2 with the decided value and decides there.
    fn two_phase_run() -> Trace<CA> {
        Trace::from_actions(vec![
            Action::invoke(c(1), ph(1), p(1)),
            Action::invoke(c(2), ph(1), p(2)),
            Action::respond(c(1), ph(1), p(1), d(1)),
            Action::switch(c(2), ph(2), p(2), Value::new(1)),
            Action::respond(c(2), ph(2), p(2), d(1)),
        ])
    }

    #[test]
    fn projections_partition_switch_labels() {
        let t = two_phase_run();
        let t12 = project_phase::<Consensus, Value>(&t, ph(1), ph(2));
        let t23 = project_phase::<Consensus, Value>(&t, ph(2), ph(3));
        // The switch labelled 2 appears in both projections (Lemma 6).
        assert_eq!(t12.iter().filter(|a| a.is_switch()).count(), 1);
        assert_eq!(t23.iter().filter(|a| a.is_switch()).count(), 1);
        assert_eq!(t12.len(), 4);
        assert_eq!(t23.len(), 2);
    }

    #[test]
    fn object_projection_drops_switches() {
        let t = two_phase_run();
        let obj = project_object::<Consensus, Value>(&t);
        assert!(obj.iter().all(|a| !a.is_switch()));
        assert_eq!(obj.len(), 4);
    }

    #[test]
    fn theorem_holds_on_canonical_run() {
        let out = check_composition(
            &Consensus,
            ConsensusInit::new(),
            &two_phase_run(),
            ph(1),
            ph(2),
            ph(3),
        );
        assert_eq!(out, CompositionOutcome::Holds);
    }

    #[test]
    fn premise_failure_classified() {
        // Phase 1 misbehaves: decides 1 but c2 switches with 2.
        let t: Trace<CA> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(1), p(1)),
            Action::invoke(c(2), ph(1), p(2)),
            Action::respond(c(1), ph(1), p(1), d(1)),
            Action::switch(c(2), ph(2), p(2), Value::new(2)),
            Action::respond(c(2), ph(2), p(2), d(2)),
        ]);
        let out = check_composition(&Consensus, ConsensusInit::new(), &t, ph(1), ph(2), ph(3));
        assert!(matches!(
            out,
            CompositionOutcome::PremiseFailed { phase: 1, .. }
        ));
        assert!(out.is_consistent());
    }

    #[test]
    fn second_phase_premise_failure_classified() {
        // Phase 2 decides a value that was never a switch value.
        let t: Trace<CA> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(1), p(1)),
            Action::switch(c(1), ph(2), p(1), Value::new(1)),
            Action::respond(c(1), ph(2), p(1), d(7)),
            Action::invoke(c(2), ph(1), p(7)),
        ]);
        let out = check_composition(&Consensus, ConsensusInit::new(), &t, ph(1), ph(2), ph(3));
        assert!(matches!(
            out,
            CompositionOutcome::PremiseFailed { phase: 2, .. }
        ));
    }

    #[test]
    fn verify_phase_chain_reports_per_phase_verdicts_and_stats() {
        let v = verify_phase_chain(&Consensus, ConsensusInit::new(), &two_phase_run(), 1, 2);
        assert_eq!(v.phases, vec![(1, 2, true), (2, 3, true)]);
        assert!(v.object_linearizable);
        assert!(v.all_ok());
        assert!(v.stats.nodes > 0);
        assert!(v.stats.interpretations >= 2, "{:?}", v.stats);
    }

    #[test]
    fn verify_phase_chain_flags_the_misbehaving_phase() {
        // Phase 1 decides 1 but c2 switches with 2: (1, 2) must fail while
        // the object projection stays linearizable.
        let t: Trace<CA> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(1), p(1)),
            Action::invoke(c(2), ph(1), p(2)),
            Action::respond(c(1), ph(1), p(1), d(1)),
            Action::switch(c(2), ph(2), p(2), Value::new(2)),
        ]);
        let v = verify_phase_chain(&Consensus, ConsensusInit::new(), &t, 1, 2);
        assert_eq!(v.phases[0], (1, 2, false));
        assert!(v.object_linearizable);
        assert!(!v.all_ok());
        // A genuine violation is recorded as such, not as a resource limit.
        assert!(matches!(
            v.failures.as_slice(),
            [(1, 2, SlinError::NotSpeculativelyLinearizable { .. })]
        ));
        assert!(!v.resource_limited());
    }

    #[test]
    fn verify_phase_chain_distinguishes_budget_exhaustion() {
        // An exhausted search budget must be distinguishable from a
        // genuine violation at the harness API.
        let v = verify_phase_chain_with_budget(
            &Consensus,
            ConsensusInit::new(),
            &two_phase_run(),
            1,
            2,
            SearchBudget::new(0),
        );
        assert!(!v.all_ok());
        assert!(v.resource_limited(), "{v:?}");
        assert!(v
            .failures
            .iter()
            .all(|(_, _, e)| matches!(e, SlinError::BudgetExhausted { .. })));
    }

    #[test]
    fn no_switch_single_phase_run_holds() {
        let t: Trace<CA> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(1), p(1)),
            Action::respond(c(1), ph(1), p(1), d(1)),
        ]);
        let out = check_composition(&Consensus, ConsensusInit::new(), &t, ph(1), ph(2), ph(3));
        assert_eq!(out, CompositionOutcome::Holds);
    }
}
