//! Seeded random generation of well-formed traces.
//!
//! The equivalence and composition experiments need large families of
//! well-formed concurrent traces: some linearizable by construction (the
//! generator plays a genuinely atomic object with random linearization
//! points), some adversarial (outputs perturbed so that most traces are
//! *not* linearizable). Everything is deterministic in the seed.

use crate::ObjAction;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slin_adt::Adt;
use slin_trace::{Action, ClientId, PhaseId, Trace};

/// Configuration of the random trace generators.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Number of concurrent clients.
    pub clients: u32,
    /// Number of generation steps (each step emits at most one event).
    pub steps: usize,
    /// RNG seed: equal seeds give equal traces.
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            clients: 3,
            steps: 12,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone)]
enum ClientState<I, O> {
    Idle,
    /// Invoked, linearization point not yet reached.
    Pending(I),
    /// Linearization point reached; the output is fixed.
    Applied(I, O),
}

/// Generates a trace that is **linearizable by construction**: the generator
/// runs an atomic object and picks, for every operation, a linearization
/// point between its invocation and its response.
///
/// `sample_input` draws random inputs (e.g. random proposals).
///
/// # Example
///
/// ```
/// use slin_adt::{Consensus, ConsInput};
/// use slin_core::gen::{random_linearizable_trace, GenConfig};
/// use slin_core::lin::LinChecker;
///
/// let t = random_linearizable_trace(
///     &Consensus::new(),
///     GenConfig { clients: 3, steps: 10, seed: 7 },
///     |rng| ConsInput::propose(rand::Rng::gen_range(rng, 1..4u64)),
/// );
/// assert!(LinChecker::new(&Consensus::new()).check(&t).is_ok());
/// ```
pub fn random_linearizable_trace<T, F>(
    adt: &T,
    cfg: GenConfig,
    mut sample_input: F,
) -> Trace<ObjAction<T, ()>>
where
    T: Adt,
    F: FnMut(&mut StdRng) -> T::Input,
{
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut t = Trace::new();
    let mut state = adt.initial();
    let mut clients: Vec<ClientState<T::Input, T::Output>> =
        (0..cfg.clients).map(|_| ClientState::Idle).collect();
    for _ in 0..cfg.steps {
        let k = rng.gen_range(0..clients.len());
        let c = ClientId::new(k as u32 + 1);
        match clients[k].clone() {
            ClientState::Idle => {
                let input = sample_input(&mut rng);
                t.push(Action::invoke(c, PhaseId::FIRST, input.clone()));
                clients[k] = ClientState::Pending(input);
            }
            ClientState::Pending(input) => {
                // Reach the linearization point: apply atomically now.
                let (next, out) = adt.apply(&state, &input);
                state = next;
                clients[k] = ClientState::Applied(input, out);
            }
            ClientState::Applied(input, out) => {
                t.push(Action::respond(c, PhaseId::FIRST, input, out));
                clients[k] = ClientState::Idle;
            }
        }
    }
    t
}

/// Generates a well-formed trace whose outputs are *perturbed*: with
/// probability `error_prob` a response carries the output the operation
/// would produce on the **initial** state instead of the current one.
/// Useful for exercising checkers on a mix of linearizable and
/// non-linearizable traces.
pub fn random_perturbed_trace<T, F>(
    adt: &T,
    cfg: GenConfig,
    error_prob: f64,
    mut sample_input: F,
) -> Trace<ObjAction<T, ()>>
where
    T: Adt,
    F: FnMut(&mut StdRng) -> T::Input,
{
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut t = Trace::new();
    let mut state = adt.initial();
    let mut clients: Vec<ClientState<T::Input, T::Output>> =
        (0..cfg.clients).map(|_| ClientState::Idle).collect();
    for _ in 0..cfg.steps {
        let k = rng.gen_range(0..clients.len());
        let c = ClientId::new(k as u32 + 1);
        match clients[k].clone() {
            ClientState::Idle => {
                let input = sample_input(&mut rng);
                t.push(Action::invoke(c, PhaseId::FIRST, input.clone()));
                clients[k] = ClientState::Pending(input);
            }
            ClientState::Pending(input) => {
                let (next, out) = adt.apply(&state, &input);
                let out = if rng.gen_bool(error_prob) {
                    // Pretend the operation ran on the initial state.
                    adt.apply(&adt.initial(), &input).1
                } else {
                    state = next;
                    out
                };
                clients[k] = ClientState::Applied(input, out);
            }
            ClientState::Applied(input, out) => {
                t.push(Action::respond(c, PhaseId::FIRST, input, out));
                clients[k] = ClientState::Idle;
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classical::ClassicalChecker;
    use crate::lin::LinChecker;
    use slin_adt::{ConsInput, Consensus, Counter, CounterInput};
    use slin_trace::wf;

    fn cons_input(rng: &mut StdRng) -> ConsInput {
        ConsInput::propose(rng.gen_range(1..4u64))
    }

    fn counter_input(rng: &mut StdRng) -> CounterInput {
        if rng.gen_bool(0.5) {
            CounterInput::Increment
        } else {
            CounterInput::Read
        }
    }

    #[test]
    fn generated_traces_are_well_formed() {
        for seed in 0..50 {
            let cfg = GenConfig {
                clients: 4,
                steps: 20,
                seed,
            };
            let t = random_linearizable_trace(&Consensus, cfg, cons_input);
            assert!(wf::is_well_formed(&t), "seed {seed}");
            let t2 = random_perturbed_trace(&Consensus, cfg, 0.4, cons_input);
            assert!(wf::is_well_formed(&t2), "seed {seed}");
        }
    }

    #[test]
    fn linearizable_generator_passes_both_checkers() {
        for seed in 0..30 {
            let cfg = GenConfig {
                clients: 3,
                steps: 14,
                seed,
            };
            let t = random_linearizable_trace(&Counter, cfg, counter_input);
            assert!(LinChecker::new(&Counter).check(&t).is_ok(), "seed {seed}");
            assert!(
                ClassicalChecker::new(&Counter).check(&t).is_ok(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn perturbation_produces_some_violations() {
        let mut violations = 0;
        for seed in 0..40 {
            let cfg = GenConfig {
                clients: 3,
                steps: 14,
                seed,
            };
            let t = random_perturbed_trace(&Counter, cfg, 0.5, counter_input);
            if LinChecker::new(&Counter).check(&t).is_err() {
                violations += 1;
            }
        }
        assert!(violations > 0, "expected at least one violation");
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let cfg = GenConfig {
            clients: 3,
            steps: 16,
            seed: 99,
        };
        let a = random_linearizable_trace(&Consensus, cfg, cons_input);
        let b = random_linearizable_trace(&Consensus, cfg, cons_input);
        assert_eq!(a, b);
    }
}
