//! Seeded random generation of well-formed traces.
//!
//! The equivalence and composition experiments need large families of
//! well-formed concurrent traces: some linearizable by construction (the
//! generator plays a genuinely atomic object with random linearization
//! points), some adversarial (outputs perturbed so that most traces are
//! *not* linearizable). Everything is deterministic in the seed.

use crate::ObjAction;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slin_adt::{Adt, CounterVector, KeyedDomain, KvInput, KvOutput, KvStore, RegisterArray, Set};
use slin_trace::{Action, ClientId, PhaseId, Trace};

/// Configuration of the random trace generators.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Number of concurrent clients.
    pub clients: u32,
    /// Number of generation steps (each step emits at most one event).
    pub steps: usize,
    /// RNG seed: equal seeds give equal traces.
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            clients: 3,
            steps: 12,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone)]
enum ClientState<I, O> {
    Idle,
    /// Invoked, linearization point not yet reached.
    Pending(I),
    /// Linearization point reached; the output is fixed.
    Applied(I, O),
}

/// Generates a trace that is **linearizable by construction**: the generator
/// runs an atomic object and picks, for every operation, a linearization
/// point between its invocation and its response.
///
/// `sample_input` draws random inputs (e.g. random proposals).
///
/// # Example
///
/// ```
/// use slin_adt::{Consensus, ConsInput};
/// use slin_core::gen::{random_linearizable_trace, GenConfig};
/// use slin_core::lin::LinChecker;
///
/// let t = random_linearizable_trace(
///     &Consensus::new(),
///     GenConfig { clients: 3, steps: 10, seed: 7 },
///     |rng| ConsInput::propose(rand::Rng::gen_range(rng, 1..4u64)),
/// );
/// assert!(LinChecker::owned(Consensus::new()).check(&t).is_ok());
/// ```
pub fn random_linearizable_trace<T, F>(
    adt: &T,
    cfg: GenConfig,
    mut sample_input: F,
) -> Trace<ObjAction<T, ()>>
where
    T: Adt,
    F: FnMut(&mut StdRng) -> T::Input,
{
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut t = Trace::new();
    let mut state = adt.initial();
    let mut clients: Vec<ClientState<T::Input, T::Output>> =
        (0..cfg.clients).map(|_| ClientState::Idle).collect();
    for _ in 0..cfg.steps {
        let k = rng.gen_range(0..clients.len());
        let c = ClientId::new(k as u32 + 1);
        match clients[k].clone() {
            ClientState::Idle => {
                let input = sample_input(&mut rng);
                t.push(Action::invoke(c, PhaseId::FIRST, input.clone()));
                clients[k] = ClientState::Pending(input);
            }
            ClientState::Pending(input) => {
                // Reach the linearization point: apply atomically now.
                let (next, out) = adt.apply(&state, &input);
                state = next;
                clients[k] = ClientState::Applied(input, out);
            }
            ClientState::Applied(input, out) => {
                t.push(Action::respond(c, PhaseId::FIRST, input, out));
                clients[k] = ClientState::Idle;
            }
        }
    }
    t
}

/// Generates a well-formed trace whose outputs are *perturbed*: with
/// probability `error_prob` a response carries the output the operation
/// would produce on the **initial** state instead of the current one.
/// Useful for exercising checkers on a mix of linearizable and
/// non-linearizable traces.
pub fn random_perturbed_trace<T, F>(
    adt: &T,
    cfg: GenConfig,
    error_prob: f64,
    mut sample_input: F,
) -> Trace<ObjAction<T, ()>>
where
    T: Adt,
    F: FnMut(&mut StdRng) -> T::Input,
{
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut t = Trace::new();
    let mut state = adt.initial();
    let mut clients: Vec<ClientState<T::Input, T::Output>> =
        (0..cfg.clients).map(|_| ClientState::Idle).collect();
    for _ in 0..cfg.steps {
        let k = rng.gen_range(0..clients.len());
        let c = ClientId::new(k as u32 + 1);
        match clients[k].clone() {
            ClientState::Idle => {
                let input = sample_input(&mut rng);
                t.push(Action::invoke(c, PhaseId::FIRST, input.clone()));
                clients[k] = ClientState::Pending(input);
            }
            ClientState::Pending(input) => {
                let (next, out) = adt.apply(&state, &input);
                let out = if rng.gen_bool(error_prob) {
                    // Pretend the operation ran on the initial state.
                    adt.apply(&adt.initial(), &input).1
                } else {
                    state = next;
                    out
                };
                clients[k] = ClientState::Applied(input, out);
            }
            ClientState::Applied(input, out) => {
                t.push(Action::respond(c, PhaseId::FIRST, input, out));
                clients[k] = ClientState::Idle;
            }
        }
    }
    t
}

/// Configuration of the multi-key concurrent workload generators.
///
/// Extends [`GenConfig`] with the key-space shape that partition-aware
/// checking cares about: how many independence classes exist (`keys`), how
/// unevenly traffic spreads over them (`skew`), and how much of it piles
/// onto one shared hot key (`contention`). `keys = 1` or `contention = 1.0`
/// produce **partition-hostile** workloads (every operation contends on one
/// class); many keys with low skew produce **partition-friendly** ones.
#[derive(Debug, Clone, Copy)]
pub struct MultiKeyConfig {
    /// Number of concurrent clients.
    pub clients: u32,
    /// Number of generation steps (each step emits at most one event).
    pub steps: usize,
    /// Number of distinct keys (independence classes), numbered `1..=keys`.
    pub keys: u32,
    /// Zipf-style skew exponent over the key space: key `k` is drawn with
    /// weight `k^-skew`. `0.0` is uniform; larger values concentrate
    /// traffic on low-numbered keys.
    pub skew: f64,
    /// Probability that an operation targets key 1 outright, regardless of
    /// the skewed draw — a dial from fully spread (`0.0`) to fully
    /// contended (`1.0`).
    pub contention: f64,
    /// Probability that a response is perturbed as in
    /// [`random_perturbed_trace`]; `0.0` generates linearizable-by-
    /// construction traces.
    pub error_prob: f64,
    /// RNG seed: equal seeds give equal traces.
    pub seed: u64,
}

impl Default for MultiKeyConfig {
    fn default() -> Self {
        MultiKeyConfig {
            clients: 4,
            steps: 24,
            keys: 4,
            skew: 0.6,
            contention: 0.0,
            error_prob: 0.0,
            seed: 0,
        }
    }
}

impl MultiKeyConfig {
    fn gen_config(&self) -> GenConfig {
        GenConfig {
            clients: self.clients,
            steps: self.steps,
            seed: self.seed,
        }
    }

    /// Draws a key in `1..=keys` under the configured skew and contention.
    fn sample_key(&self, rng: &mut StdRng, cumulative: &[f64]) -> u32 {
        if self.keys <= 1 {
            return 1;
        }
        if self.contention > 0.0 && rng.gen_bool(self.contention) {
            return 1;
        }
        let total = *cumulative.last().expect("keys >= 1");
        let r = (rng.gen_range(0..1u64 << 53) as f64) / (1u64 << 53) as f64 * total;
        let k = cumulative.partition_point(|&c| c <= r);
        k as u32 + 1
    }

    /// The cumulative Zipf weights `sum_{j<=k} j^-skew`.
    fn cumulative_weights(&self) -> Vec<f64> {
        let mut acc = 0.0;
        (1..=self.keys.max(1))
            .map(|k| {
                acc += f64::powf(k as f64, -self.skew);
                acc
            })
            .collect()
    }
}

/// Draws one weighted per-key operation from `T`'s [`KeyedDomain`] op
/// table — the one place the generator op mixes live, shared with the
/// `slin-analysis` input domains.
///
/// The RNG stream reproduces the historical hand-rolled closures
/// byte-for-byte (committed bench baselines pin node counts on these
/// seeds): a two-op table of total weight 2 draws `gen_bool(0.5)` with
/// `true` selecting the first op, any other table draws one
/// `gen_range(0..total)` selector mapped through cumulative weights, and
/// only the selected op draws its payload (`1..=vals`).
fn sample_keyed<T: KeyedDomain>(rng: &mut StdRng, key: u32) -> T::Input {
    let ops = T::keyed_ops();
    let total: u8 = ops.iter().map(|op| op.weight).sum();
    let idx = if ops.len() == 2 && total == 2 {
        usize::from(!rng.gen_bool(0.5))
    } else {
        let r = rng.gen_range(0..total);
        let mut acc = 0u8;
        ops.iter()
            .position(|op| {
                acc += op.weight;
                r < acc
            })
            .expect("cumulative weights cover every selector draw")
    };
    let op = &ops[idx];
    match op.vals {
        Some(vals) => {
            let v = rng.gen_range(1..vals + 1);
            (op.make)(key, v)
        }
        None => (op.make)(key, 0),
    }
}

fn multikey_trace<T, F>(adt: &T, cfg: &MultiKeyConfig, mut op: F) -> Trace<ObjAction<T, ()>>
where
    T: Adt,
    F: FnMut(&mut StdRng, u32) -> T::Input,
{
    let cumulative = cfg.cumulative_weights();
    let sample = |rng: &mut StdRng| {
        let key = cfg.sample_key(rng, &cumulative);
        op(rng, key)
    };
    if cfg.error_prob > 0.0 {
        random_perturbed_trace(adt, cfg.gen_config(), cfg.error_prob, sample)
    } else {
        random_linearizable_trace(adt, cfg.gen_config(), sample)
    }
}

/// Generates a well-formed multi-key [`KvStore`] trace: each operation
/// draws a key under the configured skew/contention, then puts, gets, or
/// deletes it (gets twice as likely as either write).
///
/// With `error_prob = 0.0` the trace is linearizable by construction.
///
/// # Example
///
/// ```
/// use slin_adt::{KvKeyPartitioner, KvStore};
/// use slin_core::gen::{random_multikey_kv_trace, MultiKeyConfig};
/// use slin_core::lin::LinChecker;
///
/// let t = random_multikey_kv_trace(&MultiKeyConfig { keys: 8, ..Default::default() });
/// let chk = LinChecker::owned(KvStore);
/// assert_eq!(
///     chk.check_partitioned(&KvKeyPartitioner, &t),
///     chk.check(&t), // byte-identical, fewer nodes
/// );
/// ```
pub fn random_multikey_kv_trace(cfg: &MultiKeyConfig) -> Trace<ObjAction<KvStore, ()>> {
    multikey_trace(&KvStore, cfg, sample_keyed::<KvStore>)
}

/// Generates a well-formed multi-key [`Set`] trace over the elements
/// `1..=keys` (adds and membership tests twice as likely as removes).
///
/// With `error_prob = 0.0` the trace is linearizable by construction.
pub fn random_multikey_set_trace(cfg: &MultiKeyConfig) -> Trace<ObjAction<Set, ()>> {
    multikey_trace(&Set, cfg, sample_keyed::<Set>)
}

/// Generates a well-formed multi-cell [`RegisterArray`] trace over the
/// cells `1..=keys` (reads and writes equally likely).
///
/// With `error_prob = 0.0` the trace is linearizable by construction.
pub fn random_multikey_reg_array_trace(
    cfg: &MultiKeyConfig,
) -> Trace<ObjAction<RegisterArray, ()>> {
    multikey_trace(&RegisterArray, cfg, sample_keyed::<RegisterArray>)
}

/// Generates a well-formed multi-slot [`CounterVector`] trace over the
/// slots `1..=keys` (increments and reads equally likely).
///
/// With `error_prob = 0.0` the trace is linearizable by construction.
pub fn random_multikey_counter_vec_trace(
    cfg: &MultiKeyConfig,
) -> Trace<ObjAction<CounterVector, ()>> {
    multikey_trace(&CounterVector, cfg, sample_keyed::<CounterVector>)
}

/// Configuration of the **phase-trace** generator (see
/// [`random_phase_kv_trace`]): a speculation-phase workload whose clients
/// enter through init switch actions sharing one exact init history and
/// (optionally) abort out carrying the full history — the workload shape
/// the keyed phase-trace checking path (switch-independence certificates)
/// exists for.
#[derive(Debug, Clone, Copy)]
pub struct PhaseConfig {
    /// Number of concurrent clients (each enters via its init action).
    pub clients: u32,
    /// Number of in-phase generation steps (each emits at most one event).
    pub steps: usize,
    /// Number of distinct keys (independence classes), numbered `1..=keys`.
    pub keys: u32,
    /// Zipf-style skew exponent over the key space (as in
    /// [`MultiKeyConfig::skew`]).
    pub skew: f64,
    /// Length of the shared previous-phase history every init switch
    /// carries verbatim (the exact relation's single candidate).
    pub prefix_ops: usize,
    /// Clients that abort out of the phase at the end (clamped to
    /// `clients`); their switch values extend the full committed history.
    pub aborts: u32,
    /// Probability that an in-phase response is perturbed as in
    /// [`random_perturbed_trace`]; `0.0` generates speculatively-
    /// linearizable traces by construction.
    pub error_prob: f64,
    /// RNG seed: equal seeds give equal traces.
    pub seed: u64,
}

impl Default for PhaseConfig {
    fn default() -> Self {
        PhaseConfig {
            clients: 3,
            steps: 18,
            keys: 4,
            skew: 0.6,
            prefix_ops: 4,
            aborts: 1,
            error_prob: 0.0,
            seed: 0,
        }
    }
}

/// The `(m, n)` phase pair the generated phase traces inhabit: `(2, 3)` —
/// phase 2 is checked, inits arrive from phase 1, aborts leave for phase 3.
pub fn phase_trace_bounds() -> (PhaseId, PhaseId) {
    (PhaseId::new(2), PhaseId::new(3))
}

/// Generates a well-formed `(2, 3)` phase trace over [`KvStore`] with
/// [`crate::initrel::ExactInit`] switch values:
///
/// * a shared phase-1 history of `prefix_ops` keyed operations is drawn and
///   applied; every client then enters phase 2 through an init switch
///   carrying that history verbatim plus a pending input;
/// * `steps` in-phase events follow the multi-key concurrent schedule of
///   [`random_multikey_kv_trace`] (keys drawn under `skew`), linearizable
///   by construction unless `error_prob` perturbs outputs;
/// * the phase quiesces (every pending operation responds), then each
///   aborting client invokes once more and leaves through an abort switch
///   whose value is the full committed history — the exact init value of
///   the next phase.
///
/// With `error_prob = 0.0` the trace is speculatively linearizable by
/// construction, and every input classifies under
/// [`slin_adt::KvKeyPartitioner`] — the certified keyed checking path
/// splits it into per-key classes.
pub fn random_phase_kv_trace(cfg: &PhaseConfig) -> Trace<ObjAction<KvStore, Vec<KvInput>>> {
    let (m, n) = phase_trace_bounds();
    let adt = KvStore;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let key_weights = zipf_cumulative(cfg.keys.max(1) as usize, cfg.skew);
    let sample = |rng: &mut StdRng| {
        let key = sample_cumulative(rng, &key_weights) as u32 + 1;
        sample_keyed::<KvStore>(rng, key)
    };
    // The shared phase-1 history: applied to fix the phase's initial state.
    let mut state = adt.initial();
    let mut prefix: Vec<KvInput> = Vec::new();
    for _ in 0..cfg.prefix_ops {
        let input = sample(&mut rng);
        state = adt.apply(&state, &input).0;
        prefix.push(input);
    }
    let mut t = Trace::new();
    let clients = cfg.clients.max(1);
    let mut states: Vec<ClientState<KvInput, KvOutput>> = Vec::new();
    for k in 0..clients {
        let input = sample(&mut rng);
        t.push(Action::switch(
            ClientId::new(k + 1),
            m,
            input,
            prefix.clone(),
        ));
        states.push(ClientState::Pending(input));
    }
    // The committed in-phase apply order; appended to `prefix` it is the
    // abort switches' init value for the next phase. Responses fire in
    // apply order (a FIFO over linearization points): the exact relation
    // forces the abort value to *be* the chain's longest commit history,
    // and Commit-Order ties chains to response order — letting responses
    // overtake linearization points would demand a history no chain in
    // response order can produce. Concurrency survives in the
    // invoke-to-apply and apply-to-respond windows.
    let mut apply_order: Vec<KvInput> = Vec::new();
    let mut ready: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    for _ in 0..cfg.steps {
        let k = rng.gen_range(0..states.len());
        let c = ClientId::new(k as u32 + 1);
        match states[k].clone() {
            ClientState::Idle => {
                let input = sample(&mut rng);
                t.push(Action::invoke(c, m, input));
                states[k] = ClientState::Pending(input);
            }
            ClientState::Pending(input) => {
                let (next, out) = adt.apply(&state, &input);
                let out = if cfg.error_prob > 0.0 && rng.gen_bool(cfg.error_prob) {
                    adt.apply(&adt.initial(), &input).1
                } else {
                    state = next;
                    apply_order.push(input);
                    out
                };
                states[k] = ClientState::Applied(input, out);
                ready.push_back(k);
            }
            ClientState::Applied(input, out) => {
                if ready.front() == Some(&k) {
                    ready.pop_front();
                    t.push(Action::respond(c, m, input, out));
                    states[k] = ClientState::Idle;
                }
            }
        }
    }
    // Quiesce the phase: the abort switches must extend a fully committed
    // history, so every pending operation linearizes and responds first.
    for (k, st) in states.iter_mut().enumerate() {
        if let ClientState::Pending(input) = st.clone() {
            let (next, out) = adt.apply(&state, &input);
            state = next;
            apply_order.push(input);
            *st = ClientState::Applied(input, out);
            ready.push_back(k);
        }
    }
    while let Some(k) = ready.pop_front() {
        if let ClientState::Applied(input, out) = states[k].clone() {
            t.push(Action::respond(ClientId::new(k as u32 + 1), m, input, out));
            states[k] = ClientState::Idle;
        }
    }
    // Aborting clients leave for the next phase carrying the full history.
    let mut abort_value = prefix;
    abort_value.extend(apply_order);
    for k in 0..cfg.aborts.min(clients) as usize {
        let c = ClientId::new(k as u32 + 1);
        let input = sample(&mut rng);
        t.push(Action::invoke(c, m, input));
        t.push(Action::switch(c, n, input, abort_value.clone()));
    }
    t
}

/// Configuration of the **hostile never-quiescent** stream generator.
///
/// Produces workloads on which quiescence-gated window GC starves: a
/// configurable fraction of invocations *never responds* (the stream never
/// quiesces), and the rest respond after Zipf-distributed delays (a heavy
/// tail of long-pending operations straddling many windows). Everything is
/// deterministic in the seed.
#[derive(Debug, Clone, Copy)]
pub struct HostileConfig {
    /// Number of concurrent clients.
    pub clients: u32,
    /// Number of generation steps (each step emits at most one event;
    /// steps where every client is busy and nothing is due emit none).
    pub steps: usize,
    /// Number of distinct keys, numbered `1..=keys`.
    pub keys: u32,
    /// Zipf-style skew exponent over the key space (as in
    /// [`MultiKeyConfig::skew`]).
    pub skew: f64,
    /// Fraction of invocations that never respond — their clients stay
    /// stuck forever, so any positive value makes the stream
    /// never-quiescent.
    pub never_frac: f64,
    /// Whether never-responding operations still reach their linearization
    /// point: `true` (the hostile default) means their effects are visible
    /// to later operations even though no response ever confirms them —
    /// the case that forces symbolic straggler completion at epoch cuts.
    pub stuck_applies: bool,
    /// Zipf exponent over response delays: delay `d` is drawn with weight
    /// `d^-delay_zipf` from `1..=max_delay`. Smaller exponents fatten the
    /// tail of long-pending operations.
    pub delay_zipf: f64,
    /// Maximum response delay, in generation steps.
    pub max_delay: usize,
    /// Probability that an operation's output is perturbed as in
    /// [`random_perturbed_trace`]; `0.0` generates traces linearizable by
    /// construction.
    pub error_prob: f64,
    /// RNG seed: equal seeds give equal traces.
    pub seed: u64,
}

impl Default for HostileConfig {
    fn default() -> Self {
        HostileConfig {
            clients: 6,
            steps: 400,
            keys: 4,
            skew: 0.6,
            never_frac: 0.05,
            stuck_applies: true,
            delay_zipf: 1.1,
            max_delay: 40,
            error_prob: 0.0,
            seed: 0,
        }
    }
}

/// Draws an index under cumulative weights (the shared Zipf sampler).
fn sample_cumulative(rng: &mut StdRng, cumulative: &[f64]) -> usize {
    let total = *cumulative.last().expect("nonempty weights");
    let r = (rng.gen_range(0..1u64 << 53) as f64) / (1u64 << 53) as f64 * total;
    cumulative.partition_point(|&c| c <= r)
}

/// The cumulative Zipf weights `sum_{j<=k} j^-exponent` for `k` in `1..=n`.
fn zipf_cumulative(n: usize, exponent: f64) -> Vec<f64> {
    let mut acc = 0.0;
    (1..=n.max(1))
        .map(|k| {
            acc += f64::powf(k as f64, -exponent);
            acc
        })
        .collect()
}

#[derive(Debug, Clone)]
enum HostileClient<I, O> {
    Idle,
    /// Invoked; reaches its linearization point at step `apply_at` and
    /// responds at step `respond_at` (`None`: never).
    Waiting {
        input: I,
        apply_at: usize,
        respond_at: Option<usize>,
    },
    /// Linearization point reached; the output is fixed.
    Applied {
        input: I,
        out: O,
        respond_at: Option<usize>,
    },
}

/// Generates a hostile never-quiescent trace (see [`HostileConfig`]):
/// linearizable by construction when `error_prob = 0.0` — the generator
/// plays an atomic object and every operation that reaches its
/// linearization point does so between its invocation and (absent or
/// delayed) response.
///
/// The scheduler is deterministic given the RNG stream: at every step,
/// due responders go first (lowest client id), then due linearization
/// points fire (internal, no event), then a random idle client invokes.
pub fn random_hostile_trace<T, F>(
    adt: &T,
    cfg: &HostileConfig,
    mut sample_input: F,
) -> Trace<ObjAction<T, ()>>
where
    T: Adt,
    F: FnMut(&mut StdRng) -> T::Input,
{
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let delay_weights = zipf_cumulative(cfg.max_delay.max(1), cfg.delay_zipf);
    let mut t = Trace::new();
    let mut state = adt.initial();
    let mut clients: Vec<HostileClient<T::Input, T::Output>> =
        (0..cfg.clients).map(|_| HostileClient::Idle).collect();
    for step in 0..cfg.steps {
        // Fire every due linearization point, in client order (internal:
        // no event is emitted, but outputs are fixed against the evolving
        // atomic state — this is what keeps the trace linearizable).
        for client in clients.iter_mut() {
            if let HostileClient::Waiting {
                input,
                apply_at,
                respond_at,
            } = client.clone()
            {
                if apply_at <= step {
                    let (next, out) = adt.apply(&state, &input);
                    let out = if cfg.error_prob > 0.0 && rng.gen_bool(cfg.error_prob) {
                        adt.apply(&adt.initial(), &input).1
                    } else {
                        state = next;
                        out
                    };
                    *client = HostileClient::Applied {
                        input,
                        out,
                        respond_at,
                    };
                }
            }
        }
        // A due responder (lowest client id) emits its response.
        if let Some(k) = clients.iter().position(
            |c| matches!(c, HostileClient::Applied { respond_at: Some(r), .. } if *r <= step),
        ) {
            if let HostileClient::Applied { input, out, .. } = clients[k].clone() {
                t.push(Action::respond(
                    ClientId::new(k as u32 + 1),
                    PhaseId::FIRST,
                    input,
                    out,
                ));
                clients[k] = HostileClient::Idle;
            }
            continue;
        }
        // Otherwise a random idle client invokes (none: time just passes).
        let idle: Vec<usize> = clients
            .iter()
            .enumerate()
            .filter(|(_, c)| matches!(c, HostileClient::Idle))
            .map(|(k, _)| k)
            .collect();
        let Some(&k) = idle.get(rng.gen_range(0..idle.len().max(1))).or(None) else {
            continue;
        };
        let input = sample_input(&mut rng);
        let never = cfg.never_frac > 0.0 && rng.gen_bool(cfg.never_frac);
        let delay = sample_cumulative(&mut rng, &delay_weights) + 1;
        let respond_at = if never { None } else { Some(step + delay) };
        let apply_at = if never && !cfg.stuck_applies {
            usize::MAX
        } else {
            step + 1 + rng.gen_range(0..delay)
        };
        t.push(Action::invoke(
            ClientId::new(k as u32 + 1),
            PhaseId::FIRST,
            input.clone(),
        ));
        clients[k] = HostileClient::Waiting {
            input,
            apply_at,
            respond_at,
        };
    }
    t
}

/// Generates a hostile never-quiescent multi-key [`KvStore`] trace (keys
/// drawn under the configured skew, gets twice as likely as either
/// write). See [`HostileConfig`]; linearizable by construction when
/// `error_prob = 0.0`.
pub fn random_hostile_kv_trace(cfg: &HostileConfig) -> Trace<ObjAction<KvStore, ()>> {
    let key_weights = zipf_cumulative(cfg.keys.max(1) as usize, cfg.skew);
    random_hostile_trace(&KvStore, cfg, |rng| {
        let key = sample_cumulative(rng, &key_weights) as u32 + 1;
        sample_keyed::<KvStore>(rng, key)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classical::ClassicalChecker;
    use crate::lin::LinChecker;
    use slin_adt::{ConsInput, Consensus, Counter, CounterInput};
    use slin_trace::wf;

    fn cons_input(rng: &mut StdRng) -> ConsInput {
        ConsInput::propose(rng.gen_range(1..4u64))
    }

    fn counter_input(rng: &mut StdRng) -> CounterInput {
        if rng.gen_bool(0.5) {
            CounterInput::Increment
        } else {
            CounterInput::Read
        }
    }

    #[test]
    fn generated_traces_are_well_formed() {
        for seed in 0..50 {
            let cfg = GenConfig {
                clients: 4,
                steps: 20,
                seed,
            };
            let t = random_linearizable_trace(&Consensus, cfg, cons_input);
            assert!(wf::is_well_formed(&t), "seed {seed}");
            let t2 = random_perturbed_trace(&Consensus, cfg, 0.4, cons_input);
            assert!(wf::is_well_formed(&t2), "seed {seed}");
        }
    }

    #[test]
    fn linearizable_generator_passes_both_checkers() {
        for seed in 0..30 {
            let cfg = GenConfig {
                clients: 3,
                steps: 14,
                seed,
            };
            let t = random_linearizable_trace(&Counter, cfg, counter_input);
            assert!(LinChecker::owned(Counter).check(&t).is_ok(), "seed {seed}");
            assert!(
                ClassicalChecker::new(&Counter).check(&t).is_ok(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn perturbation_produces_some_violations() {
        let mut violations = 0;
        for seed in 0..40 {
            let cfg = GenConfig {
                clients: 3,
                steps: 14,
                seed,
            };
            let t = random_perturbed_trace(&Counter, cfg, 0.5, counter_input);
            if LinChecker::owned(Counter).check(&t).is_err() {
                violations += 1;
            }
        }
        assert!(violations > 0, "expected at least one violation");
    }

    #[test]
    fn multikey_traces_are_well_formed_and_spread_over_keys() {
        use slin_adt::{KvKeyPartitioner, Partitioner};
        for seed in 0..30 {
            let cfg = MultiKeyConfig {
                keys: 6,
                seed,
                ..Default::default()
            };
            let t = random_multikey_kv_trace(&cfg);
            assert!(wf::is_well_formed(&t), "seed {seed}");
            let s = random_multikey_set_trace(&cfg);
            assert!(wf::is_well_formed(&s), "seed {seed}");
            let distinct: std::collections::BTreeSet<u32> = t
                .iter()
                .filter_map(|a| KvKeyPartitioner.key_of(a.input()))
                .collect();
            assert!(distinct.len() > 1, "seed {seed}: all ops on one key");
            assert!(distinct.iter().all(|k| (1..=6).contains(k)));
        }
    }

    #[test]
    fn full_contention_collapses_to_a_single_key() {
        use slin_adt::{KvKeyPartitioner, Partitioner};
        let cfg = MultiKeyConfig {
            keys: 8,
            contention: 1.0,
            seed: 3,
            ..Default::default()
        };
        let t = random_multikey_kv_trace(&cfg);
        assert!(t
            .iter()
            .all(|a| KvKeyPartitioner.key_of(a.input()) == Some(1)));
    }

    #[test]
    fn skew_concentrates_traffic_on_low_keys() {
        use slin_adt::{KvKeyPartitioner, Partitioner};
        let count_key1 = |skew: f64| -> usize {
            (0..20)
                .map(|seed| {
                    let cfg = MultiKeyConfig {
                        keys: 8,
                        skew,
                        steps: 30,
                        seed,
                        ..Default::default()
                    };
                    random_multikey_kv_trace(&cfg)
                        .iter()
                        .filter(|a| KvKeyPartitioner.key_of(a.input()) == Some(1))
                        .count()
                })
                .sum()
        };
        assert!(count_key1(2.0) > count_key1(0.0), "skew should bias key 1");
    }

    #[test]
    fn multikey_linearizable_traces_pass_the_checker() {
        for seed in 0..10 {
            let cfg = MultiKeyConfig {
                keys: 4,
                steps: 18,
                seed,
                ..Default::default()
            };
            let t = random_multikey_kv_trace(&cfg);
            assert!(LinChecker::owned(KvStore).check(&t).is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn multikey_perturbation_produces_some_violations() {
        let mut violations = 0;
        for seed in 0..30 {
            let cfg = MultiKeyConfig {
                keys: 3,
                steps: 18,
                error_prob: 0.5,
                seed,
                ..Default::default()
            };
            let t = random_multikey_kv_trace(&cfg);
            if LinChecker::owned(KvStore).check(&t).is_err() {
                violations += 1;
            }
        }
        assert!(violations > 0, "expected at least one violation");
    }

    #[test]
    fn composite_adt_generators_produce_checkable_traces() {
        for seed in 0..8 {
            let cfg = MultiKeyConfig {
                keys: 4,
                steps: 16,
                seed,
                ..Default::default()
            };
            let r = random_multikey_reg_array_trace(&cfg);
            assert!(wf::is_well_formed(&r), "seed {seed}");
            assert!(
                LinChecker::owned(RegisterArray).check(&r).is_ok(),
                "seed {seed}"
            );
            let c = random_multikey_counter_vec_trace(&cfg);
            assert!(wf::is_well_formed(&c), "seed {seed}");
            assert!(
                LinChecker::owned(CounterVector).check(&c).is_ok(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn multikey_generation_is_deterministic_in_the_seed() {
        let cfg = MultiKeyConfig {
            keys: 5,
            skew: 1.2,
            contention: 0.2,
            seed: 17,
            ..Default::default()
        };
        assert_eq!(
            random_multikey_kv_trace(&cfg),
            random_multikey_kv_trace(&cfg)
        );
        assert_eq!(
            random_multikey_set_trace(&cfg),
            random_multikey_set_trace(&cfg)
        );
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let cfg = GenConfig {
            clients: 3,
            steps: 16,
            seed: 99,
        };
        let a = random_linearizable_trace(&Consensus, cfg, cons_input);
        let b = random_linearizable_trace(&Consensus, cfg, cons_input);
        assert_eq!(a, b);
    }

    #[test]
    fn phase_traces_are_well_formed_and_speculatively_linearizable() {
        use crate::initrel::ExactInit;
        use crate::slin::SlinChecker;
        let (m, n) = phase_trace_bounds();
        for seed in 0..8 {
            let cfg = PhaseConfig {
                seed,
                ..Default::default()
            };
            let t = random_phase_kv_trace(&cfg);
            assert!(wf::is_phase_well_formed(&t, m, n), "seed {seed}");
            assert!(t.iter().any(|a| a.is_switch()), "seed {seed}: no switches");
            let chk = SlinChecker::owned(KvStore, ExactInit::new(), m, n);
            assert!(chk.check(&t).is_ok(), "seed {seed}: {:?}", chk.check(&t));
        }
    }

    #[test]
    fn phase_traces_spread_over_keys_and_classify() {
        use slin_adt::{KvKeyPartitioner, Partitioner};
        let cfg = PhaseConfig {
            keys: 5,
            steps: 30,
            seed: 2,
            ..Default::default()
        };
        let t = random_phase_kv_trace(&cfg);
        let distinct: std::collections::BTreeSet<u32> = t
            .iter()
            .filter_map(|a| KvKeyPartitioner.key_of(a.input()))
            .collect();
        assert!(distinct.len() > 1, "all ops on one key");
        assert_eq!(
            t.iter()
                .filter(|a| KvKeyPartitioner.key_of(a.input()).is_none())
                .count(),
            0,
            "every input classifies"
        );
    }

    #[test]
    fn phase_generation_is_deterministic_in_the_seed() {
        let cfg = PhaseConfig {
            keys: 5,
            aborts: 2,
            seed: 11,
            ..Default::default()
        };
        assert_eq!(random_phase_kv_trace(&cfg), random_phase_kv_trace(&cfg));
    }

    #[test]
    fn phase_perturbation_yields_violations() {
        use crate::initrel::ExactInit;
        use crate::slin::SlinChecker;
        let (m, n) = phase_trace_bounds();
        let chk = SlinChecker::owned(KvStore, ExactInit::new(), m, n);
        let mut violations = 0;
        for seed in 0..12 {
            let cfg = PhaseConfig {
                error_prob: 0.5,
                seed,
                ..Default::default()
            };
            let t = random_phase_kv_trace(&cfg);
            assert!(wf::is_phase_well_formed(&t, m, n), "seed {seed}");
            if chk.check(&t).is_err() {
                violations += 1;
            }
        }
        assert!(violations > 0, "expected at least one violation");
    }

    #[test]
    fn hostile_traces_are_well_formed_and_linearizable() {
        // Small enough for the batch checker: long Zipf delays make the
        // whole trace one dense concurrency window, so monolithic batch
        // checking is exponential in it (the very pathology the epoch-GC
        // monitor exists for — the streaming differential suite covers
        // large hostile streams through the windowed monitor instead).
        for seed in 0..12 {
            let cfg = HostileConfig {
                clients: 4,
                steps: 48,
                never_frac: 0.1,
                max_delay: 8,
                seed,
                ..Default::default()
            };
            let t = random_hostile_kv_trace(&cfg);
            assert!(wf::is_well_formed(&t), "seed {seed}");
            assert!(LinChecker::owned(KvStore).check(&t).is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn hostile_traces_never_quiesce() {
        let mut stuck_total = 0;
        for seed in 0..10 {
            let cfg = HostileConfig {
                steps: 300,
                never_frac: 0.15,
                seed,
                ..Default::default()
            };
            let t = random_hostile_kv_trace(&cfg);
            let invokes = t.iter().filter(|a| a.is_invoke()).count();
            let responds = t.iter().filter(|a| a.is_respond()).count();
            assert!(invokes > responds, "seed {seed}: stream quiesced");
            stuck_total += invokes - responds;
        }
        assert!(stuck_total >= 10, "never-responding fraction too thin");
    }

    #[test]
    fn hostile_delays_straddle_many_events() {
        // The Zipf delay tail must actually produce long-pending
        // operations: some response arrives many events after its invoke.
        let cfg = HostileConfig {
            steps: 400,
            never_frac: 0.0,
            delay_zipf: 0.8,
            ..Default::default()
        };
        let t = random_hostile_kv_trace(&cfg);
        let mut max_span = 0;
        let mut open: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
        for (i, a) in t.iter().enumerate() {
            if a.is_invoke() {
                open.insert(a.client().value(), i);
            } else if let Some(j) = open.remove(&a.client().value()) {
                max_span = max_span.max(i - j);
            }
        }
        assert!(max_span >= 12, "longest pending span only {max_span}");
    }

    #[test]
    fn hostile_generation_is_deterministic_in_the_seed() {
        let cfg = HostileConfig {
            steps: 200,
            seed: 23,
            ..Default::default()
        };
        assert_eq!(random_hostile_kv_trace(&cfg), random_hostile_kv_trace(&cfg));
    }

    #[test]
    fn hostile_perturbation_yields_violations() {
        let mut violations = 0;
        for seed in 0..12 {
            let cfg = HostileConfig {
                clients: 4,
                steps: 36,
                max_delay: 6,
                error_prob: 0.3,
                seed,
                ..Default::default()
            };
            let t = random_hostile_kv_trace(&cfg);
            assert!(wf::is_well_formed(&t), "seed {seed}");
            if LinChecker::owned(KvStore).check(&t).is_err() {
                violations += 1;
            }
        }
        assert!(violations > 0, "expected at least one violation");
    }
}
