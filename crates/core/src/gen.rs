//! Seeded random generation of well-formed traces.
//!
//! The equivalence and composition experiments need large families of
//! well-formed concurrent traces: some linearizable by construction (the
//! generator plays a genuinely atomic object with random linearization
//! points), some adversarial (outputs perturbed so that most traces are
//! *not* linearizable). Everything is deterministic in the seed.

use crate::ObjAction;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slin_adt::{
    Adt, CounterVecInput, CounterVector, KvInput, KvStore, RegArrayInput, RegisterArray, Set,
    SetInput,
};
use slin_trace::{Action, ClientId, PhaseId, Trace};

/// Configuration of the random trace generators.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Number of concurrent clients.
    pub clients: u32,
    /// Number of generation steps (each step emits at most one event).
    pub steps: usize,
    /// RNG seed: equal seeds give equal traces.
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            clients: 3,
            steps: 12,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone)]
enum ClientState<I, O> {
    Idle,
    /// Invoked, linearization point not yet reached.
    Pending(I),
    /// Linearization point reached; the output is fixed.
    Applied(I, O),
}

/// Generates a trace that is **linearizable by construction**: the generator
/// runs an atomic object and picks, for every operation, a linearization
/// point between its invocation and its response.
///
/// `sample_input` draws random inputs (e.g. random proposals).
///
/// # Example
///
/// ```
/// use slin_adt::{Consensus, ConsInput};
/// use slin_core::gen::{random_linearizable_trace, GenConfig};
/// use slin_core::lin::LinChecker;
///
/// let t = random_linearizable_trace(
///     &Consensus::new(),
///     GenConfig { clients: 3, steps: 10, seed: 7 },
///     |rng| ConsInput::propose(rand::Rng::gen_range(rng, 1..4u64)),
/// );
/// assert!(LinChecker::new(&Consensus::new()).check(&t).is_ok());
/// ```
pub fn random_linearizable_trace<T, F>(
    adt: &T,
    cfg: GenConfig,
    mut sample_input: F,
) -> Trace<ObjAction<T, ()>>
where
    T: Adt,
    F: FnMut(&mut StdRng) -> T::Input,
{
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut t = Trace::new();
    let mut state = adt.initial();
    let mut clients: Vec<ClientState<T::Input, T::Output>> =
        (0..cfg.clients).map(|_| ClientState::Idle).collect();
    for _ in 0..cfg.steps {
        let k = rng.gen_range(0..clients.len());
        let c = ClientId::new(k as u32 + 1);
        match clients[k].clone() {
            ClientState::Idle => {
                let input = sample_input(&mut rng);
                t.push(Action::invoke(c, PhaseId::FIRST, input.clone()));
                clients[k] = ClientState::Pending(input);
            }
            ClientState::Pending(input) => {
                // Reach the linearization point: apply atomically now.
                let (next, out) = adt.apply(&state, &input);
                state = next;
                clients[k] = ClientState::Applied(input, out);
            }
            ClientState::Applied(input, out) => {
                t.push(Action::respond(c, PhaseId::FIRST, input, out));
                clients[k] = ClientState::Idle;
            }
        }
    }
    t
}

/// Generates a well-formed trace whose outputs are *perturbed*: with
/// probability `error_prob` a response carries the output the operation
/// would produce on the **initial** state instead of the current one.
/// Useful for exercising checkers on a mix of linearizable and
/// non-linearizable traces.
pub fn random_perturbed_trace<T, F>(
    adt: &T,
    cfg: GenConfig,
    error_prob: f64,
    mut sample_input: F,
) -> Trace<ObjAction<T, ()>>
where
    T: Adt,
    F: FnMut(&mut StdRng) -> T::Input,
{
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut t = Trace::new();
    let mut state = adt.initial();
    let mut clients: Vec<ClientState<T::Input, T::Output>> =
        (0..cfg.clients).map(|_| ClientState::Idle).collect();
    for _ in 0..cfg.steps {
        let k = rng.gen_range(0..clients.len());
        let c = ClientId::new(k as u32 + 1);
        match clients[k].clone() {
            ClientState::Idle => {
                let input = sample_input(&mut rng);
                t.push(Action::invoke(c, PhaseId::FIRST, input.clone()));
                clients[k] = ClientState::Pending(input);
            }
            ClientState::Pending(input) => {
                let (next, out) = adt.apply(&state, &input);
                let out = if rng.gen_bool(error_prob) {
                    // Pretend the operation ran on the initial state.
                    adt.apply(&adt.initial(), &input).1
                } else {
                    state = next;
                    out
                };
                clients[k] = ClientState::Applied(input, out);
            }
            ClientState::Applied(input, out) => {
                t.push(Action::respond(c, PhaseId::FIRST, input, out));
                clients[k] = ClientState::Idle;
            }
        }
    }
    t
}

/// Configuration of the multi-key concurrent workload generators.
///
/// Extends [`GenConfig`] with the key-space shape that partition-aware
/// checking cares about: how many independence classes exist (`keys`), how
/// unevenly traffic spreads over them (`skew`), and how much of it piles
/// onto one shared hot key (`contention`). `keys = 1` or `contention = 1.0`
/// produce **partition-hostile** workloads (every operation contends on one
/// class); many keys with low skew produce **partition-friendly** ones.
#[derive(Debug, Clone, Copy)]
pub struct MultiKeyConfig {
    /// Number of concurrent clients.
    pub clients: u32,
    /// Number of generation steps (each step emits at most one event).
    pub steps: usize,
    /// Number of distinct keys (independence classes), numbered `1..=keys`.
    pub keys: u32,
    /// Zipf-style skew exponent over the key space: key `k` is drawn with
    /// weight `k^-skew`. `0.0` is uniform; larger values concentrate
    /// traffic on low-numbered keys.
    pub skew: f64,
    /// Probability that an operation targets key 1 outright, regardless of
    /// the skewed draw — a dial from fully spread (`0.0`) to fully
    /// contended (`1.0`).
    pub contention: f64,
    /// Probability that a response is perturbed as in
    /// [`random_perturbed_trace`]; `0.0` generates linearizable-by-
    /// construction traces.
    pub error_prob: f64,
    /// RNG seed: equal seeds give equal traces.
    pub seed: u64,
}

impl Default for MultiKeyConfig {
    fn default() -> Self {
        MultiKeyConfig {
            clients: 4,
            steps: 24,
            keys: 4,
            skew: 0.6,
            contention: 0.0,
            error_prob: 0.0,
            seed: 0,
        }
    }
}

impl MultiKeyConfig {
    fn gen_config(&self) -> GenConfig {
        GenConfig {
            clients: self.clients,
            steps: self.steps,
            seed: self.seed,
        }
    }

    /// Draws a key in `1..=keys` under the configured skew and contention.
    fn sample_key(&self, rng: &mut StdRng, cumulative: &[f64]) -> u32 {
        if self.keys <= 1 {
            return 1;
        }
        if self.contention > 0.0 && rng.gen_bool(self.contention) {
            return 1;
        }
        let total = *cumulative.last().expect("keys >= 1");
        let r = (rng.gen_range(0..1u64 << 53) as f64) / (1u64 << 53) as f64 * total;
        let k = cumulative.partition_point(|&c| c <= r);
        k as u32 + 1
    }

    /// The cumulative Zipf weights `sum_{j<=k} j^-skew`.
    fn cumulative_weights(&self) -> Vec<f64> {
        let mut acc = 0.0;
        (1..=self.keys.max(1))
            .map(|k| {
                acc += f64::powf(k as f64, -self.skew);
                acc
            })
            .collect()
    }
}

fn multikey_trace<T, F>(adt: &T, cfg: &MultiKeyConfig, mut op: F) -> Trace<ObjAction<T, ()>>
where
    T: Adt,
    F: FnMut(&mut StdRng, u32) -> T::Input,
{
    let cumulative = cfg.cumulative_weights();
    let sample = |rng: &mut StdRng| {
        let key = cfg.sample_key(rng, &cumulative);
        op(rng, key)
    };
    if cfg.error_prob > 0.0 {
        random_perturbed_trace(adt, cfg.gen_config(), cfg.error_prob, sample)
    } else {
        random_linearizable_trace(adt, cfg.gen_config(), sample)
    }
}

/// Generates a well-formed multi-key [`KvStore`] trace: each operation
/// draws a key under the configured skew/contention, then puts, gets, or
/// deletes it (gets twice as likely as either write).
///
/// With `error_prob = 0.0` the trace is linearizable by construction.
///
/// # Example
///
/// ```
/// use slin_adt::{KvKeyPartitioner, KvStore};
/// use slin_core::gen::{random_multikey_kv_trace, MultiKeyConfig};
/// use slin_core::lin::LinChecker;
///
/// let t = random_multikey_kv_trace(&MultiKeyConfig { keys: 8, ..Default::default() });
/// let chk = LinChecker::new(&KvStore);
/// assert_eq!(
///     chk.check_partitioned(&KvKeyPartitioner, &t),
///     chk.check(&t), // byte-identical, fewer nodes
/// );
/// ```
pub fn random_multikey_kv_trace(cfg: &MultiKeyConfig) -> Trace<ObjAction<KvStore, ()>> {
    multikey_trace(&KvStore, cfg, |rng, key| match rng.gen_range(0..4u8) {
        0 => KvInput::Put(key, rng.gen_range(1..5u64)),
        1 | 2 => KvInput::Get(key),
        _ => KvInput::Delete(key),
    })
}

/// Generates a well-formed multi-key [`Set`] trace over the elements
/// `1..=keys` (adds and membership tests twice as likely as removes).
///
/// With `error_prob = 0.0` the trace is linearizable by construction.
pub fn random_multikey_set_trace(cfg: &MultiKeyConfig) -> Trace<ObjAction<Set, ()>> {
    multikey_trace(&Set, cfg, |rng, key| match rng.gen_range(0..5u8) {
        0 | 1 => SetInput::Add(key as u64),
        2 | 3 => SetInput::Contains(key as u64),
        _ => SetInput::Remove(key as u64),
    })
}

/// Generates a well-formed multi-cell [`RegisterArray`] trace over the
/// cells `1..=keys` (reads and writes equally likely).
///
/// With `error_prob = 0.0` the trace is linearizable by construction.
pub fn random_multikey_reg_array_trace(
    cfg: &MultiKeyConfig,
) -> Trace<ObjAction<RegisterArray, ()>> {
    multikey_trace(&RegisterArray, cfg, |rng, key| {
        if rng.gen_bool(0.5) {
            RegArrayInput::Write(key, rng.gen_range(1..5u64))
        } else {
            RegArrayInput::Read(key)
        }
    })
}

/// Generates a well-formed multi-slot [`CounterVector`] trace over the
/// slots `1..=keys` (increments and reads equally likely).
///
/// With `error_prob = 0.0` the trace is linearizable by construction.
pub fn random_multikey_counter_vec_trace(
    cfg: &MultiKeyConfig,
) -> Trace<ObjAction<CounterVector, ()>> {
    multikey_trace(&CounterVector, cfg, |rng, key| {
        if rng.gen_bool(0.5) {
            CounterVecInput::Increment(key)
        } else {
            CounterVecInput::Read(key)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classical::ClassicalChecker;
    use crate::lin::LinChecker;
    use slin_adt::{ConsInput, Consensus, Counter, CounterInput};
    use slin_trace::wf;

    fn cons_input(rng: &mut StdRng) -> ConsInput {
        ConsInput::propose(rng.gen_range(1..4u64))
    }

    fn counter_input(rng: &mut StdRng) -> CounterInput {
        if rng.gen_bool(0.5) {
            CounterInput::Increment
        } else {
            CounterInput::Read
        }
    }

    #[test]
    fn generated_traces_are_well_formed() {
        for seed in 0..50 {
            let cfg = GenConfig {
                clients: 4,
                steps: 20,
                seed,
            };
            let t = random_linearizable_trace(&Consensus, cfg, cons_input);
            assert!(wf::is_well_formed(&t), "seed {seed}");
            let t2 = random_perturbed_trace(&Consensus, cfg, 0.4, cons_input);
            assert!(wf::is_well_formed(&t2), "seed {seed}");
        }
    }

    #[test]
    fn linearizable_generator_passes_both_checkers() {
        for seed in 0..30 {
            let cfg = GenConfig {
                clients: 3,
                steps: 14,
                seed,
            };
            let t = random_linearizable_trace(&Counter, cfg, counter_input);
            assert!(LinChecker::new(&Counter).check(&t).is_ok(), "seed {seed}");
            assert!(
                ClassicalChecker::new(&Counter).check(&t).is_ok(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn perturbation_produces_some_violations() {
        let mut violations = 0;
        for seed in 0..40 {
            let cfg = GenConfig {
                clients: 3,
                steps: 14,
                seed,
            };
            let t = random_perturbed_trace(&Counter, cfg, 0.5, counter_input);
            if LinChecker::new(&Counter).check(&t).is_err() {
                violations += 1;
            }
        }
        assert!(violations > 0, "expected at least one violation");
    }

    #[test]
    fn multikey_traces_are_well_formed_and_spread_over_keys() {
        use slin_adt::{KvKeyPartitioner, Partitioner};
        for seed in 0..30 {
            let cfg = MultiKeyConfig {
                keys: 6,
                seed,
                ..Default::default()
            };
            let t = random_multikey_kv_trace(&cfg);
            assert!(wf::is_well_formed(&t), "seed {seed}");
            let s = random_multikey_set_trace(&cfg);
            assert!(wf::is_well_formed(&s), "seed {seed}");
            let distinct: std::collections::BTreeSet<u32> = t
                .iter()
                .filter_map(|a| KvKeyPartitioner.key_of(a.input()))
                .collect();
            assert!(distinct.len() > 1, "seed {seed}: all ops on one key");
            assert!(distinct.iter().all(|k| (1..=6).contains(k)));
        }
    }

    #[test]
    fn full_contention_collapses_to_a_single_key() {
        use slin_adt::{KvKeyPartitioner, Partitioner};
        let cfg = MultiKeyConfig {
            keys: 8,
            contention: 1.0,
            seed: 3,
            ..Default::default()
        };
        let t = random_multikey_kv_trace(&cfg);
        assert!(t
            .iter()
            .all(|a| KvKeyPartitioner.key_of(a.input()) == Some(1)));
    }

    #[test]
    fn skew_concentrates_traffic_on_low_keys() {
        use slin_adt::{KvKeyPartitioner, Partitioner};
        let count_key1 = |skew: f64| -> usize {
            (0..20)
                .map(|seed| {
                    let cfg = MultiKeyConfig {
                        keys: 8,
                        skew,
                        steps: 30,
                        seed,
                        ..Default::default()
                    };
                    random_multikey_kv_trace(&cfg)
                        .iter()
                        .filter(|a| KvKeyPartitioner.key_of(a.input()) == Some(1))
                        .count()
                })
                .sum()
        };
        assert!(count_key1(2.0) > count_key1(0.0), "skew should bias key 1");
    }

    #[test]
    fn multikey_linearizable_traces_pass_the_checker() {
        for seed in 0..10 {
            let cfg = MultiKeyConfig {
                keys: 4,
                steps: 18,
                seed,
                ..Default::default()
            };
            let t = random_multikey_kv_trace(&cfg);
            assert!(LinChecker::new(&KvStore).check(&t).is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn multikey_perturbation_produces_some_violations() {
        let mut violations = 0;
        for seed in 0..30 {
            let cfg = MultiKeyConfig {
                keys: 3,
                steps: 18,
                error_prob: 0.5,
                seed,
                ..Default::default()
            };
            let t = random_multikey_kv_trace(&cfg);
            if LinChecker::new(&KvStore).check(&t).is_err() {
                violations += 1;
            }
        }
        assert!(violations > 0, "expected at least one violation");
    }

    #[test]
    fn composite_adt_generators_produce_checkable_traces() {
        for seed in 0..8 {
            let cfg = MultiKeyConfig {
                keys: 4,
                steps: 16,
                seed,
                ..Default::default()
            };
            let r = random_multikey_reg_array_trace(&cfg);
            assert!(wf::is_well_formed(&r), "seed {seed}");
            assert!(
                LinChecker::new(&RegisterArray).check(&r).is_ok(),
                "seed {seed}"
            );
            let c = random_multikey_counter_vec_trace(&cfg);
            assert!(wf::is_well_formed(&c), "seed {seed}");
            assert!(
                LinChecker::new(&CounterVector).check(&c).is_ok(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn multikey_generation_is_deterministic_in_the_seed() {
        let cfg = MultiKeyConfig {
            keys: 5,
            skew: 1.2,
            contention: 0.2,
            seed: 17,
            ..Default::default()
        };
        assert_eq!(
            random_multikey_kv_trace(&cfg),
            random_multikey_kv_trace(&cfg)
        );
        assert_eq!(
            random_multikey_set_trace(&cfg),
            random_multikey_set_trace(&cfg)
        );
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let cfg = GenConfig {
            clients: 3,
            steps: 16,
            seed: 99,
        };
        let a = random_linearizable_trace(&Consensus, cfg, cons_input);
        let b = random_linearizable_trace(&Consensus, cfg, cons_input);
        assert_eq!(a, b);
    }
}
