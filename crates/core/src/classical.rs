//! Classical linearizability — `linearizable*` (paper Appendix A).
//!
//! Definitions 37–46 formalize the original Herlihy–Wing condition: a
//! well-formed trace is `linearizable*` iff some *completion* (the trace with
//! responses appended for the pending invocations) admits a *reordering*
//! into a sequential trace that agrees with the ADT and preserves the order
//! of non-overlapping operations.
//!
//! [`ClassicalChecker`] decides this with the Wing–Gong search: repeatedly
//! pick a *minimal* operation (one invoked before every response of the
//! other unlinearized operations), apply its input to the sequential state,
//! and check the returned output for completed operations. Pending
//! operations may be linearized anywhere with a free output; since a
//! completion answers *every* pending invocation, any operation still
//! unlinearized when the completed ones are exhausted can be appended at the
//! end, so the search succeeds as soon as only pending operations remain.
//!
//! Theorem 1 of the paper states that this definition coincides with the new
//! one implemented in [`crate::lin`]; the workspace tests check the two
//! checkers agree on randomly generated traces.

use crate::ops::{self, Operation};
use crate::ObjAction;
use slin_adt::Adt;
use slin_trace::wf;
use slin_trace::Trace;
use std::collections::HashSet;

use crate::lin::LinError;

/// Default node budget for the backtracking search.
pub const DEFAULT_BUDGET: usize = 2_000_000;

/// Decision procedure for `linearizable*` (the classical definition).
///
/// # Example
///
/// ```
/// use slin_adt::{Consensus, ConsInput, ConsOutput};
/// use slin_core::classical::ClassicalChecker;
/// use slin_trace::{Action, ClientId, PhaseId, Trace};
///
/// let c1 = ClientId::new(1);
/// let ph = PhaseId::FIRST;
/// let t: Trace<Action<ConsInput, ConsOutput, ()>> = Trace::from_actions(vec![
///     Action::invoke(c1, ph, ConsInput::propose(4)),
///     Action::respond(c1, ph, ConsInput::propose(4), ConsOutput::decide(4)),
/// ]);
/// assert!(ClassicalChecker::new(&Consensus::new()).check(&t).is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct ClassicalChecker<'a, T> {
    adt: &'a T,
    budget: usize,
}

impl<'a, T: Adt> ClassicalChecker<'a, T> {
    /// Creates a checker for the given ADT with the default search budget.
    pub fn new(adt: &'a T) -> Self {
        ClassicalChecker {
            adt,
            budget: DEFAULT_BUDGET,
        }
    }

    /// Overrides the search node budget.
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.budget = budget;
        self
    }

    /// Checks the trace against `linearizable*`.
    ///
    /// # Errors
    ///
    /// Same error surface as [`crate::lin::LinChecker::check`]; a witness is
    /// not produced (use the new-definition checker for witnesses — the two
    /// are equivalent by Theorem 1).
    pub fn check<V>(&self, t: &Trace<ObjAction<T, V>>) -> Result<(), LinError>
    where
        V: Clone + PartialEq,
    {
        if let Some(index) = t.iter().position(|a| a.is_switch()) {
            return Err(LinError::SwitchAction { index });
        }
        wf::check_well_formed(t)?;
        let operations = ops::operations::<T, V>(t);
        if operations.len() > 64 {
            return Err(LinError::BudgetExhausted { nodes: 0 });
        }
        let remaining: u64 = (0..operations.len()).fold(0u64, |m, i| m | (1 << i));
        let mut search = WgSearch {
            adt: self.adt,
            ops: &operations,
            budget: self.budget,
            nodes: 0,
            memo: HashSet::new(),
        };
        if search.dfs(self.adt.initial(), remaining)? {
            Ok(())
        } else {
            Err(LinError::NotLinearizable)
        }
    }

    /// Boolean form of [`ClassicalChecker::check`].
    pub fn is_linearizable<V>(&self, t: &Trace<ObjAction<T, V>>) -> bool
    where
        V: Clone + PartialEq,
    {
        self.check(t).is_ok()
    }
}

struct WgSearch<'s, T: Adt> {
    adt: &'s T,
    ops: &'s [Operation<T>],
    budget: usize,
    nodes: usize,
    memo: HashSet<(u64, T::State)>,
}

impl<'s, T: Adt> WgSearch<'s, T> {
    /// An operation is *minimal* among the remaining ones when no other
    /// remaining operation responded before it was invoked: linearizing it
    /// first preserves the order of non-overlapping operations.
    fn is_minimal(&self, k: usize, remaining: u64) -> bool {
        let inv_k = self.ops[k].invoke_index;
        for (j, op) in self.ops.iter().enumerate() {
            if j == k || remaining & (1 << j) == 0 {
                continue;
            }
            if let Some(res_j) = op.respond_index {
                if res_j < inv_k {
                    return false;
                }
            }
        }
        true
    }

    fn dfs(&mut self, state: T::State, remaining: u64) -> Result<bool, LinError> {
        // If only pending operations remain they can always be appended to
        // the linearization in any order, with outputs chosen to agree with
        // the ADT: success.
        let mut has_completed = false;
        for (j, op) in self.ops.iter().enumerate() {
            if remaining & (1 << j) != 0 && !op.is_pending() {
                has_completed = true;
                break;
            }
        }
        if !has_completed {
            return Ok(true);
        }
        self.nodes += 1;
        if self.nodes > self.budget {
            return Err(LinError::BudgetExhausted { nodes: self.nodes });
        }
        if self.memo.contains(&(remaining, state.clone())) {
            return Ok(false);
        }
        for k in 0..self.ops.len() {
            if remaining & (1 << k) == 0 || !self.is_minimal(k, remaining) {
                continue;
            }
            let op = &self.ops[k];
            let (state2, out) = self.adt.apply(&state, &op.input);
            if let Some(expected) = &op.output {
                if out != *expected {
                    continue;
                }
            }
            if self.dfs(state2, remaining & !(1 << k))? {
                return Ok(true);
            }
        }
        self.memo.insert((remaining, state));
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slin_adt::{ConsInput, ConsOutput, Consensus, Queue, QueueInput, QueueOutput};
    use slin_trace::{Action, ClientId, PhaseId};

    type CA = ObjAction<Consensus, ()>;
    type QA = ObjAction<Queue, ()>;

    fn c(n: u32) -> ClientId {
        ClientId::new(n)
    }
    fn ph() -> PhaseId {
        PhaseId::FIRST
    }
    fn p(v: u64) -> ConsInput {
        ConsInput::propose(v)
    }
    fn d(v: u64) -> ConsOutput {
        ConsOutput::decide(v)
    }

    #[test]
    fn sequential_trace_accepted() {
        let t: Trace<CA> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(), p(3)),
            Action::respond(c(1), ph(), p(3), d(3)),
            Action::invoke(c(2), ph(), p(4)),
            Action::respond(c(2), ph(), p(4), d(3)),
        ]);
        assert!(ClassicalChecker::new(&Consensus).check(&t).is_ok());
    }

    #[test]
    fn non_overlapping_order_preserved() {
        // c1's decision completes before c2 even proposes, so c2 cannot be
        // linearized first: d(4) is impossible.
        let t: Trace<CA> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(), p(3)),
            Action::respond(c(1), ph(), p(3), d(3)),
            Action::invoke(c(2), ph(), p(4)),
            Action::respond(c(2), ph(), p(4), d(4)),
        ]);
        assert_eq!(
            ClassicalChecker::new(&Consensus).check(&t),
            Err(LinError::NotLinearizable)
        );
    }

    #[test]
    fn overlapping_operations_may_reorder() {
        let t: Trace<CA> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(), p(3)),
            Action::invoke(c(2), ph(), p(4)),
            Action::respond(c(1), ph(), p(3), d(4)),
            Action::respond(c(2), ph(), p(4), d(4)),
        ]);
        assert!(ClassicalChecker::new(&Consensus).check(&t).is_ok());
    }

    #[test]
    fn pending_operation_may_take_effect() {
        let t: Trace<CA> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(), p(1)),
            Action::invoke(c(2), ph(), p(2)),
            Action::respond(c(2), ph(), p(2), d(1)),
        ]);
        assert!(ClassicalChecker::new(&Consensus).check(&t).is_ok());
    }

    #[test]
    fn pending_operation_may_be_postponed() {
        let t: Trace<CA> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(), p(1)),
            Action::invoke(c(2), ph(), p(2)),
            Action::respond(c(2), ph(), p(2), d(2)),
        ]);
        assert!(ClassicalChecker::new(&Consensus).check(&t).is_ok());
    }

    #[test]
    fn queue_herlihy_wing_example() {
        // enq(1) || enq(2); deq must not return an element never enqueued,
        // and two sequential deqs must drain in FIFO order.
        let t: Trace<QA> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(), QueueInput::Enqueue(1)),
            Action::invoke(c(2), ph(), QueueInput::Enqueue(2)),
            Action::respond(c(1), ph(), QueueInput::Enqueue(1), QueueOutput::Ack),
            Action::respond(c(2), ph(), QueueInput::Enqueue(2), QueueOutput::Ack),
            Action::invoke(c(1), ph(), QueueInput::Dequeue),
            Action::respond(
                c(1),
                ph(),
                QueueInput::Dequeue,
                QueueOutput::Dequeued(Some(2)),
            ),
            Action::invoke(c(1), ph(), QueueInput::Dequeue),
            Action::respond(
                c(1),
                ph(),
                QueueInput::Dequeue,
                QueueOutput::Dequeued(Some(1)),
            ),
        ]);
        assert!(ClassicalChecker::new(&Queue).check(&t).is_ok());
    }

    #[test]
    fn queue_wrong_fifo_rejected() {
        // Sequential enq(1); enq(2); deq=2 is not FIFO.
        let t: Trace<QA> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(), QueueInput::Enqueue(1)),
            Action::respond(c(1), ph(), QueueInput::Enqueue(1), QueueOutput::Ack),
            Action::invoke(c(1), ph(), QueueInput::Enqueue(2)),
            Action::respond(c(1), ph(), QueueInput::Enqueue(2), QueueOutput::Ack),
            Action::invoke(c(1), ph(), QueueInput::Dequeue),
            Action::respond(
                c(1),
                ph(),
                QueueInput::Dequeue,
                QueueOutput::Dequeued(Some(2)),
            ),
        ]);
        assert_eq!(
            ClassicalChecker::new(&Queue).check(&t),
            Err(LinError::NotLinearizable)
        );
    }

    #[test]
    fn empty_trace_accepted() {
        let t: Trace<CA> = Trace::new();
        assert!(ClassicalChecker::new(&Consensus).check(&t).is_ok());
    }
}
