//! P-compositional (partition-aware) checking.
//!
//! A [`Partitioner`] classifies every input of a trace into an independence
//! class; this module splits the trace into one sub-trace per class
//! ([`split_trace`]), fans the per-partition searches out over scoped worker
//! threads (`fan_out`, the same machinery the speculative checker uses for
//! init-interpretation enumeration), and **merges the per-partition
//! witnesses back into the exact witness the monolithic search would have
//! produced** (`merge_partition_chains`).
//!
//! # Why the merge is exact
//!
//! The shared engine's search order is a pure function of its inputs:
//! commit moves are tried in ascending trace-index order before extra-input
//! moves in ascending input order, and a node is pruned as soon as the
//! consumed inputs escape any remaining commit's validity bound. For a
//! partitionable trace (the [`Partitioner`] soundness contract makes the
//! ADT a product over keys), a step is viable in the monolithic search iff
//!
//! 1. it is the *next step of its partition's own first witness* (any other
//!    same-partition step fails for purely local reasons, which the product
//!    structure preserves globally), and
//! 2. consuming its input keeps the merged consumed-input multiset inside
//!    the validity bound of **every** remaining commit of every partition
//!    (otherwise the engine's prune kills the child node immediately).
//!
//! Replaying exactly that rule over the per-partition witness step queues
//! (commits first by ascending original index, then extras by ascending
//! input, each guarded by the cross-partition bound check) therefore
//! reconstructs the monolithic first witness — verdicts *and* witnesses are
//! byte-identical to the monolithic path, while the nodes expanded drop
//! from the product to the sum of the per-partition search spaces. The
//! `partition_differential` suite in `tests/` pins this equivalence over
//! the multi-key generators.
//!
//! There is one situation the replay cannot predict without searching:
//! when a partition's *own* next step is cross-blocked (its input escapes
//! another partition's remaining bound), the monolithic engine may
//! interleave pool extras that appear in **no** per-partition witness
//! before the block clears. `merge_partition_chains` detects any blocked
//! head and bails out (`None`); the checkers then re-derive the witness
//! with one monolithic search — the verdict is already decided by the
//! partition verdicts, so byte-identity still holds unconditionally, at
//! the price of the reconstruction speedup on such traces
//! ([`PartitionReport::remerged`] reports the event).
//!
//! Traces containing **switch actions**, and traces with any input the
//! partitioner declines to classify, fall back to a single identity
//! partition (monolithic checking); [`SplitOutcome::fallback`] reports the
//! engagement of that fallback.

use crate::engine::{Chain, SearchStats};
use crate::ObjAction;
use slin_adt::{Adt, Partitioner};
use slin_trace::{PersistentMultiset, Trace};
use std::collections::{BTreeMap, VecDeque};

/// Why a trace went monolithic: the reason the identity fallback (or a
/// keyed-path downgrade) engaged, surfaced through
/// [`PartitionReport::fallback`] so operators can tell a policy gap
/// (uncertified switches) from a data problem (unclassifiable inputs) from
/// a genuinely coupled trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// The trace contains switch actions and no valid switch-independence
    /// certificate (`slin-cert/v2`) is installed for the partitioner and
    /// init relation, so switches cannot be classified per class.
    SwitchUncertified,
    /// The partitioner declined to classify an input (or an element of a
    /// switch candidate history).
    UnclassifiableInput,
    /// The per-class interpretation of the trace's switch values does not
    /// decompose on this trace (cross-class coupling in the forced common
    /// prefix), so the keyed path re-derived monolithically.
    CrossBoundCoupled,
}

impl std::fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FallbackReason::SwitchUncertified => "switch_uncertified",
            FallbackReason::UnclassifiableInput => "unclassifiable_input",
            FallbackReason::CrossBoundCoupled => "cross_bound_coupled",
        })
    }
}

/// One independent sub-history of a trace: the actions of a single
/// independence class, in trace order.
#[derive(Debug, Clone)]
pub struct TracePartition<T: Adt, V, K> {
    /// The class key, or `None` for the identity (fallback) partition.
    pub key: Option<K>,
    /// The class's actions, in original trace order.
    pub trace: Trace<ObjAction<T, V>>,
    /// For every sub-trace index, the index of the action in the original
    /// trace (used to remap witness commit indices).
    pub index_map: Vec<usize>,
}

/// The result of splitting a trace along a [`Partitioner`].
#[derive(Debug, Clone)]
pub struct SplitOutcome<T: Adt, V, K> {
    /// The partitions, ordered by ascending key (deterministic, so merged
    /// statistics are a pure function of the trace).
    pub parts: Vec<TracePartition<T, V, K>>,
    /// Why the identity fallback engaged (a switch action without a switch
    /// certificate, or an unclassifiable input, forced the whole trace into
    /// one partition), or `None` for a clean split.
    pub fallback: Option<FallbackReason>,
}

/// Aggregate outcome of a partitioned check, alongside the verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionReport {
    /// Number of partitions checked (1 when the fallback engaged).
    pub partitions: usize,
    /// Why the trace went monolithic (see [`SplitOutcome::fallback`] and
    /// [`FallbackReason`]), or `None` when the partitioned path ran.
    pub fallback: Option<FallbackReason>,
    /// Whether witness reconstruction had to re-run one monolithic search
    /// because a cross-partition bound blocked a partition's next step (see
    /// the [module docs](self)); the re-run's counters are absorbed into
    /// [`PartitionReport::stats`].
    pub remerged: bool,
    /// Engine counters absorbed over all partitions in key order. Each
    /// partition contributes `interpretations >= 1`, so this counts
    /// partition-searches, not init interpretations, on the partitioned
    /// path.
    pub stats: SearchStats,
}

/// Splits `t` into one sub-trace per independence class of `p`, in
/// ascending key order.
///
/// The identity fallback (one partition holding the whole trace,
/// `fallback = true`) engages when any action is a switch action — switch
/// values are interpreted through the common relation `rinit`, whose
/// candidate histories may mix classes — or when `p` returns `None` for
/// any input.
pub fn split_trace<T, V, P>(p: &P, t: &Trace<ObjAction<T, V>>) -> SplitOutcome<T, V, P::Key>
where
    T: Adt,
    V: Clone,
    P: Partitioner<T>,
{
    let mut keys: Vec<P::Key> = Vec::with_capacity(t.len());
    for a in t.iter() {
        if a.is_switch() {
            return identity_split(t, FallbackReason::SwitchUncertified);
        }
        match p.key_of(a.input()) {
            Some(k) => keys.push(k),
            None => return identity_split(t, FallbackReason::UnclassifiableInput),
        }
    }
    // Per key: the actions of the class plus their original indices.
    type Group<A> = (Vec<A>, Vec<usize>);
    let mut groups: BTreeMap<P::Key, Group<ObjAction<T, V>>> = BTreeMap::new();
    for (i, (a, k)) in t.iter().zip(keys).enumerate() {
        let entry = groups.entry(k).or_default();
        entry.0.push(a.clone());
        entry.1.push(i);
    }
    SplitOutcome {
        parts: groups
            .into_iter()
            .map(|(k, (actions, index_map))| TracePartition {
                key: Some(k),
                trace: Trace::from_actions(actions),
                index_map,
            })
            .collect(),
        fallback: None,
    }
}

/// Splits `t` like [`split_trace`], but classifies **switch actions** by
/// the key of their pending input instead of bailing to identity — the
/// split the keyed init relation unlocks once a switch-independence
/// certificate (`slin-cert/v2`) vouches that candidate histories decompose
/// per class.
///
/// The caller is responsible for verifying that every element of every
/// switch's candidate value classifies (the value type is opaque here);
/// the keyed checker falls back to the identity split with
/// [`FallbackReason::UnclassifiableInput`] when it cannot.
pub fn split_trace_keyed<T, V, P>(p: &P, t: &Trace<ObjAction<T, V>>) -> SplitOutcome<T, V, P::Key>
where
    T: Adt,
    V: Clone,
    P: Partitioner<T>,
{
    let mut keys: Vec<P::Key> = Vec::with_capacity(t.len());
    for a in t.iter() {
        match p.key_of(a.input()) {
            Some(k) => keys.push(k),
            None => return identity_split(t, FallbackReason::UnclassifiableInput),
        }
    }
    type Group<A> = (Vec<A>, Vec<usize>);
    let mut groups: BTreeMap<P::Key, Group<ObjAction<T, V>>> = BTreeMap::new();
    for (i, (a, k)) in t.iter().zip(keys).enumerate() {
        let entry = groups.entry(k).or_default();
        entry.0.push(a.clone());
        entry.1.push(i);
    }
    SplitOutcome {
        parts: groups
            .into_iter()
            .map(|(k, (actions, index_map))| TracePartition {
                key: Some(k),
                trace: Trace::from_actions(actions),
                index_map,
            })
            .collect(),
        fallback: None,
    }
}

pub(crate) fn identity_split<T: Adt, V: Clone, K>(
    t: &Trace<ObjAction<T, V>>,
    reason: FallbackReason,
) -> SplitOutcome<T, V, K> {
    SplitOutcome {
        parts: vec![TracePartition {
            key: None,
            trace: t.clone(),
            index_map: (0..t.len()).collect(),
        }],
        fallback: Some(reason),
    }
}

/// Runs `run(0..count)` across `threads` scoped workers (worker `w` takes
/// indices `w, w + threads, …` — the init-interpretation fan-out pattern)
/// and returns the results in index order. With `threads <= 1` the calls
/// run inline.
pub(crate) fn fan_out<R, F>(count: usize, threads: usize, run: &F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if threads <= 1 || count <= 1 {
        return (0..count).map(run).collect();
    }
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(count).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut i = w;
                    while i < count {
                        out.push((i, run(i)));
                        i += threads;
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("partition worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|o| o.expect("every partition index visited"))
        .collect()
}

/// The verdict of [`search_partitions`]: the merged chain, `None` when the
/// merge bailed (re-derive monolithically), or the first partition error.
pub(crate) type SearchVerdict<I, E> = Result<Option<Chain<I>>, E>;

/// Fans `search` out over `parts` across `threads` scoped workers, absorbs
/// every partition's counters in key order, resolves the verdict exactly
/// like a sequential partition loop would (the first failing partition in
/// key order wins), and merges the partition witnesses in engine order —
/// the orchestration shared by `LinChecker::check_partitioned` and
/// `SlinChecker::check_partitioned`.
///
/// `finding` projects one per-partition result onto the engine counters
/// plus either the commit chain (in sub-trace indices) or the partition's
/// error. Returns, alongside the [`PartitionReport`]:
///
/// * `Ok(Some(chain))` — the merged witness chain (original trace
///   indices);
/// * `Ok(None)` — every partition passed but the merge bailed; the caller
///   must re-derive the witness monolithically and set
///   [`PartitionReport::remerged`];
/// * `Err(e)` — the first failing partition's error.
pub(crate) fn search_partitions<T, V, K, R, E, F, X>(
    parts: &[TracePartition<T, V, K>],
    threads: usize,
    bounds: &[PersistentMultiset<T::Input>],
    search: F,
    finding: X,
) -> (SearchVerdict<T::Input, E>, PartitionReport)
where
    T: Adt,
    T::Input: Ord + Sync,
    T::Output: Sync,
    V: Sync,
    K: Sync,
    R: Send,
    E: Clone,
    F: Fn(&Trace<ObjAction<T, V>>) -> R + Sync,
    X: for<'r> Fn(&'r R) -> (SearchStats, Result<&'r [(usize, Vec<T::Input>)], &'r E>),
{
    let results = fan_out(parts.len(), threads, &|i| search(&parts[i].trace));
    let mut stats = SearchStats::default();
    let mut queues = Vec::with_capacity(parts.len());
    let mut first_error: Option<E> = None;
    for (part, result) in parts.iter().zip(&results) {
        let (part_stats, chain) = finding(result);
        stats.absorb(&part_stats);
        match chain {
            Ok(c) => queues.push((
                witness_steps(c, &part.index_map),
                crate::ops::total_inputs::<T, V>(&part.trace),
            )),
            Err(e) => {
                if first_error.is_none() {
                    first_error = Some(e.clone());
                }
            }
        }
    }
    let report = PartitionReport {
        partitions: parts.len(),
        fallback: None,
        remerged: false,
        stats,
    };
    match first_error {
        Some(e) => (Err(e), report),
        None => (
            Ok(merge_partition_chains(
                bounds,
                queues,
                PersistentMultiset::new(),
            )),
            report,
        ),
    }
}

/// One step of a witness chain, recovered from the accumulated commit
/// histories: either an interleaved extra input or a commit (with its
/// original trace index and the committed input).
///
/// Public for the online monitor (`slin-monitor`), which replays the same
/// merge over its shard witnesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step<I> {
    /// An extra input interleaved before the next commit.
    Extra(I),
    /// A commit: `(original trace index, committed input)`.
    Commit(usize, I),
}

/// Decomposes a partition witness chain (whose histories accumulate) into
/// its step sequence, remapping commit indices through `index_map`.
pub fn witness_steps<I: Clone>(
    chain: &[(usize, Vec<I>)],
    index_map: &[usize],
) -> VecDeque<Step<I>> {
    let mut steps = VecDeque::new();
    let mut prev_len = 0usize;
    for (sub_idx, h) in chain {
        debug_assert!(h.len() > prev_len, "chain histories strictly extend");
        for e in &h[prev_len..h.len() - 1] {
            steps.push_back(Step::Extra(e.clone()));
        }
        steps.push_back(Step::Commit(
            index_map[*sub_idx],
            h.last().expect("commit histories are non-empty").clone(),
        ));
        prev_len = h.len();
    }
    steps
}

/// Merges per-partition witness step queues into the chain the monolithic
/// engine finds first, replaying the engine's deterministic search order
/// (see the [module docs](self) for the argument):
///
/// * commits before extras, commits by ascending original trace index,
///   extras by ascending input;
/// * a step is viable only if consuming its input keeps the merged
///   consumed-input multiset inside the validity bound of every remaining
///   commit (`bounds` are the full trace's per-index bounds);
/// * at every extras node, the **leftover pool inputs of partitions whose
///   queue is exhausted** compete with the queue heads: the engine
///   greedily consumes such inputs (they are no-ops for every remaining
///   commit — their partition has none) whenever they sort below the
///   needed extra and the bounds admit them, and they end up in the
///   witness histories. Each element of `parts` therefore carries the
///   partition's total input pool next to its step queue. Unfinished
///   partitions cannot leak extras this way: their smaller pool inputs
///   already failed their own local search, and a commit-headed partition
///   at an extras node means a blocked head (which bails).
///
/// Returns `None` when any partition's head step is cross-blocked — the
/// one state in which the monolithic first witness may deviate from every
/// per-partition witness, so the caller must re-derive it monolithically.
///
/// `seed_used` pre-populates the consumed-input multiset (the monitor
/// passes its garbage-collected prefix summary, whose retained inputs
/// count against the bounds but whose history is dropped; the batch
/// checkers pass an empty multiset). `bounds` must account for the seed's
/// consumed inputs.
pub fn merge_partition_chains<I: Clone + Ord + std::hash::Hash>(
    bounds: &[PersistentMultiset<I>],
    parts: Vec<(VecDeque<Step<I>>, PersistentMultiset<I>)>,
    seed_used: PersistentMultiset<I>,
) -> Option<Chain<I>> {
    let (mut queues, pools): (Vec<VecDeque<Step<I>>>, Vec<PersistentMultiset<I>>) =
        parts.into_iter().unzip();
    // All remaining commits, across every queue: `(original index, input)`.
    let mut remaining: Vec<(usize, I)> = queues
        .iter()
        .flat_map(|q| q.iter())
        .filter_map(|s| match s {
            Step::Commit(idx, input) => Some((*idx, input.clone())),
            Step::Extra(_) => None,
        })
        .collect();
    remaining.sort_by_key(|(idx, _)| *idx);

    let mut used: PersistentMultiset<I> = seed_used;
    let mut hist: Vec<I> = Vec::new();
    let mut chain: Chain<I> = Vec::new();

    // `input` stays within every remaining commit's bound after one more
    // occurrence is consumed (the monolithic prune admits the child node).
    // `except` skips the commit being placed itself.
    let viable = |used: &PersistentMultiset<I>,
                  input: &I,
                  except: Option<usize>,
                  remaining: &[(usize, I)]| {
        remaining
            .iter()
            .filter(|(idx, _)| Some(*idx) != except)
            .all(|(idx, _)| used.count(input) < bounds[*idx].count(input))
    };

    loop {
        let mut commit_choice: Option<(usize, usize)> = None; // (orig idx, queue)
        let mut extra_choice: Option<(I, Option<usize>)> = None;
        let mut any_head = false;
        let mut any_blocked = false;
        let mut blocked_commits: Vec<usize> = Vec::new(); // queue indices
        for (qi, q) in queues.iter().enumerate() {
            match q.front() {
                Some(Step::Commit(idx, input)) => {
                    any_head = true;
                    if used.count(input) >= bounds[*idx].count(input)
                        || !viable(&used, input, Some(*idx), &remaining)
                    {
                        any_blocked = true;
                        blocked_commits.push(qi);
                    } else if commit_choice.is_none_or(|(best, _)| *idx < best) {
                        commit_choice = Some((*idx, qi));
                    }
                }
                Some(Step::Extra(input)) => {
                    any_head = true;
                    if !viable(&used, input, None, &remaining) {
                        any_blocked = true;
                    } else if extra_choice.as_ref().is_none_or(|(best, _)| input < best) {
                        extra_choice = Some((input.clone(), Some(qi)));
                    }
                }
                None => {}
            }
        }
        if !any_head {
            break;
        }
        // Any blocked head with no viable commit to hide behind: the
        // engine falls through to moves (later same-partition commits,
        // pool extras) the partition's local search never explored — bail
        // and let the caller re-derive monolithically.
        if commit_choice.is_none() && any_blocked {
            return None;
        }
        // With a viable commit at index `best`, blocked heads are skipped
        // by the engine — harmless — *unless* a blocked-head partition has
        // a later queued commit below `best`: the engine (trying commits
        // in ascending index order) would attempt that commit next, an
        // order the partition's local witness never explored.
        if let Some((best, _)) = commit_choice {
            for &qi in &blocked_commits {
                let head_idx = match queues[qi].front() {
                    Some(Step::Commit(idx, _)) => *idx,
                    _ => unreachable!("blocked_commits holds commit-headed queues"),
                };
                let deviates = queues[qi].iter().skip(1).any(|s| match s {
                    Step::Commit(idx, _) => *idx > head_idx && *idx < best,
                    Step::Extra(_) => false,
                });
                if deviates {
                    return None;
                }
            }
        }
        // Move 1 (commits, ascending trace index) before move 2 (extras,
        // ascending input) — the engine's child order.
        if let Some((idx, qi)) = commit_choice {
            let Some(Step::Commit(_, input)) = queues[qi].pop_front() else {
                unreachable!("head re-read");
            };
            used.insert(input.clone());
            hist.push(input);
            chain.push((idx, hist.clone()));
            remaining.retain(|(i, _)| *i != idx);
            continue;
        }
        // Finished partitions' leftover pool inputs compete with the head
        // extras: the engine consumes them greedily in sorted order (their
        // partition has no remaining commit to break) whenever the bounds
        // admit them.
        for (qi, q) in queues.iter().enumerate() {
            if !q.is_empty() {
                continue;
            }
            for (input, cap) in pools[qi].iter() {
                if used.count(input) < cap
                    && viable(&used, input, None, &remaining)
                    && extra_choice.as_ref().is_none_or(|(best, _)| input < best)
                {
                    extra_choice = Some((input.clone(), None));
                }
            }
        }
        let (input, qi) = extra_choice.expect("some head exists and none is a commit");
        if let Some(qi) = qi {
            queues[qi].pop_front();
        }
        used.insert(input.clone());
        hist.push(input);
    }
    Some(chain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slin_adt::{IdentityPartitioner, KvInput, KvKeyPartitioner, KvOutput, KvStore};
    use slin_trace::{Action, ClientId, PhaseId};

    type KA = ObjAction<KvStore, ()>;

    fn c(n: u32) -> ClientId {
        ClientId::new(n)
    }
    fn ph() -> PhaseId {
        PhaseId::FIRST
    }

    fn two_key_trace() -> Trace<KA> {
        Trace::from_actions(vec![
            Action::invoke(c(1), ph(), KvInput::Put(1, 5)),
            Action::invoke(c(2), ph(), KvInput::Put(2, 6)),
            Action::respond(c(2), ph(), KvInput::Put(2, 6), KvOutput::Ack),
            Action::respond(c(1), ph(), KvInput::Put(1, 5), KvOutput::Ack),
        ])
    }

    #[test]
    fn split_groups_by_key_in_key_order() {
        let s = split_trace(&KvKeyPartitioner, &two_key_trace());
        assert!(s.fallback.is_none());
        assert_eq!(s.parts.len(), 2);
        assert_eq!(s.parts[0].key, Some(1));
        assert_eq!(s.parts[0].index_map, vec![0, 3]);
        assert_eq!(s.parts[1].key, Some(2));
        assert_eq!(s.parts[1].index_map, vec![1, 2]);
        assert_eq!(s.parts[0].trace.len() + s.parts[1].trace.len(), 4);
    }

    #[test]
    fn identity_partitioner_forces_fallback() {
        let s: SplitOutcome<KvStore, (), u8> = split_trace(&IdentityPartitioner, &two_key_trace());
        assert_eq!(s.fallback, Some(FallbackReason::UnclassifiableInput));
        assert_eq!(s.parts.len(), 1);
        assert_eq!(s.parts[0].key, None);
        assert_eq!(s.parts[0].trace.len(), 4);
        assert_eq!(s.parts[0].index_map, vec![0, 1, 2, 3]);
    }

    #[test]
    fn switch_actions_force_fallback() {
        let t: Trace<ObjAction<KvStore, u8>> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(), KvInput::Put(1, 5)),
            Action::switch(c(1), PhaseId::new(2), KvInput::Put(1, 5), 0),
        ]);
        let s = split_trace(&KvKeyPartitioner, &t);
        assert_eq!(s.fallback, Some(FallbackReason::SwitchUncertified));
        assert_eq!(s.parts.len(), 1);
    }

    #[test]
    fn keyed_split_classifies_switches_by_pending_input() {
        let t: Trace<ObjAction<KvStore, u8>> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(), KvInput::Put(1, 5)),
            Action::switch(c(2), PhaseId::new(2), KvInput::Put(2, 6), 0),
            Action::respond(c(2), PhaseId::new(2), KvInput::Put(2, 6), KvOutput::Ack),
            Action::respond(c(1), ph(), KvInput::Put(1, 5), KvOutput::Ack),
        ]);
        let s = split_trace_keyed(&KvKeyPartitioner, &t);
        assert!(s.fallback.is_none());
        assert_eq!(s.parts.len(), 2);
        assert_eq!(s.parts[0].key, Some(1));
        assert_eq!(s.parts[0].index_map, vec![0, 3]);
        assert_eq!(s.parts[1].key, Some(2));
        assert_eq!(s.parts[1].index_map, vec![1, 2]);
        // An unclassifiable input still collapses the keyed split.
        let s: SplitOutcome<KvStore, (), u8> =
            split_trace_keyed(&IdentityPartitioner, &two_key_trace());
        assert_eq!(s.fallback, Some(FallbackReason::UnclassifiableInput));
    }

    #[test]
    fn witness_steps_recover_extras_and_commits() {
        // Chain histories [a], [a, x, b]: steps are Commit(a), Extra(x),
        // Commit(b), with indices remapped.
        let chain = vec![(0usize, vec!["a"]), (1usize, vec!["a", "x", "b"])];
        let steps = witness_steps(&chain, &[4, 9]);
        assert_eq!(
            steps.into_iter().collect::<Vec<_>>(),
            vec![Step::Commit(4, "a"), Step::Extra("x"), Step::Commit(9, "b"),]
        );
    }

    #[test]
    fn fan_out_preserves_index_order() {
        for threads in [1, 2, 5] {
            let out = fan_out(7, threads, &|i| i * i);
            assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36]);
        }
    }

    #[test]
    fn merge_prefers_commits_by_index_then_extras_by_input() {
        // Bounds admit two occurrences of everything everywhere.
        let mut everything = PersistentMultiset::new();
        for x in ["a", "b", "x", "y"] {
            everything.insert(x);
            everything.insert(x);
        }
        let bounds = vec![everything; 8];
        let qa = VecDeque::from(vec![
            Step::Commit(3, "a"),
            Step::Extra("y"),
            Step::Commit(7, "a"),
        ]);
        let qb = VecDeque::from(vec![
            Step::Commit(1, "b"),
            Step::Extra("x"),
            Step::Commit(5, "b"),
        ]);
        let pa = PersistentMultiset::elems(&["a", "y", "a"]);
        let pb = PersistentMultiset::elems(&["b", "x", "b"]);
        let chain =
            merge_partition_chains(&bounds, vec![(qa, pa), (qb, pb)], PersistentMultiset::new())
                .expect("no head blocked");
        let picks: Vec<usize> = chain.iter().map(|(i, _)| *i).collect();
        // Commits by ascending index (1 then 3); at the all-extras node the
        // smaller extra x goes first, which unblocks commit 5 before y.
        assert_eq!(picks, vec![1, 3, 5, 7]);
        assert_eq!(chain[3].1, vec!["b", "a", "x", "b", "y", "a"]);
    }

    #[test]
    fn merge_bails_when_an_extra_move_races_a_blocked_head() {
        // Partition A's head Extra("a0") escapes commit 1's bound while no
        // commit head is viable behind it: the monolithic engine could
        // interleave extras outside every partition witness, so the merge
        // must refuse to guess.
        let mut b1 = PersistentMultiset::new();
        b1.insert("b");
        let mut all = PersistentMultiset::new();
        for x in ["a0", "a", "b", "b0"] {
            all.insert(x);
        }
        let bounds = vec![b1.clone(), b1, all.clone(), all.clone(), all];
        let qa = VecDeque::from(vec![Step::Extra("a0"), Step::Commit(3, "a")]);
        let qb = VecDeque::from(vec![Step::Extra("b0"), Step::Commit(1, "b")]);
        let pa = PersistentMultiset::elems(&["a0", "a"]);
        let pb = PersistentMultiset::elems(&["b0", "b"]);
        assert_eq!(
            merge_partition_chains(&bounds, vec![(qa, pa), (qb, pb)], PersistentMultiset::new()),
            None
        );
    }

    #[test]
    fn merge_ignores_blocked_heads_while_a_commit_is_viable() {
        // Partition A's head extra escapes commit 1's bound, but B's
        // commit 1 itself is viable: move 1 fires first, clearing the
        // block — no bail, and the commit order matches the engine's.
        let mut b1 = PersistentMultiset::new();
        b1.insert("b");
        let mut all = PersistentMultiset::new();
        for x in ["a0", "a", "b"] {
            all.insert(x);
        }
        let bounds = vec![b1.clone(), b1, all.clone(), all];
        let qa = VecDeque::from(vec![Step::Extra("a0"), Step::Commit(3, "a")]);
        let qb = VecDeque::from(vec![Step::Commit(1, "b")]);
        let pa = PersistentMultiset::elems(&["a0", "a"]);
        let pb = PersistentMultiset::elems(&["b"]);
        let chain =
            merge_partition_chains(&bounds, vec![(qa, pa), (qb, pb)], PersistentMultiset::new())
                .expect("commit clears block");
        let picks: Vec<usize> = chain.iter().map(|(i, _)| *i).collect();
        assert_eq!(picks, vec![1, 3]);
        assert_eq!(chain[1].1, vec!["b", "a0", "a"]);
    }

    #[test]
    fn merge_interleaves_finished_partitions_leftover_extras() {
        // Partition B finishes at commit 1 with a leftover pool input "b0"
        // that sorts below partition A's needed extra "x": the engine
        // consumes the harmless leftover first, so the merge must too.
        let mut all = PersistentMultiset::new();
        for x in ["a", "a", "b", "b0", "x"] {
            all.insert(x);
        }
        let bounds = vec![all.clone(); 5];
        let qa = VecDeque::from(vec![
            Step::Commit(0, "a"),
            Step::Extra("x"),
            Step::Commit(4, "a"),
        ]);
        let qb = VecDeque::from(vec![Step::Commit(1, "b")]);
        let pa = PersistentMultiset::elems(&["a", "x", "a"]);
        let pb = PersistentMultiset::elems(&["b", "b0"]);
        let chain =
            merge_partition_chains(&bounds, vec![(qa, pa), (qb, pb)], PersistentMultiset::new())
                .expect("no head blocked");
        let picks: Vec<usize> = chain.iter().map(|(i, _)| *i).collect();
        assert_eq!(picks, vec![0, 1, 4]);
        // After both early commits, the extras node consumes b0 < x, then
        // x, then the final commit.
        assert_eq!(chain[2].1, vec!["a", "b", "b0", "x", "a"]);
    }
}
