//! The paper's consensus invariants I1–I5 (Sections 2.4 and 2.5) as
//! executable trace predicates, plus the fast consensus-specialized
//! linearizability test used to validate the generic checkers at scale.
//!
//! First-phase invariants (Quorum, RCons):
//!
//! * **I1** — if some client decides `v` then all clients that switch do so
//!   with value `v` (before or after the decision);
//! * **I2** — if some client decides `v` then all deciding clients decide
//!   `v`;
//! * **I3** — all clients that switch or decide do so with a value proposed
//!   before they switch or decide.
//!
//! Second-phase invariants (Backup = Paxos, CASCons):
//!
//! * **I4** — all clients decide the same value;
//! * **I5** — all clients decide a switch value previously submitted by some
//!   client.

use slin_adt::consensus::{ConsInput, ConsOutput, Value};
use slin_trace::{Action, Trace};

/// A consensus phase action whose switch values expose a proposal value.
pub type ConsAction = Action<ConsInput, ConsOutput, Value>;

fn decisions<V>(
    t: &Trace<Action<ConsInput, ConsOutput, V>>,
) -> impl Iterator<Item = (usize, Value)> + '_ {
    t.iter().enumerate().filter_map(|(i, a)| match a {
        Action::Respond { output, .. } => Some((i, output.value())),
        _ => None,
    })
}

fn switch_values(t: &Trace<ConsAction>) -> impl Iterator<Item = (usize, Value)> + '_ {
    t.iter().enumerate().filter_map(|(i, a)| match a {
        Action::Switch { value, .. } => Some((i, *value)),
        _ => None,
    })
}

fn proposed_before<V>(t: &Trace<Action<ConsInput, ConsOutput, V>>, v: Value, i: usize) -> bool {
    t.as_slice()[..i]
        .iter()
        .any(|a| matches!(a, Action::Invoke { input, .. } if input.value() == v))
}

/// **I1**: a decision of `v` forces every switch (anywhere in the trace) to
/// carry `v`.
pub fn i1(t: &Trace<ConsAction>) -> bool {
    match decisions(t).next() {
        None => true,
        Some((_, v)) => switch_values(t).all(|(_, sv)| sv == v),
    }
}

/// **I2**: all decisions carry the same value.
pub fn i2(t: &Trace<ConsAction>) -> bool {
    let mut ds = decisions(t);
    match ds.next() {
        None => true,
        Some((_, v)) => ds.all(|(_, d)| d == v),
    }
}

/// **I3**: every decided or switched value was proposed before the deciding
/// or switching event.
pub fn i3(t: &Trace<ConsAction>) -> bool {
    decisions(t).all(|(i, v)| proposed_before(t, v, i))
        && switch_values(t).all(|(i, v)| proposed_before(t, v, i))
}

/// **I4**: all decisions carry the same value (the second-phase restatement
/// of I2).
pub fn i4(t: &Trace<ConsAction>) -> bool {
    i2(t)
}

/// **I5**: every decided value is a switch value submitted (as an init
/// action of this phase) before the decision.
pub fn i5(t: &Trace<ConsAction>) -> bool {
    decisions(t).all(|(i, v)| {
        t.as_slice()[..i]
            .iter()
            .any(|a| matches!(a, Action::Switch { value, .. } if *value == v))
    })
}

/// All first-phase invariants (I1 ∧ I2 ∧ I3).
pub fn first_phase_invariants(t: &Trace<ConsAction>) -> bool {
    i1(t) && i2(t) && i3(t)
}

/// All second-phase invariants (I4 ∧ I5).
pub fn second_phase_invariants(t: &Trace<ConsAction>) -> bool {
    i4(t) && i5(t)
}

/// Fast linearizability test specialized to consensus (Section 2.4's
/// construction made into a decision procedure): a well-formed consensus
/// trace is linearizable iff either no client decides, or all decisions
/// carry one value `v` and `p(v)` is invoked before the first decision.
///
/// Runs in `O(|t|)` and agrees with the generic checkers (property-tested in
/// the workspace suite), which makes it usable on simulator traces with
/// hundreds of operations.
///
/// The trace may contain switch actions; they are ignored, matching
/// `proj(t, sigT)` — the projection onto the object signature used by
/// Theorem 2.
pub fn consensus_linearizable<V>(t: &Trace<Action<ConsInput, ConsOutput, V>>) -> bool {
    let mut ds = decisions(t);
    match ds.next() {
        None => true,
        Some((first_idx, v)) => ds.all(|(_, d)| d == v) && proposed_before(t, v, first_idx),
    }
}

/// Diagnoses the *late decide* pattern: some response's input was invoked
/// after an earlier switch action.
///
/// This is a rough edge of the paper's Quorum proof that the reproduction
/// surfaced: Definition 28 evaluates abort-history validity at the *switch
/// index*, so a first-phase trace in which a client proposes and decides
/// *after* another client already switched cannot associate a valid abort
/// history (Abort-Order forces the late proposal into it, but the proposal
/// was not yet invoked at the switch). Quorum can produce such traces under
/// selective message loss, and they are correct end to end (the composed
/// object stays linearizable); they simply fall outside the literal
/// `SLin(1, 2)` trace property. The experiment suites use this predicate to
/// separate the two classes.
pub fn has_late_decide(t: &Trace<ConsAction>) -> bool {
    let Some(first_switch) = t.iter().position(|a| a.is_switch()) else {
        return false;
    };
    t.iter().enumerate().any(|(i, a)| {
        if let Action::Respond { input, .. } = a {
            t.iter()
                .enumerate()
                .any(|(j, b)| j > first_switch && j < i && b.is_invoke() && b.input() == input)
        } else {
            false
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use slin_trace::{ClientId, PhaseId};

    fn c(n: u32) -> ClientId {
        ClientId::new(n)
    }
    fn ph(n: u32) -> PhaseId {
        PhaseId::new(n)
    }
    fn p(v: u64) -> ConsInput {
        ConsInput::propose(v)
    }
    fn d(v: u64) -> ConsOutput {
        ConsOutput::decide(v)
    }

    fn decide_then_switch(switch_val: u64) -> Trace<ConsAction> {
        Trace::from_actions(vec![
            Action::invoke(c(1), ph(1), p(1)),
            Action::invoke(c(2), ph(1), p(2)),
            Action::respond(c(1), ph(1), p(1), d(1)),
            Action::switch(c(2), ph(2), p(2), Value::new(switch_val)),
        ])
    }

    #[test]
    fn i1_holds_when_switch_matches_decision() {
        assert!(i1(&decide_then_switch(1)));
        assert!(!i1(&decide_then_switch(2)));
    }

    #[test]
    fn i1_vacuous_without_decisions() {
        let t: Trace<ConsAction> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(1), p(1)),
            Action::switch(c(1), ph(2), p(1), Value::new(1)),
        ]);
        assert!(i1(&t));
    }

    #[test]
    fn i2_detects_split_decisions() {
        let t: Trace<ConsAction> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(1), p(1)),
            Action::invoke(c(2), ph(1), p(2)),
            Action::respond(c(1), ph(1), p(1), d(1)),
            Action::respond(c(2), ph(1), p(2), d(2)),
        ]);
        assert!(!i2(&t));
        assert!(i2(&decide_then_switch(1)));
    }

    #[test]
    fn i3_requires_prior_proposal() {
        // Decision of 9, never proposed.
        let t: Trace<ConsAction> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(1), p(1)),
            Action::respond(c(1), ph(1), p(1), d(9)),
        ]);
        assert!(!i3(&t));
        // Switch with a value proposed only later.
        let t2: Trace<ConsAction> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(1), p(1)),
            Action::switch(c(1), ph(2), p(1), Value::new(2)),
            Action::invoke(c(2), ph(1), p(2)),
        ]);
        assert!(!i3(&t2));
        assert!(i3(&decide_then_switch(1)));
    }

    #[test]
    fn i5_requires_prior_switch_value() {
        let ok: Trace<ConsAction> = Trace::from_actions(vec![
            Action::switch(c(1), ph(2), p(1), Value::new(5)),
            Action::respond(c(1), ph(2), p(1), d(5)),
        ]);
        assert!(i5(&ok));
        let bad: Trace<ConsAction> = Trace::from_actions(vec![
            Action::switch(c(1), ph(2), p(1), Value::new(5)),
            Action::respond(c(1), ph(2), p(1), d(1)),
        ]);
        assert!(!i5(&bad));
    }

    #[test]
    fn specialized_lin_matches_paper_examples() {
        // The linearizable trace of Section 2.2.
        let ok: Trace<ConsAction> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(1), p(1)),
            Action::invoke(c(2), ph(1), p(2)),
            Action::respond(c(2), ph(1), p(2), d(2)),
            Action::respond(c(1), ph(1), p(1), d(2)),
        ]);
        assert!(consensus_linearizable(&ok));
        // Split decision.
        let bad: Trace<ConsAction> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(1), p(1)),
            Action::invoke(c(2), ph(1), p(2)),
            Action::respond(c(1), ph(1), p(1), d(1)),
            Action::respond(c(2), ph(1), p(2), d(2)),
        ]);
        assert!(!consensus_linearizable(&bad));
        // Deciding a value proposed only later.
        let bad2: Trace<ConsAction> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(1), p(1)),
            Action::respond(c(1), ph(1), p(1), d(2)),
            Action::invoke(c(2), ph(1), p(2)),
            Action::respond(c(2), ph(1), p(2), d(2)),
        ]);
        assert!(!consensus_linearizable(&bad2));
    }

    #[test]
    fn late_decide_detected() {
        let t: Trace<ConsAction> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(1), p(1)),
            Action::switch(c(1), ph(2), p(1), Value::new(1)),
            Action::invoke(c(2), ph(1), p(2)),
            Action::respond(c(2), ph(1), p(2), d(1)),
        ]);
        assert!(has_late_decide(&t));
        assert!(!has_late_decide(&decide_then_switch(1)));
        let no_switch: Trace<ConsAction> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(1), p(1)),
            Action::respond(c(1), ph(1), p(1), d(1)),
        ]);
        assert!(!has_late_decide(&no_switch));
    }

    #[test]
    fn first_phase_invariants_conjunction() {
        assert!(first_phase_invariants(&decide_then_switch(1)));
        assert!(!first_phase_invariants(&decide_then_switch(2)));
    }
}
