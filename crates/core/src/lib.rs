//! Speculative linearizability: definitions, checkers, and composition.
//!
//! This crate is the primary contribution of the reproduction of
//! *Speculative Linearizability* (Guerraoui, Kuncak, Losa — PLDI 2012):
//!
//! * [`engine`] — the **shared chain-search engine** both checkers are
//!   thin frontends over: one backtracking search with explicit
//!   [`engine::SearchBudget`]s and [`engine::SearchStats`];
//! * [`lin`] — the paper's **new definition of linearizability**
//!   (Section 4, Definitions 5–15), decided by a backtracking search for a
//!   *linearization function* `g` mapping commit indices to histories;
//! * [`classical`] — the **classical definition** `linearizable*`
//!   (Appendix A, Definitions 37–46), decided by a Wing–Gong-style search
//!   over completions and reorderings. Theorem 1 states the two coincide,
//!   and the workspace property-tests exactly that;
//! * [`slin`] — **speculative linearizability** (Section 5,
//!   Definitions 16–36): speculation phases `(m, n)`, switch actions,
//!   interpretations of init/abort values through the common relation
//!   `rinit`, and the `Validity`, `Commit-Order`, `Init-Order` and
//!   `Abort-Order` predicates;
//! * [`initrel`] — concrete `rinit` relations (exact/singleton, and the
//!   consensus mapping of Section 2.4);
//! * [`invariants`] — the paper's invariants **I1–I5** for consensus
//!   speculation phases, as executable trace predicates;
//! * [`partition`] — **P-compositional checking**: splitting a trace into
//!   independent sub-histories along a [`slin_adt::Partitioner`], fanning
//!   the sub-searches out across threads, and merging witnesses so the
//!   result is byte-identical to the monolithic path;
//! * [`model`] — the **[`ConsistencyModel`] abstraction**: what either
//!   criterion needs from the chain-search machinery, making `lin`,
//!   `slin`, and the streaming monitor thin instantiations of one generic
//!   code path;
//! * [`session`] — the **unified checker surface**: a builder
//!   ([`session::Checker::builder`]) where strategy (monolithic /
//!   partitioned / streaming) is configuration, yielding a
//!   [`session::Session`] with `check(&trace)` and `ingest(action)` and
//!   one [`session::Verdict`] report type;
//! * [`stream`] — the **online streaming monitor**: per-key sharded
//!   incremental checking of live event streams, generic over any
//!   [`ConsistencyModel`] (re-exported by the `slin-monitor` facade
//!   crate);
//! * [`compose`] — phase projection and the apparatus of the
//!   **intra-object composition theorem** (Theorems 2, 3 and 5);
//! * [`gen`] — seeded random generators of well-formed (and adversarial)
//!   traces used by the test suites and benchmarks.
//!
//! # Quick start
//!
//! ```
//! use slin_adt::{Consensus, ConsInput, ConsOutput};
//! use slin_core::lin::LinChecker;
//! use slin_core::session::Checker;
//! use slin_trace::{Action, ClientId, PhaseId, Trace};
//!
//! // The linearizable trace from Section 2.2 of the paper:
//! // c1 proposes 1, c2 proposes 2, c2 decides 2, c1 decides 2.
//! let (c1, c2) = (ClientId::new(1), ClientId::new(2));
//! let ph = PhaseId::FIRST;
//! let t: Trace<Action<ConsInput, ConsOutput, ()>> = Trace::from_actions(vec![
//!     Action::invoke(c1, ph, ConsInput::propose(1)),
//!     Action::invoke(c2, ph, ConsInput::propose(2)),
//!     Action::respond(c2, ph, ConsInput::propose(2), ConsOutput::decide(2)),
//!     Action::respond(c1, ph, ConsInput::propose(1), ConsOutput::decide(2)),
//! ]);
//! let cons = Consensus::new();
//! let mut session = Checker::builder(LinChecker::new(&cons)).build();
//! assert!(session.check(&t).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classical;
pub mod compose;
pub mod engine;
pub mod gen;
pub mod initrel;
pub mod invariants;
pub mod lin;
pub mod model;
pub mod ops;
pub mod partition;
pub mod session;
pub mod slin;
pub mod stream;

pub use classical::ClassicalChecker;
pub use engine::{CheckerEngine, CommitMask, EngineError, SearchBudget, SearchStats};
pub use initrel::{ConsensusInit, ExactInit, InitRelation};
pub use lin::{LinChecker, LinError, LinWitness};
pub use model::{ConsistencyModel, SplitVerdict};
pub use partition::{split_trace, PartitionReport, SplitOutcome, TracePartition};
pub use session::{CertPolicy, Checker, Session, SessionBuilder, Strategy, StrategyUsed, Verdict};
pub use slin::{SlinChecker, SlinError, SlinWitness};

use slin_adt::Adt;
use slin_trace::Action;

/// The action type of a concurrent object of ADT `T` with switch values `V`.
pub type ObjAction<T, V> = Action<<T as Adt>::Input, <T as Adt>::Output, V>;
