//! The common initialization relation `rinit` (paper Section 5.2).
//!
//! Speculation phases agree on a relation `rinit ⊆ Init × I_T*` mapping each
//! switch value to its set of *possible interpretations*: input histories,
//! all equivalent with respect to the ADT, one of which is a possible
//! linearization of the aborting phase's execution. The paper requires
//! `rinit⁻¹` to be a total onto function — every history is the
//! interpretation of some value.
//!
//! Checking speculative linearizability quantifies **universally** over
//! interpretations of init actions and **existentially** over
//! interpretations of abort actions (Definition 19), so a checker needs a
//! finite set of candidate histories per value:
//!
//! * for [`ExactInit`] (the Section 6 formalization, `rinit(h) = {h}`) the
//!   candidate set is exact, so the checker decides the definition;
//! * for [`ConsensusInit`] (the Section 2.4 mapping, `rinit(v)` = all
//!   histories starting with `propose(v)`) the image is infinite and
//!   [`InitRelation::candidates`] enumerates a *bounded adversarial* set:
//!   the singleton `[p(v)]` plus every two-element extension `[p(v), i]` by
//!   an input occurring in the trace. Because consensus histories collapse
//!   to the same ADT state after their first proposal (they are equivalent —
//!   see [`slin_adt::histories_equivalent`]), longer interpretations only
//!   add valid inputs and longer forced prefixes already witnessed by the
//!   two-element candidates; the workspace tests cross-check this
//!   enumeration against the paper's exact case analysis (invariants I1–I5).

use slin_adt::consensus::{ConsInput, Value};
use std::fmt::Debug;
use std::hash::Hash;

/// Context available when enumerating candidate interpretations: the inputs
/// occurring in the trace under scrutiny.
#[derive(Debug, Clone, Default)]
pub struct CandidateContext<I> {
    inputs: Vec<I>,
}

impl<I: Clone + Eq> CandidateContext<I> {
    /// Builds a context from the distinct inputs of a trace (first
    /// occurrence order, duplicates removed).
    pub fn new(inputs: Vec<I>) -> Self {
        let mut distinct: Vec<I> = Vec::new();
        for i in inputs {
            if !distinct.contains(&i) {
                distinct.push(i);
            }
        }
        CandidateContext { inputs: distinct }
    }

    /// The distinct inputs observed in the trace.
    pub fn inputs(&self) -> &[I] {
        &self.inputs
    }
}

/// The common relation `rinit` between switch values and input histories.
pub trait InitRelation<I> {
    /// The switch value type `Init`.
    type Value: Clone + Eq + Hash + Debug;

    /// Whether `(value, history) ∈ rinit`.
    fn contains(&self, value: &Self::Value, history: &[I]) -> bool;

    /// A finite set of candidate interpretations of `value`, used to
    /// instantiate the **universal** quantifier of Definition 19 over init
    /// actions. Must be a subset of `rinit(value)`; when `rinit(value)` is
    /// finite the set should be exhaustive (making the check exact), and
    /// otherwise it should cover the adversarial corners (shortest
    /// interpretation, and agreeing/diverging extensions).
    fn candidates(&self, value: &Self::Value, ctx: &CandidateContext<I>) -> Vec<Vec<I>>;

    /// Histories in `rinit(value)` that extend `prefix`, used to instantiate
    /// the **existential** quantifier over abort actions: the abort history
    /// must extend every commit history (Abort-Order), so the checker asks
    /// the relation for members extending the longest one. Extra elements
    /// are drawn from `ctx`. The default filters [`InitRelation::candidates`]
    /// and appends one-input extensions of `prefix`.
    fn extensions(
        &self,
        value: &Self::Value,
        prefix: &[I],
        ctx: &CandidateContext<I>,
    ) -> Vec<Vec<I>>
    where
        I: Clone + Eq,
    {
        let mut out: Vec<Vec<I>> = self
            .candidates(value, ctx)
            .into_iter()
            .filter(|h| slin_trace::seq::is_prefix(prefix, h))
            .collect();
        if self.contains(value, prefix) {
            out.push(prefix.to_vec());
        }
        for i in ctx.inputs() {
            let mut h = prefix.to_vec();
            h.push(i.clone());
            if self.contains(value, &h) {
                out.push(h);
            }
        }
        out.dedup();
        out
    }

    /// Projects a switch value onto one independence class: the value whose
    /// interpretations vouch for exactly the `keep`-classified inputs of the
    /// original's. `None` (the default) declares the relation un-keyed, which
    /// disables the keyed phase-trace fast path — only relations whose
    /// candidate sets factor per class (the switch-independence certificate's
    /// obligation (a)) should override this. [`ExactInit`] is the repo's
    /// keyed init relation: values are histories, so projection is history
    /// filtering.
    fn project_keyed(&self, value: &Self::Value, keep: &dyn Fn(&I) -> bool) -> Option<Self::Value> {
        let _ = (value, keep);
        None
    }
}

/// The exact relation of the Section 6 formalization: switch values *are*
/// histories and `rinit(h) = {h}`.
///
/// # Example
///
/// ```
/// use slin_core::initrel::{CandidateContext, ExactInit, InitRelation};
/// let r = ExactInit::new();
/// let h = vec![1u8, 2];
/// assert!(r.contains(&h, &h));
/// assert!(!r.contains(&h, &[1u8]));
/// assert_eq!(r.candidates(&h, &CandidateContext::default()), vec![h.clone()]);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactInit;

impl ExactInit {
    /// Creates the exact (singleton) relation.
    pub fn new() -> Self {
        ExactInit
    }
}

impl<I: Clone + Eq + Hash + Debug> InitRelation<I> for ExactInit {
    type Value = Vec<I>;

    fn contains(&self, value: &Self::Value, history: &[I]) -> bool {
        value.as_slice() == history
    }

    fn candidates(&self, value: &Self::Value, _ctx: &CandidateContext<I>) -> Vec<Vec<I>> {
        vec![value.clone()]
    }

    fn project_keyed(&self, value: &Self::Value, keep: &dyn Fn(&I) -> bool) -> Option<Self::Value> {
        Some(value.iter().filter(|i| keep(i)).cloned().collect())
    }
}

/// The consensus mapping of Section 2.4: a switch value `v` of a client `c`
/// denotes the set of histories whose first invocation is `propose(v)` from
/// a client other than `c`, containing only invocations from clients other
/// than `c` — all equivalent, since the first proposal determines the
/// decided value.
///
/// Because histories are client-less input sequences, "invocations from
/// clients other than `c`" is modelled by extending interpretations with
/// *fresh* proposal values (values occurring nowhere in the trace): these
/// stand for proposals of clients that do not execute in the phase. The
/// adversarial corners of the universal quantifier are then the shortest
/// interpretation `[p(v)]`, two interpretations agreeing on a fresh
/// extension (longest forced common prefix), and interpretations diverging
/// on distinct fresh extensions (empty extra common prefix).
#[derive(Debug, Clone, Copy, Default)]
pub struct ConsensusInit;

impl ConsensusInit {
    /// Creates the consensus `rinit` mapping.
    pub fn new() -> Self {
        ConsensusInit
    }

    /// Two proposal values occurring nowhere in the observed inputs.
    fn fresh_values(ctx: &CandidateContext<ConsInput>) -> [Value; 2] {
        let max = ctx
            .inputs()
            .iter()
            .map(|i| i.value().get())
            .max()
            .unwrap_or(0);
        [Value::new(max + 1), Value::new(max + 2)]
    }
}

impl InitRelation<ConsInput> for ConsensusInit {
    type Value = Value;

    fn contains(&self, value: &Self::Value, history: &[ConsInput]) -> bool {
        history.first().is_some_and(|i| i.value() == *value)
    }

    fn candidates(
        &self,
        value: &Self::Value,
        ctx: &CandidateContext<ConsInput>,
    ) -> Vec<Vec<ConsInput>> {
        let head = ConsInput::propose(*value);
        let [f1, f2] = Self::fresh_values(ctx);
        vec![
            vec![head],
            vec![head, ConsInput::propose(f1)],
            vec![head, ConsInput::propose(f2)],
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_relation_is_singleton() {
        let r = ExactInit::new();
        let h = vec!['a', 'b'];
        assert!(r.contains(&h, &['a', 'b']));
        assert!(!r.contains(&h, &['a']));
        assert_eq!(r.candidates(&h, &CandidateContext::default()).len(), 1);
    }

    #[test]
    fn consensus_relation_requires_matching_head() {
        let r = ConsensusInit::new();
        let v = Value::new(4);
        assert!(r.contains(&v, &[ConsInput::propose(4), ConsInput::propose(9)]));
        assert!(!r.contains(&v, &[ConsInput::propose(9), ConsInput::propose(4)]));
        assert!(!r.contains(&v, &[]));
    }

    #[test]
    fn consensus_candidates_use_fresh_extensions() {
        let r = ConsensusInit::new();
        let ctx = CandidateContext::new(vec![ConsInput::propose(1), ConsInput::propose(2)]);
        let cands = r.candidates(&Value::new(7), &ctx);
        assert_eq!(cands.len(), 3);
        assert!(cands.iter().all(|h| r.contains(&Value::new(7), h)));
        // Extensions are fresh: they collide with no observed input.
        for h in &cands {
            for i in &h[1..] {
                assert!(!ctx.inputs().contains(i), "{i:?} not fresh");
            }
        }
        // All candidates are pairwise equivalent w.r.t. the consensus ADT.
        use slin_adt::{histories_equivalent, Consensus};
        for a in &cands {
            for b in &cands {
                assert!(histories_equivalent(&Consensus::new(), a, b));
            }
        }
    }

    #[test]
    fn consensus_extensions_extend_the_prefix() {
        let r = ConsensusInit::new();
        let ctx = CandidateContext::new(vec![ConsInput::propose(4), ConsInput::propose(9)]);
        let prefix = vec![ConsInput::propose(4), ConsInput::propose(9)];
        let exts = r.extensions(&Value::new(4), &prefix, &ctx);
        assert!(exts.iter().all(|h| r.contains(&Value::new(4), h)));
        assert!(exts.iter().all(|h| slin_trace::seq::is_prefix(&prefix, h)));
        // The prefix itself is a valid abort history here.
        assert!(exts.contains(&prefix));
        // No extension exists when the prefix head disagrees with the value.
        let none = r.extensions(&Value::new(9), &prefix, &ctx);
        assert!(none.is_empty());
    }

    #[test]
    fn exact_extensions_are_the_value_itself() {
        let r = ExactInit::new();
        let v = vec![1u8, 2, 3];
        let ctx = CandidateContext::new(vec![1u8, 2, 3]);
        assert_eq!(r.extensions(&v, &[1u8, 2], &ctx), vec![v.clone()]);
        assert!(r.extensions(&v, &[2u8], &ctx).is_empty());
    }

    #[test]
    fn exact_projection_filters_the_history() {
        let r = ExactInit::new();
        let v = vec![1u8, 2, 3, 2];
        let even = r.project_keyed(&v, &|i| i % 2 == 0).unwrap();
        assert_eq!(even, vec![2, 2]);
        // Projection commutes with the candidate set (certificate
        // obligation (a), the exact case).
        let ctx = CandidateContext::default();
        assert_eq!(r.candidates(&even, &ctx), vec![vec![2u8, 2]]);
    }

    #[test]
    fn consensus_relation_is_not_keyed() {
        let r = ConsensusInit::new();
        assert!(r.project_keyed(&Value::new(1), &|_| true).is_none());
    }

    #[test]
    fn candidate_context_dedups() {
        let ctx = CandidateContext::new(vec![1u8, 1, 2]);
        assert_eq!(ctx.inputs(), &[1, 2]);
    }
}
