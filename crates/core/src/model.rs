//! The [`ConsistencyModel`] abstraction: one chain-search judgment, many
//! consistency criteria.
//!
//! Three PRs of growth left the checker surface fragmented: `lin` and
//! `slin` each carried their own copy of the partition fan-out, witness
//! merge and report assembly, and the streaming monitor duplicated the
//! pair again. This module captures **what the shared engine actually
//! needs from a criterion** — how to validate a trace against its
//! signature, how to run the monolithic search, what the per-partition
//! unit of work is, and how to assemble a witness from a merged commit
//! chain — so that [`crate::lin::LinChecker`], [`crate::slin::SlinChecker`]
//! and the streaming [`crate::stream::Monitor`] are all thin
//! instantiations of the same generic machinery (mirroring how
//! refinement-based frameworks present a single checking judgment over
//! many memory/consistency models).
//!
//! The generic entry points are [`check_split`] (the partition
//! orchestration both checkers used to duplicate) and the
//! [`crate::session`] facade built on top of it. The streaming-specific
//! hooks live in the [`crate::stream::StreamModel`] sub-trait.
//!
//! # Model ownership
//!
//! A model **owns** its ADT behind an [`Arc`] (every repo ADT is a
//! zero-sized unit struct, so the sharing is free): checkers, sessions
//! and monitors are `'static` and can live in long-lived tenant tables —
//! the daemon setting ROADMAP item 2 asks for. [`ConsistencyModel::adt`]
//! hands a plain borrow back for transient use, and
//! [`ConsistencyModel::adt_shared`] clones the `Arc` so long-lived
//! consumers (the monitor's shard table) hold their own handle without
//! borrowing the model itself. The pre-PR-7 borrow-based constructors
//! survive as `#[deprecated]` cloning wrappers.

use crate::engine::{Chain, SearchStats};
use crate::ops;
use crate::partition::{self, PartitionReport, SplitOutcome};
use crate::ObjAction;
use slin_adt::Adt;
use slin_trace::{PhaseId, Trace};
use std::fmt::Debug;
use std::sync::Arc;

/// A consistency criterion decided by the shared chain-search engine.
///
/// `V` is the switch-value type of the traces the model checks (plain
/// linearizability is indifferent to it — switch actions are errors —
/// while speculative linearizability fixes it to its init relation's
/// value type). Implementations: [`crate::lin::LinChecker`] and
/// [`crate::slin::SlinChecker`].
///
/// The contract every implementation upholds: [`check_monolithic`],
/// [`check_partition`] and [`check_remerge`] agree with the model's
/// canonical monolithic verdict, and the witness-assembly hooks
/// reconstruct **byte-identical** witnesses when fed the merged chain the
/// engine-order replay produces (see [`crate::partition`] for why the
/// merge is exact).
///
/// [`check_monolithic`]: ConsistencyModel::check_monolithic
/// [`check_partition`]: ConsistencyModel::check_partition
/// [`check_remerge`]: ConsistencyModel::check_remerge
pub trait ConsistencyModel<V>: Sized {
    /// The abstract data type whose outputs the criterion must explain.
    type Adt: Adt;
    /// The witness payload of a successful check (`LinWitness` /
    /// `SlinReport`).
    type Witness: Clone + PartialEq + Debug;
    /// Why a check failed (`LinError` / `SlinError`).
    type Error: Clone + PartialEq + Debug;

    /// The checked ADT.
    fn adt(&self) -> &Self::Adt;

    /// A shared handle on the checked ADT — what long-lived consumers
    /// (the monitor's shard table, a daemon tenant entry) hold so they
    /// never borrow the model itself.
    fn adt_shared(&self) -> Arc<Self::Adt>;

    /// The configured search node budget (per partition / interpretation).
    fn budget(&self) -> usize;

    /// Configured worker threads (0 = one per core).
    fn threads(&self) -> usize;

    /// Overrides the search node budget (the [`crate::session`] builder's
    /// hook).
    fn set_budget(&mut self, budget: usize);

    /// Overrides the worker-thread count (the [`crate::session`] builder's
    /// hook).
    fn set_threads(&mut self, threads: usize);

    /// The speculation phase `(m, n)` for phase-signature criteria, `None`
    /// for plain object criteria. Drives the incremental well-formedness
    /// tracker of the streaming monitor.
    fn phase_bounds(&self) -> Option<(PhaseId, PhaseId)>;

    /// The resolved worker-thread count (0 becomes one per available
    /// core).
    fn effective_threads(&self) -> usize {
        let configured = self.threads();
        if configured > 0 {
            configured
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// Validates the whole trace against the model's signature and
    /// well-formedness discipline (lin: switch-free + well-formed; slin:
    /// phase signature + phase-well-formed + interpretation cap).
    fn validate(&self, t: &Trace<ObjAction<Self::Adt, V>>) -> Result<(), Self::Error>;

    /// The canonical monolithic check (validation included), with the
    /// engine counters the model's legacy entry point reported.
    fn check_monolithic(
        &self,
        t: &Trace<ObjAction<Self::Adt, V>>,
    ) -> (Result<Self::Witness, Self::Error>, SearchStats);

    /// The per-partition unit of work on one sub-trace of an
    /// already-validated trace.
    fn check_partition(
        &self,
        sub: &Trace<ObjAction<Self::Adt, V>>,
    ) -> (Result<Self::Witness, Self::Error>, SearchStats);

    /// The monolithic re-derivation run when the witness merge bails
    /// (cross-partition bound coupling); the verdict is already decided by
    /// the partition verdicts.
    fn check_remerge(
        &self,
        t: &Trace<ObjAction<Self::Adt, V>>,
    ) -> (Result<Self::Witness, Self::Error>, SearchStats);

    /// Projects a witness onto its commit chain (sub-trace indices) — the
    /// partition merge's input.
    fn commit_chain(w: &Self::Witness) -> &[(usize, Vec<<Self::Adt as Adt>::Input>)];

    /// Assembles the model's witness from a merged commit chain (original
    /// trace indices) and the partition report accumulated so far.
    fn witness_from_chain(
        &self,
        chain: Chain<<Self::Adt as Adt>::Input>,
        report: &PartitionReport,
    ) -> Self::Witness;

    /// Re-wraps the witness produced by [`ConsistencyModel::check_remerge`]
    /// with the partitioned path's accounting (`interpretations_pre` is the
    /// interpretation counter before the re-run's counters were absorbed).
    fn witness_from_remerge(
        &self,
        mono: Self::Witness,
        interpretations_pre: usize,
        report: &PartitionReport,
    ) -> Self::Witness;

    /// Short type name of the init relation the model interprets switch
    /// values with, or `None` for criteria without switches. A
    /// switch-independence certificate (`slin-cert/v2`) must name this
    /// relation to unlock the keyed path.
    fn init_relation_name(&self) -> Option<&'static str> {
        None
    }

    /// The **keyed** check of a trace that may contain switch actions:
    /// classifies switches per independence class (candidate values and
    /// pending inputs both) and checks each class with its projected switch
    /// seed, byte-identical to [`ConsistencyModel::check_monolithic`].
    ///
    /// Returns `None` when the model has no keyed path (plain
    /// linearizability rejects switches outright) — the caller then uses
    /// the identity fallback. Only sound when a verified switch certificate
    /// covers `(adt, partitioner, init relation)`; the *session* enforces
    /// that gate, this hook just does the work.
    fn check_keyed<P>(
        &self,
        partitioner: &P,
        t: &Trace<ObjAction<Self::Adt, V>>,
    ) -> Option<SplitVerdict<Self::Witness, Self::Error>>
    where
        Self: Sync,
        Self::Adt: Sync,
        <Self::Adt as Adt>::Input: Ord + Send + Sync,
        <Self::Adt as Adt>::Output: Sync,
        Self::Witness: Send,
        Self::Error: Send,
        V: Clone + Sync,
        P: slin_adt::Partitioner<Self::Adt>,
    {
        let _ = (partitioner, t);
        None
    }
}

/// The outcome of [`check_split`]: the model verdict plus the partition
/// accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitVerdict<W, E> {
    /// The model's verdict — byte-identical (witness included) to the
    /// monolithic path.
    pub verdict: Result<W, E>,
    /// Partition count, fallback/remerge engagement, merged engine
    /// counters.
    pub report: PartitionReport,
    /// The interpretation counter before any merge-bail re-run was
    /// absorbed (what the speculative checker reports as
    /// `interpretations_checked`).
    pub(crate) interpretations_pre: usize,
}

/// P-compositional checking over an already-computed [`SplitOutcome`] —
/// the one generic code path behind `LinChecker::check_partitioned`,
/// `SlinChecker::check_partitioned` and the streaming monitor's report
/// derivation.
///
/// `split.parts` must partition `t`'s actions in trace order with correct
/// `index_map`s, exactly as [`partition::split_trace`] produces; verdicts
/// and witnesses are then byte-identical to
/// [`ConsistencyModel::check_monolithic`] (see [`crate::partition`] for
/// the argument). The search node budget applies per partition, so a
/// trace the monolithic search gives up on may well be decided here.
pub fn check_split<V, K, M>(
    model: &M,
    split: &SplitOutcome<M::Adt, V, K>,
    t: &Trace<ObjAction<M::Adt, V>>,
) -> SplitVerdict<M::Witness, M::Error>
where
    M: ConsistencyModel<V> + Sync,
    M::Adt: Sync,
    <M::Adt as Adt>::Input: Ord + Send + Sync,
    <M::Adt as Adt>::Output: Sync,
    M::Witness: Send,
    M::Error: Send,
    V: Sync,
    K: Sync,
{
    // The single-partition path delegates whole: `check_monolithic`
    // validates internally, so validating here first would run the
    // (potentially expensive — slin enumerates init candidates) gate
    // twice per check.
    if split.parts.len() <= 1 {
        let (verdict, stats) = model.check_monolithic(t);
        return SplitVerdict {
            verdict,
            report: PartitionReport {
                partitions: split.parts.len(),
                fallback: split.fallback,
                remerged: false,
                stats,
            },
            interpretations_pre: stats.interpretations,
        };
    }
    // Multi-partition: validate the whole trace once up front (sub-traces
    // of a valid trace are valid, but rejection indices must be the
    // monolithic ones).
    if let Err(e) = model.validate(t) {
        return SplitVerdict {
            verdict: Err(e),
            report: PartitionReport {
                partitions: split.parts.len(),
                fallback: split.fallback,
                remerged: false,
                stats: SearchStats::default(),
            },
            interpretations_pre: 0,
        };
    }

    let threads = model.effective_threads().min(split.parts.len());
    let bounds = ops::input_multisets::<M::Adt, V>(t);
    let (merged, mut report) = partition::search_partitions(
        &split.parts,
        threads,
        &bounds,
        |sub| model.check_partition(sub),
        |(verdict, stats)| match verdict {
            Ok(w) => (*stats, Ok(M::commit_chain(w))),
            Err(e) => (*stats, Err(e)),
        },
    );
    let interpretations_pre = report.stats.interpretations;
    match merged {
        Err(e) => SplitVerdict {
            verdict: Err(e),
            report,
            interpretations_pre,
        },
        Ok(Some(chain)) => SplitVerdict {
            verdict: Ok(model.witness_from_chain(chain, &report)),
            report,
            interpretations_pre,
        },
        Ok(None) => {
            // A cross-partition bound blocked a partition's next step: the
            // monolithic first witness is not predictable from the
            // partition witnesses, so re-derive it (the verdict — all
            // partitions passing — is already decided).
            let (rerun, rerun_stats) = model.check_remerge(t);
            report.remerged = true;
            report.stats.absorb(&rerun_stats);
            SplitVerdict {
                verdict: rerun
                    .map(|mono| model.witness_from_remerge(mono, interpretations_pre, &report)),
                report,
                interpretations_pre,
            }
        }
    }
}

/// [`check_split`] over a fresh split along `partitioner` — the generic
/// form of the legacy `check_partitioned_with_report` pair.
pub fn check_partitioned<V, M, P>(
    model: &M,
    partitioner: &P,
    t: &Trace<ObjAction<M::Adt, V>>,
) -> SplitVerdict<M::Witness, M::Error>
where
    M: ConsistencyModel<V> + Sync,
    M::Adt: Sync,
    <M::Adt as Adt>::Input: Ord + Send + Sync,
    <M::Adt as Adt>::Output: Sync,
    M::Witness: Send,
    M::Error: Send,
    V: Clone + Sync,
    P: slin_adt::Partitioner<M::Adt>,
{
    let split = partition::split_trace(partitioner, t);
    check_split(model, &split, t)
}
