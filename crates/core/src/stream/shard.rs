//! Per-shard incremental engine state.
//!
//! A [`ShardState`] owns one independence class of the stream (or the whole
//! stream, for the identity shard) and keeps the check *incremental*: the
//! key data structure is the **frontier** — a bounded, deterministic set of
//! complete chain-search configurations, each one a genuine witness that
//! the shard's sub-trace ingested so far is linearizable. Events update the
//! frontier instead of re-running [`CheckerEngine::run`] on the growing
//! prefix:
//!
//! * an **invocation** only widens future validity bounds, so every
//!   frontier configuration stays complete — O(1);
//! * a **response** (a new commit) extends each configuration *at the tail*
//!   of its chain: a direct-commit pass first (the common case), then a
//!   bounded search interleaving extra inputs from the pool, collecting the
//!   surviving configurations deduplicated on the engine's own memo key —
//!   reached ADT state plus consumed-input multiset — so interchangeable
//!   configurations never crowd the frontier.
//!
//! Tail extension is *sound* (a surviving configuration is a witness) but
//! deliberately not complete: the first monolithic witness of the longer
//! prefix may place the new commit *earlier* in the chain than every
//! configuration the frontier kept, and the frontier is capped
//! ([`ShardConfig::frontier_cap`]). Whenever the frontier prunes empty, the
//! shard falls back to one **bounded re-search** — fresh
//! [`CheckerEngine`] runs over the retained window from the retained seeds
//! — which either refills the frontier (the exact rolling verdict stays
//! "ok") or proves the violation. The re-search *enumerates* terminal
//! configurations (the leaf oracle vetoes early leaves), so the refilled
//! frontier is diverse and the next commits extend cheaply again. This
//! frontier-plus-fallback loop is what makes every rolling verdict exact
//! while keeping the common case (append-only growth) cheap.
//!
//! # Bounded-window GC and why it stays exact
//!
//! [`ShardState::maybe_retire`] retires a window once it exceeds the
//! configured size *and* the shard is quiescent (every invocation
//! responded). The engine's memoisation argument says a configuration's
//! entire future depends only on its `(state, consumed-input multiset)`
//! key — so the **complete set** of reachable terminal keys is a lossless
//! summary of the retired prefix. Retirement therefore runs one complete
//! enumeration (cheap at a quiescent cut: every invocation is consumed by
//! its own commit, so no spare pool occurrences exist and the set is
//! small) and keeps **all** enumerated configurations as search seeds; if
//! the enumeration is truncated (more than [`ShardConfig::frontier_cap`]
//! configurations, or a budget trip), retirement is *skipped* rather than
//! allowed to lose information. Verdicts after GC thus remain exact;
//! only the *witness histories* become window-relative (the retired
//! prefix's events are dropped, which is what bounds memory by the window
//! and the input alphabet — O(window · alphabet) worst case for the
//! per-index bound snapshots, like the batch checkers — independent of
//! stream length).

use crate::engine::{Chain, CheckerEngine, EngineError, SearchBudget, SearchSeed, SearchStats};
use crate::ops::Commit;
use crate::ObjAction;
use slin_adt::Adt;
use slin_trace::{Action, Multiset, Trace};
use std::collections::HashSet;

/// Deduplication set over the engine's memo key data: reached ADT state
/// plus sorted consumed-input multiset.
type MemoKeySet<T> = HashSet<(<T as Adt>::State, Vec<(<T as Adt>::Input, usize)>)>;

/// Per-shard tuning knobs (copied out of the monitor's configuration).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ShardConfig {
    /// Node budget of a fallback re-search (the engine's budget unit).
    pub budget: usize,
    /// Maximum number of frontier configurations retained per shard.
    pub frontier_cap: usize,
    /// Node budget of one tail-extension pass (all configurations
    /// together); exhausting it forces a fallback re-search.
    pub extension_budget: usize,
}

/// Rolling verdict of one shard, exact at every event (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ShardStatus {
    /// Every ingested prefix of this shard is linearizable.
    Ok,
    /// The shard's sub-trace is not linearizable (permanent: violations
    /// survive arbitrary extensions of the trace).
    Violated,
    /// A fallback re-search exhausted its node budget; the rolling verdict
    /// is unknown until a later search succeeds (re-attempted at quiescent
    /// points, not on every commit).
    BudgetExhausted,
}

/// Counters aggregated into [`super::ShardSummary`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct ShardCounters {
    pub events: usize,
    pub commits: usize,
    pub extension_searches: usize,
    pub fallback_searches: usize,
    pub frontier_peak: usize,
    pub retired_events: usize,
}

/// One complete chain-search configuration: the terminal history of a
/// witness chain for everything committed so far (window-relative), with
/// its replayed ADT state and consumed-input multiset (the engine's memo
/// key data).
#[derive(Debug)]
struct FrontierCfg<T: Adt> {
    hist: Vec<T::Input>,
    state: T::State,
    used: Multiset<T::Input>,
}

// Manual impl: the derive would demand `T: Clone`.
impl<T: Adt> Clone for FrontierCfg<T> {
    fn clone(&self) -> Self {
        FrontierCfg {
            hist: self.hist.clone(),
            state: self.state.clone(),
            used: self.used.clone(),
        }
    }
}

impl<T: Adt> FrontierCfg<T> {
    fn from_seed(seed: &SearchSeed<T>) -> Self {
        FrontierCfg {
            hist: seed.history.clone(),
            state: seed.state.clone(),
            used: seed.used.clone(),
        }
    }

    /// The deduplication key: two configurations agreeing on it are
    /// interchangeable for every future event (the engine memoises on
    /// exactly this data).
    fn memo_key(&self) -> (T::State, Vec<(T::Input, usize)>)
    where
        T::Input: Ord,
    {
        let mut used: Vec<(T::Input, usize)> =
            self.used.iter().map(|(e, c)| (e.clone(), c)).collect();
        used.sort();
        (self.state.clone(), used)
    }
}

/// The incremental per-shard checker state. See the module docs.
pub(crate) struct ShardState<'a, T: Adt, V> {
    adt: &'a T,
    cfg: ShardConfig,
    /// The retained window of the shard's sub-trace (everything since the
    /// last GC retirement).
    pub sub: Trace<ObjAction<T, V>>,
    /// Global stream index of each window action.
    pub index_map: Vec<usize>,
    /// Cumulative input multisets per window index (length `sub.len() + 1`),
    /// every entry including the retired base inputs.
    input_ms: Vec<Multiset<T::Input>>,
    /// Window commits; `Commit::index` is the *window* sub-trace index.
    commits: Vec<Commit<T>>,
    /// The retained summary of the retired prefix: the complete set of
    /// terminal configurations at the last retirement cut (one empty seed
    /// before any retirement). Seed histories are always empty — the
    /// retired events are dropped; only `(state, used)` survives.
    seeds: Vec<SearchSeed<T>>,
    frontier: Vec<FrontierCfg<T>>,
    status: ShardStatus,
    /// Window invocations still awaiting a response (GC quiescence gate).
    pending: usize,
    pub counters: ShardCounters,
}

impl<'a, T, V> ShardState<'a, T, V>
where
    T: Adt,
    T::Input: Ord,
    V: Clone + PartialEq,
{
    pub fn new(adt: &'a T, cfg: ShardConfig) -> Self {
        Self::with_seeds(adt, cfg, vec![SearchSeed::initial(adt)], Multiset::new())
    }

    /// Rebuilds a shard from retained seeds and a base input multiset —
    /// how the monitor restarts shards after a collapse.
    pub fn with_seeds(
        adt: &'a T,
        cfg: ShardConfig,
        seeds: Vec<SearchSeed<T>>,
        base: Multiset<T::Input>,
    ) -> Self {
        assert!(!seeds.is_empty(), "a shard needs at least one seed");
        ShardState {
            adt,
            cfg,
            sub: Trace::new(),
            index_map: Vec::new(),
            input_ms: vec![base],
            commits: Vec::new(),
            frontier: seeds.iter().map(FrontierCfg::from_seed).collect(),
            seeds,
            status: ShardStatus::Ok,
            pending: 0,
            counters: ShardCounters::default(),
        }
    }

    pub fn status(&self) -> ShardStatus {
        self.status
    }

    /// The shard's total input pool (base plus window invocations).
    pub fn pool(&self) -> &Multiset<T::Input> {
        self.input_ms.last().expect("input_ms is never empty")
    }

    /// Ingests the next action of this shard's class. Returns
    /// `(frontier length after the event, whether a fallback re-search ran)`.
    pub fn ingest(&mut self, action: ObjAction<T, V>, global_index: usize) -> (usize, bool) {
        self.counters.events += 1;
        let window_index = self.sub.len();
        let mut next_ms = self.input_ms.last().expect("nonempty").clone();
        let mut fell_back = false;
        match &action {
            Action::Invoke { input, .. } => {
                next_ms.insert(input.clone());
                self.pending += 1;
            }
            Action::Respond {
                client,
                input,
                output,
                ..
            } => {
                self.pending = self.pending.saturating_sub(1);
                self.commits.push(Commit {
                    index: window_index,
                    client: *client,
                    input: input.clone(),
                    output: output.clone(),
                });
                self.counters.commits += 1;
            }
            Action::Switch { .. } => {
                // Switch actions reach a shard only inside an identity
                // partition whose verdict is already decided (lin) — they
                // are inert for the frontier machinery.
            }
        }
        self.sub.push(action);
        self.index_map.push(global_index);
        self.input_ms.push(next_ms);

        if self.sub[window_index].is_respond() && self.status != ShardStatus::Violated {
            fell_back = self.commit_arrived(window_index);
        }
        self.counters.frontier_peak = self.counters.frontier_peak.max(self.frontier.len());
        (self.frontier.len(), fell_back)
    }

    /// Extends the frontier past the commit at `window_index`; falls back
    /// to a bounded re-search when tail extension prunes the frontier
    /// empty. Returns whether the fallback ran.
    fn commit_arrived(&mut self, window_index: usize) -> bool {
        if self.status == ShardStatus::BudgetExhausted {
            // A previous re-search ran out of budget: retrying on every
            // commit would sink unbounded time into an intractable window.
            // Re-attempt only at quiescent points.
            if self.pending == 0 {
                self.fallback_research();
                return true;
            }
            return false;
        }
        self.counters.extension_searches += 1;
        let commit = self.commits.last().expect("just pushed").clone();
        debug_assert_eq!(commit.index, window_index);
        let bound = self.input_ms[window_index].clone();
        let pool = self.pool().clone();
        let hist_cap = self.sub.len();

        let mut next: Vec<FrontierCfg<T>> = Vec::new();
        let mut seen: MemoKeySet<T> = HashSet::new();
        let mut exhausted = false;
        // Pass 1 — the common case: the new response commits directly at
        // every configuration's tail, no extras needed. O(frontier).
        for cfg in &self.frontier {
            let mut used2 = cfg.used.clone();
            used2.insert(commit.input.clone());
            if !used2.is_subset_of(&bound) {
                continue;
            }
            let (state2, output) = self.adt.apply(&cfg.state, &commit.input);
            if output != commit.output {
                continue;
            }
            let mut hist = cfg.hist.clone();
            hist.push(commit.input.clone());
            let done = FrontierCfg {
                hist,
                state: state2,
                used: used2,
            };
            if seen.insert(done.memo_key()) {
                next.push(done);
            }
            if next.len() >= self.cfg.frontier_cap {
                break;
            }
        }
        // Pass 2 — only when no tail commits directly: interleave extras
        // from the pool under the bounded extension budget.
        if next.is_empty() {
            let mut nodes_left = self.cfg.extension_budget;
            for cfg in &self.frontier {
                if !extend_tail(
                    self.adt,
                    cfg,
                    &commit,
                    &bound,
                    &pool,
                    hist_cap,
                    &mut nodes_left,
                    &mut next,
                    &mut seen,
                    self.cfg.frontier_cap,
                ) {
                    exhausted = true;
                    break;
                }
                if next.len() >= self.cfg.frontier_cap {
                    break;
                }
            }
        }
        // Deterministic frontier order: lexicographic by history.
        next.sort_by(|a, b| a.hist.cmp(&b.hist));
        next.truncate(self.cfg.frontier_cap);

        if next.is_empty() || exhausted {
            self.fallback_research();
            return true;
        }
        self.frontier = next;
        self.status = ShardStatus::Ok;
        false
    }

    /// Enumerates terminal configurations of the retained window from the
    /// retained seeds: the leaf oracle vetoes every leaf until `cap` are
    /// collected, so one engine run per seed yields up to `cap` distinct
    /// terminal memo keys. Returns the collected configurations plus
    /// whether any run tripped its budget.
    fn enumerate_completions(&self, cap: usize) -> (Vec<FrontierCfg<T>>, bool) {
        let mut out: Vec<FrontierCfg<T>> = Vec::new();
        let mut seen: MemoKeySet<T> = HashSet::new();
        let mut budget_tripped = false;
        for seed in &self.seeds {
            let engine = CheckerEngine::new(
                self.adt,
                &self.commits,
                &self.input_ms,
                self.pool().clone(),
                SearchBudget::new(self.cfg.budget),
            )
            .with_extra_cap(self.sub.len());
            let adt = self.adt;
            let mut leaf = |_chain: &Chain<T::Input>, longest: &[T::Input]| {
                // Deduplicate on the memo key *before* counting toward the
                // cap: the engine never memoises terminal nodes, so
                // commuting chains revisit the same terminal key, and a
                // count of raw leaf visits would let `maybe_retire` stop
                // early and mistake a truncated enumeration for a complete
                // one (a lossy retirement).
                let mut state = seed.state.clone();
                let mut used = seed.used.clone();
                for input in longest {
                    state = adt.apply(&state, input).0;
                    used.insert(input.clone());
                }
                let cfg = FrontierCfg {
                    hist: longest.to_vec(),
                    state,
                    used,
                };
                if seen.insert(cfg.memo_key()) {
                    out.push(cfg);
                }
                if out.len() >= cap {
                    Some(())
                } else {
                    None
                }
            };
            let result = engine.run(seed.clone(), &mut leaf);
            budget_tripped |= matches!(result, Err(EngineError::BudgetExhausted { .. }));
            if out.len() >= cap {
                break;
            }
        }
        out.sort_by(|a, b| a.hist.cmp(&b.hist));
        (out, budget_tripped)
    }

    /// The documented fallback: bounded re-searches of the retained window
    /// from the retained seeds, deciding the rolling verdict exactly and
    /// refilling a **diverse** frontier (a single-configuration frontier
    /// would re-fall-back on almost every next commit).
    fn fallback_research(&mut self) {
        self.counters.fallback_searches += 1;
        let (configs, budget_tripped) = self.enumerate_completions(self.cfg.frontier_cap);
        if !configs.is_empty() {
            // Every collected configuration is a genuine witness (a budget
            // trip mid-enumeration does not taint the earlier ones).
            self.frontier = configs;
            self.status = ShardStatus::Ok;
        } else if budget_tripped {
            self.frontier.clear();
            self.status = ShardStatus::BudgetExhausted;
        } else {
            self.frontier.clear();
            self.status = ShardStatus::Violated;
        }
    }

    /// One full engine run over the retained window for the monitor's
    /// final report: seeds are tried in order and the first one admitting
    /// a completion wins (deterministic). Returns the winning seed's index
    /// and chain.
    #[allow(clippy::type_complexity)]
    pub fn window_search(
        &self,
    ) -> (
        Result<Option<(usize, Chain<T::Input>)>, EngineError>,
        SearchStats,
    ) {
        let mut stats = SearchStats::default();
        let mut budget_error: Option<EngineError> = None;
        for (k, seed) in self.seeds.iter().enumerate() {
            let engine = CheckerEngine::new(
                self.adt,
                &self.commits,
                &self.input_ms,
                self.pool().clone(),
                SearchBudget::new(self.cfg.budget),
            )
            .with_extra_cap(self.sub.len());
            match engine.run(seed.clone(), &mut |_, _| Some(())) {
                Ok(outcome) => {
                    stats.absorb(&outcome.stats);
                    if let Some((chain, ())) = outcome.solution {
                        return (Ok(Some((k, chain))), stats);
                    }
                }
                Err(e) => {
                    if budget_error.is_none() {
                        budget_error = Some(e);
                    }
                }
            }
        }
        match budget_error {
            Some(e) => (Err(e), stats),
            None => (Ok(None), stats),
        }
    }

    /// The seed the reported window chain extends (see
    /// [`ShardState::window_search`]).
    pub fn seed(&self, index: usize) -> &SearchSeed<T> {
        &self.seeds[index]
    }

    /// Bounded-window GC: when the retained window has grown past `window`
    /// events and is quiescent, enumerate the window's **complete**
    /// terminal-configuration set and retire the window into those seeds.
    /// Retirement is skipped — never lossy — when the enumeration is
    /// truncated (budget trip, or more than `frontier_cap`
    /// configurations). Returns the global indices of the retired events.
    pub fn maybe_retire(&mut self, window: usize) -> Option<Vec<usize>> {
        if self.sub.len() < window
            || self.pending != 0
            || self.status != ShardStatus::Ok
            || self.commits.is_empty()
        {
            return None;
        }
        // `cap + 1` detects truncation: exactly `cap + 1` collected means
        // the true set may be larger than what we would retain.
        let (configs, budget_tripped) = self.enumerate_completions(self.cfg.frontier_cap + 1);
        if budget_tripped || configs.is_empty() || configs.len() > self.cfg.frontier_cap {
            return None;
        }
        self.counters.retired_events += self.sub.len();
        let retired = std::mem::take(&mut self.index_map);
        self.sub = Trace::new();
        self.commits.clear();
        let base = self.input_ms.pop().expect("nonempty");
        self.input_ms = vec![base];
        // Retired histories are dropped (memory stays O(window + alphabet));
        // the seeds keep only the state and consumed-input multiset, which
        // is all the engine's moves and bounds consult.
        self.seeds = configs
            .iter()
            .map(|cfg| SearchSeed {
                history: Vec::new(),
                state: cfg.state.clone(),
                used: cfg.used.clone(),
            })
            .collect();
        self.frontier = self.seeds.iter().map(FrontierCfg::from_seed).collect();
        Some(retired)
    }
}

/// Tail extension of one configuration past a new commit: interleave extra
/// inputs (ascending, the engine's move order) and place the commit,
/// collecting every distinct surviving configuration. Returns `false` when
/// the node budget ran dry (the caller must fall back).
#[allow(clippy::too_many_arguments)]
fn extend_tail<T: Adt>(
    adt: &T,
    cfg: &FrontierCfg<T>,
    commit: &Commit<T>,
    bound: &Multiset<T::Input>,
    pool: &Multiset<T::Input>,
    hist_cap: usize,
    nodes_left: &mut usize,
    out: &mut Vec<FrontierCfg<T>>,
    seen: &mut MemoKeySet<T>,
    cap: usize,
) -> bool
where
    T::Input: Ord,
{
    let mut extras: Vec<T::Input> = Vec::new();
    extend_dfs(
        adt,
        cfg,
        &mut extras,
        &cfg.state.clone(),
        &cfg.used.clone(),
        commit,
        bound,
        pool,
        hist_cap,
        nodes_left,
        out,
        seen,
        cap,
    )
}

/// The recursive worker behind [`extend_tail`]: `extras` accumulates the
/// interleaved inputs in place (histories are materialised only for the
/// configurations that actually survive, keeping per-node work
/// history-length-free).
#[allow(clippy::too_many_arguments)]
fn extend_dfs<T: Adt>(
    adt: &T,
    base: &FrontierCfg<T>,
    extras: &mut Vec<T::Input>,
    state: &T::State,
    used: &Multiset<T::Input>,
    commit: &Commit<T>,
    bound: &Multiset<T::Input>,
    pool: &Multiset<T::Input>,
    hist_cap: usize,
    nodes_left: &mut usize,
    out: &mut Vec<FrontierCfg<T>>,
    seen: &mut MemoKeySet<T>,
    cap: usize,
) -> bool
where
    T::Input: Ord,
{
    if *nodes_left == 0 {
        return false;
    }
    *nodes_left -= 1;
    if out.len() >= cap {
        return true;
    }

    // Move 1: place the commit now.
    let mut used2 = used.clone();
    used2.insert(commit.input.clone());
    if used2.is_subset_of(bound) {
        let (state2, output) = adt.apply(state, &commit.input);
        if output == commit.output {
            let done = FrontierCfg {
                hist: Vec::new(),
                state: state2,
                used: used2,
            };
            if seen.insert(done.memo_key()) {
                let mut hist = base.hist.clone();
                hist.extend(extras.iter().cloned());
                hist.push(commit.input.clone());
                out.push(FrontierCfg { hist, ..done });
            }
        }
    }

    // Move 2: interleave an extra input first. Extras escaping the new
    // commit's bound are pruned (the commit could never be placed after
    // them — the engine's own prune).
    if base.hist.len() + extras.len() < hist_cap {
        let mut candidates: Vec<T::Input> = pool
            .iter()
            .filter(|(e, c)| used.count(e) < *c)
            .map(|(e, _)| e.clone())
            .collect();
        candidates.sort();
        for e in candidates {
            let mut used2 = used.clone();
            used2.insert(e.clone());
            if !used2.is_subset_of(bound) {
                continue;
            }
            let (state2, _) = adt.apply(state, &e);
            extras.push(e);
            let alive = extend_dfs(
                adt, base, extras, &state2, &used2, commit, bound, pool, hist_cap, nodes_left, out,
                seen, cap,
            );
            extras.pop();
            if !alive {
                return false;
            }
        }
    }
    true
}
