//! Per-shard incremental engine state.
//!
//! A [`ShardState`] owns one independence class of the stream (or the whole
//! stream, for the identity shard) and keeps the check *incremental*: the
//! key data structure is the **frontier** — a bounded, deterministic set of
//! complete chain-search configurations, each one a genuine witness that
//! the shard's sub-trace ingested so far is linearizable. Events update the
//! frontier instead of re-running [`CheckerEngine::run`] on the growing
//! prefix:
//!
//! * an **invocation** only widens future validity bounds, so every
//!   frontier configuration stays complete — O(1) (the cumulative bound
//!   snapshot is a [`PersistentMultiset`], so "snapshot per index" is one
//!   O(1) structure-sharing clone, not an O(alphabet) deep copy);
//! * a **response** (a new commit) either is **absorbed** by a matching
//!   symbolic straggler completion recorded at an earlier epoch cut (see
//!   below) or extends each configuration *at the tail* of its chain: a
//!   direct-commit pass first (the common case), then a bounded search
//!   interleaving extra inputs from the pool, collecting the surviving
//!   configurations deduplicated on the engine's own memo key — reached
//!   ADT state, consumed-input multiset and remaining symbolic completions
//!   — so interchangeable configurations never crowd the frontier.
//!
//! Tail extension is *sound* (a surviving configuration is a witness) but
//! deliberately not complete: the first monolithic witness of the longer
//! prefix may place the new commit *earlier* in the chain than every
//! configuration the frontier kept, and the frontier is capped
//! ([`ShardConfig::frontier_cap`]). Whenever the frontier prunes empty, the
//! shard falls back to one **bounded re-search** over the retained window
//! from the retained seeds — which either refills the frontier (the exact
//! rolling verdict stays "ok") or proves the violation. The re-search
//! *enumerates* terminal configurations, so the refilled frontier is
//! diverse and the next commits extend cheaply again. This
//! frontier-plus-fallback loop is what makes every rolling verdict exact
//! while keeping the common case (append-only growth) cheap.
//!
//! # Epoch GC: retiring windows that never quiesce
//!
//! [`ShardState::maybe_retire`] retires a window once it exceeds the
//! configured size. The engine's memoisation argument says a
//! configuration's entire future depends only on its `(state,
//! consumed-input multiset)` key — so the **complete set** of reachable
//! terminal keys is a lossless summary of the retired prefix. Retirement
//! runs one complete enumeration and keeps **all** enumerated
//! configurations as search seeds.
//!
//! At a **quiescent** cut (every invocation responded) the summary is
//! exactly that pair: every pool occurrence is consumed by its own commit,
//! so terminal configurations interleave no extras and the set is small.
//!
//! A never-quiescent stream — one invocation that never responds is enough
//! — used to pin the window forever. **Epoch cuts** (on by default,
//! [`ShardConfig::epoch_cuts`]) retire anyway, at window multiples, by
//! completing stragglers *symbolically*: the enumeration records every
//! interleaved extra input together with the output the ADT produced for
//! it as a **symbolic completion** `(input, output)` in the terminal
//! configuration's `sym` multiset. A straggler's response arriving *after*
//! the cut is then explained in O(1) — any configuration holding a
//! matching completion absorbs the commit by designating the pre-cut extra
//! as its commit entry (valid because the pre-cut consumed inputs are
//! inside every post-cut validity bound, which is monotone). A straggler
//! whose input was *not* interleaved pre-cut needs no completion at all:
//! its pool occurrence survives into the base, and the post-cut search
//! places the commit directly. Stragglers that never respond leave their
//! completions unconsumed — harmless. Quiescent cuts are the degenerate
//! case: their terminal configurations record no completions, so the
//! pre-epoch behavior (and every existing verdict) is reproduced exactly.
//!
//! Re-searches from a seed carrying symbolic completions first absorb
//! greedily: the earliest window commit matching each completion is
//! dropped from the commit list (complete — a witness committing such a
//! commit in-window converts into one absorbing it, with the identical
//! terminal key, and absorbing the *earliest* match is optimal because
//! later matches have larger bounds). The batch engine then runs unchanged
//! on the filtered commit list.
//!
//! Retirement is **skipped** rather than allowed to lose information when
//! the enumeration is truncated (more than [`ShardConfig::frontier_cap`]
//! configurations, or a budget trip) — so verdicts after GC remain exact,
//! and only the *witness histories* become window-relative. The price on
//! hostile streams is that a window whose summary outgrows the cap pins
//! its memory. [`ShardConfig::epoch_force`] trades exactness for the
//! memory bound instead: a truncated cut retires from the (incomplete)
//! frontier, the shard is marked *lossy*, and every later would-be
//! `Violated` verdict is downgraded to [`ShardStatus::BudgetExhausted`] —
//! a missing completion can no longer prove a violation, only a found
//! completion still proves "ok".

use crate::engine::{
    Chain, CheckerEngine, CommitMask, EngineError, SearchBudget, SearchSeed, SearchStats,
};
use crate::ops::Commit;
use crate::ObjAction;
use slin_adt::Adt;
use slin_obs::{CutOutcome, GcCutEvent, Obs, ShardIngestEvent};
use slin_trace::{Action, PersistentMultiset, Trace};
use std::collections::{HashSet, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Symbolic straggler completions: the multiset of `(input, output)` pairs
/// a configuration interleaved as extras before an epoch cut, available to
/// absorb matching post-cut responses.
type SymSet<T> = PersistentMultiset<(<T as Adt>::Input, <T as Adt>::Output)>;

/// Deduplication set over the frontier's memo key: reached ADT state,
/// consumed-input multiset, remaining symbolic completions. Persistent
/// multisets hash through their cached commutative fingerprint, so one key
/// is O(1) to build.
type MemoKeySet<T> = HashSet<(
    <T as Adt>::State,
    PersistentMultiset<<T as Adt>::Input>,
    SymSet<T>,
)>;

/// The raw events (global index, action) of one GC-retired window, kept
/// for forensic witness reconstruction.
pub(crate) type ArchivedWindow<T, V> = Vec<(usize, ObjAction<T, V>)>;

/// Per-shard tuning knobs (cloned out of the monitor's configuration).
#[derive(Debug, Clone)]
pub(crate) struct ShardConfig {
    /// Node budget of a fallback re-search (the engine's budget unit).
    pub budget: usize,
    /// Maximum number of frontier configurations retained per shard.
    pub frontier_cap: usize,
    /// Node budget of one tail-extension pass (all configurations
    /// together); exhausting it forces a fallback re-search.
    pub extension_budget: usize,
    /// Allow epoch cuts: retire windows at window multiples even when
    /// invocations are still pending, completing stragglers symbolically.
    pub epoch_cuts: bool,
    /// Force a truncated epoch cut through anyway (lossy: later would-be
    /// `Violated` verdicts downgrade to `BudgetExhausted`).
    pub epoch_force: bool,
    /// Overrides the per-attempt retirement node budget (`None` keeps the
    /// window-scaled formula).
    pub retire_budget: Option<usize>,
    /// Witness archival depth: GC-retired windows whose raw events are
    /// retained for forensic reconstruction (0 = off).
    pub archive_windows: usize,
    /// Observer handle; the default noop handle makes every report a
    /// single pointer test.
    pub obs: Obs,
}

/// Rolling verdict of one shard, exact at every event (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ShardStatus {
    /// Every ingested prefix of this shard is linearizable.
    Ok,
    /// The shard's sub-trace is not linearizable (permanent: violations
    /// survive arbitrary extensions of the trace).
    Violated,
    /// A fallback re-search exhausted its node budget (or a lossy epoch
    /// cut made "no completion" inconclusive); the rolling verdict is
    /// unknown until a later search succeeds.
    BudgetExhausted,
}

/// Counters aggregated into [`super::ShardSummary`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct ShardCounters {
    pub events: usize,
    pub commits: usize,
    pub extension_searches: usize,
    pub fallback_searches: usize,
    pub frontier_peak: usize,
    pub retired_events: usize,
    /// Non-quiescent (epoch) retirement cuts.
    pub epoch_cuts: usize,
    /// Forced lossy cuts (truncated summary retired anyway).
    pub lossy_cuts: usize,
    /// Nodes expanded by enumeration/extension searches (a deterministic
    /// work proxy, unlike wall-clock time).
    pub search_nodes: usize,
}

/// One complete chain-search configuration: the terminal history of a
/// witness chain for everything committed so far (window-relative), with
/// its replayed ADT state, consumed-input multiset and remaining symbolic
/// completions (the memo key data).
#[derive(Debug)]
struct FrontierCfg<T: Adt> {
    hist: Vec<T::Input>,
    state: T::State,
    used: PersistentMultiset<T::Input>,
    sym: SymSet<T>,
}

// Manual impl: the derive would demand `T: Clone`.
impl<T: Adt> Clone for FrontierCfg<T> {
    fn clone(&self) -> Self {
        FrontierCfg {
            hist: self.hist.clone(),
            state: self.state.clone(),
            used: self.used.clone(),
            sym: self.sym.clone(),
        }
    }
}

impl<T: Adt> FrontierCfg<T> {
    fn from_seed(seed: &ShardSeed<T>) -> Self {
        FrontierCfg {
            hist: seed.seed.history.clone(),
            state: seed.seed.state.clone(),
            used: seed.seed.used.clone(),
            sym: seed.sym.clone(),
        }
    }

    /// The deduplication key: two configurations agreeing on it are
    /// interchangeable for every future event. O(1) — three
    /// structure-sharing clones (the former representation re-collected
    /// and re-sorted the full `used` multiset per lookup).
    fn memo_key(&self) -> (T::State, PersistentMultiset<T::Input>, SymSet<T>) {
        (self.state.clone(), self.used.clone(), self.sym.clone())
    }

    /// Deterministic order rank for configurations sharing a history
    /// (possible since absorption leaves histories untouched): the
    /// symbolic-completion multiset's commutative fingerprint.
    fn sym_rank(&self) -> (usize, u64) {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.sym.hash(&mut h);
        (self.sym.len(), h.finish())
    }
}

/// A retained search seed: the engine seed plus the symbolic straggler
/// completions recorded when its epoch was cut.
pub(crate) struct ShardSeed<T: Adt> {
    pub seed: SearchSeed<T>,
    pub sym: SymSet<T>,
}

impl<T: Adt> Clone for ShardSeed<T> {
    fn clone(&self) -> Self {
        ShardSeed {
            seed: self.seed.clone(),
            sym: self.sym.clone(),
        }
    }
}

/// Greedy absorption of window commits into a seed's symbolic
/// completions: the earliest commit matching each completion is dropped
/// (its commit entry is the pre-cut extra). Returns the remaining commit
/// list, the unconsumed completions, and the *window* indices of the
/// absorbed commits.
fn absorb_commits<T: Adt>(
    commits: &[Commit<T>],
    sym: &SymSet<T>,
) -> (Vec<Commit<T>>, SymSet<T>, Vec<usize>) {
    if sym.is_empty() {
        return (commits.to_vec(), sym.clone(), Vec::new());
    }
    let mut sym = sym.clone();
    let mut kept = Vec::with_capacity(commits.len());
    let mut absorbed = Vec::new();
    for c in commits {
        let pair = (c.input.clone(), c.output.clone());
        if sym.count(&pair) > 0 {
            sym.remove(&pair);
            absorbed.push(c.index);
        } else {
            kept.push(c.clone());
        }
    }
    (kept, sym, absorbed)
}

/// The incremental per-shard checker state. See the module docs.
pub(crate) struct ShardState<T: Adt, V> {
    adt: Arc<T>,
    cfg: ShardConfig,
    /// The retained window of the shard's sub-trace (everything since the
    /// last GC retirement).
    pub sub: Trace<ObjAction<T, V>>,
    /// Global stream index of each window action.
    pub index_map: Vec<usize>,
    /// Cumulative input multisets per window index (length `sub.len() + 1`),
    /// every entry including the retired base inputs. Persistent:
    /// structure-sharing snapshots, O(1) to take, O(window + alphabet)
    /// retained nodes in total.
    input_ms: Vec<PersistentMultiset<T::Input>>,
    /// Window commits; `Commit::index` is the *window* sub-trace index.
    commits: Vec<Commit<T>>,
    /// The retained summary of the retired prefix: the complete set of
    /// terminal configurations at the last retirement cut (one empty seed
    /// before any retirement). Seed histories are always empty — the
    /// retired events are dropped; only `(state, used, sym)` survives.
    seeds: Vec<ShardSeed<T>>,
    frontier: Vec<FrontierCfg<T>>,
    status: ShardStatus,
    /// Invocations (ever) still awaiting a response. Unlike the window
    /// machinery this is *not* reset at a cut: quiescence means every
    /// invocation of the whole stream has responded.
    pending: usize,
    /// Whether a forced lossy epoch cut happened: "no completion found"
    /// can no longer prove a violation (see module docs).
    lossy: bool,
    /// An epoch boundary passed without a successful cut: keep trying
    /// later (the damping policy below) instead of letting the window
    /// grow untouched to the next multiple.
    cut_due: bool,
    /// The last cut attempt was truncated; retrying every event would
    /// sink an enumeration per ingest, so attempts stay blocked until the
    /// completion landscape plausibly changed: pending drops below its
    /// value at the failed attempt (a straggler drained), the window
    /// grows another quarter-window, or the next epoch boundary arrives.
    cut_blocked: bool,
    /// `pending` at the last truncated cut attempt.
    blocked_pending: usize,
    /// `sub.len()` at the last truncated cut attempt.
    blocked_len: usize,
    /// Witness archive: the raw events of the last `archive_windows`
    /// retired windows, oldest first (empty when archival is off).
    archive: VecDeque<ArchivedWindow<T, V>>,
    /// Whether any retired event is *not* in the archive (archival off, a
    /// window evicted, or this shard inherited a truncated archive):
    /// reconstruction of the full stream is no longer possible.
    archive_truncated: bool,
    pub counters: ShardCounters,
}

impl<T, V> ShardState<T, V>
where
    T: Adt,
    T::Input: Ord,
    V: Clone + PartialEq,
{
    pub fn new(adt: Arc<T>, cfg: ShardConfig) -> Self {
        let initial = SearchSeed::initial(&*adt);
        Self::with_seeds(adt, cfg, vec![initial], PersistentMultiset::new())
    }

    /// Rebuilds a shard from retained seeds and a base input multiset —
    /// how the monitor restarts shards after a collapse.
    pub fn with_seeds(
        adt: Arc<T>,
        cfg: ShardConfig,
        seeds: Vec<SearchSeed<T>>,
        base: PersistentMultiset<T::Input>,
    ) -> Self {
        assert!(!seeds.is_empty(), "a shard needs at least one seed");
        let seeds: Vec<ShardSeed<T>> = seeds
            .into_iter()
            .map(|seed| ShardSeed {
                seed,
                sym: PersistentMultiset::new(),
            })
            .collect();
        ShardState {
            adt,
            cfg,
            sub: Trace::new(),
            index_map: Vec::new(),
            input_ms: vec![base],
            commits: Vec::new(),
            frontier: seeds.iter().map(FrontierCfg::from_seed).collect(),
            seeds,
            status: ShardStatus::Ok,
            pending: 0,
            lossy: false,
            cut_due: false,
            cut_blocked: false,
            blocked_pending: 0,
            blocked_len: 0,
            archive: VecDeque::new(),
            archive_truncated: false,
            counters: ShardCounters::default(),
        }
    }

    pub fn status(&self) -> ShardStatus {
        self.status
    }

    /// Flips the forced-lossy-cut knob on a live shard (the daemon's
    /// backpressure shed; see [`super::Monitor::set_epoch_force`]).
    pub fn set_epoch_force(&mut self, on: bool) {
        self.cfg.epoch_force = on;
    }

    /// Installs an observer handle on a live shard (see
    /// [`super::Monitor::set_observer`]).
    pub fn set_observer(&mut self, obs: Obs) {
        self.cfg.obs = obs;
    }

    /// Whether any retired event is missing from the witness archive (so
    /// full-stream reconstruction is impossible).
    pub fn archive_truncated(&self) -> bool {
        self.archive_truncated
    }

    /// Events currently held in the witness archive.
    pub fn archived_len(&self) -> usize {
        self.archive.iter().map(Vec::len).sum()
    }

    /// The archived retired events, flattened in retirement order (within
    /// and across windows the global indices ascend).
    pub fn archived_events(&self) -> Vec<(usize, ObjAction<T, V>)> {
        self.archive.iter().flatten().cloned().collect()
    }

    /// Moves the archive out (collapse-to-identity hands per-key archives
    /// to the new identity shard).
    pub fn take_archive(&mut self) -> (VecDeque<ArchivedWindow<T, V>>, bool) {
        (
            std::mem::take(&mut self.archive),
            std::mem::replace(&mut self.archive_truncated, true),
        )
    }

    /// Installs an inherited archive (the receiving end of
    /// [`ShardState::take_archive`]). Inherited windows do not count
    /// against this shard's own depth — they are already bounded by the
    /// donors' rings.
    pub fn install_archive(&mut self, windows: VecDeque<ArchivedWindow<T, V>>, truncated: bool) {
        debug_assert!(self.archive.is_empty(), "install only on fresh shards");
        self.archive = windows;
        self.archive_truncated = truncated;
    }

    /// Whether a forced lossy epoch cut happened (verdict downgrades).
    pub fn lossy(&self) -> bool {
        self.lossy
    }

    /// Retained configurations (frontier plus seeds) — the live-state
    /// component of the monitor's memory proxy.
    pub fn live_configs(&self) -> usize {
        self.frontier.len() + self.seeds.len()
    }

    /// Marks every persistent-multiset node reachable from this shard in
    /// `seen` (pointer-deduplicated): the structure-sharing-aware memory
    /// proxy behind [`super::ShardSummary::multiset_nodes`].
    pub fn mark_multiset_nodes(&self, seen: &mut HashSet<usize>) {
        for m in &self.input_ms {
            m.mark_nodes(seen);
        }
        for cfg in &self.frontier {
            cfg.used.mark_nodes(seen);
            cfg.sym.mark_nodes(seen);
        }
        for s in &self.seeds {
            s.seed.used.mark_nodes(seen);
            s.sym.mark_nodes(seen);
        }
    }

    /// The shard's total input pool (base plus window invocations).
    pub fn pool(&self) -> &PersistentMultiset<T::Input> {
        self.input_ms.last().expect("input_ms is never empty")
    }

    /// Ingests the next action of this shard's class. Returns
    /// `(frontier length after the event, whether a fallback re-search ran)`.
    pub fn ingest(&mut self, action: ObjAction<T, V>, global_index: usize) -> (usize, bool) {
        let t0 = self.cfg.obs.t0();
        self.counters.events += 1;
        let window_index = self.sub.len();
        let mut next_ms = self.input_ms.last().expect("nonempty").clone();
        let mut fell_back = false;
        match &action {
            Action::Invoke { input, .. } => {
                next_ms.insert(input.clone());
                self.pending += 1;
            }
            Action::Respond {
                client,
                input,
                output,
                ..
            } => {
                self.pending = self.pending.saturating_sub(1);
                self.commits.push(Commit {
                    index: window_index,
                    client: *client,
                    input: input.clone(),
                    output: output.clone(),
                });
                self.counters.commits += 1;
            }
            Action::Switch { .. } => {
                // Switch actions reach a shard only inside an identity
                // partition whose verdict is already decided (lin) — they
                // are inert for the frontier machinery.
            }
        }
        self.sub.push(action);
        self.index_map.push(global_index);
        self.input_ms.push(next_ms);

        if self.sub[window_index].is_respond() && self.status != ShardStatus::Violated {
            fell_back = self.commit_arrived(window_index);
        }
        self.counters.frontier_peak = self.counters.frontier_peak.max(self.frontier.len());
        self.cfg.obs.shard_ingest(ShardIngestEvent {
            index: global_index as u64,
            frontier_len: self.frontier.len() as u64,
            fell_back,
            t0,
        });
        (self.frontier.len(), fell_back)
    }

    /// Extends the frontier past the commit at `window_index`; falls back
    /// to a bounded re-search when tail extension prunes the frontier
    /// empty. Returns whether the fallback ran.
    fn commit_arrived(&mut self, window_index: usize) -> bool {
        if self.status == ShardStatus::BudgetExhausted {
            // A previous re-search ran out of budget: retrying on every
            // commit would sink unbounded time into an intractable window.
            // Re-attempt only at quiescent points.
            if self.pending == 0 {
                self.fallback_research();
                return true;
            }
            return false;
        }
        self.counters.extension_searches += 1;
        let commit = self.commits.last().expect("just pushed").clone();
        debug_assert_eq!(commit.index, window_index);
        let bound = self.input_ms[window_index].clone();
        let pool = self.pool().clone();
        let hist_cap = self.sub.len();
        let pair = (commit.input.clone(), commit.output.clone());

        let mut next: Vec<FrontierCfg<T>> = Vec::new();
        let mut seen: MemoKeySet<T> = HashSet::new();
        let mut exhausted = false;
        // Pass 1 — the cheap cases, O(frontier): a configuration holding a
        // matching symbolic completion *absorbs* the response (the pre-cut
        // extra is its commit entry; history, state and consumed inputs
        // are untouched), and independently the response may commit
        // directly at the configuration's tail.
        let mut absorbed_any = false;
        for cfg in &self.frontier {
            if cfg.sym.count(&pair) > 0 {
                absorbed_any = true;
                let mut sym2 = cfg.sym.clone();
                sym2.remove(&pair);
                let done = FrontierCfg {
                    hist: cfg.hist.clone(),
                    state: cfg.state.clone(),
                    used: cfg.used.clone(),
                    sym: sym2,
                };
                if seen.insert(done.memo_key()) {
                    next.push(done);
                }
                if next.len() >= self.cfg.frontier_cap {
                    break;
                }
            }
            let mut used2 = cfg.used.clone();
            used2.insert(commit.input.clone());
            if used2.is_subset_of(&bound) {
                let (state2, output) = self.adt.apply(&cfg.state, &commit.input);
                if output == commit.output {
                    let mut hist = cfg.hist.clone();
                    hist.push(commit.input.clone());
                    let done = FrontierCfg {
                        hist,
                        state: state2,
                        used: used2,
                        sym: cfg.sym.clone(),
                    };
                    if seen.insert(done.memo_key()) {
                        next.push(done);
                    }
                }
            }
            if next.len() >= self.cfg.frontier_cap {
                break;
            }
        }
        // Pass 2 — only when neither cheap case survives: interleave
        // extras from the pool under the bounded extension budget.
        if next.is_empty() {
            let mut nodes_left = self.cfg.extension_budget;
            for cfg in &self.frontier {
                if !extend_tail(
                    &*self.adt,
                    cfg,
                    &commit,
                    &bound,
                    &pool,
                    hist_cap,
                    &mut nodes_left,
                    &mut next,
                    &mut seen,
                    self.cfg.frontier_cap,
                ) {
                    exhausted = true;
                    break;
                }
                if next.len() >= self.cfg.frontier_cap {
                    break;
                }
            }
            self.counters.search_nodes += self.cfg.extension_budget - nodes_left;
        }
        if absorbed_any {
            self.cfg.obs.gc_absorption();
        }
        // Deterministic frontier order: lexicographic by history, then by
        // the symbolic-completion rank (absorption preserves histories, so
        // histories alone no longer discriminate).
        next.sort_by(|a, b| a.hist.cmp(&b.hist).then(a.sym_rank().cmp(&b.sym_rank())));
        next.truncate(self.cfg.frontier_cap);

        if next.is_empty() || exhausted {
            self.fallback_research();
            return true;
        }
        self.frontier = next;
        self.status = ShardStatus::Ok;
        false
    }

    /// Enumerates the terminal configurations of the retained window from
    /// the retained seeds (each seed's commits greedily absorbed first),
    /// deduplicated on the memo key, up to `cap` of them. With
    /// `record_extras`, every interleaved extra is recorded as a symbolic
    /// completion in its configuration (epoch-cut mode). Returns the
    /// configurations, whether any budget tripped, and the nodes expanded.
    fn enumerate_completions(
        &self,
        cap: usize,
        record_extras: bool,
    ) -> (Vec<FrontierCfg<T>>, bool, usize) {
        // Verdict-deciding searches give every seed the full budget (the
        // engine's per-run unit); only opportunistic retirement shares a
        // bounded slice across seeds.
        self.enumerate_completions_with(cap, record_extras, None)
    }

    /// The node budget of one opportunistic retirement attempt. Cuts are
    /// a memory optimisation, not a verdict requirement, so an attempt is
    /// never allowed to burn the full fallback budget: it gets a slice
    /// proportional to the retained window (enumeration work grows with
    /// the events being summarised). An attempt that trips it skips the
    /// cut (exactness is unaffected) and retries under the damping policy.
    fn retire_budget(&self) -> usize {
        match self.cfg.retire_budget {
            Some(n) => n,
            None => self
                .cfg
                .extension_budget
                .saturating_mul(8 + self.sub.len())
                .min(self.cfg.budget / 2),
        }
    }

    /// [`ShardState::enumerate_completions`] under an optional shared
    /// node budget: `Some(n)` caps the *total* nodes across all seeds
    /// (the retirement path), `None` gives each seed the full fallback
    /// budget (the verdict path, the engine's historical semantics).
    fn enumerate_completions_with(
        &self,
        cap: usize,
        record_extras: bool,
        shared_budget: Option<usize>,
    ) -> (Vec<FrontierCfg<T>>, bool, usize) {
        let mut out: Vec<FrontierCfg<T>> = Vec::new();
        let mut seen: MemoKeySet<T> = HashSet::new();
        let mut budget_tripped = false;
        let mut nodes_total = 0usize;
        for shard_seed in &self.seeds {
            let (kept, sym, _) = absorb_commits(&self.commits, &shard_seed.sym);
            let mut dfs = EnumDfs {
                adt: &*self.adt,
                commits: &kept,
                bounds: &self.input_ms,
                pool: self.pool(),
                hist_cap: self.sub.len(),
                record_extras,
                cap,
                max_nodes: match shared_budget {
                    Some(total) => total.saturating_sub(nodes_total),
                    None => self.cfg.budget,
                },
                nodes: 0,
                memo: HashSet::new(),
                seen: &mut seen,
                out: &mut out,
                budget_tripped: false,
            };
            let mut hist = shard_seed.seed.history.clone();
            let remaining = CommitMask::full(kept.len());
            dfs.dfs(
                shard_seed.seed.state.clone(),
                shard_seed.seed.used.clone(),
                sym,
                &mut hist,
                remaining,
            );
            budget_tripped |= dfs.budget_tripped;
            nodes_total += dfs.nodes;
            if out.len() >= cap {
                break;
            }
        }
        out.sort_by(|a, b| a.hist.cmp(&b.hist).then(a.sym_rank().cmp(&b.sym_rank())));
        (out, budget_tripped, nodes_total)
    }

    /// The documented fallback: bounded re-searches of the retained window
    /// from the retained seeds, deciding the rolling verdict exactly and
    /// refilling a **diverse** frontier (a single-configuration frontier
    /// would re-fall-back on almost every next commit).
    fn fallback_research(&mut self) {
        self.counters.fallback_searches += 1;
        let t0 = self.cfg.obs.t0();
        let (configs, budget_tripped, nodes) =
            self.enumerate_completions(self.cfg.frontier_cap, false);
        self.counters.search_nodes += nodes;
        self.cfg.obs.engine_search(slin_obs::EngineSearchEvent {
            site: "shard.fallback",
            nodes: nodes as u64,
            memo_hits: 0,
            budget_exhausted: budget_tripped,
            t0,
        });
        if !configs.is_empty() {
            // Every collected configuration is a genuine witness (a budget
            // trip mid-enumeration does not taint the earlier ones).
            self.frontier = configs;
            self.status = ShardStatus::Ok;
        } else if budget_tripped || self.lossy {
            // After a lossy cut an exhausted search space proves nothing:
            // the dropped summary configurations may have completed.
            self.frontier.clear();
            self.status = ShardStatus::BudgetExhausted;
        } else {
            self.frontier.clear();
            self.status = ShardStatus::Violated;
        }
    }

    /// One full engine run over the retained window for the monitor's
    /// final report: seeds are tried in order and the first one admitting
    /// a completion wins (deterministic). Returns the winning seed's
    /// index, its chain, and the *window* indices of the commits its
    /// symbolic completions absorbed (absent from the chain).
    #[allow(clippy::type_complexity)]
    pub fn window_search(
        &self,
    ) -> (
        Result<Option<(usize, Chain<T::Input>, Vec<usize>)>, EngineError>,
        SearchStats,
    ) {
        let mut stats = SearchStats::default();
        let t0 = self.cfg.obs.t0();
        let mut budget_error: Option<EngineError> = None;
        for (k, shard_seed) in self.seeds.iter().enumerate() {
            let (kept, _, absorbed) = absorb_commits(&self.commits, &shard_seed.sym);
            let engine = CheckerEngine::new(
                &*self.adt,
                &kept,
                &self.input_ms,
                self.pool().clone(),
                SearchBudget::new(self.cfg.budget),
            )
            .with_extra_cap(self.sub.len());
            match engine.run(shard_seed.seed.clone(), &mut |_, _| Some(())) {
                Ok(outcome) => {
                    stats.absorb(&outcome.stats);
                    if let Some((chain, ())) = outcome.solution {
                        self.report_window_search(&stats, false, t0);
                        return (Ok(Some((k, chain, absorbed))), stats);
                    }
                }
                Err(e) => {
                    if budget_error.is_none() {
                        budget_error = Some(e);
                    }
                }
            }
        }
        self.report_window_search(&stats, budget_error.is_some(), t0);
        match budget_error {
            Some(e) => (Err(e), stats),
            None => (Ok(None), stats),
        }
    }

    /// Reports one [`ShardState::window_search`] run to the observer.
    fn report_window_search(
        &self,
        stats: &SearchStats,
        budget_exhausted: bool,
        t0: Option<std::time::Instant>,
    ) {
        self.cfg.obs.engine_search(slin_obs::EngineSearchEvent {
            site: "shard.window_search",
            nodes: stats.nodes as u64,
            memo_hits: stats.memo_hits as u64,
            budget_exhausted,
            t0,
        });
    }

    /// The seed the reported window chain extends (see
    /// [`ShardState::window_search`]).
    pub fn seed(&self, index: usize) -> &SearchSeed<T> {
        &self.seeds[index].seed
    }

    /// Bounded-window GC (see the module docs): when the retained window
    /// has grown past `window` events, enumerate the window's **complete**
    /// terminal-configuration set and retire the window into those seeds.
    /// Quiescent shards cut at any size past the window; never-quiescent
    /// shards cut at epoch boundaries (window multiples) when epoch cuts
    /// are enabled, completing stragglers symbolically.
    ///
    /// Retirement is opportunistic, so it runs under its own small node
    /// budget (a fraction of the fallback budget) and never compromises
    /// exactness: a truncated enumeration skips the cut (never lossy
    /// unless `epoch_force` is set). A boundary that fails to cut leaves
    /// the cut *due*: it is retried on every later commit — a drained
    /// response shrinks the completion space — rather than stalling GC
    /// until the next window multiple while per-event cost balloons.
    /// Returns the global indices of the retired events.
    pub fn maybe_retire(&mut self, window: usize) -> Option<Vec<usize>> {
        if self.sub.len() < window || self.status != ShardStatus::Ok {
            return None;
        }
        if self.cfg.epoch_cuts && self.sub.len().is_multiple_of(window) {
            self.cut_due = true;
            self.cut_blocked = false;
        }
        let quiescent = self.pending == 0;
        let epoch_due = self.cfg.epoch_cuts && self.cut_due;
        if !quiescent && !epoch_due {
            return None;
        }
        if self.cut_blocked {
            // Damping: retry only once the landscape plausibly changed
            // since the truncated attempt (see the field docs).
            let drained = self.pending < self.blocked_pending;
            let grown = self.sub.len() >= self.blocked_len + (window / 4).max(1);
            if !drained && !grown {
                return None;
            }
        }
        if self.commits.is_empty() {
            // An invocation-only window: the frontier never moved, so the
            // seeds already summarise it — only the cumulative bound
            // snapshots collapse into the base.
            let t0 = self.cfg.obs.t0();
            let window_events = self.sub.len() as u64;
            let retired = self.retire_window(None);
            self.cfg.obs.gc_cut(GcCutEvent {
                outcome: CutOutcome::RetiredInvokeOnly,
                window_events,
                t0,
            });
            return Some(retired);
        }
        let t0 = self.cfg.obs.t0();
        // The retirement seed set may hold up to twice the frontier cap —
        // seeds are a complete summary and must not be dropped, while the
        // frontier re-truncates to the cap at the next commit. `cap + 1`
        // detects truncation: collecting exactly `cap + 1` means the true
        // set may be larger than what we would retain.
        let cap = self.cfg.frontier_cap * 2;
        // Quiescent cuts keep the historical full per-seed budget (they
        // are the verdict-bearing GC of drained streams); epoch attempts
        // are opportunistic and run under the bounded retirement slice.
        let shared = if quiescent {
            None
        } else {
            Some(self.retire_budget())
        };
        let (configs, budget_tripped, nodes) =
            self.enumerate_completions_with(cap + 1, true, shared);
        self.counters.search_nodes += nodes;
        let window_events = self.sub.len() as u64;
        let truncated = budget_tripped || configs.is_empty() || configs.len() > cap;
        if !truncated {
            let retired = self.retire_window(Some(configs));
            self.cfg.obs.gc_cut(GcCutEvent {
                outcome: CutOutcome::Retired,
                window_events,
                t0,
            });
            return Some(retired);
        }
        self.cut_blocked = true;
        self.blocked_pending = self.pending;
        self.blocked_len = self.sub.len();
        if self.cfg.epoch_force {
            // Lossy cut: the frontier's configurations are genuine
            // witnesses, but possibly not all of them — record the loss
            // and retire from the frontier anyway (memory over exactness).
            self.lossy = true;
            self.counters.lossy_cuts += 1;
            let summary = self.frontier.clone();
            let retired = self.retire_window(Some(summary));
            self.cfg.obs.gc_cut(GcCutEvent {
                outcome: CutOutcome::RetiredLossy,
                window_events,
                t0,
            });
            return Some(retired);
        }
        self.cfg.obs.gc_cut(GcCutEvent {
            outcome: CutOutcome::Blocked,
            window_events,
            t0,
        });
        None
    }

    /// Retires the current window: drops its events, collapses the bound
    /// snapshots into the base, and installs `summary` (when given) as the
    /// new seed set. Returns the retired global indices.
    fn retire_window(&mut self, summary: Option<Vec<FrontierCfg<T>>>) -> Vec<usize> {
        self.counters.retired_events += self.sub.len();
        if self.pending > 0 {
            self.counters.epoch_cuts += 1;
        }
        // Witness archival: keep the retired window's raw events (even on a
        // lossy cut — the archive is summary-independent) so the monitor
        // can rebuild full forensic witnesses while every retired event is
        // still within the archive depth.
        if self.cfg.archive_windows > 0 {
            let events: ArchivedWindow<T, V> = self
                .index_map
                .iter()
                .copied()
                .zip(self.sub.iter().cloned())
                .collect();
            self.cfg.obs.archive_window(events.len() as u64);
            self.archive.push_back(events);
            if self.archive.len() > self.cfg.archive_windows {
                self.archive.pop_front();
                self.archive_truncated = true;
                self.cfg.obs.archive_eviction();
            }
        } else {
            self.archive_truncated = true;
        }
        let retired = std::mem::take(&mut self.index_map);
        self.cut_due = false;
        self.cut_blocked = false;
        self.sub = Trace::new();
        self.commits.clear();
        let base = self.input_ms.pop().expect("nonempty");
        self.input_ms = vec![base];
        if let Some(configs) = summary {
            // Retired histories are dropped (memory stays
            // O(window + alphabet)); the seeds keep only the state, the
            // consumed-input multiset and the symbolic completions, which
            // is all the engine's moves and bounds consult.
            self.seeds = configs
                .iter()
                .map(|cfg| ShardSeed {
                    seed: SearchSeed {
                        history: Vec::new(),
                        state: cfg.state.clone(),
                        used: cfg.used.clone(),
                    },
                    sym: cfg.sym.clone(),
                })
                .collect();
            self.frontier = self.seeds.iter().map(FrontierCfg::from_seed).collect();
        }
        retired
    }
}

/// The sym-aware enumeration worker behind
/// [`ShardState::enumerate_completions`]: the engine's search moves
/// (commit / interleave-extra) with dead-end memoisation on `(remaining,
/// state, used, sym)` — the engine's own key *plus* the symbolic
/// completions, which the engine's memo would conflate (two paths placing
/// extras with different outputs reach the same `(state, used)` but
/// absorb different future responses).
struct EnumDfs<'e, T: Adt> {
    adt: &'e T,
    commits: &'e [Commit<T>],
    bounds: &'e [PersistentMultiset<T::Input>],
    pool: &'e PersistentMultiset<T::Input>,
    hist_cap: usize,
    record_extras: bool,
    cap: usize,
    max_nodes: usize,
    nodes: usize,
    #[allow(clippy::type_complexity)]
    memo: HashSet<(
        CommitMask,
        <T as Adt>::State,
        PersistentMultiset<<T as Adt>::Input>,
        SymSet<T>,
    )>,
    seen: &'e mut MemoKeySet<T>,
    out: &'e mut Vec<FrontierCfg<T>>,
    budget_tripped: bool,
}

impl<T: Adt> EnumDfs<'_, T>
where
    T::Input: Ord,
{
    /// Explores every completion below the node; `false` stops the whole
    /// enumeration (budget tripped or `cap` configurations collected).
    fn dfs(
        &mut self,
        state: T::State,
        used: PersistentMultiset<T::Input>,
        sym: SymSet<T>,
        hist: &mut Vec<T::Input>,
        remaining: CommitMask,
    ) -> bool {
        if remaining.is_empty() {
            // Terminal: record the configuration (deduplicated *before*
            // counting toward the cap — commuting chains revisit the same
            // terminal key, and counting raw visits would let a caller
            // mistake a truncated enumeration for a complete one).
            let cfg = FrontierCfg {
                hist: hist.clone(),
                state,
                used,
                sym,
            };
            if self.seen.insert(cfg.memo_key()) {
                self.out.push(cfg);
            }
            return self.out.len() < self.cap;
        }
        self.nodes += 1;
        if self.nodes > self.max_nodes {
            self.budget_tripped = true;
            return false;
        }
        let key = (remaining.clone(), state.clone(), used.clone(), sym.clone());
        if self.memo.contains(&key) {
            return true;
        }

        // Prune: a remaining commit whose validity bound no longer
        // contains the consumed inputs can never be committed from here.
        for (k, c) in self.commits.iter().enumerate() {
            if remaining.contains(k) && !used.is_subset_of(&self.bounds[c.index]) {
                self.memo.insert(key);
                return true;
            }
        }

        // Move 1: commit one of the remaining responses next on the chain.
        for (k, c) in self.commits.iter().enumerate() {
            if !remaining.contains(k) {
                continue;
            }
            let mut used2 = used.clone();
            used2.insert(c.input.clone());
            if !used2.is_subset_of(&self.bounds[c.index]) {
                continue;
            }
            let (state2, out) = self.adt.apply(&state, &c.input);
            if out != c.output {
                continue;
            }
            hist.push(c.input.clone());
            let alive = self.dfs(state2, used2, sym.clone(), hist, remaining.without(k));
            hist.pop();
            if !alive {
                return false;
            }
        }

        // Move 2: interleave an extra input from the pool (sorted: the
        // enumeration order is a pure function of the inputs). In
        // epoch-cut mode the extra is recorded as a symbolic completion
        // with the output the ADT produced for it.
        if hist.len() < self.hist_cap {
            let mut candidates: Vec<T::Input> = self
                .pool
                .iter()
                .filter(|(e, c)| used.count(e) < *c)
                .map(|(e, _)| e.clone())
                .collect();
            candidates.sort();
            for e in candidates {
                let mut used2 = used.clone();
                used2.insert(e.clone());
                let (state2, out) = self.adt.apply(&state, &e);
                let mut sym2 = sym.clone();
                if self.record_extras {
                    sym2.insert((e.clone(), out));
                }
                hist.push(e);
                let alive = self.dfs(state2, used2, sym2, hist, remaining.clone());
                hist.pop();
                if !alive {
                    return false;
                }
            }
        }

        self.memo.insert(key);
        true
    }
}

/// Tail extension of one configuration past a new commit: interleave extra
/// inputs (ascending, the engine's move order) and place the commit,
/// collecting every distinct surviving configuration. Returns `false` when
/// the node budget ran dry (the caller must fall back).
#[allow(clippy::too_many_arguments)]
fn extend_tail<T: Adt>(
    adt: &T,
    cfg: &FrontierCfg<T>,
    commit: &Commit<T>,
    bound: &PersistentMultiset<T::Input>,
    pool: &PersistentMultiset<T::Input>,
    hist_cap: usize,
    nodes_left: &mut usize,
    out: &mut Vec<FrontierCfg<T>>,
    seen: &mut MemoKeySet<T>,
    cap: usize,
) -> bool
where
    T::Input: Ord,
{
    let mut extras: Vec<T::Input> = Vec::new();
    extend_dfs(
        adt,
        cfg,
        &mut extras,
        &cfg.state.clone(),
        &cfg.used.clone(),
        commit,
        bound,
        pool,
        hist_cap,
        nodes_left,
        out,
        seen,
        cap,
    )
}

/// The recursive worker behind [`extend_tail`]: `extras` accumulates the
/// interleaved inputs in place (histories are materialised only for the
/// configurations that actually survive, keeping per-node work
/// history-length-free). In-window extras are *not* recorded as symbolic
/// completions — the configuration's `sym` carries through unchanged;
/// only epoch cuts record completions (see the module docs).
#[allow(clippy::too_many_arguments)]
fn extend_dfs<T: Adt>(
    adt: &T,
    base: &FrontierCfg<T>,
    extras: &mut Vec<T::Input>,
    state: &T::State,
    used: &PersistentMultiset<T::Input>,
    commit: &Commit<T>,
    bound: &PersistentMultiset<T::Input>,
    pool: &PersistentMultiset<T::Input>,
    hist_cap: usize,
    nodes_left: &mut usize,
    out: &mut Vec<FrontierCfg<T>>,
    seen: &mut MemoKeySet<T>,
    cap: usize,
) -> bool
where
    T::Input: Ord,
{
    if *nodes_left == 0 {
        return false;
    }
    *nodes_left -= 1;
    if out.len() >= cap {
        return true;
    }

    // Move 1: place the commit now.
    let mut used2 = used.clone();
    used2.insert(commit.input.clone());
    if used2.is_subset_of(bound) {
        let (state2, output) = adt.apply(state, &commit.input);
        if output == commit.output {
            let done = FrontierCfg {
                hist: Vec::new(),
                state: state2,
                used: used2,
                sym: base.sym.clone(),
            };
            if seen.insert(done.memo_key()) {
                let mut hist = base.hist.clone();
                hist.extend(extras.iter().cloned());
                hist.push(commit.input.clone());
                out.push(FrontierCfg { hist, ..done });
            }
        }
    }

    // Move 2: interleave an extra input first. Extras escaping the new
    // commit's bound are pruned (the commit could never be placed after
    // them — the engine's own prune).
    if base.hist.len() + extras.len() < hist_cap {
        let mut candidates: Vec<T::Input> = pool
            .iter()
            .filter(|(e, c)| used.count(e) < *c)
            .map(|(e, _)| e.clone())
            .collect();
        candidates.sort();
        for e in candidates {
            let mut used2 = used.clone();
            used2.insert(e.clone());
            if !used2.is_subset_of(bound) {
                continue;
            }
            let (state2, _) = adt.apply(state, &e);
            extras.push(e);
            let alive = extend_dfs(
                adt, base, extras, &state2, &used2, commit, bound, pool, hist_cap, nodes_left, out,
                seen, cap,
            );
            extras.pop();
            if !alive {
                return false;
            }
        }
    }
    true
}
