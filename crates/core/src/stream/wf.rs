//! Rolling (per-event) well-formedness tracking.
//!
//! The batch checkers validate well-formedness on the closed trace
//! (`slin_trace::wf`); the monitor cannot afford an O(n) scan per event, so
//! this module replays the same per-client alternation automaton
//! incrementally. To report the *identical* [`WellFormednessError`] the
//! batch path would produce — its constructor is private, and its reason
//! strings are an API we must not fork — every violation records a minimal
//! **reproduction**: a bounded (≤ 4 action) synthetic client sub-trace that
//! drives `slin_trace::wf` into the same first error. Materialising the
//! error is then just running the real checker on the reproduction, which
//! keeps the monitor's error payloads byte-identical to the batch
//! checkers' forever, even after the stream's prefix has been garbage
//! collected.
//!
//! Client selection also mirrors the batch scan: `check_well_formed`
//! iterates clients in ascending id order and reports the first violating
//! client's first violation, which is exactly the first entry of the
//! tracker's ordered violation map.

use slin_trace::prop::Signature as _;
use slin_trace::wf::{check_phase_well_formed, check_well_formed, WellFormednessError};
use slin_trace::{Action, ClientId, PhaseId, PhaseSignature, Trace};
use std::collections::BTreeMap;

/// One client's alternation-automaton state plus the minimal prefix that
/// reproduces it (see module docs).
struct ClientWf<I, O, V> {
    pending: Option<I>,
    aborted: bool,
    started: bool,
    /// Minimal prefix reaching the *idle* (no pending, started) state.
    idle_prefix: Option<Vec<Action<I, O, V>>>,
    /// Minimal prefix reaching the current state.
    cur_prefix: Vec<Action<I, O, V>>,
    /// The first violation's reproduction (prefix + offending event).
    violation: Option<Vec<Action<I, O, V>>>,
}

impl<I, O, V> Default for ClientWf<I, O, V> {
    fn default() -> Self {
        ClientWf {
            pending: None,
            aborted: false,
            started: false,
            idle_prefix: None,
            cur_prefix: Vec::new(),
            violation: None,
        }
    }
}

/// Incremental replica of the batch well-formedness scan.
pub(crate) struct WfTracker<I, O, V> {
    /// `None` for plain object traces, `Some((m, n))` for phase traces.
    phase_bounds: Option<(PhaseId, PhaseId)>,
    clients: BTreeMap<ClientId, ClientWf<I, O, V>>,
    /// First action outside the phase signature (speculative traces only).
    pub first_foreign: Option<usize>,
}

impl<I, O, V> WfTracker<I, O, V>
where
    I: Clone + PartialEq,
    O: Clone,
    V: Clone,
{
    pub fn new(phase_bounds: Option<(PhaseId, PhaseId)>) -> Self {
        WfTracker {
            phase_bounds,
            clients: BTreeMap::new(),
            first_foreign: None,
        }
    }

    /// Whether any client's sub-trace has violated the automaton so far.
    pub fn has_violation(&self) -> bool {
        self.clients.values().any(|c| c.violation.is_some())
    }

    /// Materialises the batch-identical first error: ascending client id,
    /// that client's first violation (see module docs).
    pub fn first_error(&self) -> Option<WellFormednessError> {
        let (_, st) = self.clients.iter().find(|(_, st)| st.violation.is_some())?;
        let repro = Trace::from_actions(st.violation.clone().expect("checked"));
        let err = match self.phase_bounds {
            None => check_well_formed(&repro),
            Some((m, n)) => check_phase_well_formed(&repro, m, n),
        };
        match err {
            Err(e) => Some(e),
            Ok(()) => {
                debug_assert!(false, "violation reproduction failed to reproduce");
                None
            }
        }
    }

    /// Feeds the next stream event through the automaton.
    pub fn observe(&mut self, action: &Action<I, O, V>, index: usize) {
        if let Some((m, n)) = self.phase_bounds {
            // Signature membership (the speculative checker's first gate).
            let sig = PhaseSignature::new(m, n);
            if !sig.contains(action) && self.first_foreign.is_none() {
                self.first_foreign = Some(index);
            }
            // The (m, n)-client-sub-trace projects interior switches and
            // out-of-range invocations/responses away.
            let kept = match action {
                Action::Switch { phase, .. } => *phase == m || *phase == n,
                _ => action.phase().in_range(m, n.prev()),
            };
            if !kept {
                return;
            }
        }
        let st = self.clients.entry(action.client()).or_default();
        if st.violation.is_some() {
            return;
        }
        let violate = |st: &mut ClientWf<I, O, V>, a: &Action<I, O, V>| {
            let mut repro = st.cur_prefix.clone();
            repro.push(a.clone());
            st.violation = Some(repro);
        };
        if st.aborted {
            violate(st, action);
            return;
        }
        match action {
            Action::Invoke { input, .. } => {
                if !st.started {
                    if let Some((m, _)) = self.phase_bounds {
                        if m != PhaseId::FIRST {
                            violate(st, action);
                            return;
                        }
                    }
                    st.idle_prefix = Some(Vec::new());
                }
                if st.pending.is_some() {
                    violate(st, action);
                    return;
                }
                st.pending = Some(input.clone());
                let mut prefix = st.idle_prefix.clone().unwrap_or_default();
                prefix.push(action.clone());
                st.cur_prefix = prefix;
                st.started = true;
            }
            Action::Respond { input, .. } => match st.pending.take() {
                Some(p) if p == *input => {
                    st.cur_prefix.push(action.clone());
                    if st.idle_prefix.is_none() {
                        st.idle_prefix = Some(st.cur_prefix.clone());
                    } else {
                        st.cur_prefix = st.idle_prefix.clone().expect("set");
                    }
                    st.started = true;
                }
                _ => violate(st, action),
            },
            Action::Switch { phase, input, .. } => {
                let Some((m, n)) = self.phase_bounds else {
                    violate(st, action);
                    return;
                };
                if *phase == m {
                    // Init action: unique, first, impossible when m = 1.
                    if m == PhaseId::FIRST || st.started {
                        violate(st, action);
                        return;
                    }
                    st.pending = Some(input.clone());
                    st.cur_prefix = vec![action.clone()];
                    st.started = true;
                } else if *phase == n {
                    match st.pending.take() {
                        Some(p) if p == *input => {
                            st.aborted = true;
                            st.cur_prefix.push(action.clone());
                            st.started = true;
                        }
                        _ => violate(st, action),
                    }
                } else {
                    // Interior switches were filtered by the projection
                    // above; a plain-trace switch was handled by the `else`.
                    unreachable!("interior switch past the projection filter");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slin_trace::wf;

    type A = Action<u32, u32, u32>;

    fn c(n: u32) -> ClientId {
        ClientId::new(n)
    }
    fn ph(n: u32) -> PhaseId {
        PhaseId::new(n)
    }

    /// The tracker's materialised error equals the batch scan's on every
    /// prefix of a pile of adversarial traces.
    #[test]
    fn tracker_matches_batch_scan_on_plain_traces() {
        let traces: Vec<Vec<A>> = vec![
            vec![
                Action::invoke(c(1), ph(1), 5),
                Action::respond(c(1), ph(1), 5, 5),
            ],
            vec![Action::respond(c(1), ph(1), 5, 5)],
            vec![
                Action::invoke(c(1), ph(1), 5),
                Action::invoke(c(1), ph(1), 6),
            ],
            vec![
                Action::invoke(c(2), ph(1), 5),
                Action::respond(c(2), ph(1), 6, 6),
            ],
            vec![
                Action::invoke(c(2), ph(1), 5),
                Action::invoke(c(1), ph(1), 7),
                Action::respond(c(2), ph(1), 5, 5),
                Action::respond(c(1), ph(1), 9, 9),
            ],
            vec![
                Action::invoke(c(3), ph(1), 5),
                Action::switch(c(3), ph(2), 5, 9),
            ],
        ];
        for actions in traces {
            for cut in 0..=actions.len() {
                let prefix = &actions[..cut];
                let mut tracker: WfTracker<u32, u32, u32> = WfTracker::new(None);
                for (i, a) in prefix.iter().enumerate() {
                    tracker.observe(a, i);
                }
                let batch = wf::check_well_formed(&Trace::from_actions(prefix.to_vec()));
                assert_eq!(tracker.has_violation(), batch.is_err(), "{prefix:?}");
                assert_eq!(tracker.first_error(), batch.err(), "{prefix:?}");
            }
        }
    }

    /// Same differential for phase traces: init/abort switch discipline.
    #[test]
    fn tracker_matches_batch_scan_on_phase_traces() {
        let m = ph(2);
        let n = ph(3);
        let traces: Vec<Vec<A>> = vec![
            vec![
                Action::switch(c(1), m, 5, 9),
                Action::respond(c(1), m, 5, 5),
            ],
            vec![Action::invoke(c(1), m, 5)],
            vec![
                Action::switch(c(1), m, 5, 9),
                Action::switch(c(1), n, 5, 11),
                Action::invoke(c(1), m, 6),
            ],
            vec![
                Action::switch(c(1), m, 5, 9),
                Action::respond(c(1), m, 5, 5),
                Action::switch(c(1), m, 6, 9),
            ],
            vec![
                Action::switch(c(1), m, 5, 9),
                Action::switch(c(1), n, 6, 11),
            ],
            vec![Action::switch(c(2), m, 5, 9), Action::invoke(c(2), m, 6)],
        ];
        for actions in traces {
            for cut in 0..=actions.len() {
                let prefix = &actions[..cut];
                let mut tracker: WfTracker<u32, u32, u32> = WfTracker::new(Some((m, n)));
                for (i, a) in prefix.iter().enumerate() {
                    tracker.observe(a, i);
                }
                let batch =
                    wf::check_phase_well_formed(&Trace::from_actions(prefix.to_vec()), m, n);
                assert_eq!(tracker.has_violation(), batch.is_err(), "{prefix:?}");
                assert_eq!(tracker.first_error(), batch.err(), "{prefix:?}");
            }
        }
    }

    #[test]
    fn foreign_phase_actions_are_recorded() {
        let mut tracker: WfTracker<u32, u32, u32> = WfTracker::new(Some((ph(1), ph(2))));
        tracker.observe(&Action::invoke(c(1), ph(1), 5), 0);
        assert_eq!(tracker.first_foreign, None);
        tracker.observe(&Action::invoke(c(2), ph(3), 6), 1);
        assert_eq!(tracker.first_foreign, Some(1));
    }
}
