//! Online streaming checking: the sharded incremental monitor, generic
//! over any [`ConsistencyModel`].
//!
//! The batch checkers need the whole trace before `check()` runs. This
//! module adds the layer between the trace model and those checkers that
//! the ROADMAP's live-traffic north star needs: a [`Monitor`] that
//! **ingests one action at a time** and maintains a rolling verdict
//! without re-checking the growing prefix.
//!
//! ```text
//!                        ┌───────────────────────────────┐
//!   live event stream ──▶│ router (Partitioner::key_of)  │
//!                        └──┬──────────┬──────────┬──────┘
//!                key 1 ─────▼──  key 2 ▼   …  key k ▼        unclassifiable /
//!                   ┌─────────┐ ┌─────────┐ ┌─────────┐      switch action
//!                   │ shard 1 │ │ shard 2 │ │ shard k │   ──▶ identity shard /
//!                   │frontier │ │frontier │ │frontier │       speculative mode
//!                   └────┬────┘ └────┬────┘ └────┬────┘
//!                        └─────── merged verdict ┴──▶ status() / report()
//! ```
//!
//! There is **one** monitor: [`Monitor`] is parameterized by a
//! [`StreamModel`] (the [`ConsistencyModel`] sub-trait adding the few
//! stream-specific hooks — what a switch action means, and how window
//! verdicts map onto the model's witness/error types). The historical
//! `LinMonitor`/`SlinMonitor` pair are type aliases instantiating it with
//! [`crate::lin::LinChecker`] and [`crate::slin::SlinChecker`]; the
//! `slin-monitor` crate re-exports this module unchanged.
//!
//! # Architecture
//!
//! * **Routing** — every action is classified by the
//!   [`slin_adt::Partitioner`]; each independence class gets its own shard
//!   with its own incremental engine state. The identity fallback
//!   (unclassifiable inputs) collapses everything into one shard, so
//!   non-partitionable ADTs still stream.
//! * **Incremental engine state** — each shard persists a **frontier** of
//!   complete chain-search configurations between events (each one a
//!   genuine witness for the shard's prefix); see `stream/shard.rs`.
//! * **Bounded-window GC** — with [`MonitorConfig::window`] set, quiescent
//!   fully-committed prefixes retire into their complete terminal-
//!   configuration summary: verdicts stay exact, witnesses become
//!   window-relative, memory stays O(window · alphabet).
//! * **Batch-identical reports** — with the default unbounded window,
//!   [`Monitor::report`] is byte-identical (verdict *and* witness) to the
//!   model's batch check on the closed trace; the `streaming_differential`
//!   suite in `tests/` pins this over the multi-key generators.

#![allow(clippy::module_inception)]

mod monitor;
mod shard;
mod wf;

pub use monitor::{LinMonitor, Monitor, SlinMonitor};

use crate::engine::{Chain, SearchStats};
use crate::model::ConsistencyModel;
use crate::partition::FallbackReason;
use slin_adt::Adt;
use slin_trace::wf::WellFormednessError;

/// A pull-based stream of actions. Blanket-implemented for every
/// [`Iterator`], so `trace.into_iter()`, channels drained through
/// `try_iter()`, and custom sources all plug straight into
/// [`Monitor::drive`] / [`Monitor::drive_parallel`].
pub trait EventStream<A> {
    /// The next event, or `None` when the stream is (currently) drained.
    fn next_event(&mut self) -> Option<A>;
}

impl<A, I: Iterator<Item = A>> EventStream<A> for I {
    fn next_event(&mut self) -> Option<A> {
        self.next()
    }
}

/// Why a window-mode stream check failed, before it is mapped onto the
/// model's error type by [`StreamModel::stream_error`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamFailure {
    /// A switch action appeared in a stream whose model rejects them
    /// (plain linearizability).
    Switch {
        /// The switch action's global stream index.
        index: usize,
    },
    /// An action's phase label lies outside the model's phase signature.
    Foreign {
        /// The foreign action's global stream index.
        index: usize,
    },
    /// The stream is not well-formed.
    IllFormed(WellFormednessError),
    /// No witness exists for the retained window.
    NotSatisfied,
    /// The window search exhausted its node budget.
    BudgetExhausted {
        /// Nodes expanded when the budget tripped.
        nodes: usize,
    },
}

/// The streaming face of a [`ConsistencyModel`]: the handful of hooks the
/// generic [`Monitor`] needs beyond the batch checking surface.
pub trait StreamModel<V>: ConsistencyModel<V> {
    /// The rolling status once the stream has gone quiet on a switch
    /// action: terminal ([`MonitorStatus::SwitchSeen`], plain
    /// linearizability) or deferred to a lazy batch re-check
    /// ([`MonitorStatus::Deferred`], speculative linearizability).
    const QUIET_STATUS: MonitorStatus;

    /// Whether the monitor must keep (or reconstruct) a trace buffer from
    /// the first switch action on, so deferred statuses and reports can
    /// batch-re-check the retained trace.
    const BUFFERS_ON_SWITCH: bool;

    /// Maps a batch-check failure onto the rolling [`MonitorStatus`]
    /// (used to resolve [`MonitorStatus::Deferred`]).
    fn status_of_error(e: &Self::Error) -> MonitorStatus;

    /// Wraps a window-mode merged commit chain (global stream indices)
    /// into the model's witness type; `stats` are the absorbed window
    /// search counters.
    fn stream_witness(
        &self,
        chain: Chain<<Self::Adt as Adt>::Input>,
        stats: &SearchStats,
    ) -> Self::Witness;

    /// Maps a window-mode failure onto the model's error type.
    fn stream_error(&self, failure: StreamFailure) -> Self::Error;
}

/// Tuning knobs of a monitor.
#[derive(Debug, Clone, Copy)]
pub struct MonitorConfig {
    /// Node budget of every full engine search (fallback re-searches,
    /// final report derivations). Matches the batch checkers' default.
    pub budget: usize,
    /// Maximum frontier configurations retained per shard. Larger values
    /// survive more reorderings without falling back; smaller values bound
    /// per-event work tighter.
    pub frontier_cap: usize,
    /// Node budget of one frontier tail-extension pass; exhausting it
    /// forces a fallback re-search (exactness is never lost).
    pub extension_budget: usize,
    /// Bounded-window GC: retire quiescent, fully-committed prefixes once
    /// a shard's window exceeds this many events. `None` (default) retains
    /// everything and keeps reports byte-identical to the batch checkers.
    pub window: Option<usize>,
    /// Epoch GC (default `true`): also retire windows that never quiesce —
    /// cuts happen at window multiples even with invocations still
    /// pending, completing stragglers symbolically so verdicts stay exact
    /// (see `stream/shard.rs`). Requires `window`.
    pub epoch_cuts: bool,
    /// Force truncated epoch cuts through anyway (default `false`): memory
    /// stays bounded on hostile windows whose summary outgrows the
    /// frontier cap, at the price of exactness — later would-be violation
    /// verdicts downgrade to [`MonitorStatus::Unknown`].
    pub epoch_force: bool,
    /// Overrides the node budget of one opportunistic (epoch) retirement
    /// attempt. `None` (default) keeps the window-scaled formula
    /// `extension_budget · (8 + window events), capped at budget / 2`.
    pub retire_budget: Option<usize>,
    /// Witness archival: keep the raw events of up to this many GC-retired
    /// windows per shard, so [`Monitor::report`] can reconstruct **full**
    /// forensic witnesses (byte-identical to an unGC'd monitor's) for
    /// verdicts inside the archive depth instead of window-relative stubs.
    /// `0` (default) disables archival and keeps memory O(window);
    /// `K` bounds the extra retention at O(K · window) events per shard.
    pub archive_windows: usize,
    /// Worker threads for the final report's partition fan-out and for
    /// [`Monitor::drive_parallel`] (0 = one per core).
    pub threads: usize,
    /// Keyed phase-trace mode (default `false`): the stream's switch
    /// actions are covered by a valid switch-independence certificate
    /// (`slin-cert/v2`), so the monitor keeps routing events into the
    /// per-key shards *across* switches — switch actions ride along to
    /// their pending input's class shard — and deferred reports resolve
    /// through the model's keyed batch check instead of engaging the
    /// monolithic identity fallback. Set by
    /// [`crate::session::SessionBuilder`] after certificate validation;
    /// do not enable by hand for uncertified ADT/partitioner pairs.
    pub keyed: bool,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            budget: crate::lin::DEFAULT_BUDGET,
            frontier_cap: 32,
            extension_budget: 4096,
            window: None,
            epoch_cuts: true,
            epoch_force: false,
            retire_budget: None,
            archive_windows: 0,
            threads: 0,
            keyed: false,
        }
    }
}

impl MonitorConfig {
    /// Overwrites the GC-related knobs from a [`GcPolicy`] (the
    /// [`crate::session::SessionBuilder::gc_policy`] hook; `budget`,
    /// `window` and `threads` are untouched).
    pub fn with_gc_policy(mut self, gc: GcPolicy) -> Self {
        self.frontier_cap = gc.frontier_cap;
        self.extension_budget = gc.extension_budget;
        self.epoch_cuts = gc.epoch_cuts;
        self.epoch_force = gc.epoch_force;
        self.retire_budget = gc.retire_budget;
        self.archive_windows = gc.archive_windows;
        self
    }
}

/// The garbage-collection/retirement policy of a streaming session — the
/// first-class form of the [`MonitorConfig`] GC knobs, exposed on
/// [`crate::session::SessionBuilder::gc_policy`] and reused verbatim as
/// the daemon's per-tenant policy type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcPolicy {
    /// Retire windows at window multiples even with invocations pending
    /// (symbolic straggler completion). Default `true`.
    pub epoch_cuts: bool,
    /// Force truncated epoch cuts through (lossy: later would-be
    /// violation verdicts downgrade to [`MonitorStatus::Unknown`]).
    /// Default `false`; the daemon's backpressure shed flips this live.
    pub epoch_force: bool,
    /// Maximum frontier configurations retained per shard. Default 32.
    pub frontier_cap: usize,
    /// Node budget of one frontier tail-extension pass. Default 4096.
    pub extension_budget: usize,
    /// Node-budget override for one opportunistic retirement attempt
    /// (`None` keeps the window-scaled formula).
    pub retire_budget: Option<usize>,
    /// Witness archival depth: GC-retired windows retained per shard for
    /// full forensic witness reconstruction (0 = off, the default). See
    /// [`MonitorConfig::archive_windows`].
    pub archive_windows: usize,
}

impl Default for GcPolicy {
    fn default() -> Self {
        let cfg = MonitorConfig::default();
        GcPolicy {
            epoch_cuts: cfg.epoch_cuts,
            epoch_force: cfg.epoch_force,
            frontier_cap: cfg.frontier_cap,
            extension_budget: cfg.extension_budget,
            retire_budget: cfg.retire_budget,
            archive_windows: cfg.archive_windows,
        }
    }
}

impl GcPolicy {
    /// A lossy, memory-first policy: epoch cuts forced through even when
    /// truncated. What the daemon sheds overloaded tenants to.
    pub fn lossy() -> Self {
        GcPolicy {
            epoch_force: true,
            ..GcPolicy::default()
        }
    }
}

/// The rolling verdict of a monitor (exact at every event — see the
/// module docs for the one bounded-window caveat).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorStatus {
    /// Every ingested prefix satisfies the monitored criterion.
    Ok,
    /// The stream violates the criterion (permanent).
    Violation,
    /// The stream is not well-formed (or, for the speculative monitor, an
    /// action lies outside the phase signature).
    IllFormed,
    /// A switch action appeared in a plain-linearizability stream: the
    /// verdict is decided (`LinError::SwitchAction`).
    SwitchSeen,
    /// A search exhausted its node budget; the verdict is unknown until a
    /// later search succeeds.
    Unknown,
    /// Speculative mode defers the verdict to the next [`Monitor::status`]
    /// call (which runs and caches a batch check).
    Deferred,
}

/// Per-event feedback from [`Monitor::ingest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestOutcome {
    /// The event's global stream index.
    pub index: usize,
    /// The target shard's frontier size after the event (0 for events that
    /// bypass the shard machinery).
    pub frontier_len: usize,
    /// Whether the event forced a bounded re-search (frontier pruned
    /// empty or the extension budget tripped).
    pub fell_back: bool,
    /// The rolling verdict after the event.
    pub status: MonitorStatus,
}

/// Aggregated shard-machinery counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardSummary {
    /// Frontier tail-extension passes run (one per commit event).
    pub extension_searches: usize,
    /// Bounded re-searches run (the documented fallback).
    pub fallback_searches: usize,
    /// Largest frontier any shard ever held.
    pub frontier_peak: usize,
    /// Events retired by bounded-window GC across all shards.
    pub retired_events: usize,
    /// Non-quiescent (epoch) retirement cuts across all shards.
    pub epoch_cuts: usize,
    /// Forced lossy cuts (truncated summaries retired anyway).
    pub lossy_cuts: usize,
    /// Enumeration/extension search nodes expanded — a deterministic
    /// per-stream work proxy, unlike wall-clock time.
    pub search_nodes: usize,
    /// Currently retained configurations (frontiers plus seeds) — the
    /// live-state component of the memory proxy.
    pub live_configs: usize,
    /// Distinct persistent-multiset trie nodes currently reachable from
    /// the monitor (pointer-deduplicated across structure sharing) — the
    /// retained-memory proxy for the bound snapshots.
    pub multiset_nodes: usize,
    /// Events currently retained in shard windows (not yet retired).
    pub window_events: usize,
    /// GC-retired events currently held in the witness archives (bounded
    /// by `archive_windows · window` per shard) — the archival component
    /// of the memory proxy.
    pub archived_events: usize,
}

/// The monitor's full forensic report.
///
/// `W`/`E` are the wrapped model's witness and error types; with an
/// unbounded window `verdict` is byte-identical to that model's batch
/// check on the closed trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorReport<W, E> {
    /// The verdict (witness or error) for the retained trace.
    pub verdict: Result<W, E>,
    /// Events ingested.
    pub events: usize,
    /// Live shards.
    pub shards: usize,
    /// Why identity routing engaged (unclassifiable input, or a switch
    /// action without a keyed certificate), or `None` when the stream ran
    /// sharded end to end — mirrors `SplitOutcome::fallback`.
    pub fallback: Option<FallbackReason>,
    /// Whether the final witness needed a monolithic re-derivation
    /// (cross-partition bound coupling) — mirrors
    /// `PartitionReport::remerged`.
    pub remerged: bool,
    /// Whether bounded-window GC retired a prefix: the verdict is
    /// window-relative — unless `reconstructed` is also set.
    pub prefix_committed: bool,
    /// Whether the verdict was reconstructed from the witness archive:
    /// every retired event was still archived, so despite
    /// `prefix_committed` this verdict (witness included) is byte-identical
    /// to an unGC'd monitor's batch report on the closed trace.
    pub reconstructed: bool,
    /// Engine counters absorbed over the report derivation.
    pub stats: SearchStats,
    /// Aggregated shard-machinery counters.
    pub shard: ShardSummary,
}
